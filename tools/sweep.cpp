// Sharded experiment sweeps from the command line.
//
//   # 3-axis grid: 2 algorithms × 2 Dirichlet alphas × 3 seeds = 12 runs
//   ./sweep --axis algo=subfedavg_un,fedavg --axis alpha=0.1,0.5 \
//       --axis seed=1,2,3 --partition dirichlet --rounds 12 \
//       --jobs 4 --out-dir sweep_out
//
// Any ExperimentSpec flag (see run_experiment --help) sets the base spec;
// each --axis key=v1,v2,... (any spec kv key, including algo.* params) adds a
// sweep dimension, --replicas N is shorthand for a seed axis. Runs shard
// across --jobs worker threads, each writing a per-run JSON into --out-dir;
// a failed run is reported and skipped, the sweep continues. Afterwards the
// per-run JSONs are aggregated into a paper-style table (mean ± std over the
// --over axis, grouped by the remaining axes).
//
//   # aggregate an existing result directory, nothing re-runs
//   ./sweep --aggregate sweep_out --format markdown
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fl/sweep.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/parse.h"

using namespace subfed;

namespace {

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string piece = text.substr(start, comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void print_help() {
  std::printf(
      "usage: sweep [sweep flags] [base ExperimentSpec flags]\n\n"
      "sweep flags:\n"
      "  --axis key=v1,v2,...  add a sweep dimension (repeatable); key is any\n"
      "                        spec kv key, including algo.* hyper-parameters\n"
      "  --replicas N          shorthand for --axis seed=<seed>,...,<seed+N-1>\n"
      "  --sweep-file PATH     key=value lines; multi-value lines become axes\n"
      "  --jobs N              worker threads [hardware concurrency]\n"
      "  --out-dir DIR         per-run JSON directory [sweep_out]\n"
      "  --listen host:port    shard runs over remote workers that join this\n"
      "                        address (start them with: worker --connect ...)\n"
      "  --remote-workers N    workers to wait for before dispatching [1]\n"
      "  --rpc-timeout-ms MS   per-run remote deadline; 0 = no limit [0]\n"
      "  --dry-run 1           print the expanded runs, execute nothing\n"
      "  --aggregate DIR       aggregate an existing directory, run nothing\n"
      "  --group-by k1,k2      table row keys [the non-replicate axes]\n"
      "  --over KEY            replicate axis folded into mean±std [seed]\n"
      "  --metric m1,m2        metric columns: accuracy, comm, round_time\n"
      "                        (simulated synchronous seconds), or any extra\n"
      "                        metric such as unstructured_pruned or\n"
      "                        compression_ratio [accuracy,comm]\n"
      "  --format FMT          ascii | csv | markdown [ascii]\n"
      "  --quiet 1             suppress per-run progress lines\n\n"
      "base spec flags (applied before axes):\n\n%s",
      ExperimentSpec::help_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);

  SweepDescription description;
  SweepOptions options;
  options.out_dir = "sweep_out";
  AggregateOptions aggregate;
  std::string aggregate_dir;
  std::string format = "ascii";
  std::size_t replicas = 0;
  bool dry_run = false;

  std::vector<char*> spec_argv = {argv[0]};
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--help" || flag == "-h") {
        print_help();
        return 0;
      }
      auto value = [&]() -> std::string {
        SUBFEDAVG_CHECK(i + 1 < argc, "flag " << flag << " expects a value");
        return argv[++i];
      };
      if (flag == "--axis") {
        description.add_axis(value());
      } else if (flag == "--replicas") {
        replicas = static_cast<std::size_t>(parse_uint64_strict("replicas", value()));
      } else if (flag == "--sweep-file") {
        const std::string path = value();
        std::ifstream file(path);
        SUBFEDAVG_CHECK(file.good(), "cannot read sweep file '" << path << "'");
        std::ostringstream text;
        text << file.rdbuf();
        description.apply_file(text.str());
      } else if (flag == "--jobs") {
        options.jobs = static_cast<std::size_t>(parse_uint64_strict("jobs", value()));
      } else if (flag == "--out-dir") {
        options.out_dir = value();
      } else if (flag == "--listen") {
        options.listen = value();
      } else if (flag == "--remote-workers") {
        options.remote_workers =
            static_cast<std::size_t>(parse_uint64_strict("remote-workers", value()));
      } else if (flag == "--rpc-timeout-ms") {
        options.rpc_timeout_ms =
            static_cast<std::size_t>(parse_uint64_strict("rpc-timeout-ms", value()));
      } else if (flag == "--dry-run") {
        dry_run = parse_uint64_strict("dry-run", value()) != 0;
      } else if (flag == "--aggregate") {
        aggregate_dir = value();
      } else if (flag == "--group-by") {
        aggregate.group_by = split_commas(value());
      } else if (flag == "--over") {
        aggregate.over = value();
      } else if (flag == "--metric") {
        aggregate.metrics = split_commas(value());
      } else if (flag == "--format") {
        format = value();
      } else if (flag == "--quiet") {
        options.echo_progress = parse_uint64_strict("quiet", value()) == 0;
      } else {
        // Base-spec flag: forward to ExperimentSpec::parse_args.
        spec_argv.push_back(argv[i]);
        SUBFEDAVG_CHECK(i + 1 < argc, "flag " << flag << " expects a value");
        spec_argv.push_back(argv[++i]);
      }
    }
    description.base.parse_args(static_cast<int>(spec_argv.size()), spec_argv.data());
    if (replicas > 0) description.add_replicas(replicas);

    // Aggregate-only mode: load an existing directory and print its table.
    if (!aggregate_dir.empty()) {
      const std::vector<SweepRecord> records = load_run_records(aggregate_dir);
      SUBFEDAVG_CHECK(!records.empty(), "no *.json run results under '" << aggregate_dir << "'");
      aggregate.group_by = resolve_group_by(records, aggregate);
      const std::vector<AggregateRow> rows = aggregate_records(records, aggregate);
      std::printf("%s", render_table(aggregation_table(rows, aggregate), format).c_str());
      return 0;
    }

    const std::vector<SweepRun> runs = description.expand();
    if (dry_run) {
      std::printf("# %zu runs\n", runs.size());
      for (const SweepRun& run : runs) {
        std::printf("%3zu  %s\n", run.index, run.name.c_str());
      }
      return 0;
    }

    const SweepSummary summary = run_sweep(runs, options);

    std::vector<SweepRecord> records;
    for (const SweepRunOutcome& outcome : summary.outcomes) {
      if (outcome.ok) records.push_back(record_from_outcome(outcome));
    }
    if (!records.empty()) {
      // Row identity defaults to the same inference --aggregate uses on the
      // saved JSONs, so re-aggregating the out-dir reproduces this table.
      aggregate.group_by = resolve_group_by(records, aggregate);
      const std::vector<AggregateRow> rows = aggregate_records(records, aggregate);
      std::printf("%s", render_table(aggregation_table(rows, aggregate), format).c_str());
    }
    report_failed_runs(summary);
    return summary.num_failed() == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    // CheckError plus anything the filesystem layer throws (bad --out-dir,
    // unreadable --aggregate directory): report and exit instead of aborting.
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
