// Perf-regression gate over the BENCH_*.json trajectory.
//
// Compares a freshly emitted bench JSON (BENCH_gemm.json / BENCH_comm.json /
// BENCH_async.json) against a committed baseline manifest and fails (exit 2)
// when any tracked metric regresses past its tolerance. CI wires this into
// the backend-kernels and comm jobs so a slowed kernel or a bloated payload
// fails the PR instead of silently bending the perf trajectory.
//
//   bench_check --baseline bench/baselines/BENCH_comm.json --current BENCH_comm.json
//   bench_check ... --update      rewrite the baseline's values from the
//                                 current run (for refreshing baselines)
//
// Baseline manifest format:
//   {
//     "file": "BENCH_comm.json",
//     "default_tolerance": 0.25,
//     "metrics": [
//       {"name": "...", "path": "[algorithm=fedavg,quantize=none].simulated_seconds",
//        "direction": "lower", "value": 12.3, "tolerance": 0.25},
//       {"name": "...", "direction": "higher", "value": 3.0,
//        "ratio": {"numerator": "<path>", "denominator": "<path>"}}
//     ]
//   }
//
// Path selectors address the bench JSON: dot-separated object keys, with
// `[N]` array indexing and `[k=v,k2=v2]` first-match array filtering (string
// or numeric member equality) — e.g. google-benchmark output is addressed as
// `benchmarks[name=BM_GemmBackend/128/1/100].real_time`. Machine-dependent
// absolute timings should be tracked as ratios (naive/blocked), which cancel
// host speed; simulated_seconds and byte counts are deterministic and can be
// tracked absolutely.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/json.h"
#include "util/parse.h"
#include "util/table.h"

namespace subfed {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  SUBFEDAVG_CHECK(file.good(), "cannot read '" << path << "'");
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

bool numeric_equal(double a, double b) {
  return std::fabs(a - b) <= 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// One `[...]` suffix: an index or a conjunctive k=v filter.
const JsonValue& apply_bracket(const JsonValue& value, const std::string& inner,
                               const std::string& path) {
  SUBFEDAVG_CHECK(value.is_array(), "path '" << path << "': [" << inner
                                             << "] applied to a non-array");
  if (inner.find('=') == std::string::npos) {
    const std::size_t index =
        static_cast<std::size_t>(parse_uint64_strict("array index", inner));
    SUBFEDAVG_CHECK(index < value.array.size(),
                    "path '" << path << "': index " << index << " out of "
                             << value.array.size());
    return value.array[index];
  }
  // k=v[,k=v...]: first element matching every pair.
  std::vector<std::pair<std::string, std::string>> filters;
  std::istringstream parts(inner);
  std::string part;
  while (std::getline(parts, part, ',')) {
    const std::size_t eq = part.find('=');
    SUBFEDAVG_CHECK(eq != std::string::npos && eq > 0,
                    "path '" << path << "': bad filter '" << part << "'");
    filters.emplace_back(part.substr(0, eq), part.substr(eq + 1));
  }
  for (const JsonValue& element : value.array) {
    bool all = true;
    for (const auto& [key, want] : filters) {
      const JsonValue* member = element.find(key);
      if (member == nullptr) {
        all = false;
      } else if (member->is_string()) {
        all = member->string == want;
      } else if (member->is_number()) {
        char* end = nullptr;
        const double parsed = std::strtod(want.c_str(), &end);
        all = end != want.c_str() && *end == '\0' && numeric_equal(member->number, parsed);
      } else {
        all = false;
      }
      if (!all) break;
    }
    if (all) return element;
  }
  SUBFEDAVG_CHECK(false, "path '" << path << "': no array element matches [" << inner << "]");
  return value;
}

/// Resolves a dotted/bracketed selector against a parsed document.
double resolve_number(const JsonValue& document, const std::string& path) {
  const JsonValue* value = &document;
  std::size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '.') {
      ++pos;
      continue;
    }
    if (path[pos] == '[') {
      const std::size_t close = path.find(']', pos);
      SUBFEDAVG_CHECK(close != std::string::npos, "path '" << path << "': unclosed [");
      value = &apply_bracket(*value, path.substr(pos + 1, close - pos - 1), path);
      pos = close + 1;
      continue;
    }
    const std::size_t end = path.find_first_of(".[", pos);
    const std::string key =
        path.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
    const JsonValue* member = value->find(key);
    SUBFEDAVG_CHECK(member != nullptr, "path '" << path << "': no member '" << key << "'");
    value = member;
    pos = end == std::string::npos ? path.size() : end;
  }
  SUBFEDAVG_CHECK(value->is_number(), "path '" << path << "' is not a number");
  return value->number;
}

struct TrackedMetric {
  std::string name;
  std::string path;         ///< empty when ratio is set
  std::string numerator;    ///< ratio form
  std::string denominator;
  std::string direction;    ///< "lower" | "higher" (better)
  double value = 0.0;       ///< committed baseline
  double tolerance = 0.25;  ///< allowed relative regression
};

struct Baseline {
  std::string file;
  double default_tolerance = 0.25;
  std::vector<TrackedMetric> metrics;
};

Baseline load_baseline(const std::string& path) {
  const JsonValue doc = parse_json(read_file(path));
  Baseline baseline;
  baseline.file = doc.string_or("file", "");
  baseline.default_tolerance = doc.number_or("default_tolerance", 0.25);
  const JsonValue* metrics = doc.find("metrics");
  SUBFEDAVG_CHECK(metrics != nullptr && metrics->is_array(),
                  "baseline '" << path << "' has no metrics array");
  for (const JsonValue& entry : metrics->array) {
    TrackedMetric metric;
    metric.name = entry.string_or("name", "");
    metric.path = entry.string_or("path", "");
    if (const JsonValue* ratio = entry.find("ratio")) {
      metric.numerator = ratio->string_or("numerator", "");
      metric.denominator = ratio->string_or("denominator", "");
      SUBFEDAVG_CHECK(!metric.numerator.empty() && !metric.denominator.empty(),
                      "metric '" << metric.name << "': ratio needs numerator + denominator");
    }
    SUBFEDAVG_CHECK(metric.path.empty() != metric.numerator.empty(),
                    "metric '" << metric.name << "' needs exactly one of path | ratio");
    metric.direction = entry.string_or("direction", "lower");
    SUBFEDAVG_CHECK(metric.direction == "lower" || metric.direction == "higher",
                    "metric '" << metric.name << "': direction must be lower | higher");
    SUBFEDAVG_CHECK(entry.find("value") != nullptr,
                    "metric '" << metric.name << "' has no baseline value");
    metric.value = entry.number_or("value", 0.0);
    metric.tolerance = entry.number_or("tolerance", baseline.default_tolerance);
    if (metric.name.empty()) metric.name = metric.path;
    baseline.metrics.push_back(std::move(metric));
  }
  return baseline;
}

double current_value(const JsonValue& document, const TrackedMetric& metric) {
  if (!metric.path.empty()) return resolve_number(document, metric.path);
  const double denominator = resolve_number(document, metric.denominator);
  SUBFEDAVG_CHECK(denominator != 0.0,
                  "metric '" << metric.name << "': denominator is zero");
  return resolve_number(document, metric.numerator) / denominator;
}

void append_json_string(std::ostringstream& os, const std::string& value) {
  os << '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

/// Rewrites the baseline manifest with fresh values (--update).
void write_baseline(const std::string& path, const Baseline& baseline,
                    const std::vector<double>& values) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"file\": ";
  append_json_string(os, baseline.file);
  os << ",\n  \"default_tolerance\": " << baseline.default_tolerance
     << ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < baseline.metrics.size(); ++i) {
    const TrackedMetric& metric = baseline.metrics[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\": ";
    append_json_string(os, metric.name);
    if (!metric.path.empty()) {
      os << ", \"path\": ";
      append_json_string(os, metric.path);
    } else {
      os << ", \"ratio\": {\"numerator\": ";
      append_json_string(os, metric.numerator);
      os << ", \"denominator\": ";
      append_json_string(os, metric.denominator);
      os << "}";
    }
    os << ", \"direction\": \"" << metric.direction << "\", \"tolerance\": "
       << metric.tolerance << ", \"value\": " << values[i] << "}";
  }
  os << "\n  ]\n}\n";
  std::ofstream out(path, std::ios::trunc);
  SUBFEDAVG_CHECK(out.good(), "cannot write '" << path << "'");
  out << os.str();
}

int run(int argc, char** argv) {
  std::string baseline_path, current_path;
  bool update = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--update") {
      update = true;
      continue;
    }
    if (flag == "--help" || flag == "-h") {
      std::printf("usage: bench_check --baseline <manifest.json> --current <bench.json> "
                  "[--update]\n");
      return 0;
    }
    SUBFEDAVG_CHECK(i + 1 < argc, "flag " << flag << " expects a value");
    const std::string value = argv[++i];
    if (flag == "--baseline") {
      baseline_path = value;
    } else if (flag == "--current") {
      current_path = value;
    } else {
      SUBFEDAVG_CHECK(false, "unknown flag " << flag << " (see --help)");
    }
  }
  SUBFEDAVG_CHECK(!baseline_path.empty() && !current_path.empty(),
                  "--baseline and --current are required (see --help)");

  const Baseline baseline = load_baseline(baseline_path);
  const JsonValue document = parse_json(read_file(current_path));

  TablePrinter table({"metric", "direction", "baseline", "current", "delta", "status"});
  std::vector<double> values;
  std::size_t regressions = 0;
  for (const TrackedMetric& metric : baseline.metrics) {
    const double current = current_value(document, metric);
    values.push_back(current);
    const double delta =
        metric.value != 0.0 ? (current - metric.value) / std::fabs(metric.value) : 0.0;
    // "lower" is better → regression when current exceeds baseline by more
    // than the tolerance; "higher" mirrors it.
    const bool regressed = metric.direction == "lower"
                               ? current > metric.value * (1.0 + metric.tolerance)
                               : current < metric.value * (1.0 - metric.tolerance);
    if (regressed) ++regressions;
    char baseline_text[32], current_text[32], delta_text[32];
    std::snprintf(baseline_text, sizeof(baseline_text), "%.6g", metric.value);
    std::snprintf(current_text, sizeof(current_text), "%.6g", current);
    std::snprintf(delta_text, sizeof(delta_text), "%+.1f%%", 100.0 * delta);
    table.add_row({metric.name, metric.direction, baseline_text, current_text, delta_text,
                   regressed ? "REGRESSED" : "ok"});
  }
  std::printf("%s\n", table.to_string().c_str());

  if (update) {
    write_baseline(baseline_path, baseline, values);
    std::printf("updated %s with %zu current values\n", baseline_path.c_str(),
                values.size());
    return 0;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_check: %zu of %zu tracked metrics regressed past tolerance "
                 "(baseline %s)\n",
                 regressions, baseline.metrics.size(), baseline_path.c_str());
    return 2;
  }
  std::printf("all %zu tracked metrics within tolerance\n", baseline.metrics.size());
  return 0;
}

}  // namespace
}  // namespace subfed

int main(int argc, char** argv) {
  try {
    return subfed::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_check: %s\n", e.what());
    return 1;
  }
}
