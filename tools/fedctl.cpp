// Operator CLI for the resident federation server (tools/serve.cpp): the
// curl-equivalent for the kGetModel/kStatus/kMetrics/kMetricsTail/
// kCheckpointNow/kShutdown request API — one framed request per invocation
// (tail/--watch loop on one connection), reply to stdout (or --out).
//
//   fedctl --connect host:port status                 # run status JSON
//   fedctl --connect host:port status --watch 2       # conditional 2 s poll
//   fedctl --connect host:port metrics                # telemetry registry JSON
//   fedctl --connect host:port tail                   # JSONL event log from 0
//   fedctl --connect host:port tail --cursor N --follow
//   fedctl --connect host:port model                  # global model sections
//   fedctl --connect host:port model --client 3       # client 3's personalized state
//   fedctl --connect host:port checkpoint             # snapshot now
//   fedctl --connect host:port shutdown               # checkpoint + clean exit
#include <chrono>
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "util/check.h"
#include "util/parse.h"

namespace {

/// Mirror of ServerLoop::kModelConditionalTag (serve/server.h): a request tag
/// with this bit set carries the stamp of the reply the client already holds.
constexpr std::uint64_t kConditionalTag = 1ULL << 63;

void print_usage() {
  std::cout
      << "usage: fedctl --connect host:port <command> [options]\n\n"
         "commands:\n"
         "  status                live run metrics as JSON\n"
         "  metrics               telemetry instrument registry as JSON\n"
         "  tail                  page through the server's JSONL event log\n"
         "  model                 current global model (binary sections)\n"
         "  checkpoint            snapshot the session now\n"
         "  shutdown              checkpoint and stop the server\n\n"
         "options:\n"
         "  --connect host:port   server request address (required)\n"
         "  --client K            model: client K's personalized state instead\n"
         "  --watch SECS          status: poll every SECS seconds, printing only\n"
         "                        when the round advances (conditional requests)\n"
         "  --cursor N            tail: start at logical offset N [0]\n"
         "  --follow              tail: keep polling for new records when caught up\n"
         "  --out path            write the reply payload to a file instead of stdout\n"
         "  --timeout-ms MS       per-request deadline [10000]\n"
         "  --help                print this reference\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  std::string command;
  std::string client;
  std::string out_path;
  long long timeout_ms = 10000;
  long long watch_secs = -1;
  std::uint64_t cursor = 0;
  bool follow = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "--connect" && i + 1 < argc) {
        connect = argv[++i];
      } else if (arg == "--client" && i + 1 < argc) {
        client = std::to_string(subfed::parse_uint64_strict("client", argv[++i]));
      } else if (arg == "--watch" && i + 1 < argc) {
        watch_secs = static_cast<long long>(subfed::parse_uint64_strict("watch", argv[++i]));
      } else if (arg == "--cursor" && i + 1 < argc) {
        cursor = subfed::parse_uint64_strict("cursor", argv[++i]);
      } else if (arg == "--follow") {
        follow = true;
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--timeout-ms" && i + 1 < argc) {
        timeout_ms =
            static_cast<long long>(subfed::parse_uint64_strict("timeout-ms", argv[++i]));
      } else if (!arg.empty() && arg[0] != '-' && command.empty()) {
        command = arg;
      } else {
        std::cerr << "fedctl: unexpected argument '" << arg << "' (see --help)\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "fedctl: " << e.what() << "\n";
      return 2;
    }
  }
  if (connect.empty() || command.empty()) {
    std::cerr << "fedctl: need --connect host:port and a command (see --help)\n";
    return 2;
  }

  subfed::net::FrameKind kind;
  std::vector<std::uint8_t> payload;
  if (command == "status") {
    kind = subfed::net::FrameKind::kStatus;
  } else if (command == "metrics") {
    kind = subfed::net::FrameKind::kMetrics;
  } else if (command == "tail") {
    kind = subfed::net::FrameKind::kMetricsTail;
  } else if (command == "model") {
    kind = subfed::net::FrameKind::kGetModel;
    payload.assign(client.begin(), client.end());
  } else if (command == "checkpoint") {
    kind = subfed::net::FrameKind::kCheckpointNow;
  } else if (command == "shutdown") {
    kind = subfed::net::FrameKind::kShutdown;
  } else {
    std::cerr << "fedctl: unknown command '" << command << "' (see --help)\n";
    return 2;
  }

  try {
    const auto deadline = [timeout_ms] {
      return subfed::net::Deadline::after_ms(timeout_ms);
    };
    subfed::net::TcpConn conn =
        subfed::net::TcpConn::connect(subfed::net::parse_host_port(connect), deadline());
    SUBFEDAVG_CHECK(conn.valid(), "cannot reach server at " << connect);

    const auto request = [&](std::uint64_t tag, const std::vector<std::uint8_t>& body,
                             subfed::net::NetFrame* reply) {
      SUBFEDAVG_CHECK(subfed::net::send_frame(conn, kind, tag, body, deadline()),
                      "request send failed (server gone?)");
      SUBFEDAVG_CHECK(subfed::net::recv_frame(conn, reply, deadline()),
                      "no reply within " << timeout_ms << " ms");
      if (reply->kind == subfed::net::FrameKind::kError) {
        std::cerr << "fedctl: server error: "
                  << std::string(reply->payload.begin(), reply->payload.end()) << "\n";
        return false;
      }
      SUBFEDAVG_CHECK(reply->kind == subfed::net::FrameKind::kReply,
                      "unexpected reply kind " << static_cast<int>(reply->kind));
      return true;
    };

    if (command == "tail") {
      // Cursor paging on one connection: each reply's tag is the next logical
      // offset. An empty chunk means caught up — stop, or keep polling under
      // --follow. The final cursor goes to stderr so scripts can save it.
      while (true) {
        const std::string text = std::to_string(cursor);
        subfed::net::NetFrame reply;
        if (!request(0, std::vector<std::uint8_t>(text.begin(), text.end()), &reply)) {
          return 1;
        }
        if (!reply.payload.empty()) {
          std::cout.write(reinterpret_cast<const char*>(reply.payload.data()),
                          static_cast<std::streamsize>(reply.payload.size()));
          std::cout.flush();
          cursor = reply.tag;
          continue;
        }
        cursor = reply.tag;
        if (!follow) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
      }
      std::cerr << "fedctl: tail cursor " << cursor << "\n";
      return 0;
    }

    if (command == "status" && watch_secs >= 0) {
      // Conditional poll: send back the stamp of the last reply we printed;
      // an unchanged round earns an empty not-modified reply and no output.
      std::uint64_t stamp = 0;
      while (true) {
        const std::uint64_t tag = stamp == 0 ? 0 : (kConditionalTag | stamp);
        subfed::net::NetFrame reply;
        if (!request(tag, {}, &reply)) return 1;
        if (!reply.payload.empty()) {
          std::cout.write(reinterpret_cast<const char*>(reply.payload.data()),
                          static_cast<std::streamsize>(reply.payload.size()));
          std::cout.flush();
        }
        stamp = reply.tag;
        std::this_thread::sleep_for(std::chrono::seconds(watch_secs));
      }
    }

    subfed::net::NetFrame reply;
    if (!request(0, payload, &reply)) return 1;
    if (!out_path.empty()) {
      std::FILE* f = std::fopen(out_path.c_str(), "wb");
      SUBFEDAVG_CHECK(f != nullptr, "cannot open " << out_path << " for writing");
      const std::size_t written =
          std::fwrite(reply.payload.data(), 1, reply.payload.size(), f);
      std::fclose(f);
      SUBFEDAVG_CHECK(written == reply.payload.size(), "short write to " << out_path);
      std::cerr << "fedctl: " << reply.payload.size() << " bytes -> " << out_path << "\n";
    } else {
      std::cout.write(reinterpret_cast<const char*>(reply.payload.data()),
                      static_cast<std::streamsize>(reply.payload.size()));
      if (!reply.payload.empty() && reply.payload.back() != '\n') std::cout << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fedctl: " << e.what() << "\n";
    return 1;
  }
}
