// Operator CLI for the resident federation server (tools/serve.cpp): the
// curl-equivalent for the kGetModel/kStatus/kCheckpointNow/kShutdown request
// API — one framed request per invocation, reply to stdout (or --out).
//
//   fedctl --connect host:port status                 # metrics JSON
//   fedctl --connect host:port model                  # global model sections
//   fedctl --connect host:port model --client 3       # client 3's personalized state
//   fedctl --connect host:port checkpoint             # snapshot now
//   fedctl --connect host:port shutdown               # checkpoint + clean exit
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "net/socket.h"
#include "util/check.h"
#include "util/parse.h"

namespace {

void print_usage() {
  std::cout
      << "usage: fedctl --connect host:port <command> [options]\n\n"
         "commands:\n"
         "  status                live run metrics as JSON\n"
         "  model                 current global model (binary sections)\n"
         "  checkpoint            snapshot the session now\n"
         "  shutdown              checkpoint and stop the server\n\n"
         "options:\n"
         "  --connect host:port   server request address (required)\n"
         "  --client K            model: client K's personalized state instead\n"
         "  --out path            write the reply payload to a file instead of stdout\n"
         "  --timeout-ms MS       per-request deadline [10000]\n"
         "  --help                print this reference\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  std::string command;
  std::string client;
  std::string out_path;
  long long timeout_ms = 10000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "--connect" && i + 1 < argc) {
        connect = argv[++i];
      } else if (arg == "--client" && i + 1 < argc) {
        client = std::to_string(subfed::parse_uint64_strict("client", argv[++i]));
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--timeout-ms" && i + 1 < argc) {
        timeout_ms =
            static_cast<long long>(subfed::parse_uint64_strict("timeout-ms", argv[++i]));
      } else if (!arg.empty() && arg[0] != '-' && command.empty()) {
        command = arg;
      } else {
        std::cerr << "fedctl: unexpected argument '" << arg << "' (see --help)\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "fedctl: " << e.what() << "\n";
      return 2;
    }
  }
  if (connect.empty() || command.empty()) {
    std::cerr << "fedctl: need --connect host:port and a command (see --help)\n";
    return 2;
  }

  subfed::net::FrameKind kind;
  std::vector<std::uint8_t> payload;
  if (command == "status") {
    kind = subfed::net::FrameKind::kStatus;
  } else if (command == "model") {
    kind = subfed::net::FrameKind::kGetModel;
    payload.assign(client.begin(), client.end());
  } else if (command == "checkpoint") {
    kind = subfed::net::FrameKind::kCheckpointNow;
  } else if (command == "shutdown") {
    kind = subfed::net::FrameKind::kShutdown;
  } else {
    std::cerr << "fedctl: unknown command '" << command << "' (see --help)\n";
    return 2;
  }

  try {
    const auto deadline = [timeout_ms] {
      return subfed::net::Deadline::after_ms(timeout_ms);
    };
    subfed::net::TcpConn conn =
        subfed::net::TcpConn::connect(subfed::net::parse_host_port(connect), deadline());
    SUBFEDAVG_CHECK(conn.valid(), "cannot reach server at " << connect);
    SUBFEDAVG_CHECK(subfed::net::send_frame(conn, kind, 0, payload, deadline()),
                    "request send failed (server gone?)");
    subfed::net::NetFrame reply;
    SUBFEDAVG_CHECK(subfed::net::recv_frame(conn, &reply, deadline()),
                    "no reply within " << timeout_ms << " ms");
    if (reply.kind == subfed::net::FrameKind::kError) {
      std::cerr << "fedctl: server error: "
                << std::string(reply.payload.begin(), reply.payload.end()) << "\n";
      return 1;
    }
    SUBFEDAVG_CHECK(reply.kind == subfed::net::FrameKind::kReply,
                    "unexpected reply kind " << static_cast<int>(reply.kind));
    if (!out_path.empty()) {
      std::FILE* f = std::fopen(out_path.c_str(), "wb");
      SUBFEDAVG_CHECK(f != nullptr, "cannot open " << out_path << " for writing");
      const std::size_t written =
          std::fwrite(reply.payload.data(), 1, reply.payload.size(), f);
      std::fclose(f);
      SUBFEDAVG_CHECK(written == reply.payload.size(), "short write to " << out_path);
      std::cerr << "fedctl: " << reply.payload.size() << " bytes -> " << out_path << "\n";
    } else {
      std::cout.write(reinterpret_cast<const char*>(reply.payload.data()),
                      static_cast<std::streamsize>(reply.payload.size()));
      if (!reply.payload.empty() && reply.payload.back() != '\n') std::cout << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fedctl: " << e.what() << "\n";
    return 1;
  }
}
