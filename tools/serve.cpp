// Resident federation server CLI: a long-lived coordinator.
//
// Where run_experiment runs a spec to its `rounds=` horizon and exits, serve
// stays up: workers join (and rejoin) whenever they like, rounds tick
// whenever enough of them are connected, the session checkpoints itself every
// `--checkpoint-every` rounds, and operators query/control it over the
// request port with the fedctl tool:
//
//   machine A:  serve --listen 0.0.0.0:9000 --status-listen 0.0.0.0:9100 \
//               --checkpoint-path fed.ckpt --algo subfedavg_un ...
//   machine B:  worker --connect a.example:9000 --reconnect 1000
//   anywhere:   fedctl --connect a.example:9100 status
//               fedctl --connect a.example:9100 model --out global.bin
//               fedctl --connect a.example:9100 shutdown
//
// Kill -9 the server and start it again with the same flags: it restores the
// session from the checkpoint and the round counter continues where it
// stopped. All ordinary spec flags apply; serve pre-seeds the resident-mode
// defaults (serve=1, transport=tcp, buffered aggregation, checkpoint every
// round) and any explicit flag overrides them.
#include <atomic>
#include <csignal>
#include <exception>
#include <iostream>
#include <string>

#include "serve/server.h"
#include "util/parse.h"

namespace {

std::atomic<subfed::ServerLoop*> g_loop{nullptr};

void handle_signal(int /*sig*/) {
  if (subfed::ServerLoop* loop = g_loop.load()) loop->request_stop();
}

void print_usage() {
  std::cout
      << "usage: serve --listen host:port --status-listen host:port [spec flags]\n\n"
         "Long-lived federation coordinator: accepts workers as they arrive,\n"
         "runs continuous buffered rounds whenever >= min-participants are\n"
         "connected, checkpoints itself, and serves model/status requests\n"
         "(see the fedctl tool). Restarting with the same flags resumes the\n"
         "federation from the latest checkpoint.\n\n"
         "serve-specific flags:\n"
         "  --max-rounds N        exit after N rounds this process; 0 = run forever [0]\n"
         "  --idle-wait-ms MS     poll granularity while waiting for workers [200]\n"
         "  --telemetry-log PATH  append-only JSONL round log (served by fedctl tail);\n"
         "                        raises telemetry to at least counters\n"
         "  --telemetry-log-rotate BYTES\n"
         "                        rotate the JSONL log past this size [8388608]\n"
         "  --telemetry-trace PATH\n"
         "                        Chrome trace_event JSON written on exit;\n"
         "                        raises telemetry to trace\n\n"
         "resident-mode defaults (override with the ordinary spec flags):\n"
         "  serve=1 transport=tcp aggregation=buffered checkpoint_every=1\n"
         "  status_listen=127.0.0.1:0 listen=127.0.0.1:0 min_participants=0\n"
         "  (min_participants 0 = max(1, buffer_k))\n\n"
      << subfed::ExperimentSpec::help_text();
}

}  // namespace

int main(int argc, char** argv) {
  subfed::ServeOptions options;
  // Resident-mode defaults; parse_args below lets every flag override them.
  options.spec.serve = 1;
  options.spec.transport = "tcp";
  options.spec.listen = "127.0.0.1:0";
  options.spec.status_listen = "127.0.0.1:0";
  options.spec.aggregation = "buffered";
  options.spec.checkpoint_every = 1;
  options.spec.out.clear();

  // Peel off the serve-specific flags, pass the rest to the spec parser.
  std::vector<char*> spec_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    try {
      if (flag == "--max-rounds" && i + 1 < argc) {
        options.max_rounds = subfed::parse_uint64_strict("max-rounds", argv[++i]);
      } else if (flag == "--idle-wait-ms" && i + 1 < argc) {
        options.idle_wait_ms =
            static_cast<long long>(subfed::parse_uint64_strict("idle-wait-ms", argv[++i]));
      } else if (flag == "--telemetry-log" && i + 1 < argc) {
        options.telemetry_log = argv[++i];
      } else if (flag == "--telemetry-log-rotate" && i + 1 < argc) {
        options.telemetry_log_rotate =
            subfed::parse_uint64_strict("telemetry-log-rotate", argv[++i]);
      } else if (flag == "--telemetry-trace" && i + 1 < argc) {
        options.telemetry_trace = argv[++i];
      } else {
        spec_argv.push_back(argv[i]);
      }
    } catch (const std::exception& e) {
      std::cerr << "serve: " << e.what() << "\n";
      return 2;
    }
  }
  try {
    options.spec.parse_args(static_cast<int>(spec_argv.size()), spec_argv.data());
  } catch (const std::exception& e) {
    std::cerr << "serve: " << e.what() << "\n";
    return 2;
  }
  if (options.spec.help_requested) {
    print_usage();
    return 0;
  }

  try {
    subfed::ServerLoop loop(options);
    g_loop.store(&loop);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    // The smoke test (and any operator script) needs the resolved endpoints
    // on stdout before the loop blocks.
    std::cout << "serve: workers join " << loop.worker_endpoint() << "\n"
              << "serve: requests on " << loop.request_endpoint() << "\n"
              << "serve: checkpoint at " << loop.checkpoint_path()
              << (loop.resumed() ? " (resumed at round " +
                                       std::to_string(loop.resumed_from()) + ")"
                                 : "")
              << std::endl;
    loop.run();
    g_loop.store(nullptr);
    std::cout << "serve: stopped at round " << loop.session().round() << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "serve: " << e.what() << "\n";
    return 1;
  }
}
