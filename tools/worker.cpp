// Federation worker CLI: the connect-side half of transport=tcp.
//
// A coordinator run (run_experiment/sweep with `transport=tcp
// listen=host:port channel_workers=N`) waits for N of these to join, then
// drives the federation over their sockets:
//
//   machine A:  run_experiment --transport tcp --listen 0.0.0.0:9000 \
//               --channel-workers 2 ...
//   machine B:  worker --connect a.example:9000
//   machine C:  worker --connect a.example:9000
//
// The worker mirrors the coordinator's federation from the spec blob it
// receives at join time (same dataset synthesis, same algorithm), so the
// only bytes on the wire are the channel envelopes — and results stay
// bit-identical to a local loopback run.
#include <exception>
#include <iostream>
#include <string>

#include "fl/worker.h"
#include "util/parse.h"

namespace {

void print_usage() {
  std::cout
      << "usage: worker --connect host:port [options]\n\n"
         "Joins a transport=tcp coordinator and serves federated client\n"
         "exchanges (and sweep-sharded whole runs) until the coordinator\n"
         "shuts it down.\n\n"
         "  --connect host:port   coordinator address (required)\n"
         "  --reconnect N         consecutive failed joins before giving up [5]\n"
         "  --rpc-timeout-ms MS   handshake/reply send deadline; 0 = forever [120000]\n"
         "  --max-exchanges N     drop the connection after N exchanges (failure\n"
         "                        injection for straggler tests); 0 = unlimited [0]\n"
         "  --quiet               suppress progress lines\n"
         "  --help                print this reference\n";
}

}  // namespace

int main(int argc, char** argv) {
  subfed::WorkerOptions options;
  options.echo = true;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      print_usage();
      return 0;
    }
    if (flag == "--quiet") {
      options.echo = false;
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "worker: flag " << flag << " expects a value (see --help)\n";
      return 2;
    }
    const std::string value = argv[++i];
    try {
      if (flag == "--connect") {
        options.connect = value;
      } else if (flag == "--reconnect") {
        options.reconnect = subfed::parse_uint64_strict("reconnect", value);
      } else if (flag == "--rpc-timeout-ms") {
        options.rpc_timeout_ms = subfed::parse_uint64_strict("rpc-timeout-ms", value);
      } else if (flag == "--max-exchanges") {
        options.max_exchanges = subfed::parse_uint64_strict("max-exchanges", value);
      } else {
        std::cerr << "worker: unknown flag " << flag << " (see --help)\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "worker: " << e.what() << "\n";
      return 2;
    }
  }

  try {
    const subfed::WorkerStats stats = subfed::run_worker(options);
    if (options.echo) {
      std::cerr << "[worker] done: " << stats.exchanges << " exchanges, " << stats.runs
                << " runs over " << stats.sessions << " sessions"
                << (stats.shutdown ? " (clean shutdown)" : "") << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "worker: " << e.what() << "\n";
    return 1;
  }
}
