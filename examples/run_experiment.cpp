// Flag-driven experiment runner — the "do your own sweep" entry point.
//
//   ./examples/run_experiment --dataset cifar10 --algo subfedavg_hy \
//       --clients 24 --rounds 20 --sample 0.3 --target 0.7 --seed 3
//
// Flags map 1:1 onto ExperimentSpec (run with --help for the full reference
// and the list of registered algorithms). The finished run emits a JSON
// result file (default run_result.json, --out to change, --out "" to skip)
// holding the spec, the accuracy curve, and the up/down byte totals, and
// prints the spec's key=value form so any run can be re-issued exactly.
#include <cstdio>
#include <string>

#include "fl/experiment.h"
#include "metrics/stats.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/table.h"

using namespace subfed;

namespace {

/// Streams evaluation checkpoints as the run progresses (long sweeps would
/// otherwise be silent until the end).
class ProgressObserver final : public RoundObserver {
 public:
  explicit ProgressObserver(std::size_t rounds) : rounds_(rounds) {}

  void on_eval(std::size_t round, double avg_accuracy) override {
    std::printf("round %zu/%zu: avg personalized accuracy %s\n", round, rounds_,
                format_percent(avg_accuracy).c_str());
    std::fflush(stdout);
  }

 private:
  std::size_t rounds_;
};

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);

  ExperimentSpec spec;
  spec.out = "run_result.json";
  try {
    spec.parse_args(argc, argv);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (spec.help_requested) {
    std::printf("usage: run_experiment [--key value ...]\n\n%s",
                ExperimentSpec::help_text().c_str());
    return 0;
  }

  try {
    ProgressObserver progress(spec.rounds);
    const ExecutedRun run = execute_experiment(spec, &progress);
    const RunResult& result = run.result;
    const Summary s = summarize(result.final_per_client);

    std::printf("%s on %s (%s partition): %zu clients, %zu rounds\n",
                run.algorithm_name.c_str(), spec.dataset.c_str(), spec.partition.c_str(),
                spec.clients, spec.rounds);
    std::printf("final: avg %s (min %s, max %s, stddev %.2fpp)\n",
                format_percent(result.final_avg_accuracy).c_str(),
                format_percent(s.min).c_str(), format_percent(s.max).c_str(),
                100.0 * s.stddev);
    std::printf("communication: %s up, %s down",
                format_bytes(static_cast<double>(result.up_bytes)).c_str(),
                format_bytes(static_cast<double>(result.down_bytes)).c_str());
    if (result.dropped_clients > 0) {
      std::printf("; %zu client-dropouts, %zu skipped rounds", result.dropped_clients,
                  result.skipped_rounds);
    }
    std::printf("\n");
    if (run.metrics.count("unstructured_pruned") != 0) {
      std::printf("avg pruned: %s unstructured",
                  format_percent(run.metrics.at("unstructured_pruned"), 1).c_str());
      if (run.metrics.count("structured_pruned") != 0) {
        std::printf(", %s channels",
                    format_percent(run.metrics.at("structured_pruned"), 1).c_str());
      }
      std::printf("\n");
    }
    if (spec.checkpoint_every > 0) {
      std::printf("checkpoints every %zu rounds at %s\n", spec.checkpoint_every,
                  spec.resolved_checkpoint_path().c_str());
    }
    if (!spec.out.empty()) {
      std::printf("result written to %s\n", spec.out.c_str());
    }
    std::printf("\n# reproduce with --key value flags, or keep as a spec file:\n%s",
                spec.to_kv().c_str());
  } catch (const CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
