// Flag-driven experiment runner — the "do your own sweep" entry point.
//
//   ./examples/run_experiment --dataset cifar10 --algo subfedavg_hy \
//       --clients 24 --rounds 20 --sample 0.3 --target 0.7 --seed 3
//
// Flags (all optional):
//   --dataset   mnist | emnist | cifar10 | cifar100        [mnist]
//   --algo      standalone | fedavg | fedprox | lgfedavg |
//               mtl | subfedavg_un | subfedavg_hy          [subfedavg_un]
//   --partition shards | dirichlet                         [shards]
//   --alpha     Dirichlet concentration                    [0.5]
//   --clients --shard --rounds --sample --epochs --seed
//   --target    pruning target (Sub-FedAvg variants)       [0.5]
//   --step      per-round prune rate (0 = adaptive)        [0]
//   --dropout   per-round client dropout probability       [0]
//   --eval-every                                            [0 = final only]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "fl/driver.h"
#include "fl/fedavg.h"
#include "fl/fedmtl.h"
#include "fl/lg_fedavg.h"
#include "fl/standalone.h"
#include "fl/subfedavg.h"
#include "metrics/stats.h"
#include "util/logging.h"
#include "util/table.h"

using namespace subfed;

namespace {

struct Flags {
  std::string dataset = "mnist";
  std::string algo = "subfedavg_un";
  std::string partition = "shards";
  double alpha = 0.5;
  std::size_t clients = 16;
  std::size_t shard = 40;
  std::size_t rounds = 12;
  double sample = 0.4;
  std::size_t epochs = 3;
  std::uint64_t seed = 1;
  double target = 0.5;
  double step = 0.0;
  double dropout = 0.0;
  std::size_t eval_every = 0;
};

bool parse_flags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const char* value = argv[i + 1];
    if (key == "--dataset") flags.dataset = value;
    else if (key == "--algo") flags.algo = value;
    else if (key == "--partition") flags.partition = value;
    else if (key == "--alpha") flags.alpha = std::strtod(value, nullptr);
    else if (key == "--clients") flags.clients = std::strtoul(value, nullptr, 10);
    else if (key == "--shard") flags.shard = std::strtoul(value, nullptr, 10);
    else if (key == "--rounds") flags.rounds = std::strtoul(value, nullptr, 10);
    else if (key == "--sample") flags.sample = std::strtod(value, nullptr);
    else if (key == "--epochs") flags.epochs = std::strtoul(value, nullptr, 10);
    else if (key == "--seed") flags.seed = std::strtoul(value, nullptr, 10);
    else if (key == "--target") flags.target = std::strtod(value, nullptr);
    else if (key == "--step") flags.step = std::strtod(value, nullptr);
    else if (key == "--dropout") flags.dropout = std::strtod(value, nullptr);
    else if (key == "--eval-every") flags.eval_every = std::strtoul(value, nullptr, 10);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", key.c_str());
      return false;
    }
  }
  return true;
}

double default_step(const Flags& flags) {
  if (flags.step > 0.0) return flags.step;
  const double participations =
      std::max(2.0, static_cast<double>(flags.rounds) * flags.sample * 0.7);
  return 1.0 - std::pow(1.0 - flags.target, 1.0 / participations);
}

std::unique_ptr<FederatedAlgorithm> make_algorithm(const Flags& flags,
                                                   const FlContext& ctx) {
  if (flags.algo == "standalone") return std::make_unique<Standalone>(ctx);
  if (flags.algo == "fedavg") return std::make_unique<FedAvg>(ctx);
  if (flags.algo == "fedprox") return std::make_unique<FedProx>(ctx, 0.1);
  if (flags.algo == "lgfedavg") return std::make_unique<LgFedAvg>(ctx);
  if (flags.algo == "mtl") return std::make_unique<FedMtl>(ctx, 0.1);
  if (flags.algo == "subfedavg_un" || flags.algo == "subfedavg_hy") {
    SubFedAvgConfig config;
    config.hybrid = flags.algo == "subfedavg_hy";
    const double step = default_step(flags);
    config.unstructured = {0.5, flags.target, 1e-4, step};
    config.structured = {0.5, std::min(0.5, flags.target), 0.05, step};
    return std::make_unique<SubFedAvg>(ctx, config);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  Flags flags;
  if (!parse_flags(argc, argv, flags)) return 1;

  const DatasetSpec spec = DatasetSpec::by_name(flags.dataset);
  FederatedDataConfig data_config;
  data_config.partition = {flags.clients, 2, flags.shard,
                           flags.partition == "dirichlet" ? PartitionKind::kDirichlet
                                                          : PartitionKind::kShards,
                           flags.alpha};
  data_config.test_per_class = 16;
  data_config.seed = flags.seed;
  FederatedData data(spec, data_config);

  FlContext ctx;
  ctx.data = &data;
  ctx.spec = spec.channels == 3 ? ModelSpec::lenet5(spec.num_classes)
                                : ModelSpec::cnn5(spec.num_classes);
  ctx.train = {flags.epochs, 10};
  ctx.seed = flags.seed;

  std::unique_ptr<FederatedAlgorithm> algorithm = make_algorithm(flags, ctx);
  if (algorithm == nullptr) {
    std::fprintf(stderr, "unknown --algo '%s'\n", flags.algo.c_str());
    return 1;
  }

  DriverConfig driver;
  driver.rounds = flags.rounds;
  driver.sample_rate = flags.sample;
  driver.eval_every = flags.eval_every;
  driver.seed = flags.seed;
  driver.dropout_prob = flags.dropout;

  const RunResult result = run_federation(*algorithm, driver);
  const Summary s = summarize(result.final_per_client);

  std::printf("%s on %s (%s partition): %zu clients, %zu rounds\n",
              algorithm->name().c_str(), spec.name.c_str(), flags.partition.c_str(),
              flags.clients, flags.rounds);
  if (!result.curve.empty() && result.curve.size() > 1) {
    TablePrinter curve({"round", "avg accuracy"});
    for (const RoundPoint& p : result.curve) {
      curve.add_row({std::to_string(p.round), format_percent(p.avg_accuracy)});
    }
    std::printf("%s", curve.to_string().c_str());
  }
  std::printf("final: avg %s (min %s, max %s, stddev %.2fpp)\n",
              format_percent(result.final_avg_accuracy).c_str(),
              format_percent(s.min).c_str(), format_percent(s.max).c_str(),
              100.0 * s.stddev);
  std::printf("communication: %s up, %s down",
              format_bytes(static_cast<double>(result.up_bytes)).c_str(),
              format_bytes(static_cast<double>(result.down_bytes)).c_str());
  if (result.dropped_clients > 0) {
    std::printf("; %zu client-dropouts, %zu skipped rounds", result.dropped_clients,
                result.skipped_rounds);
  }
  std::printf("\n");
  if (auto* sub = dynamic_cast<SubFedAvg*>(algorithm.get())) {
    std::printf("avg pruned: %s unstructured",
                format_percent(sub->average_unstructured_pruned(), 1).c_str());
    if (sub->hybrid()) {
      std::printf(", %s channels",
                  format_percent(sub->average_structured_pruned(), 1).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
