// Sweep API quickstart: the programmatic version of the `sweep` tool.
//
// Declares a 2-algorithm × 2-seed grid over a small MNIST federation, shards
// it across a 2-worker pool, and aggregates the per-run results into one
// mean ± std table — the same three calls (expand / run_sweep /
// aggregate_records) the paper-table benches are built on.
//
//   ./sweep_quickstart
#include <cstdio>

#include "fl/sweep.h"
#include "util/logging.h"

using namespace subfed;

int main() {
  set_log_level(LogLevel::kWarn);

  SweepDescription description;
  description.base.dataset = "mnist";
  description.base.clients = 8;
  description.base.shard = 24;
  description.base.rounds = 4;
  description.base.epochs = 1;
  description.base.sample = 0.5;
  description.add_axis("algo=fedavg,subfedavg_un");
  description.add_replicas(2);  // seed axis: base.seed, base.seed + 1

  const std::vector<SweepRun> runs = description.expand();
  std::printf("expanded %zu runs:\n", runs.size());
  for (const SweepRun& run : runs) std::printf("  %s\n", run.name.c_str());

  SweepOptions options;
  options.jobs = 2;
  options.out_dir = "";  // keep results in memory; set a directory for JSONs
  const SweepSummary summary = run_sweep(runs, options);
  std::printf("%zu ok, %zu failed on %zu workers in %.1fs\n", summary.num_ok(),
              summary.num_failed(), summary.workers, summary.seconds);

  std::vector<SweepRecord> records;
  for (const SweepRunOutcome& outcome : summary.outcomes) {
    if (outcome.ok) records.push_back(record_from_outcome(outcome));
  }

  AggregateOptions aggregate;
  aggregate.group_by = {"algo"};
  aggregate.metrics = {"accuracy", "comm", "unstructured_pruned"};
  const std::vector<AggregateRow> rows = aggregate_records(records, aggregate);
  std::printf("\n%s", render_table(aggregation_table(rows, aggregate), "ascii").c_str());
  return summary.num_failed() == 0 ? 0 : 1;
}
