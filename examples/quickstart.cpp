// Quickstart: a minimal Sub-FedAvg (Un) federation on the synthetic MNIST
// surrogate, configured entirely through an ExperimentSpec. Eight non-IID
// clients, a handful of rounds, then the personalized accuracy and
// communication footprint.
//
//   ./examples/quickstart [rounds]
#include <cstdio>
#include <cstdlib>

#include "fl/experiment.h"
#include "fl/subfedavg.h"
#include "util/table.h"

using namespace subfed;

int main(int argc, char** argv) {
  // 1. Describe the experiment: 8 clients with 2 shards of 60 examples each
  //    (pathological non-IID), Sub-FedAvg (Un) pruning 10% of remaining
  //    weights per round toward a 50% target.
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.algo = "subfedavg_un";
  spec.clients = 8;
  spec.shard = 60;
  spec.test_per_class = 40;
  spec.rounds = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  spec.sample = 0.5;
  spec.eval_every = 2;
  spec.epochs = 5;
  spec.seed = 7;
  spec.target = 0.5;
  spec.step = 0.1;

  // 2. Materialize the pieces: data, context, algorithm (via the registry).
  const FederatedData data(spec.dataset_spec(), spec.data_config());
  const FlContext ctx = spec.make_context(data);
  auto algorithm = spec.make_algorithm(ctx);

  // 3. Run the federation.
  const RunResult result = run_federation(*algorithm, spec.driver_config());

  // 4. Report.
  auto& sub = dynamic_cast<SubFedAvg&>(*algorithm);
  TablePrinter table({"client", "labels", "pruned %", "personalized acc"});
  for (std::size_t k = 0; k < data.num_clients(); ++k) {
    std::string labels;
    for (const auto label : data.client(k).labels_present) {
      if (!labels.empty()) labels += ',';
      labels += std::to_string(label);
    }
    table.add_row({std::to_string(k), labels,
                   format_percent(sub.client(k).unstructured_pruned()),
                   format_percent(result.final_per_client[k])});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("average personalized accuracy: %s\n",
              format_percent(result.final_avg_accuracy).c_str());
  std::printf("communication: %s up, %s down\n",
              format_bytes(static_cast<double>(result.up_bytes)).c_str(),
              format_bytes(static_cast<double>(result.down_bytes)).c_str());
  return 0;
}
