// Quickstart: a minimal Sub-FedAvg (Un) federation on the synthetic MNIST
// surrogate. Eight non-IID clients, a handful of rounds, then the
// personalized accuracy and communication footprint.
//
//   ./examples/quickstart [rounds]
#include <cstdio>
#include <cstdlib>

#include "data/client_data.h"
#include "fl/driver.h"
#include "fl/subfedavg.h"
#include "util/table.h"

using namespace subfed;

int main(int argc, char** argv) {
  const std::size_t rounds = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

  // 1. Build a small non-IID federation: 8 clients, 2 shards of 60 each.
  FederatedDataConfig data_config;
  data_config.partition = {/*num_clients=*/8, /*shards_per_client=*/2, /*shard_size=*/60};
  data_config.seed = 7;
  FederatedData data(DatasetSpec::mnist(), data_config);

  // 2. Configure Sub-FedAvg (Un): prune 10% of remaining weights per round
  //    toward a 50% target, gated on validation accuracy and mask stability.
  FlContext ctx;
  ctx.data = &data;
  ctx.spec = ModelSpec::cnn5(data.spec().num_classes);
  ctx.seed = 7;

  SubFedAvgConfig config;
  config.unstructured = {/*acc_threshold=*/0.5, /*target_rate=*/0.5,
                         /*epsilon=*/1e-4, /*step_rate=*/0.1};
  SubFedAvg algorithm(ctx, config);

  // 3. Run the federation.
  DriverConfig driver;
  driver.rounds = rounds;
  driver.sample_rate = 0.5;
  driver.eval_every = 2;
  driver.seed = 7;
  const RunResult result = run_federation(algorithm, driver);

  // 4. Report.
  TablePrinter table({"client", "labels", "pruned %", "personalized acc"});
  for (std::size_t k = 0; k < data.num_clients(); ++k) {
    std::string labels;
    for (const auto label : data.client(k).labels_present) {
      if (!labels.empty()) labels += ',';
      labels += std::to_string(label);
    }
    table.add_row({std::to_string(k), labels,
                   format_percent(algorithm.client(k).unstructured_pruned()),
                   format_percent(result.final_per_client[k])});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("average personalized accuracy: %s\n",
              format_percent(result.final_avg_accuracy).c_str());
  std::printf("communication: %s up, %s down\n",
              format_bytes(static_cast<double>(result.up_bytes)).c_str(),
              format_bytes(static_cast<double>(result.down_bytes)).c_str());
  return 0;
}
