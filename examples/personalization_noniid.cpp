// The paper's core personalization story (Remark-2), runnable end to end:
// under pathological non-IID data, a single FedAvg global model underperforms
// even local-only training, while Sub-FedAvg's personalized subnetworks beat
// both — and cost less to communicate.
//
//   ./examples/personalization_noniid [dataset] [rounds] [noise]
//     dataset: mnist | emnist | cifar10 | cifar100   (default mnist)
//     rounds:  communication rounds                  (default 12)
//     noise:   pixel-noise stddev override           (default: dataset value)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fl/driver.h"
#include "fl/registry.h"
#include "metrics/stats.h"
#include "util/logging.h"
#include "util/table.h"

using namespace subfed;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const std::string dataset = argc > 1 ? argv[1] : "mnist";
  const std::size_t rounds = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;

  DatasetSpec spec = DatasetSpec::by_name(dataset);
  if (argc > 3) spec.noise = std::strtof(argv[3], nullptr);

  FederatedDataConfig data_config;
  data_config.partition = {/*num_clients=*/12, /*shards_per_client=*/2, /*shard_size=*/40};
  data_config.test_per_class = 16;
  data_config.seed = 3;
  FederatedData data(spec, data_config);

  FlContext ctx;
  ctx.data = &data;
  ctx.spec = spec.channels == 3 ? ModelSpec::lenet5(spec.num_classes)
                                : ModelSpec::cnn5(spec.num_classes);
  ctx.train = {/*epochs=*/3, /*batch=*/10};
  ctx.seed = 3;

  DriverConfig driver;
  driver.rounds = rounds;
  driver.sample_rate = 0.4;
  driver.seed = 3;

  TablePrinter table(
      {"Algorithm", "Avg acc", "Min acc", "Max acc", "Comm (up+down)"});
  auto report = [&](const std::string& name, FederatedAlgorithm& alg) {
    const RunResult result = run_federation(alg, driver);
    const Summary s = summarize(result.final_per_client);
    table.add_row({name, format_percent(result.final_avg_accuracy),
                   format_percent(s.min), format_percent(s.max),
                   result.total_bytes() == 0
                       ? "0"
                       : format_bytes(static_cast<double>(result.total_bytes()))});
    return result.final_avg_accuracy;
  };

  std::printf("dataset=%s noise=%.2f clients=12 shard=40 rounds=%zu\n",
              spec.name.c_str(), spec.noise, rounds);

  auto standalone = registry().create("standalone", ctx);
  const double acc_standalone = report("Standalone", *standalone);

  auto fedavg = registry().create("fedavg", ctx);
  const double acc_fedavg = report("FedAvg", *fedavg);

  auto subfedavg = registry().create("subfedavg_un", ctx,
                                     AlgoParams{}
                                         .set_double("acc_threshold", 0.4)
                                         .set_double("target", 0.5)
                                         .set_double("step", 0.2));
  const double acc_sub = report("Sub-FedAvg (Un)", *subfedavg);

  std::printf("%s\n", table.to_string().c_str());
  std::printf("federation gain over standalone: %+.2f pp\n",
              100.0 * (acc_sub - acc_standalone));
  std::printf("personalization gain over FedAvg: %+.2f pp\n",
              100.0 * (acc_sub - acc_fedavg));
  return 0;
}
