// The Client Subnetwork Observation (paper §3.1): clients with overlapping
// labels converge to similar subnetworks — without ever exchanging data or
// label information. This example trains a Sub-FedAvg federation, then prints
// the pairwise mask-overlap (Jaccard) matrix alongside the label overlap so
// the correspondence is visible.
//
//   ./examples/partner_discovery [rounds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fl/driver.h"
#include "fl/registry.h"
#include "fl/subfedavg.h"
#include "metrics/stats.h"
#include "util/logging.h"
#include "util/table.h"

using namespace subfed;

namespace {

bool labels_overlap(const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b) {
  for (const auto x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const std::size_t rounds = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 14;

  // Few clients and few classes so label collisions are frequent and the
  // matrix is small enough to read.
  DatasetSpec spec = DatasetSpec::mnist();
  FederatedDataConfig data_config;
  data_config.partition = {/*num_clients=*/8, /*shards_per_client=*/2, /*shard_size=*/40};
  data_config.test_per_class = 12;
  data_config.seed = 5;
  FederatedData data(spec, data_config);

  FlContext ctx;
  ctx.data = &data;
  ctx.spec = ModelSpec::cnn5(spec.num_classes);
  ctx.train = {/*epochs=*/3, /*batch=*/10};
  ctx.seed = 5;

  auto algorithm = registry().create("subfedavg_un", ctx,
                                     AlgoParams{}
                                         .set_double("acc_threshold", 0.4)
                                         .set_double("target", 0.6)
                                         .set_double("step", 0.2));
  auto& alg = dynamic_cast<SubFedAvg&>(*algorithm);

  DriverConfig driver;
  driver.rounds = rounds;
  driver.sample_rate = 0.75;
  driver.seed = 5;
  run_federation(alg, driver);

  // Pairwise Jaccard overlap of kept-weight sets.
  std::vector<std::string> header{"client (labels)"};
  for (std::size_t k = 0; k < data.num_clients(); ++k) {
    header.push_back("c" + std::to_string(k));
  }
  TablePrinter table(header);
  for (std::size_t a = 0; a < data.num_clients(); ++a) {
    std::string labels;
    for (const auto l : data.client(a).labels_present) {
      if (!labels.empty()) labels += ',';
      labels += std::to_string(l);
    }
    std::vector<std::string> row{"c" + std::to_string(a) + " (" + labels + ")"};
    for (std::size_t b = 0; b < data.num_clients(); ++b) {
      if (a == b) {
        row.push_back("-");
        continue;
      }
      const double jac = ModelMask::jaccard_overlap(alg.client(a).weight_mask(),
                                                    alg.client(b).weight_mask());
      const bool partner = labels_overlap(data.client(a).labels_present,
                                          data.client(b).labels_present);
      row.push_back(format_float(jac, 3) + (partner ? "*" : " "));
    }
    table.add_row(row);
  }
  std::printf("pairwise subnetwork overlap (Jaccard of kept weights); '*' marks "
              "label-overlapping pairs\n%s\n",
              table.to_string().c_str());

  // Summary: mean overlap among label-partners vs disjoint pairs.
  double partner_sum = 0.0, disjoint_sum = 0.0;
  std::size_t partner_n = 0, disjoint_n = 0;
  for (std::size_t a = 0; a < data.num_clients(); ++a) {
    for (std::size_t b = a + 1; b < data.num_clients(); ++b) {
      const double jac = ModelMask::jaccard_overlap(alg.client(a).weight_mask(),
                                                    alg.client(b).weight_mask());
      if (labels_overlap(data.client(a).labels_present, data.client(b).labels_present)) {
        partner_sum += jac;
        ++partner_n;
      } else {
        disjoint_sum += jac;
        ++disjoint_n;
      }
    }
  }
  if (partner_n > 0 && disjoint_n > 0) {
    std::printf("mean overlap — label partners: %.4f (%zu pairs), disjoint: %.4f (%zu pairs)\n",
                partner_sum / partner_n, partner_n, disjoint_sum / disjoint_n, disjoint_n);
  }
  return 0;
}
