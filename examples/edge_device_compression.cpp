// Edge-device deployment story (paper §3, §4.2.3): hybrid pruning produces a
// compressed personalized model — fewer conv FLOPs (inference speedup), fewer
// parameters (memory), and cheaper uplink under the asymmetric edge link the
// paper motivates (~1 MB/s up vs faster down).
//
//   ./examples/edge_device_compression [dataset] [rounds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "comm/ledger.h"
#include "comm/serialize.h"
#include "fl/driver.h"
#include "fl/registry.h"
#include "fl/subfedavg.h"
#include "metrics/flops.h"
#include "util/logging.h"
#include "util/table.h"

using namespace subfed;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const std::string dataset = argc > 1 ? argv[1] : "cifar10";
  const std::size_t rounds = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;

  const DatasetSpec spec = DatasetSpec::by_name(dataset);
  FederatedDataConfig data_config;
  data_config.partition = {/*num_clients=*/10, /*shards_per_client=*/2, /*shard_size=*/40};
  data_config.test_per_class = 12;
  data_config.seed = 11;
  FederatedData data(spec, data_config);

  FlContext ctx;
  ctx.data = &data;
  ctx.spec = spec.channels == 3 ? ModelSpec::lenet5(spec.num_classes)
                                : ModelSpec::cnn5(spec.num_classes);
  ctx.train = {/*epochs=*/3, /*batch=*/10};
  ctx.seed = 11;

  auto algorithm = registry().create("subfedavg_hy", ctx,
                                     AlgoParams{}
                                         .set_double("acc_threshold", 0.4)
                                         .set_double("target", 0.7)
                                         .set_double("step", 0.25)
                                         .set_double("channel_target", 0.5)
                                         .set_double("channel_epsilon", 0.02));
  auto& alg = dynamic_cast<SubFedAvg&>(*algorithm);

  DriverConfig driver;
  driver.rounds = rounds;
  driver.sample_rate = 0.5;
  driver.seed = 11;
  const RunResult result = run_federation(alg, driver);

  std::printf("Sub-FedAvg (Hy) on %s — %zu rounds, avg personalized accuracy %s\n\n",
              spec.name.c_str(), rounds, format_percent(result.final_avg_accuracy).c_str());

  // Per-device deployment report.
  Model reference = ctx.spec.build();
  const double dense_flops = static_cast<double>(dense_conv_flops(reference));
  const std::size_t dense_params = dense_parameter_count(reference);

  TablePrinter table({"device", "accuracy", "conv FLOPs", "params kept", "model size",
                      "upload/round", "uplink time @1MB/s"});
  LinkModel link;  // 1 MB/s up, 8 MB/s down
  for (std::size_t k = 0; k < data.num_clients(); ++k) {
    SubFedAvgClient& client = alg.client(k);
    const ReductionReport r = alg.client_reduction(k);

    Model model = ctx.spec.build();
    model.load_state(client.personal_state());
    ModelMask mask = client.combined_mask();
    const std::size_t upload = payload_bytes(client.personal_state(), &mask);
    const std::size_t kept = kept_parameter_count(model, mask);

    table.add_row({
        "client-" + std::to_string(k),
        format_percent(result.final_per_client[k]),
        format_float(dense_flops * (1.0 - r.flop_reduction) / 1e6, 2) + "M (" +
            format_float(r.flop_speedup, 2) + "x)",
        std::to_string(kept) + "/" + std::to_string(dense_params),
        format_bytes(static_cast<double>(kept) * 4),
        format_bytes(static_cast<double>(upload)),
        format_float(link.transfer_seconds(upload, 0), 2) + "s",
    });
  }
  std::printf("%s\n", table.to_string().c_str());

  const double dense_upload_s =
      link.transfer_seconds(payload_bytes(reference.state(), nullptr), 0);
  std::printf("dense model upload would take %.2fs per round per device\n", dense_upload_s);
  std::printf("federation totals: %s up / %s down over %zu rounds\n",
              format_bytes(static_cast<double>(result.up_bytes)).c_str(),
              format_bytes(static_cast<double>(result.down_bytes)).c_str(), rounds);
  return 0;
}
