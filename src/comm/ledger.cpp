#include "comm/ledger.h"

#include "util/check.h"

namespace subfed {

void CommLedger::record(std::size_t round, std::size_t up_bytes, std::size_t down_bytes) {
  if (round >= per_round_.size()) per_round_.resize(round + 1);
  per_round_[round].up += up_bytes;
  per_round_[round].down += down_bytes;
  total_up_ += up_bytes;
  total_down_ += down_bytes;
}

std::uint64_t CommLedger::round_up(std::size_t round) const {
  SUBFEDAVG_CHECK(round < per_round_.size(), "round " << round << " not recorded");
  return per_round_[round].up;
}

std::uint64_t CommLedger::round_down(std::size_t round) const {
  SUBFEDAVG_CHECK(round < per_round_.size(), "round " << round << " not recorded");
  return per_round_[round].down;
}

std::uint64_t closed_form_cost_bytes(std::size_t rounds, std::size_t clients_per_round,
                                     std::size_t exchanged_params,
                                     std::size_t mask_entries) {
  const std::uint64_t per_direction =
      static_cast<std::uint64_t>(exchanged_params) * 4 + (mask_entries + 7) / 8;
  return static_cast<std::uint64_t>(rounds) * clients_per_round * per_direction * 2;
}

}  // namespace subfed
