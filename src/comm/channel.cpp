#include "comm/channel.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "comm/quantize.h"
#include "comm/serialize.h"
#include "fl/robust.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace subfed {

namespace {

constexpr std::uint32_t kEnvelopeMagic = 0x53464556;  // "SFEV"
constexpr std::uint32_t kQuantMagic = 0x53465150;     // "SFQP"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_f32(std::vector<std::uint8_t>& out, float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, 4);
  put_u32(out, bits);
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    SUBFEDAVG_CHECK(pos_ < bytes_.size(), "truncated message");
    return bytes_[pos_++];
  }

  std::uint16_t u16() {
    SUBFEDAVG_CHECK(pos_ + 2 <= bytes_.size(), "truncated message");
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    SUBFEDAVG_CHECK(pos_ + 4 <= bytes_.size(), "truncated message");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = u32();
    v |= static_cast<std::uint64_t>(u32()) << 32;
    return v;
  }

  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }

  std::string str(std::size_t n) {
    SUBFEDAVG_CHECK(pos_ + n <= bytes_.size(), "truncated message");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> raw(std::size_t n) {
    SUBFEDAVG_CHECK(pos_ + n <= bytes_.size(), "truncated message");
    std::span<const std::uint8_t> s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Writes the kept values of one tensor at the codec's precision.
void put_values(std::vector<std::uint8_t>& out, const Tensor& tensor, const Tensor* mask,
                QuantCodec quantize) {
  if (quantize == QuantCodec::kFp16) {
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      if (mask == nullptr || (*mask)[i] != 0.0f) {
        const std::uint16_t half = fp32_to_fp16(tensor[i]);
        out.push_back(static_cast<std::uint8_t>(half & 0xFF));
        out.push_back(static_cast<std::uint8_t>(half >> 8));
      }
    }
    return;
  }
  // kInt8: per-tensor affine over the transmitted values, scale first.
  float peak = 0.0f;
  for (std::size_t i = 0; i < tensor.numel(); ++i) {
    if (mask == nullptr || (*mask)[i] != 0.0f) {
      peak = std::max(peak, std::fabs(tensor[i]));
    }
  }
  const float scale = peak > 0.0f ? peak / 127.0f : 1.0f;
  put_f32(out, scale);
  for (std::size_t i = 0; i < tensor.numel(); ++i) {
    if (mask == nullptr || (*mask)[i] != 0.0f) {
      const float q = std::round(tensor[i] / scale);
      const auto clamped = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
      out.push_back(static_cast<std::uint8_t>(clamped));
    }
  }
}

}  // namespace

QuantCodec parse_quant_codec(const std::string& name) {
  if (name == "none") return QuantCodec::kNone;
  if (name == "fp16") return QuantCodec::kFp16;
  if (name == "int8") return QuantCodec::kInt8;
  SUBFEDAVG_CHECK(false, "unknown quantize codec '" << name << "' (none | fp16 | int8)");
  return QuantCodec::kNone;
}

std::string quant_codec_name(QuantCodec codec) {
  switch (codec) {
    case QuantCodec::kNone: return "none";
    case QuantCodec::kFp16: return "fp16";
    case QuantCodec::kInt8: return "int8";
  }
  return "none";
}

// ---------------------------------------------------------------------------
// Envelopes

std::vector<std::uint8_t> encode_envelope(const Envelope& envelope) {
  std::vector<std::uint8_t> out;
  put_u32(out, kEnvelopeMagic);
  out.push_back(static_cast<std::uint8_t>(envelope.kind));
  out.push_back(static_cast<std::uint8_t>(envelope.quantize));
  out.push_back(envelope.delta ? 1 : 0);
  out.push_back(0);  // reserved
  put_u32(out, envelope.round);
  put_u32(out, envelope.client);
  put_u64(out, envelope.num_examples);
  put_u32(out, static_cast<std::uint32_t>(envelope.sections.size()));
  for (const std::vector<std::uint8_t>& section : envelope.sections) {
    put_u32(out, static_cast<std::uint32_t>(section.size()));
    out.insert(out.end(), section.begin(), section.end());
  }
  return out;
}

Envelope decode_envelope(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  SUBFEDAVG_CHECK(reader.u32() == kEnvelopeMagic, "bad envelope magic");
  Envelope envelope;
  const std::uint8_t kind = reader.u8();
  SUBFEDAVG_CHECK(kind == static_cast<std::uint8_t>(MessageKind::kBroadcast) ||
                      kind == static_cast<std::uint8_t>(MessageKind::kClientUpdate),
                  "bad envelope kind " << int{kind});
  envelope.kind = static_cast<MessageKind>(kind);
  const std::uint8_t quant = reader.u8();
  SUBFEDAVG_CHECK(quant <= static_cast<std::uint8_t>(QuantCodec::kInt8),
                  "bad envelope quant tag " << int{quant});
  envelope.quantize = static_cast<QuantCodec>(quant);
  envelope.delta = reader.u8() != 0;
  reader.u8();  // reserved
  envelope.round = reader.u32();
  envelope.client = reader.u32();
  envelope.num_examples = reader.u64();
  const std::uint32_t sections = reader.u32();
  envelope.sections.reserve(sections);
  for (std::uint32_t s = 0; s < sections; ++s) {
    const std::uint32_t size = reader.u32();
    const std::span<const std::uint8_t> raw = reader.raw(size);
    envelope.sections.emplace_back(raw.begin(), raw.end());
  }
  SUBFEDAVG_CHECK(reader.done(), "trailing bytes in envelope");
  return envelope;
}

// ---------------------------------------------------------------------------
// Payload codec

namespace {

std::vector<std::uint8_t> encode_payload_impl(const StateDict& state, const ModelMask* mask,
                                              QuantCodec quantize) {
  if (quantize == QuantCodec::kNone) return encode_update(state, mask);

  std::vector<std::uint8_t> out;
  put_u32(out, kQuantMagic);
  out.push_back(static_cast<std::uint8_t>(quantize));
  put_u32(out, static_cast<std::uint32_t>(state.size()));
  for (const auto& [name, tensor] : state) {
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    put_u32(out, static_cast<std::uint32_t>(tensor.shape().rank()));
    for (const std::size_t d : tensor.shape().dims()) {
      put_u32(out, static_cast<std::uint32_t>(d));
    }
    const Tensor* m = mask != nullptr ? mask->find(name) : nullptr;
    out.push_back(m != nullptr ? 1 : 0);
    if (m != nullptr) {
      SUBFEDAVG_CHECK(m->shape() == tensor.shape(), "mask shape for " << name);
      std::uint8_t byte = 0;
      int bit = 0;
      for (std::size_t i = 0; i < tensor.numel(); ++i) {
        if ((*m)[i] != 0.0f) byte |= static_cast<std::uint8_t>(1 << bit);
        if (++bit == 8) {
          out.push_back(byte);
          byte = 0;
          bit = 0;
        }
      }
      if (bit != 0) out.push_back(byte);
    }
    put_values(out, tensor, m, quantize);
  }
  return out;
}

StateDict decode_payload_impl(std::span<const std::uint8_t> bytes, ModelMask* mask_out) {
  SUBFEDAVG_CHECK(bytes.size() >= 4, "truncated payload");
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  if (magic != kQuantMagic) return decode_update(bytes, mask_out);

  Reader reader(bytes);
  reader.u32();  // magic
  const std::uint8_t quant_tag = reader.u8();
  SUBFEDAVG_CHECK(quant_tag == static_cast<std::uint8_t>(QuantCodec::kFp16) ||
                      quant_tag == static_cast<std::uint8_t>(QuantCodec::kInt8),
                  "bad payload quant tag " << int{quant_tag});
  const QuantCodec quantize = static_cast<QuantCodec>(quant_tag);
  const std::uint32_t entries = reader.u32();

  StateDict state;
  for (std::uint32_t e = 0; e < entries; ++e) {
    const std::uint32_t name_len = reader.u32();
    std::string name = reader.str(name_len);
    const std::uint32_t rank = reader.u32();
    std::vector<std::size_t> dims(rank);
    for (auto& d : dims) d = reader.u32();
    Tensor tensor{Shape(dims)};

    const bool masked = reader.u8() != 0;
    std::vector<bool> keep;
    if (masked) {
      keep.assign(tensor.numel(), false);
      for (std::size_t i = 0; i < tensor.numel(); i += 8) {
        const std::uint8_t byte = reader.u8();
        for (int b = 0; b < 8 && i + b < tensor.numel(); ++b) {
          keep[i + b] = (byte >> b) & 1;
        }
      }
    }
    const float scale = quantize == QuantCodec::kInt8 ? reader.f32() : 1.0f;
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      if (masked && !keep[i]) continue;
      if (quantize == QuantCodec::kFp16) {
        tensor[i] = fp16_to_fp32(reader.u16());
      } else {
        tensor[i] = static_cast<float>(static_cast<std::int8_t>(reader.u8())) * scale;
      }
    }
    if (masked && mask_out != nullptr) {
      Tensor bits{tensor.shape()};
      for (std::size_t i = 0; i < bits.numel(); ++i) bits[i] = keep[i] ? 1.0f : 0.0f;
      mask_out->set(name, std::move(bits));
    }
    state.add(std::move(name), std::move(tensor));
  }
  SUBFEDAVG_CHECK(reader.done(), "trailing bytes in payload");
  return state;
}

}  // namespace

std::vector<std::uint8_t> encode_payload(const StateDict& state, const ModelMask* mask,
                                         QuantCodec quantize) {
  const telemetry::StopWatch watch;
  std::vector<std::uint8_t> out = encode_payload_impl(state, mask, quantize);
  if (watch.armed()) {
    static telemetry::Counter& encodes = telemetry::counter("codec.encodes");
    static telemetry::Counter& bytes = telemetry::counter("codec.encoded_bytes");
    static telemetry::Timer& time = telemetry::timer("codec.encode_seconds");
    encodes.add();
    bytes.add(out.size());
    time.add_seconds(watch.seconds());
  }
  return out;
}

StateDict decode_payload(std::span<const std::uint8_t> bytes, ModelMask* mask_out) {
  const telemetry::StopWatch watch;
  StateDict state = decode_payload_impl(bytes, mask_out);
  if (watch.armed()) {
    static telemetry::Counter& decodes = telemetry::counter("codec.decodes");
    static telemetry::Counter& decoded = telemetry::counter("codec.decoded_bytes");
    static telemetry::Timer& time = telemetry::timer("codec.decode_seconds");
    decodes.add();
    decoded.add(bytes.size());
    time.add_seconds(watch.seconds());
  }
  return state;
}

namespace {

void combine_reference(StateDict& state, const ModelMask* mask, const StateDict& reference,
                       float sign) {
  for (auto& [name, tensor] : state) {
    const Tensor* ref = reference.find(name);
    if (ref == nullptr) continue;
    SUBFEDAVG_CHECK(ref->numel() == tensor.numel(), "delta reference shape for " << name);
    const Tensor* m = mask != nullptr ? mask->find(name) : nullptr;
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      if (m == nullptr || (*m)[i] != 0.0f) tensor[i] += sign * (*ref)[i];
    }
  }
}

}  // namespace

void subtract_reference(StateDict& state, const ModelMask* mask, const StateDict& reference) {
  combine_reference(state, mask, reference, -1.0f);
}

void apply_reference(StateDict& state, const ModelMask* mask, const StateDict& reference) {
  combine_reference(state, mask, reference, 1.0f);
}

namespace {

/// Encodes one client's reply envelope through the codec stack. Both the
/// coordinator's in-process handler and a remote worker's serve_remote_exchange
/// go through here, so a tcp reply is byte-identical to the loopback reply the
/// same computation would have produced. `charged_bytes`, when non-null,
/// receives the charged (section-0) size.
std::vector<std::uint8_t> encode_client_reply(const ChannelConfig& config, std::uint32_t round,
                                              std::uint32_t client, const StateDict& received,
                                              ClientResult result,
                                              std::size_t* charged_bytes) {
  Envelope reply;
  reply.kind = MessageKind::kClientUpdate;
  reply.round = round;
  reply.client = client;
  reply.num_examples = result.update.num_examples;
  reply.quantize = config.quantize;
  reply.delta = config.delta;
  const ModelMask* mask = result.update.mask.empty() ? nullptr : &result.update.mask;
  StateDict upload = std::move(result.update.state);
  if (config.delta) subtract_reference(upload, mask, received);
  reply.sections.push_back(encode_payload(upload, mask, config.quantize));
  if (charged_bytes != nullptr) *charged_bytes = reply.sections[0].size();
  for (const StateDict& section : result.state) {
    reply.sections.push_back(encode_update(section, nullptr));
  }
  return encode_envelope(reply);
}

}  // namespace

// ---------------------------------------------------------------------------
// Channel

bool has_channel_transport(const std::string& name) {
  return name == "memory" || has_transport(name);
}

Channel::Channel(ChannelConfig config, CommLedger* ledger)
    : config_(std::move(config)), ledger_(ledger) {
  SUBFEDAVG_CHECK(ledger_ != nullptr, "channel needs a ledger");
  SUBFEDAVG_CHECK(has_channel_transport(config_.transport),
                  "unknown transport '" << config_.transport
                                        << "' (memory | loopback | subprocess | tcp)");
  if (config_.transport == "memory") {
    // The fast path never materializes payloads, so codecs that change the
    // bytes (or the values) cannot be honored there.
    SUBFEDAVG_CHECK(config_.quantize == QuantCodec::kNone && !config_.delta,
                    "codec=" << (config_.delta ? "delta" : "sparse") << " quantize="
                             << quant_codec_name(config_.quantize)
                             << " require transport=loopback or subprocess");
  } else {
    TransportOptions options;
    options.workers = config_.workers;
    options.listen = config_.listen;
    options.rpc_timeout_ms = config_.rpc_timeout_ms;
    options.setup = config_.remote_setup;
    // Buffered aggregation can absorb a dead worker as an evicted straggler;
    // a synchronous round cannot, so there a death must fail the round.
    options.tolerate_failures = config_.buffered;
    transport_ = make_transport(config_.transport, options);
  }
  SUBFEDAVG_CHECK(config_.staleness_decay >= 0.0,
                  "staleness decay " << config_.staleness_decay << " must be >= 0");
}

Channel::~Channel() = default;

double Channel::compression_ratio() const noexcept {
  if (charged_bytes_ == 0) return 0.0;
  return static_cast<double>(dense_reference_bytes_) / static_cast<double>(charged_bytes_);
}

double Channel::arrival_seconds(const ClientRoundCost& cost) const {
  if (fleet_ != nullptr) return client_seconds(*fleet_, cost);
  const LinkModel nominal;
  return nominal.transfer_seconds(cost.up_bytes, cost.down_bytes) + cost.compute_seconds;
}

std::vector<std::uint8_t> Channel::serve_remote_exchange(
    std::span<const std::uint8_t> request_bytes, const RemoteClientFn& fn) const {
  const Envelope request = decode_envelope(request_bytes);
  SUBFEDAVG_CHECK(request.kind == MessageKind::kBroadcast && !request.sections.empty(),
                  "worker expected a broadcast envelope");
  const StateDict received = decode_payload(request.sections[0]);
  ClientJob job;
  job.client = request.client;
  job.broadcast = &received;  // post-codec view; remote jobs have no pre-codec state
  for (std::size_t s = 1; s < request.sections.size(); ++s) {
    job.state.push_back(decode_update(request.sections[s]));
  }
  ClientResult result = fn(request.round, job, received);
  return encode_client_reply(config_, request.round, request.client, received,
                             std::move(result), nullptr);
}

std::vector<Exchange> Channel::run_round(std::size_t round, std::span<const ClientJob> jobs,
                                         const ClientFn& client_fn) {
  for (const ClientJob& job : jobs) {
    SUBFEDAVG_CHECK(job.broadcast != nullptr, "client job needs a broadcast state");
  }
  std::vector<Exchange> fresh = transport_ == nullptr
                                    ? run_in_memory(round, jobs, client_fn)
                                    : run_materialized(round, jobs, client_fn);
  if (!config_.buffered) return fresh;
  return close_buffered_round(round, std::move(fresh), last_fresh_arrival_order_);
}

std::vector<Exchange> Channel::close_buffered_round(
    std::size_t round, std::vector<Exchange> fresh,
    std::span<const std::size_t> arrival_order) {
  // Fresh replies in arrival order: as reported by the transport, or — on the
  // memory fast path, which materializes nothing — by each client's simulated
  // link+compute completion time (ties broken by sampled position).
  // A genuine transport order may legitimately be SHORTER than `fresh` — tcp
  // reports a dead worker's exchange by omission and those entries are
  // evicted below, never re-sorted back in.
  std::vector<std::size_t> order(arrival_order.begin(), arrival_order.end());
  if (last_order_simulated_) {
    order.resize(fresh.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return last_arrival_seconds_[a] < last_arrival_seconds_[b];
    });
  }

  // The buffer fills with parked updates first — they arrived while earlier
  // rounds were already closed, so they sit at the head of the queue — oldest
  // origin round (highest staleness) first. Updates parked past max_staleness
  // are evicted instead of delivered.
  std::stable_sort(parked_.begin(), parked_.end(),
                   [](const ParkedUpdate& a, const ParkedUpdate& b) {
                     return a.origin_round != b.origin_round
                                ? a.origin_round < b.origin_round
                                : a.arrival_rank < b.arrival_rank;
                   });
  // Note a delivery-order invariant the algorithms rely on for their
  // side-band client mirrors: deliverable stale updates are consumed before
  // ANY fresh reply (a filled buffer leaves fresh_slots == 0), within the
  // stale queue oldest origin goes first, and same-round stale precede fresh
  // in the output — so a client's mirror sections always install oldest to
  // newest and a parked mirror can never roll back a newer one.
  const std::size_t k = config_.buffer_k == 0 ? fresh.size() : config_.buffer_k;
  std::vector<Exchange> out;
  std::vector<ParkedUpdate> still_parked;
  double close_seconds = 0.0;  // delivered stragglers still in flight floor it
  for (ParkedUpdate& parked : parked_) {
    const std::size_t staleness =
        round > parked.origin_round ? round - parked.origin_round : 1;
    if (staleness > config_.max_staleness) {
      ++evicted_updates_;
      continue;
    }
    if (out.size() >= k) {
      still_parked.push_back(std::move(parked));  // stays parked, ages on
      continue;
    }
    parked.exchange.staleness = staleness;
    parked.exchange.update.weight =
        std::pow(1.0 + static_cast<double>(staleness), -config_.staleness_decay);
    ++stale_updates_;
    close_seconds = std::max(close_seconds, parked.remaining_seconds);
    out.push_back(std::move(parked.exchange));
  }

  // Remaining buffer slots go to this round's replies in arrival order; the
  // round closes at the last counted arrival (the K-th — sync's max when the
  // buffer is big enough for everyone) and the overflow parks for the next
  // round, carrying its still-in-flight overhang. In-round exchanges return
  // in sampled order, so a full buffer with nothing parked is bit-identical
  // to sync mode.
  const std::size_t fresh_slots = out.size() < k ? k - out.size() : 0;
  const std::size_t take = std::min(fresh_slots, fresh.size());
  std::vector<bool> in_round(fresh.size(), false);
  for (std::size_t r = 0; r < take; ++r) {
    in_round[order[r]] = true;
    close_seconds = std::max(close_seconds, last_arrival_seconds_[order[r]]);
  }
  for (ParkedUpdate& parked : still_parked) {
    parked.remaining_seconds = std::max(0.0, parked.remaining_seconds - close_seconds);
  }
  parked_ = std::move(still_parked);
  for (std::size_t r = take; r < order.size(); ++r) {
    const double overhang =
        std::max(0.0, last_arrival_seconds_[order[r]] - close_seconds);
    parked_.push_back({std::move(fresh[order[r]]), round, r, overhang});
  }
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (in_round[i]) out.push_back(std::move(fresh[i]));
  }
  last_round_seconds_ = close_seconds;
  return out;
}

std::vector<Exchange> Channel::run_in_memory(std::size_t round,
                                             std::span<const ClientJob> jobs,
                                             const ClientFn& client_fn) {
  std::vector<Exchange> exchanges(jobs.size());
  std::vector<std::size_t> up_bytes(jobs.size(), 0), down_bytes(jobs.size(), 0);
  std::vector<std::size_t> dense_scalars(jobs.size(), 0);

  // The fast path fuses broadcast, compute, and collect into one pass, so the
  // whole thing reports as the exchange phase (encode/collect stay zero).
  const telemetry::StopWatch exchange_watch;
  ThreadPool::global().parallel_for(jobs.size(), [&](std::size_t i) {
    const ClientJob& job = jobs[i];
    down_bytes[i] = job.payload_copies * payload_bytes(*job.broadcast, job.mask);
    ClientResult result = client_fn(job, *job.broadcast, /*detached=*/false);
    const ModelMask* mask = result.update.mask.empty() ? nullptr : &result.update.mask;
    up_bytes[i] = result.payload_copies * payload_bytes(result.update.state, mask);
    dense_scalars[i] = job.payload_copies * job.broadcast->numel() +
                       result.payload_copies * result.update.state.numel();
    exchanges[i].client = job.client;
    exchanges[i].update = std::move(result.update);
    exchanges[i].state = std::move(result.state);
  });
  last_phase_seconds_ = {};
  last_phase_seconds_.exchange = exchange_watch.seconds();
  telemetry::record_span("transport_exchange", exchange_watch);

  last_fresh_arrival_order_.clear();  // no transport: simulated arrival order
  last_order_simulated_ = true;
  last_failed_.clear();
  finish_round(round, jobs, exchanges, up_bytes, down_bytes, dense_scalars);
  return exchanges;
}

std::vector<Exchange> Channel::run_materialized(std::size_t round,
                                                std::span<const ClientJob> jobs,
                                                const ClientFn& client_fn) {
  // Server side, downlink: one Broadcast envelope per sampled client. With
  // the delta codec the server also keeps its own decode of each payload —
  // the broadcast AS RECEIVED — so the uplink pass can add the reference back
  // without re-decoding the request envelope.
  std::vector<std::vector<std::uint8_t>> requests(jobs.size());
  std::vector<std::size_t> down_bytes(jobs.size(), 0);
  std::vector<StateDict> as_received(config_.delta ? jobs.size() : 0);
  const telemetry::StopWatch encode_watch;
  ThreadPool::global().parallel_for(jobs.size(), [&](std::size_t i) {
    Envelope broadcast;
    broadcast.kind = MessageKind::kBroadcast;
    broadcast.round = static_cast<std::uint32_t>(round);
    broadcast.client = static_cast<std::uint32_t>(jobs[i].client);
    broadcast.quantize = config_.quantize;
    broadcast.delta = config_.delta;
    broadcast.sections.push_back(
        encode_payload(*jobs[i].broadcast, jobs[i].mask, config_.quantize));
    down_bytes[i] = broadcast.sections[0].size();
    if (config_.delta) as_received[i] = decode_payload(broadcast.sections[0]);
    // Side-band client state DOWN (remote workers only; local transports get
    // empty job.state, so their request bytes are unchanged). Never charged.
    for (const StateDict& section : jobs[i].state) {
      broadcast.sections.push_back(encode_update(section, nullptr));
    }
    requests[i] = encode_envelope(broadcast);
  });
  last_phase_seconds_ = {};
  last_phase_seconds_.encode = encode_watch.seconds();
  telemetry::record_span("broadcast_encode", encode_watch);

  // Client side (possibly in a forked worker): decode the broadcast, compute,
  // encode the update through the same codec stack. `up_payload` records each
  // reply's charged (section-0) size for the arrival model — written by the
  // in-process loopback handler only; subprocess children write their copy,
  // which is fine because that transport ignores the model anyway.
  const bool detached = transport_->detached();
  std::vector<std::size_t> up_payload(jobs.size(), 0);
  const TransportHandler handler = [&](std::span<const std::uint8_t> request_bytes,
                                       std::size_t i) {
    const Envelope request = decode_envelope(request_bytes);
    SUBFEDAVG_CHECK(request.kind == MessageKind::kBroadcast && !request.sections.empty(),
                    "client expected a broadcast envelope");
    const StateDict received = decode_payload(request.sections[0]);
    ClientResult result = client_fn(jobs[i], received, detached);
    return encode_client_reply(config_, request.round, request.client, received,
                               std::move(result), &up_payload[i]);
  };

  // Replies come back in arrival order: genuine pipe order from subprocess
  // workers, the LinkFleet's simulated delivery order from loopback — the
  // order a buffered round closes on. The model deliberately uses the same
  // charged bytes as finish_round's per-exchange times (not the framed
  // envelope sizes), so buffer membership and round duration always agree.
  const ArrivalModel arrival = [&](std::size_t i, std::size_t /*request_bytes*/,
                                   std::size_t /*response_bytes*/) {
    return arrival_seconds({jobs[i].client, up_payload[i], down_bytes[i], 0.0});
  };
  const telemetry::StopWatch exchange_watch;
  std::vector<TransportArrival> landed = transport_->collect(requests, handler, arrival);
  last_phase_seconds_.exchange = exchange_watch.seconds();
  telemetry::record_span("transport_exchange", exchange_watch);

  const telemetry::StopWatch collect_watch;
  std::vector<std::vector<std::uint8_t>> responses(jobs.size());
  last_fresh_arrival_order_.clear();
  last_fresh_arrival_order_.reserve(landed.size());
  last_order_simulated_ = false;
  last_failed_.assign(jobs.size(), 0);
  std::size_t delivered = 0;
  std::string first_error;
  for (TransportArrival& reply : landed) {
    if (!reply.ok) {
      // A tolerant (tcp, buffered) transport reports a dead or timed-out
      // worker as a failed arrival: its update is evicted like any straggler
      // — the round still closes at buffer_k genuine arrivals.
      SUBFEDAVG_CHECK(config_.buffered, reply.error);  // sync transports throw instead
      last_failed_[reply.index] = 1;
      ++evicted_updates_;
      if (first_error.empty()) first_error = reply.error;
      continue;
    }
    ++delivered;
    last_fresh_arrival_order_.push_back(reply.index);
    responses[reply.index] = std::move(reply.response);
  }
  SUBFEDAVG_CHECK(delivered > 0 || jobs.empty(),
                  "every exchange in the round failed: " << first_error);

  // Server side, uplink: decode every reply; the delta codec adds back the
  // broadcast as the client received it (both ends derived that view from the
  // identical request bytes).
  std::vector<Exchange> exchanges(jobs.size());
  std::vector<std::size_t> up_bytes(jobs.size(), 0);
  std::vector<std::size_t> dense_scalars(jobs.size(), 0);
  ThreadPool::global().parallel_for(jobs.size(), [&](std::size_t i) {
    if (last_failed_[i] != 0) {
      // Evicted straggler: nothing arrived. The placeholder keeps indices
      // aligned; close_buffered_round never delivers it (it is absent from
      // the arrival order).
      exchanges[i].client = jobs[i].client;
      return;
    }
    const Envelope reply = decode_envelope(responses[i]);
    SUBFEDAVG_CHECK(reply.kind == MessageKind::kClientUpdate && !reply.sections.empty(),
                    "server expected a client-update envelope");
    SUBFEDAVG_CHECK(reply.client == jobs[i].client,
                    "update for client " << reply.client << " on client " << jobs[i].client
                                         << "'s exchange");
    Exchange& exchange = exchanges[i];
    exchange.client = jobs[i].client;
    up_bytes[i] = reply.sections[0].size();
    exchange.update.num_examples = static_cast<std::size_t>(reply.num_examples);
    exchange.update.state = decode_payload(reply.sections[0], &exchange.update.mask);
    if (config_.delta) {
      const ModelMask* mask = exchange.update.mask.empty() ? nullptr : &exchange.update.mask;
      apply_reference(exchange.update.state, mask, as_received[i]);
    }
    for (std::size_t s = 1; s < reply.sections.size(); ++s) {
      exchange.state.push_back(decode_update(reply.sections[s]));
    }
    dense_scalars[i] = jobs[i].broadcast->numel() + exchange.update.state.numel();
  });

  finish_round(round, jobs, exchanges, up_bytes, down_bytes, dense_scalars);
  last_phase_seconds_.collect = collect_watch.seconds();
  telemetry::record_span("collect", collect_watch);
  return exchanges;
}

void Channel::finish_round(std::size_t round, std::span<const ClientJob> jobs,
                           std::vector<Exchange>& exchanges,
                           std::span<const std::size_t> up_bytes,
                           std::span<const std::size_t> down_bytes,
                           std::span<const std::size_t> dense_scalars) {
  last_round_costs_.clear();
  last_round_costs_.reserve(jobs.size());
  last_arrival_seconds_.assign(jobs.size(), 0.0);
  last_round_seconds_ = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ledger_->record(round, up_bytes[i], down_bytes[i]);
    charged_bytes_ += up_bytes[i] + down_bytes[i];
    dense_reference_bytes_ += 4 * dense_scalars[i];
    last_round_costs_.push_back({jobs[i].client, up_bytes[i], down_bytes[i], 0.0});
    // Simulated completion time from the bytes the ledger charges: the
    // synchronous round lasts as long as the slowest; a buffered close
    // overwrites this with the K-th arrival.
    last_arrival_seconds_[i] = arrival_seconds(last_round_costs_.back());
    last_round_seconds_ = std::max(last_round_seconds_, last_arrival_seconds_[i]);
  }

  // Corruption is injected here — after the server decoded the upload, in
  // sampled order, from a per-round stream — so every transport and codec
  // yields the same corrupted cohort as the legacy in-memory path.
  if (config_.corrupt_fraction > 0.0) {
    Rng corrupt_rng = Rng(config_.seed).split("corrupt-updates", round);
    const CorruptionConfig corruption{1.0, static_cast<float>(config_.corrupt_noise)};
    for (std::size_t i = 0; i < exchanges.size(); ++i) {
      // Draw for every exchange — failed ones included — so the corrupted
      // cohort stays aligned across transports; an evicted exchange is never
      // actually corrupted (nothing arrived to corrupt).
      if (!corrupt_rng.bernoulli(config_.corrupt_fraction)) continue;
      if (!last_failed_.empty() && last_failed_[i] != 0) continue;
      corrupt_update(exchanges[i].update, corruption, corrupt_rng);
      exchanges[i].corrupted = true;
      ++corrupted_updates_;
    }
  }
}

}  // namespace subfed
