// Communication accounting.
//
// The ledger accumulates the actual uplink/downlink bytes exchanged each
// round (as charged by comm/serialize.h's payload model). The closed-form
// helper reproduces the paper's formula Cost = R × B × |W| × 2 (§4.2.2),
// where |W| is parameters exchanged per client per round and the factor 2 is
// up+down. The link model converts bytes to time under the asymmetric edge
// bandwidths the paper motivates (≈1 MB/s uplink).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace subfed {

class CommLedger {
 public:
  /// Records one client's traffic within a round.
  void record(std::size_t round, std::size_t up_bytes, std::size_t down_bytes);

  std::size_t rounds() const noexcept { return per_round_.size(); }
  std::uint64_t total_up() const noexcept { return total_up_; }
  std::uint64_t total_down() const noexcept { return total_down_; }
  std::uint64_t total() const noexcept { return total_up_ + total_down_; }

  std::uint64_t round_up(std::size_t round) const;
  std::uint64_t round_down(std::size_t round) const;

 private:
  struct RoundBytes {
    std::uint64_t up = 0;
    std::uint64_t down = 0;
  };
  std::vector<RoundBytes> per_round_;
  std::uint64_t total_up_ = 0;
  std::uint64_t total_down_ = 0;
};

/// Paper's closed-form cost (bytes): rounds × clients/round × |W|·32bit × 2,
/// plus 1 bit per mask entry per direction when mask_entries > 0.
std::uint64_t closed_form_cost_bytes(std::size_t rounds, std::size_t clients_per_round,
                                     std::size_t exchanged_params,
                                     std::size_t mask_entries = 0);

/// Asymmetric link (defaults: 1 MB/s up, 8 MB/s down, per the paper's edge
/// scenario). Converts ledger totals into transfer seconds.
struct LinkModel {
  double uplink_bytes_per_s = 1.0 * 1024 * 1024;
  double downlink_bytes_per_s = 8.0 * 1024 * 1024;

  double transfer_seconds(std::uint64_t up_bytes, std::uint64_t down_bytes) const {
    return static_cast<double>(up_bytes) / uplink_bytes_per_s +
           static_cast<double>(down_bytes) / downlink_bytes_per_s;
  }
};

}  // namespace subfed
