#include "comm/transport.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <numeric>
#include <thread>

#include "net/io.h"
#include "net/socket.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace subfed {

std::vector<TransportArrival> Transport::collect(
    std::span<const std::vector<std::uint8_t>> requests, const TransportHandler& handler,
    const ArrivalModel& arrival) {
  // In-process default: compute every reply, then deliver them in the order
  // the arrival model says they would have landed.
  std::vector<std::vector<std::uint8_t>> responses = round_trip(requests, handler);
  std::vector<std::size_t> order(responses.size());
  std::iota(order.begin(), order.end(), 0);
  if (arrival != nullptr) {
    std::vector<double> seconds(responses.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      seconds[i] = arrival(i, requests[i].size(), responses[i].size());
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return seconds[a] < seconds[b]; });
  }
  std::vector<TransportArrival> arrivals;
  arrivals.reserve(responses.size());
  for (const std::size_t i : order) arrivals.push_back({i, std::move(responses[i]), true, {}});
  return arrivals;
}

namespace {

// ---------------------------------------------------------------------------
// loopback

class LoopbackTransport final : public Transport {
 public:
  std::string name() const override { return "loopback"; }
  bool detached() const noexcept override { return false; }

  std::vector<std::vector<std::uint8_t>> round_trip(
      std::span<const std::vector<std::uint8_t>> requests,
      const TransportHandler& handler) override {
    std::vector<std::vector<std::uint8_t>> responses(requests.size());
    ThreadPool::global().parallel_for(requests.size(), [&](std::size_t i) {
      responses[i] = handler(requests[i], i);
    });
    return responses;
  }
};

// ---------------------------------------------------------------------------
// subprocess
//
// Pipe framing and fd readiness come from src/net/ (the same helpers the tcp
// transport uses on sockets): u32-little-endian length prefix, then the
// bytes, reaped with net::wait_readable.

/// Writing to a worker that already died must surface as an error frame, not
/// kill the parent with SIGPIPE. Shared with the tcp transport.
void ignore_sigpipe() {
  static std::once_flag sigpipe_once;
  std::call_once(sigpipe_once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

class SubprocessTransport final : public Transport {
 public:
  explicit SubprocessTransport(std::size_t workers)
      : workers_(workers != 0 ? workers
                              : std::max<std::size_t>(
                                    1, std::thread::hardware_concurrency())) {}

  std::string name() const override { return "subprocess"; }
  bool detached() const noexcept override { return true; }

  std::vector<std::vector<std::uint8_t>> round_trip(
      std::span<const std::vector<std::uint8_t>> requests,
      const TransportHandler& handler) override {
    std::vector<std::vector<std::uint8_t>> responses(requests.size());
    // Waves of at most `workers_` concurrent children. Every child in a wave
    // is forked first (each blocks reading its request pipe), then the parent
    // streams the requests — children start computing as soon as their frame
    // lands — and finally collects the responses as they land. A child that
    // dies before replying (crash, kill, handler _exit) produces a short read
    // and fails only this batch's run.
    for (std::size_t base = 0; base < requests.size(); base += workers_) {
      const std::size_t wave = std::min(workers_, requests.size() - base);
      run_wave(requests.subspan(base, wave), base, handler,
               {responses.data() + base, wave}, nullptr);
    }
    return responses;
  }

  std::vector<TransportArrival> collect(std::span<const std::vector<std::uint8_t>> requests,
                                        const TransportHandler& handler,
                                        const ArrivalModel& arrival) override {
    (void)arrival;  // genuine pipe-arrival order needs no simulation
    std::vector<std::vector<std::uint8_t>> responses(requests.size());
    std::vector<std::size_t> order;
    order.reserve(requests.size());
    for (std::size_t base = 0; base < requests.size(); base += workers_) {
      const std::size_t wave = std::min(workers_, requests.size() - base);
      run_wave(requests.subspan(base, wave), base, handler,
               {responses.data() + base, wave}, &order);
    }
    std::vector<TransportArrival> arrivals;
    arrivals.reserve(order.size());
    for (const std::size_t i : order) arrivals.push_back({i, std::move(responses[i]), true, {}});
    return arrivals;
  }

 private:
  struct Worker {
    pid_t pid = -1;
    int request_fd = -1;   // parent writes
    int response_fd = -1;  // parent reads
  };

  static void close_fd(int& fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  /// `arrival_order`, when non-null, receives the absolute request indices in
  /// the order their response frames started landing on the parent's pipes.
  void run_wave(std::span<const std::vector<std::uint8_t>> requests, std::size_t base,
                const TransportHandler& handler,
                std::span<std::vector<std::uint8_t>> responses,
                std::vector<std::size_t>* arrival_order) {
    ignore_sigpipe();

    std::vector<Worker> workers(requests.size());
    std::string error;

    for (std::size_t i = 0; i < requests.size(); ++i) {
      int request_pipe[2] = {-1, -1};
      int response_pipe[2] = {-1, -1};
      if (::pipe(request_pipe) != 0 || ::pipe(response_pipe) != 0) {
        close_fd(request_pipe[0]);
        close_fd(request_pipe[1]);
        error = "transport: pipe() failed";
        break;
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        for (int fd : {request_pipe[0], request_pipe[1], response_pipe[0],
                       response_pipe[1]}) {
          ::close(fd);
        }
        error = "transport: fork() failed";
        break;
      }
      if (pid == 0) {
        // Worker: single-threaded from here on (fork keeps only this thread);
        // route any nested parallel_for inline instead of at the parent's
        // pool, whose worker threads do not exist in this process.
        ThreadPool::enter_forked_child();
        ::close(request_pipe[1]);
        ::close(response_pipe[0]);
        std::vector<std::uint8_t> request;
        int status = 0;
        if (net::read_frame(request_pipe[0], &request)) {
          try {
            const std::vector<std::uint8_t> response = handler(request, base + i);
            if (!net::write_frame(response_pipe[1], response)) status = 1;
          } catch (...) {
            status = 1;  // parent reports the short read as a worker death
          }
        } else {
          status = 1;
        }
        ::close(request_pipe[0]);
        ::close(response_pipe[1]);
        ::_exit(status);  // skip atexit/static destructors shared with parent
      }
      workers[i].pid = pid;
      workers[i].request_fd = request_pipe[1];
      workers[i].response_fd = response_pipe[0];
      ::close(request_pipe[0]);
      ::close(response_pipe[1]);
    }

    if (error.empty()) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!net::write_frame(workers[i].request_fd, requests[i])) {
          error = "transport: worker " + std::to_string(base + i) +
                  " died before receiving its request";
        }
        close_fd(workers[i].request_fd);  // EOF tells the child no more frames
        if (!error.empty()) break;
      }
    }
    if (error.empty()) {
      // Reap replies as they land: poll every pending response pipe and read
      // whichever becomes readable first. A child writes its whole frame in
      // one go (blocking once the pipe fills), so first-readable is the order
      // rounds actually finished — the arrival order buffered aggregation
      // closes on. A child that died instead presents EOF here and fails the
      // batch with the same short-read diagnosis as before.
      std::vector<bool> pending(requests.size(), true);
      std::size_t remaining = requests.size();
      while (remaining > 0 && error.empty()) {
        std::vector<int> fds;
        std::vector<std::size_t> slot;
        fds.reserve(remaining);
        for (std::size_t i = 0; i < requests.size(); ++i) {
          if (!pending[i]) continue;
          fds.push_back(workers[i].response_fd);
          slot.push_back(i);
        }
        std::vector<std::size_t> ready;
        try {
          ready = net::wait_readable(fds, -1);
        } catch (const std::exception& e) {
          error = std::string("transport: ") + e.what();
          break;
        }
        for (const std::size_t f : ready) {
          const std::size_t i = slot[f];
          if (!net::read_frame(workers[i].response_fd, &responses[i])) {
            error = "transport: worker " + std::to_string(base + i) +
                    " died before replying (crash or kill in client-side work)";
            break;
          }
          pending[i] = false;
          --remaining;
          if (arrival_order != nullptr) arrival_order->push_back(base + i);
        }
      }
    }

    // Close every pipe before reaping: a straggler blocked writing its
    // response sees EPIPE and exits instead of deadlocking the waitpid.
    for (Worker& worker : workers) {
      close_fd(worker.request_fd);
      close_fd(worker.response_fd);
    }
    for (Worker& worker : workers) {
      if (worker.pid > 0) {
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
      }
    }
    SUBFEDAVG_CHECK(error.empty(), error);
  }

  std::size_t workers_;
};

// ---------------------------------------------------------------------------
// tcp
//
// The coordinator side of the remote protocol (src/net/socket.h): bind at
// construction (fail fast), wait for the configured worker fleet on the first
// batch, then keep one exchange in flight per connection, recording replies
// in genuine socket-arrival order. Workers that join late, reconnect, or die
// mid-exchange are absorbed round by round: a dead connection fails only the
// exchange it was serving, and only tolerantly (ok == false) when buffered
// aggregation is there to evict the straggler.

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TransportOptions options)
      : options_(std::move(options)),
        expected_workers_(std::max<std::size_t>(1, options_.workers)),
        listener_(net::parse_host_port(options_.listen)) {
    ignore_sigpipe();
  }

  ~TcpTransport() override {
    for (Conn& c : conns_) {
      if (c.conn.valid()) {
        net::send_frame(c.conn, {net::FrameKind::kShutdown, 0, {}},
                        net::Deadline::after_ms(1000));
      }
    }
  }

  std::string name() const override { return "tcp"; }
  bool detached() const noexcept override { return true; }
  bool remote() const noexcept override { return true; }
  std::string endpoint() const override { return listener_.endpoint(); }
  std::size_t connected_peers() const noexcept override { return live_count(); }
  int accept_fd() const noexcept override { return listener_.fd(); }

  std::size_t admit_pending() override {
    std::size_t admitted = 0;
    while (admit_worker(net::Deadline::after_ms(1))) ++admitted;
    prune_hangups();
    return admitted;
  }

  std::vector<std::vector<std::uint8_t>> round_trip(
      std::span<const std::vector<std::uint8_t>> requests,
      const TransportHandler& handler) override {
    (void)handler;  // exchanges are computed by the remote workers
    std::vector<TransportArrival> arrivals = run_batch(requests, /*tolerate=*/false);
    std::vector<std::vector<std::uint8_t>> responses(requests.size());
    for (TransportArrival& a : arrivals) responses[a.index] = std::move(a.response);
    return responses;
  }

  std::vector<TransportArrival> collect(std::span<const std::vector<std::uint8_t>> requests,
                                        const TransportHandler& handler,
                                        const ArrivalModel& arrival) override {
    (void)handler;  // exchanges are computed by the remote workers
    (void)arrival;  // genuine socket-arrival order needs no simulation
    return run_batch(requests, options_.tolerate_failures);
  }

 private:
  struct Conn {
    net::TcpConn conn;
    bool busy = false;
    std::size_t index = 0;  ///< request in flight (valid while busy)
    net::Deadline deadline;
  };

  net::Deadline exchange_deadline() const {
    return net::Deadline::after_ms(options_.rpc_timeout_ms);
  }

  net::FrameKind request_kind() const {
    return options_.whole_runs ? net::FrameKind::kRunSpec : net::FrameKind::kExchange;
  }
  net::FrameKind reply_kind() const {
    return options_.whole_runs ? net::FrameKind::kRunResult : net::FrameKind::kReply;
  }

  std::size_t live_count() const {
    std::size_t n = 0;
    for (const Conn& c : conns_) n += c.conn.valid() ? 1 : 0;
    return n;
  }

  /// Drops idle connections whose peer hung up. An idle worker never speaks
  /// first, so a readable idle connection can only mean EOF (or protocol
  /// garbage) — either way it is dead weight a participant count must not
  /// include.
  void prune_hangups() {
    std::vector<int> fds;
    std::vector<std::size_t> slot;
    for (std::size_t ci = 0; ci < conns_.size(); ++ci) {
      const Conn& c = conns_[ci];
      if (!c.conn.valid() || c.busy) continue;
      fds.push_back(c.conn.fd());
      slot.push_back(ci);
    }
    if (fds.empty()) return;
    for (const std::size_t f : net::wait_readable(fds, 0)) {
      conns_[slot[f]].conn.close();
    }
    std::erase_if(conns_, [](const Conn& c) { return !c.conn.valid(); });
  }

  /// Accepts one pending connection and handshakes it into the fleet
  /// (recv kHello, send kSetup). False when nothing usable arrived in time.
  bool admit_worker(const net::Deadline& wait) {
    net::TcpConn conn = listener_.accept(wait);
    if (!conn.valid()) return false;
    net::NetFrame hello;
    if (!net::recv_frame(conn, &hello, net::Deadline::after_ms(5000)) ||
        hello.kind != net::FrameKind::kHello) {
      return false;  // not a worker speaking our protocol; drop it
    }
    if (!net::send_frame(conn, {net::FrameKind::kSetup, 0, options_.setup},
                         net::Deadline::after_ms(30000))) {
      return false;
    }
    conns_.push_back({std::move(conn), false, 0, {}});
    return true;
  }

  std::vector<TransportArrival> run_batch(std::span<const std::vector<std::uint8_t>> requests,
                                          bool tolerate) {
    std::vector<TransportArrival> arrivals;
    arrivals.reserve(requests.size());
    if (requests.empty()) return arrivals;

    // First batch: wait for the configured fleet to join. Later batches run
    // with whoever is still connected, plus any reconnects admitted below.
    if (!joined_once_) {
      const net::Deadline join = exchange_deadline();
      while (live_count() < expected_workers_) {
        if (!admit_worker(join) && join.expired()) {
          SUBFEDAVG_CHECK(false, "tcp: only " << live_count() << " of " << expected_workers_
                                              << " workers joined " << listener_.endpoint()
                                              << " within " << options_.rpc_timeout_ms
                                              << " ms (start workers with: worker --connect "
                                              << listener_.endpoint() << ")");
        }
      }
      joined_once_ = true;
    }

    std::deque<std::size_t> queue;
    for (std::size_t i = 0; i < requests.size(); ++i) queue.push_back(i);
    std::size_t unresolved = requests.size();
    std::string sync_error;

    const auto fail_exchange = [&](std::size_t index, const std::string& message) {
      if (tolerate) {
        arrivals.push_back({index, {}, false, message});
      } else if (sync_error.empty()) {
        sync_error = message;
      }
      --unresolved;
    };

    while (unresolved > 0 && sync_error.empty()) {
      // Admit workers that (re)connected while we were busy.
      while (admit_worker(net::Deadline::after_ms(1))) {
      }

      // One exchange in flight per idle connection.
      for (Conn& c : conns_) {
        if (queue.empty()) break;
        if (!c.conn.valid() || c.busy) continue;
        const std::size_t index = queue.front();
        queue.pop_front();
        if (!net::send_frame(c.conn, request_kind(), index, requests[index],
                             exchange_deadline())) {
          c.conn.close();
          queue.push_front(index);  // never acknowledged; try another worker
          continue;
        }
        c.busy = true;
        c.index = index;
        c.deadline = exchange_deadline();
      }

      std::size_t busy = 0;
      for (const Conn& c : conns_) busy += (c.conn.valid() && c.busy) ? 1 : 0;
      if (busy == 0) {
        if (queue.empty()) continue;  // everything resolved this pass
        // Every worker is gone with work left. Give a reconnecting worker one
        // deadline's grace (bounded even with rpc_timeout off — a fleet that
        // fully died must fail the round, never hang it).
        const net::Deadline grace = options_.rpc_timeout_ms > 0 ? exchange_deadline()
                                                                : net::Deadline::after_ms(5000);
        if (live_count() == 0 && !admit_worker(grace)) {
          while (!queue.empty()) {
            fail_exchange(queue.front(), "tcp: no live workers left for exchange " +
                                             std::to_string(queue.front()));
            queue.pop_front();
          }
        }
        continue;
      }

      // Wait for replies (or joins), bounded by the earliest in-flight
      // deadline so a silent worker cannot park the round.
      std::vector<int> fds;
      std::vector<std::size_t> slot;
      int timeout_ms = -1;
      for (std::size_t ci = 0; ci < conns_.size(); ++ci) {
        const Conn& c = conns_[ci];
        if (!c.conn.valid() || !c.busy) continue;
        fds.push_back(c.conn.fd());
        slot.push_back(ci);
        if (!c.deadline.unlimited()) {
          const int left = c.deadline.remaining_ms();
          timeout_ms = timeout_ms < 0 ? left : std::min(timeout_ms, left);
        }
      }
      fds.push_back(listener_.fd());
      slot.push_back(static_cast<std::size_t>(-1));
      const std::vector<std::size_t> ready = net::wait_readable(fds, timeout_ms);

      for (const std::size_t f : ready) {
        const std::size_t ci = slot[f];
        if (ci == static_cast<std::size_t>(-1)) continue;  // join; admitted next pass
        Conn& c = conns_[ci];
        if (!c.conn.valid() || !c.busy) continue;
        net::NetFrame reply;
        if (!net::recv_frame(c.conn, &reply, c.deadline) || reply.tag != c.index ||
            (reply.kind != reply_kind() && reply.kind != net::FrameKind::kError)) {
          c.conn.close();
          c.busy = false;
          fail_exchange(c.index, "tcp: worker serving exchange " + std::to_string(c.index) +
                                     " died before replying");
          continue;
        }
        c.busy = false;
        if (reply.kind == net::FrameKind::kError) {
          // The worker survives — only this exchange failed (handler threw).
          fail_exchange(c.index, "tcp: exchange " + std::to_string(c.index) +
                                     " failed on worker: " +
                                     std::string(reply.payload.begin(), reply.payload.end()));
          continue;
        }
        arrivals.push_back({c.index, std::move(reply.payload), true, {}});
        --unresolved;
      }

      // Evict in-flight exchanges whose deadline passed with no reply.
      for (Conn& c : conns_) {
        if (!c.conn.valid() || !c.busy || !c.deadline.expired()) continue;
        c.conn.close();
        c.busy = false;
        fail_exchange(c.index, "tcp: exchange " + std::to_string(c.index) +
                                   " timed out after " +
                                   std::to_string(options_.rpc_timeout_ms) + " ms");
      }
    }

    std::erase_if(conns_, [](const Conn& c) { return !c.conn.valid(); });

    if (!sync_error.empty()) {
      // Drop every connection: workers reconnect with a fresh handshake, so a
      // stale in-flight reply can never leak into a later round's stream.
      conns_.clear();
      SUBFEDAVG_CHECK(false, sync_error);
    }
    return arrivals;
  }

  TransportOptions options_;
  std::size_t expected_workers_;
  net::TcpListener listener_;
  std::vector<Conn> conns_;
  bool joined_once_ = false;
};

}  // namespace

std::unique_ptr<Transport> make_transport(const std::string& name,
                                          const TransportOptions& options) {
  if (name == "loopback") return std::make_unique<LoopbackTransport>();
  if (name == "subprocess") return std::make_unique<SubprocessTransport>(options.workers);
  if (name == "tcp") {
    SUBFEDAVG_CHECK(!options.listen.empty(),
                    "transport=tcp needs listen=host:port on the coordinator "
                    "(workers join it with: worker --connect <host:port>)");
    return std::make_unique<TcpTransport>(options);
  }
  SUBFEDAVG_CHECK(false,
                  "unknown transport '" << name << "' (loopback | subprocess | tcp)");
  return nullptr;
}

std::unique_ptr<Transport> make_transport(const std::string& name, std::size_t workers) {
  TransportOptions options;
  options.workers = workers;
  return make_transport(name, options);
}

bool has_transport(const std::string& name) {
  return name == "loopback" || name == "subprocess" || name == "tcp";
}

}  // namespace subfed
