#include "comm/transport.h"

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <numeric>
#include <thread>

#include "util/check.h"
#include "util/thread_pool.h"

namespace subfed {

std::vector<TransportArrival> Transport::collect(
    std::span<const std::vector<std::uint8_t>> requests, const TransportHandler& handler,
    const ArrivalModel& arrival) {
  // In-process default: compute every reply, then deliver them in the order
  // the arrival model says they would have landed.
  std::vector<std::vector<std::uint8_t>> responses = round_trip(requests, handler);
  std::vector<std::size_t> order(responses.size());
  std::iota(order.begin(), order.end(), 0);
  if (arrival != nullptr) {
    std::vector<double> seconds(responses.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      seconds[i] = arrival(i, requests[i].size(), responses[i].size());
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return seconds[a] < seconds[b]; });
  }
  std::vector<TransportArrival> arrivals;
  arrivals.reserve(responses.size());
  for (const std::size_t i : order) arrivals.push_back({i, std::move(responses[i])});
  return arrivals;
}

namespace {

// ---------------------------------------------------------------------------
// loopback

class LoopbackTransport final : public Transport {
 public:
  std::string name() const override { return "loopback"; }
  bool detached() const noexcept override { return false; }

  std::vector<std::vector<std::uint8_t>> round_trip(
      std::span<const std::vector<std::uint8_t>> requests,
      const TransportHandler& handler) override {
    std::vector<std::vector<std::uint8_t>> responses(requests.size());
    ThreadPool::global().parallel_for(requests.size(), [&](std::size_t i) {
      responses[i] = handler(requests[i], i);
    });
    return responses;
  }
};

// ---------------------------------------------------------------------------
// subprocess

/// Length-prefixed pipe framing: u32 little-endian byte count, then the bytes.
bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // EOF (dead peer) or error
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_frame(int fd, std::span<const std::uint8_t> bytes) {
  const std::uint32_t size = static_cast<std::uint32_t>(bytes.size());
  return write_all(fd, &size, 4) && write_all(fd, bytes.data(), bytes.size());
}

bool read_frame(int fd, std::vector<std::uint8_t>* out) {
  std::uint32_t size = 0;
  if (!read_all(fd, &size, 4)) return false;
  out->resize(size);
  return read_all(fd, out->data(), size);
}

class SubprocessTransport final : public Transport {
 public:
  explicit SubprocessTransport(std::size_t workers)
      : workers_(workers != 0 ? workers
                              : std::max<std::size_t>(
                                    1, std::thread::hardware_concurrency())) {}

  std::string name() const override { return "subprocess"; }
  bool detached() const noexcept override { return true; }

  std::vector<std::vector<std::uint8_t>> round_trip(
      std::span<const std::vector<std::uint8_t>> requests,
      const TransportHandler& handler) override {
    std::vector<std::vector<std::uint8_t>> responses(requests.size());
    // Waves of at most `workers_` concurrent children. Every child in a wave
    // is forked first (each blocks reading its request pipe), then the parent
    // streams the requests — children start computing as soon as their frame
    // lands — and finally collects the responses as they land. A child that
    // dies before replying (crash, kill, handler _exit) produces a short read
    // and fails only this batch's run.
    for (std::size_t base = 0; base < requests.size(); base += workers_) {
      const std::size_t wave = std::min(workers_, requests.size() - base);
      run_wave(requests.subspan(base, wave), base, handler,
               {responses.data() + base, wave}, nullptr);
    }
    return responses;
  }

  std::vector<TransportArrival> collect(std::span<const std::vector<std::uint8_t>> requests,
                                        const TransportHandler& handler,
                                        const ArrivalModel& arrival) override {
    (void)arrival;  // genuine pipe-arrival order needs no simulation
    std::vector<std::vector<std::uint8_t>> responses(requests.size());
    std::vector<std::size_t> order;
    order.reserve(requests.size());
    for (std::size_t base = 0; base < requests.size(); base += workers_) {
      const std::size_t wave = std::min(workers_, requests.size() - base);
      run_wave(requests.subspan(base, wave), base, handler,
               {responses.data() + base, wave}, &order);
    }
    std::vector<TransportArrival> arrivals;
    arrivals.reserve(order.size());
    for (const std::size_t i : order) arrivals.push_back({i, std::move(responses[i])});
    return arrivals;
  }

 private:
  struct Worker {
    pid_t pid = -1;
    int request_fd = -1;   // parent writes
    int response_fd = -1;  // parent reads
  };

  static void close_fd(int& fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  /// `arrival_order`, when non-null, receives the absolute request indices in
  /// the order their response frames started landing on the parent's pipes.
  void run_wave(std::span<const std::vector<std::uint8_t>> requests, std::size_t base,
                const TransportHandler& handler,
                std::span<std::vector<std::uint8_t>> responses,
                std::vector<std::size_t>* arrival_order) {
    // Writing to a worker that already died must surface as an error frame,
    // not kill the parent with SIGPIPE.
    static std::once_flag sigpipe_once;
    std::call_once(sigpipe_once, [] { ::signal(SIGPIPE, SIG_IGN); });

    std::vector<Worker> workers(requests.size());
    std::string error;

    for (std::size_t i = 0; i < requests.size(); ++i) {
      int request_pipe[2] = {-1, -1};
      int response_pipe[2] = {-1, -1};
      if (::pipe(request_pipe) != 0 || ::pipe(response_pipe) != 0) {
        close_fd(request_pipe[0]);
        close_fd(request_pipe[1]);
        error = "transport: pipe() failed";
        break;
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        for (int fd : {request_pipe[0], request_pipe[1], response_pipe[0],
                       response_pipe[1]}) {
          ::close(fd);
        }
        error = "transport: fork() failed";
        break;
      }
      if (pid == 0) {
        // Worker: single-threaded from here on (fork keeps only this thread);
        // route any nested parallel_for inline instead of at the parent's
        // pool, whose worker threads do not exist in this process.
        ThreadPool::enter_forked_child();
        ::close(request_pipe[1]);
        ::close(response_pipe[0]);
        std::vector<std::uint8_t> request;
        int status = 0;
        if (read_frame(request_pipe[0], &request)) {
          try {
            const std::vector<std::uint8_t> response = handler(request, base + i);
            if (!write_frame(response_pipe[1], response)) status = 1;
          } catch (...) {
            status = 1;  // parent reports the short read as a worker death
          }
        } else {
          status = 1;
        }
        ::close(request_pipe[0]);
        ::close(response_pipe[1]);
        ::_exit(status);  // skip atexit/static destructors shared with parent
      }
      workers[i].pid = pid;
      workers[i].request_fd = request_pipe[1];
      workers[i].response_fd = response_pipe[0];
      ::close(request_pipe[0]);
      ::close(response_pipe[1]);
    }

    if (error.empty()) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!write_frame(workers[i].request_fd, requests[i])) {
          error = "transport: worker " + std::to_string(base + i) +
                  " died before receiving its request";
        }
        close_fd(workers[i].request_fd);  // EOF tells the child no more frames
        if (!error.empty()) break;
      }
    }
    if (error.empty()) {
      // Reap replies as they land: poll every pending response pipe and read
      // whichever becomes readable first. A child writes its whole frame in
      // one go (blocking once the pipe fills), so first-readable is the order
      // rounds actually finished — the arrival order buffered aggregation
      // closes on. A child that died instead presents EOF here and fails the
      // batch with the same short-read diagnosis as before.
      std::vector<bool> pending(requests.size(), true);
      std::size_t remaining = requests.size();
      while (remaining > 0 && error.empty()) {
        std::vector<struct pollfd> fds;
        std::vector<std::size_t> slot;
        fds.reserve(remaining);
        for (std::size_t i = 0; i < requests.size(); ++i) {
          if (!pending[i]) continue;
          fds.push_back({workers[i].response_fd, POLLIN, 0});
          slot.push_back(i);
        }
        int ready = ::poll(fds.data(), fds.size(), -1);
        if (ready < 0) {
          if (errno == EINTR) continue;
          error = "transport: poll() failed";
          break;
        }
        for (std::size_t f = 0; f < fds.size(); ++f) {
          if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
          const std::size_t i = slot[f];
          if (!read_frame(workers[i].response_fd, &responses[i])) {
            error = "transport: worker " + std::to_string(base + i) +
                    " died before replying (crash or kill in client-side work)";
            break;
          }
          pending[i] = false;
          --remaining;
          if (arrival_order != nullptr) arrival_order->push_back(base + i);
        }
      }
    }

    // Close every pipe before reaping: a straggler blocked writing its
    // response sees EPIPE and exits instead of deadlocking the waitpid.
    for (Worker& worker : workers) {
      close_fd(worker.request_fd);
      close_fd(worker.response_fd);
    }
    for (Worker& worker : workers) {
      if (worker.pid > 0) {
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
      }
    }
    SUBFEDAVG_CHECK(error.empty(), error);
  }

  std::size_t workers_;
};

}  // namespace

std::unique_ptr<Transport> make_transport(const std::string& name, std::size_t workers) {
  if (name == "loopback") return std::make_unique<LoopbackTransport>();
  if (name == "subprocess") return std::make_unique<SubprocessTransport>(workers);
  SUBFEDAVG_CHECK(false, "unknown transport '" << name << "' (loopback | subprocess)");
  return nullptr;
}

bool has_transport(const std::string& name) {
  return name == "loopback" || name == "subprocess";
}

}  // namespace subfed
