#include "comm/round_time.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace subfed {

LinkFleet::LinkFleet(std::size_t num_clients, LinkModel base, double spread, Rng rng)
    : num_clients_(num_clients), base_(base), log_spread_(std::log(spread)), rng_(rng) {
  SUBFEDAVG_CHECK(spread >= 1.0, "link spread must be >= 1, got " << spread);
}

ClientLink LinkFleet::link(std::size_t k) const {
  SUBFEDAVG_CHECK(k < num_clients_, "client " << k << " out of " << num_clients_);
  Rng client_rng = rng_.split("link", k);
  // Log-uniform slowdown in [1/spread, 1]: most mass near nominal speed,
  // a long tail of slow devices.
  const double factor = std::exp(-client_rng.uniform() * log_spread_);
  return {base_.uplink_bytes_per_s * factor, base_.downlink_bytes_per_s * factor};
}

double client_seconds(const LinkFleet& fleet, const ClientRoundCost& cost) {
  const ClientLink link = fleet.link(cost.client);
  return static_cast<double>(cost.down_bytes) / link.down_bytes_per_s +
         cost.compute_seconds +
         static_cast<double>(cost.up_bytes) / link.up_bytes_per_s;
}

double round_seconds(const LinkFleet& fleet, const std::vector<ClientRoundCost>& costs) {
  double slowest = 0.0;
  for (const ClientRoundCost& cost : costs) {
    slowest = std::max(slowest, client_seconds(fleet, cost));
  }
  return slowest;
}

double kth_arrival_seconds(const LinkFleet& fleet, const std::vector<ClientRoundCost>& costs,
                           std::size_t k) {
  if (costs.empty()) return 0.0;
  if (k == 0 || k >= costs.size()) return round_seconds(fleet, costs);
  std::vector<double> times;
  times.reserve(costs.size());
  for (const ClientRoundCost& cost : costs) times.push_back(client_seconds(fleet, cost));
  std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   times.end());
  return times[k - 1];
}

}  // namespace subfed
