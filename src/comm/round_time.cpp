#include "comm/round_time.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace subfed {

LinkFleet::LinkFleet(std::size_t num_clients, LinkModel base, double spread, Rng rng) {
  SUBFEDAVG_CHECK(spread >= 1.0, "link spread must be >= 1, got " << spread);
  links_.reserve(num_clients);
  for (std::size_t k = 0; k < num_clients; ++k) {
    Rng client_rng = rng.split("link", k);
    // Log-uniform slowdown in [1/spread, 1]: most mass near nominal speed,
    // a long tail of slow devices.
    const double factor = std::exp(-client_rng.uniform() * std::log(spread));
    links_.push_back({base.uplink_bytes_per_s * factor,
                      base.downlink_bytes_per_s * factor});
  }
}

const ClientLink& LinkFleet::link(std::size_t k) const {
  SUBFEDAVG_CHECK(k < links_.size(), "client " << k << " out of " << links_.size());
  return links_[k];
}

double round_seconds(const LinkFleet& fleet, const std::vector<ClientRoundCost>& costs) {
  double slowest = 0.0;
  for (const ClientRoundCost& cost : costs) {
    const ClientLink& link = fleet.link(cost.client);
    const double t = static_cast<double>(cost.down_bytes) / link.down_bytes_per_s +
                     cost.compute_seconds +
                     static_cast<double>(cost.up_bytes) / link.up_bytes_per_s;
    slowest = std::max(slowest, t);
  }
  return slowest;
}

}  // namespace subfed
