#include "comm/serialize.h"

#include <cstring>

#include "util/check.h"

namespace subfed {

namespace {

constexpr std::uint32_t kMagic = 0x53464156;  // "SFAV"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_f32(std::vector<std::uint8_t>& out, float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, 4);
  put_u32(out, bits);
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    SUBFEDAVG_CHECK(pos_ + 4 <= bytes_.size(), "truncated update");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }

  std::uint8_t u8() {
    SUBFEDAVG_CHECK(pos_ < bytes_.size(), "truncated update");
    return bytes_[pos_++];
  }

  std::string str(std::size_t n) {
    SUBFEDAVG_CHECK(pos_ + n <= bytes_.size(), "truncated update");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode_update(const StateDict& state, const ModelMask* mask) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(state.size()));

  for (const auto& [name, tensor] : state) {
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    put_u32(out, static_cast<std::uint32_t>(tensor.shape().rank()));
    for (const std::size_t d : tensor.shape().dims()) {
      put_u32(out, static_cast<std::uint32_t>(d));
    }

    const Tensor* m = mask != nullptr ? mask->find(name) : nullptr;
    out.push_back(m != nullptr ? 1 : 0);
    if (m == nullptr) {
      for (std::size_t i = 0; i < tensor.numel(); ++i) put_f32(out, tensor[i]);
      continue;
    }
    SUBFEDAVG_CHECK(m->shape() == tensor.shape(), "mask shape for " << name);
    // Packed bitmap, then kept values only.
    std::uint8_t byte = 0;
    int bit = 0;
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      if ((*m)[i] != 0.0f) byte |= static_cast<std::uint8_t>(1 << bit);
      if (++bit == 8) {
        out.push_back(byte);
        byte = 0;
        bit = 0;
      }
    }
    if (bit != 0) out.push_back(byte);
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      if ((*m)[i] != 0.0f) put_f32(out, tensor[i]);
    }
  }
  return out;
}

StateDict decode_update(std::span<const std::uint8_t> bytes, ModelMask* mask_out) {
  Reader reader(bytes);
  SUBFEDAVG_CHECK(reader.u32() == kMagic, "bad update magic");
  const std::uint32_t entries = reader.u32();

  StateDict state;
  for (std::uint32_t e = 0; e < entries; ++e) {
    const std::uint32_t name_len = reader.u32();
    std::string name = reader.str(name_len);
    const std::uint32_t rank = reader.u32();
    std::vector<std::size_t> dims(rank);
    for (auto& d : dims) d = reader.u32();
    Tensor tensor{Shape(dims)};

    const bool masked = reader.u8() != 0;
    if (!masked) {
      for (std::size_t i = 0; i < tensor.numel(); ++i) tensor[i] = reader.f32();
    } else {
      std::vector<bool> keep(tensor.numel());
      for (std::size_t i = 0; i < tensor.numel(); i += 8) {
        const std::uint8_t byte = reader.u8();
        for (int b = 0; b < 8 && i + b < tensor.numel(); ++b) {
          keep[i + b] = (byte >> b) & 1;
        }
      }
      for (std::size_t i = 0; i < tensor.numel(); ++i) {
        if (keep[i]) tensor[i] = reader.f32();
      }
      if (mask_out != nullptr) {
        Tensor bits{tensor.shape()};
        for (std::size_t i = 0; i < bits.numel(); ++i) bits[i] = keep[i] ? 1.0f : 0.0f;
        mask_out->set(name, std::move(bits));
      }
    }
    state.add(std::move(name), std::move(tensor));
  }
  SUBFEDAVG_CHECK(reader.done(), "trailing bytes in update");
  return state;
}

std::size_t encoded_header_bytes(const StateDict& state) {
  std::size_t bytes = 8;  // magic + entry count
  for (const auto& [name, tensor] : state) {
    bytes += 4 + name.size();                       // name length + name
    bytes += 4 + 4 * tensor.shape().rank();         // rank + dims
    bytes += 1;                                     // coverage flag
  }
  return bytes;
}

std::size_t payload_bytes(const StateDict& state, const ModelMask* mask) {
  std::size_t bytes = 0;
  for (const auto& [name, tensor] : state) {
    const Tensor* m = mask != nullptr ? mask->find(name) : nullptr;
    if (m == nullptr) {
      bytes += tensor.numel() * 4;
      continue;
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < m->numel(); ++i) kept += ((*m)[i] != 0.0f);
    bytes += kept * 4 + (tensor.numel() + 7) / 8;
  }
  return bytes;
}

}  // namespace subfed
