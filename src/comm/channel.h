// Typed client↔server message channel with a composable codec stack.
//
// Every exchange the federation makes is a real message: a Broadcast carries
// the (optionally masked) server state down, a ClientUpdate carries the
// client's (masked state, mask, example count) back up. Payloads pass through
// a codec stack before they count against the byte ledger:
//
//   sparse   — mask-aware bitmap + kept values (comm/serialize.h; always on)
//   delta    — uplink values sent relative to the broadcast the client
//              received this round (codec=delta); near-zero residuals are
//              what make the quantizers bite
//   quantize — fp16 / int8 kept-value precision (comm/quantize.h's scalar
//              codecs, applied mask-aware)
//
// Transports (comm/transport.h) decide where the client half runs:
//
//   memory     — the legacy fast path: no bytes are materialized, the ledger
//                charges comm/serialize.h's payload model (no headers), and
//                lossy codecs are rejected. Bit-identical to the pre-channel
//                in-memory implementation.
//   loopback   — every payload genuinely round-trips encode → decode in
//                process; the ledger charges the materialized message bytes.
//   subprocess — like loopback, but the client half runs in forked workers
//                speaking length-prefixed envelopes over pipes (crash
//                isolation; client-state mutations return as side-band
//                sections that are never charged).
//
// Corruption (FlContext's corrupt_fraction/corrupt_noise) is injected after
// the server decodes an upload — post-codec, so a corrupted update is exactly
// what a byzantine sender could have put on the wire — with the same RNG
// stream for every transport, keeping runs comparable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/ledger.h"
#include "comm/round_time.h"
#include "comm/transport.h"
#include "core/aggregate.h"
#include "nn/parameter.h"
#include "pruning/mask.h"

namespace subfed {

// ---------------------------------------------------------------------------
// Codec configuration

enum class QuantCodec : std::uint8_t { kNone = 0, kFp16 = 1, kInt8 = 2 };

/// Parses "none" | "fp16" | "int8" (throws CheckError otherwise).
QuantCodec parse_quant_codec(const std::string& name);
std::string quant_codec_name(QuantCodec codec);

struct ChannelConfig {
  std::string transport = "memory";  ///< memory | loopback | subprocess
  bool delta = false;                ///< uplink delta vs the received broadcast
  QuantCodec quantize = QuantCodec::kNone;
  std::size_t workers = 0;           ///< subprocess fan-out; 0 → hardware
  double corrupt_fraction = 0.0;     ///< post-decode upload corruption
  double corrupt_noise = 1.0;
  std::uint64_t seed = 1;            ///< corruption stream seed
};

// ---------------------------------------------------------------------------
// Envelopes

enum class MessageKind : std::uint8_t { kBroadcast = 1, kClientUpdate = 2 };

/// One message: a fixed header plus length-prefixed payload sections.
/// Section 0 is the codec-encoded logical payload (the bytes the ledger
/// charges); further sections are uncharged side-band state (subprocess
/// client mirrors).
struct Envelope {
  MessageKind kind = MessageKind::kBroadcast;
  std::uint32_t round = 0;
  std::uint32_t client = 0;
  std::uint64_t num_examples = 0;  ///< ClientUpdate only
  QuantCodec quantize = QuantCodec::kNone;
  bool delta = false;
  std::vector<std::vector<std::uint8_t>> sections;
};

std::vector<std::uint8_t> encode_envelope(const Envelope& envelope);
Envelope decode_envelope(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Payload codec (sparse × quantize)

/// Encodes `state` (mask-aware) at the codec's precision. kNone produces
/// exactly comm/serialize.h's wire format (bit-exact round-trip); fp16/int8
/// write the same structure with reduced-precision kept values.
std::vector<std::uint8_t> encode_payload(const StateDict& state, const ModelMask* mask,
                                         QuantCodec quantize);

/// Inverse of encode_payload (dispatches on the format magic). Masked-out
/// positions decode as exact zeros; `mask_out`, when non-null, receives the
/// reconstructed keep bitmaps of covered entries.
StateDict decode_payload(std::span<const std::uint8_t> bytes, ModelMask* mask_out = nullptr);

/// Subtracts `reference` from `state` in place — kept positions of covered
/// entries, every position of uncovered ones. Entries absent from `reference`
/// are left untouched. apply_delta adds it back: the uplink delta codec.
void subtract_reference(StateDict& state, const ModelMask* mask, const StateDict& reference);
void apply_reference(StateDict& state, const ModelMask* mask, const StateDict& reference);

// ---------------------------------------------------------------------------
// Channel

/// One sampled client's work order, built by the algorithm.
struct ClientJob {
  std::size_t client = 0;
  const StateDict* broadcast = nullptr;  ///< server payload down (required)
  const ModelMask* mask = nullptr;       ///< limits the broadcast to kept entries
  /// Memory-path byte multiplier for protocols whose wire payload is N
  /// identical model-sized sections (MTL's dual state): the fast path charges
  /// N × payload_bytes without building the copies. Materializing transports
  /// ignore it — hand them a broadcast that already contains the copies.
  std::size_t payload_copies = 1;
};

/// What the client-side computation returns.
struct ClientResult {
  ClientUpdate update;            ///< uplink payload (mask optional)
  std::vector<StateDict> state;   ///< side-band client-state mirror; fill only
                                  ///< when the job says `detached`
  std::size_t payload_copies = 1; ///< uplink twin of ClientJob::payload_copies
};

/// The server-side view of one completed exchange, in sampled order.
struct Exchange {
  std::size_t client = 0;
  ClientUpdate update;            ///< as decoded by the server (post-codec,
                                  ///< post-corruption)
  std::vector<StateDict> state;   ///< side-band mirror (subprocess only)
  bool corrupted = false;
};

/// Client-side computation: receives its job, the broadcast AS RECEIVED
/// (post-codec — lossy codecs affect training exactly as deployed), and
/// whether it runs detached from the server's address space (fill
/// ClientResult::state iff true). Must be safe to call concurrently for
/// distinct jobs.
using ClientFn =
    std::function<ClientResult(const ClientJob& job, const StateDict& received, bool detached)>;

class Channel {
 public:
  /// Validates the configuration (lossy codecs need a materializing
  /// transport) and constructs the transport backend. `ledger` must outlive
  /// the channel.
  Channel(ChannelConfig config, CommLedger* ledger);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const ChannelConfig& config() const noexcept { return config_; }

  /// Runs one synchronous round of exchanges: broadcast down, client compute,
  /// update up — through the configured transport and codec stack. Records
  /// per-client bytes in the ledger (sampled order) and retains them for the
  /// driver's round-time model. Throws CheckError when a transport worker
  /// dies.
  std::vector<Exchange> run_round(std::size_t round, std::span<const ClientJob> jobs,
                                  const ClientFn& client_fn);

  /// Per-client costs of the most recent round (for comm/round_time.h).
  const std::vector<ClientRoundCost>& last_round_costs() const noexcept {
    return last_round_costs_;
  }

  /// Uploads replaced by noise so far (corrupt_fraction injection).
  std::size_t corrupted_updates() const noexcept { return corrupted_updates_; }

  /// What the same exchanges would have cost as dense fp32 (4 bytes/scalar,
  /// no masks, no codecs) — the compression baseline.
  std::uint64_t dense_reference_bytes() const noexcept { return dense_reference_bytes_; }
  /// Bytes actually charged to the ledger by this channel.
  std::uint64_t charged_bytes() const noexcept { return charged_bytes_; }
  /// dense_reference_bytes / charged_bytes (0 when nothing was exchanged).
  double compression_ratio() const noexcept;

 private:
  struct Slot;  // per-job scratch shared between the transport lambda and the
                // post-processing pass

  std::vector<Exchange> run_in_memory(std::size_t round, std::span<const ClientJob> jobs,
                                      const ClientFn& client_fn);
  std::vector<Exchange> run_materialized(std::size_t round, std::span<const ClientJob> jobs,
                                         const ClientFn& client_fn);
  /// `dense_scalars[i]` is exchange i's logical fp32-dense scalar count (down
  /// + up, payload copies included) — the compression baseline.
  void finish_round(std::size_t round, std::span<const ClientJob> jobs,
                    std::vector<Exchange>& exchanges,
                    std::span<const std::size_t> up_bytes,
                    std::span<const std::size_t> down_bytes,
                    std::span<const std::size_t> dense_scalars);

  ChannelConfig config_;
  CommLedger* ledger_;
  std::unique_ptr<Transport> transport_;  ///< null for the memory fast path
  std::vector<ClientRoundCost> last_round_costs_;
  std::size_t corrupted_updates_ = 0;
  std::uint64_t dense_reference_bytes_ = 0;
  std::uint64_t charged_bytes_ = 0;
};

/// Names Channel accepts for ChannelConfig::transport.
bool has_channel_transport(const std::string& name);

}  // namespace subfed
