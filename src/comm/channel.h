// Typed client↔server message channel with a composable codec stack.
//
// Every exchange the federation makes is a real message: a Broadcast carries
// the (optionally masked) server state down, a ClientUpdate carries the
// client's (masked state, mask, example count) back up. Payloads pass through
// a codec stack before they count against the byte ledger:
//
//   sparse   — mask-aware bitmap + kept values (comm/serialize.h; always on)
//   delta    — uplink values sent relative to the broadcast the client
//              received this round (codec=delta); near-zero residuals are
//              what make the quantizers bite
//   quantize — fp16 / int8 kept-value precision (comm/quantize.h's scalar
//              codecs, applied mask-aware)
//
// Transports (comm/transport.h) decide where the client half runs:
//
//   memory     — the legacy fast path: no bytes are materialized, the ledger
//                charges comm/serialize.h's payload model (no headers), and
//                lossy codecs are rejected. Bit-identical to the pre-channel
//                in-memory implementation.
//   loopback   — every payload genuinely round-trips encode → decode in
//                process; the ledger charges the materialized message bytes.
//   subprocess — like loopback, but the client half runs in forked workers
//                speaking length-prefixed envelopes over pipes (crash
//                isolation; client-state mutations return as side-band
//                sections that are never charged).
//   tcp        — like subprocess, but the client half runs in remote worker
//                processes (tools/worker) joined over real sockets. Requests
//                additionally carry the client's side-band state DOWN
//                (remote workers share no memory at all), and a worker that
//                dies or times out mid-exchange is evicted as a straggler in
//                buffered mode instead of hanging the round.
//
// Corruption (FlContext's corrupt_fraction/corrupt_noise) is injected after
// the server decodes an upload — post-codec, so a corrupted update is exactly
// what a byzantine sender could have put on the wire — with the same RNG
// stream for every transport, keeping runs comparable.
//
// Aggregation modes (ChannelConfig::buffered):
//
//   sync     — the round closes when every sampled client replied; round time
//              is the slowest participant (comm/round_time.h's max).
//   buffered — FedBuff-style: the round closes after the first `buffer_k`
//              replies (parked updates from earlier rounds fill buffer slots
//              first); later replies are parked for the next round with a
//              staleness counter and delivered down-weighted by
//              1/(1+staleness)^staleness_decay (ClientUpdate::weight, honored
//              mask-aware by every aggregation rule). Updates parked past
//              max_staleness are evicted. Arrival order comes from the
//              transport: subprocess reports genuine pipe order, loopback and
//              memory order by each client's simulated link+compute time
//              under the LinkFleet. Round time is the K-th arrival instead of
//              the max. With buffer_k == sampled count nothing is ever parked
//              and the mode is bit-identical to sync.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/ledger.h"
#include "comm/round_time.h"
#include "comm/transport.h"
#include "core/aggregate.h"
#include "nn/parameter.h"
#include "pruning/mask.h"

namespace subfed {

// ---------------------------------------------------------------------------
// Codec configuration

enum class QuantCodec : std::uint8_t { kNone = 0, kFp16 = 1, kInt8 = 2 };

/// Parses "none" | "fp16" | "int8" (throws CheckError otherwise).
QuantCodec parse_quant_codec(const std::string& name);
std::string quant_codec_name(QuantCodec codec);

struct ChannelConfig {
  std::string transport = "memory";  ///< memory | loopback | subprocess | tcp
  bool delta = false;                ///< uplink delta vs the received broadcast
  QuantCodec quantize = QuantCodec::kNone;
  std::size_t workers = 0;           ///< subprocess fan-out / tcp fleet size
  double corrupt_fraction = 0.0;     ///< post-decode upload corruption
  double corrupt_noise = 1.0;
  std::uint64_t seed = 1;            ///< corruption stream seed
  // Remote (tcp) transport — see comm/transport.h's TransportOptions.
  std::string listen;                ///< tcp coordinator bind "host:port"
  int rpc_timeout_ms = 120000;       ///< tcp per-exchange deadline; 0 = forever
  std::vector<std::uint8_t> remote_setup;  ///< session blob for joining workers
  // Buffered (FedBuff-style) aggregation — see the header comment.
  bool buffered = false;             ///< close rounds after buffer_k replies
  std::size_t buffer_k = 0;          ///< replies that close a round; 0 → all
  double staleness_decay = 0.5;      ///< weight = 1/(1+staleness)^decay
  std::size_t max_staleness = 4;     ///< parked updates older than this drop
};

// ---------------------------------------------------------------------------
// Envelopes

enum class MessageKind : std::uint8_t { kBroadcast = 1, kClientUpdate = 2 };

/// One message: a fixed header plus length-prefixed payload sections.
/// Section 0 is the codec-encoded logical payload (the bytes the ledger
/// charges); further sections are uncharged side-band state (subprocess
/// client mirrors).
struct Envelope {
  MessageKind kind = MessageKind::kBroadcast;
  std::uint32_t round = 0;
  std::uint32_t client = 0;
  std::uint64_t num_examples = 0;  ///< ClientUpdate only
  QuantCodec quantize = QuantCodec::kNone;
  bool delta = false;
  std::vector<std::vector<std::uint8_t>> sections;
};

std::vector<std::uint8_t> encode_envelope(const Envelope& envelope);
Envelope decode_envelope(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Payload codec (sparse × quantize)

/// Encodes `state` (mask-aware) at the codec's precision. kNone produces
/// exactly comm/serialize.h's wire format (bit-exact round-trip); fp16/int8
/// write the same structure with reduced-precision kept values.
std::vector<std::uint8_t> encode_payload(const StateDict& state, const ModelMask* mask,
                                         QuantCodec quantize);

/// Inverse of encode_payload (dispatches on the format magic). Masked-out
/// positions decode as exact zeros; `mask_out`, when non-null, receives the
/// reconstructed keep bitmaps of covered entries.
StateDict decode_payload(std::span<const std::uint8_t> bytes, ModelMask* mask_out = nullptr);

/// Subtracts `reference` from `state` in place — kept positions of covered
/// entries, every position of uncovered ones. Entries absent from `reference`
/// are left untouched. apply_delta adds it back: the uplink delta codec.
void subtract_reference(StateDict& state, const ModelMask* mask, const StateDict& reference);
void apply_reference(StateDict& state, const ModelMask* mask, const StateDict& reference);

// ---------------------------------------------------------------------------
// Channel

/// One sampled client's work order, built by the algorithm.
struct ClientJob {
  std::size_t client = 0;
  const StateDict* broadcast = nullptr;  ///< server payload down (required)
  const ModelMask* mask = nullptr;       ///< limits the broadcast to kept entries
  /// Memory-path byte multiplier for protocols whose wire payload is N
  /// identical model-sized sections (MTL's dual state): the fast path charges
  /// N × payload_bytes without building the copies. Materializing transports
  /// ignore it — hand them a broadcast that already contains the copies.
  std::size_t payload_copies = 1;
  /// Side-band client state shipped DOWN with the broadcast (uncharged). Fill
  /// only when Channel::ships_client_state() — remote workers hold no client
  /// mirrors, so each exchange carries everything the client needs in.
  std::vector<StateDict> state;
};

/// What the client-side computation returns.
struct ClientResult {
  ClientUpdate update;            ///< uplink payload (mask optional)
  std::vector<StateDict> state;   ///< side-band client-state mirror; fill only
                                  ///< when the job says `detached`
  std::size_t payload_copies = 1; ///< uplink twin of ClientJob::payload_copies
};

/// The server-side view of one completed exchange. Synchronous rounds yield
/// them in sampled order; buffered rounds yield parked (stale) deliveries
/// first, then this round's fresh arrivals in sampled order.
struct Exchange {
  std::size_t client = 0;
  ClientUpdate update;            ///< as decoded by the server (post-codec,
                                  ///< post-corruption; `weight` carries the
                                  ///< staleness down-weight)
  std::vector<StateDict> state;   ///< side-band mirror (detached transports)
  bool corrupted = false;
  std::size_t staleness = 0;      ///< rounds this update waited parked
};

/// Client-side computation: receives its job, the broadcast AS RECEIVED
/// (post-codec — lossy codecs affect training exactly as deployed), and
/// whether it runs detached from the server's address space (fill
/// ClientResult::state iff true). Must be safe to call concurrently for
/// distinct jobs.
using ClientFn =
    std::function<ClientResult(const ClientJob& job, const StateDict& received, bool detached)>;

/// Worker-side computation for one remote exchange (serve_remote_exchange):
/// the job is reconstructed from the wire — `job.client`, `job.state`
/// (side-band sections shipped down), and `job.broadcast == &received` (the
/// post-codec view; remote jobs carry no pre-codec server state).
using RemoteClientFn = std::function<ClientResult(std::size_t round, const ClientJob& job,
                                                  const StateDict& received)>;

class Channel {
 public:
  /// Validates the configuration (lossy codecs need a materializing
  /// transport) and constructs the transport backend. `ledger` must outlive
  /// the channel.
  Channel(ChannelConfig config, CommLedger* ledger);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const ChannelConfig& config() const noexcept { return config_; }

  /// True when jobs must carry each client's side-band state DOWN
  /// (ClientJob::state): the handler runs on a remote machine that shares no
  /// memory — not even copy-on-write — with this process.
  bool ships_client_state() const noexcept {
    return transport_ != nullptr && transport_->remote();
  }

  /// The transport's accept address ("host:port" with any ephemeral port
  /// resolved); empty for in-process backends. Workers join it.
  std::string transport_endpoint() const {
    return transport_ != nullptr ? transport_->endpoint() : std::string{};
  }

  /// The transport itself (null on the memory fast path) — the resident
  /// server (serve/server.h) admits joins and counts participants through it
  /// between rounds.
  Transport* transport() noexcept { return transport_.get(); }

  /// Worker side of one remote exchange: decodes a kExchange request payload
  /// (a Broadcast envelope), runs `fn`, and encodes the reply envelope through
  /// the identical codec stack as the coordinator's in-process handler —
  /// byte-for-byte, which is what makes tcp rounds bit-identical to loopback.
  std::vector<std::uint8_t> serve_remote_exchange(std::span<const std::uint8_t> request_bytes,
                                                  const RemoteClientFn& fn) const;

  /// Heterogeneous link endowments for the round-time model and buffered
  /// arrival ordering. Not owned; must outlive the channel (or be reset).
  /// Null (the default) means every client runs at the nominal LinkModel
  /// rates.
  void set_link_fleet(const LinkFleet* fleet) noexcept { fleet_ = fleet; }

  /// Runs one round of exchanges: broadcast down, client compute, update up —
  /// through the configured transport and codec stack. Records per-client
  /// bytes in the ledger (sampled order) and retains them for the round-time
  /// model. In buffered mode, closes the round after the first buffer_k
  /// replies and parks the rest (see the header comment). Throws CheckError
  /// when a transport worker dies.
  std::vector<Exchange> run_round(std::size_t round, std::span<const ClientJob> jobs,
                                  const ClientFn& client_fn);

  /// Per-client costs of the most recent round (for comm/round_time.h).
  const std::vector<ClientRoundCost>& last_round_costs() const noexcept {
    return last_round_costs_;
  }

  /// Wall-clock phase breakdown of the most recent run_round, in seconds.
  /// All zeros when telemetry is off (the stopwatches never read the clock).
  /// `encode` is the broadcast-encode fan-out, `exchange` the transport
  /// round-trip, `collect` the reply decode + round bookkeeping; the memory
  /// fast path reports its single fused pass as `exchange`.
  struct PhaseSeconds {
    double encode = 0.0;
    double exchange = 0.0;
    double collect = 0.0;
  };
  const PhaseSeconds& last_phase_seconds() const noexcept { return last_phase_seconds_; }

  /// Simulated duration of the most recent round under the link fleet: the
  /// slowest participant in sync mode, the K-th arrival in buffered mode.
  double last_round_seconds() const noexcept { return last_round_seconds_; }

  /// Updates delivered late (staleness ≥ 1) so far (buffered mode).
  std::size_t stale_updates() const noexcept { return stale_updates_; }
  /// Updates evicted after waiting parked past max_staleness.
  std::size_t evicted_updates() const noexcept { return evicted_updates_; }
  /// Updates currently parked for a future round.
  std::size_t parked_updates() const noexcept { return parked_.size(); }

  /// Uploads replaced by noise so far (corrupt_fraction injection).
  std::size_t corrupted_updates() const noexcept { return corrupted_updates_; }

  /// What the same exchanges would have cost as dense fp32 (4 bytes/scalar,
  /// no masks, no codecs) — the compression baseline.
  std::uint64_t dense_reference_bytes() const noexcept { return dense_reference_bytes_; }
  /// Bytes actually charged to the ledger by this channel.
  std::uint64_t charged_bytes() const noexcept { return charged_bytes_; }
  /// dense_reference_bytes / charged_bytes (0 when nothing was exchanged).
  double compression_ratio() const noexcept;

 private:
  struct Slot;  // per-job scratch shared between the transport lambda and the
                // post-processing pass

  /// A reply that landed after its round closed, waiting to join a later one.
  struct ParkedUpdate {
    Exchange exchange;
    std::size_t origin_round = 0;  ///< round whose exchange produced it
    std::size_t arrival_rank = 0;  ///< arrival position within origin round
    /// Simulated time this straggler is still in flight past its origin
    /// round's close; decremented by each subsequent round's duration. A
    /// round that fills its buffer from parked updates cannot close before
    /// they actually land, so their remaining flight time floors the round
    /// duration — straggler overhang carries across rounds instead of
    /// vanishing.
    double remaining_seconds = 0.0;
  };

  std::vector<Exchange> run_in_memory(std::size_t round, std::span<const ClientJob> jobs,
                                      const ClientFn& client_fn);
  std::vector<Exchange> run_materialized(std::size_t round, std::span<const ClientJob> jobs,
                                         const ClientFn& client_fn);
  /// `dense_scalars[i]` is exchange i's logical fp32-dense scalar count (down
  /// + up, payload copies included) — the compression baseline. Also derives
  /// each exchange's simulated completion time and the synchronous round
  /// duration.
  void finish_round(std::size_t round, std::span<const ClientJob> jobs,
                    std::vector<Exchange>& exchanges,
                    std::span<const std::size_t> up_bytes,
                    std::span<const std::size_t> down_bytes,
                    std::span<const std::size_t> dense_scalars);
  /// Buffered close: selects the round's buffer (parked first, then fresh in
  /// arrival order), parks the overflow, applies staleness weights and the
  /// K-th-arrival round time. `arrival_order` holds fresh-exchange indices in
  /// arrival order.
  std::vector<Exchange> close_buffered_round(std::size_t round,
                                             std::vector<Exchange> fresh,
                                             std::span<const std::size_t> arrival_order);
  double arrival_seconds(const ClientRoundCost& cost) const;

  ChannelConfig config_;
  CommLedger* ledger_;
  std::unique_ptr<Transport> transport_;  ///< null for the memory fast path
  const LinkFleet* fleet_ = nullptr;      ///< not owned; null → nominal rates
  std::vector<ClientRoundCost> last_round_costs_;
  std::vector<double> last_arrival_seconds_;  ///< aligned with fresh exchanges
  /// Fresh-exchange indices in transport arrival order; empty on the memory
  /// fast path (simulated order is derived from last_arrival_seconds_).
  std::vector<std::size_t> last_fresh_arrival_order_;
  /// True when the last round ran in memory (arrival order must be simulated
  /// from last_arrival_seconds_). A genuine transport order stays authoritative
  /// even when shorter than the round — tcp reports failed exchanges by
  /// omission, and those are evictions, not candidates for re-sorting.
  bool last_order_simulated_ = true;
  /// Per-exchange failure flags for the last materialized round (tcp worker
  /// deaths); empty means every exchange delivered.
  std::vector<char> last_failed_;
  double last_round_seconds_ = 0.0;
  PhaseSeconds last_phase_seconds_;
  std::vector<ParkedUpdate> parked_;
  std::size_t stale_updates_ = 0;
  std::size_t evicted_updates_ = 0;
  std::size_t corrupted_updates_ = 0;
  std::uint64_t dense_reference_bytes_ = 0;
  std::uint64_t charged_bytes_ = 0;
};

/// Names Channel accepts for ChannelConfig::transport.
bool has_channel_transport(const std::string& name);

}  // namespace subfed
