// Pluggable byte transports for the client↔server channel.
//
// A Transport moves one encoded request (server → client) and one encoded
// response (client → server) per exchange; it knows nothing about envelopes
// or codecs — comm/channel.h owns those. Three backends:
//
//   loopback    — in-process: the handler runs on the calling process's
//                 thread pool, but every request/response is a real byte
//                 buffer the handler must decode, so measured traffic is
//                 materialized, not estimated.
//   subprocess  — fork-per-round worker pool: each exchange runs in a forked
//                 child speaking length-prefixed envelopes over pipes. The
//                 child inherits the federation state copy-on-write, computes
//                 the client's round, replies, and exits. A crashed or killed
//                 worker fails only the exchange (and hence the run) it was
//                 serving — the sweep engine's failure isolation contains it.
//   tcp         — real sockets (src/net/): the coordinator listens on
//                 TransportOptions::listen and dispatches exchanges to worker
//                 processes (tools/worker) that joined it. Requests carry the
//                 client's full side-band state down (the handler cannot
//                 touch this process's memory at all), replies report genuine
//                 network arrival order, and a dead or timed-out connection
//                 fails only its exchange: in tolerant (buffered) mode it
//                 surfaces as TransportArrival::ok == false — an evicted
//                 straggler — never a hung round.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace subfed {

/// Client-side half of an exchange: request bytes in, response bytes out.
/// `index` identifies the exchange within the batch (for per-slot state).
/// Must be safe to call concurrently for distinct indices.
using TransportHandler =
    std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>, std::size_t index)>;

/// One reply as it landed: `index` names the request it answers. A tolerant
/// transport (tcp under buffered aggregation) reports a dead or timed-out
/// exchange as ok == false with an empty response instead of throwing.
struct TransportArrival {
  std::size_t index = 0;
  std::vector<std::uint8_t> response;
  bool ok = true;
  std::string error;  ///< diagnosis when !ok
};

/// Everything a transport can be configured with. Loopback ignores all of it;
/// subprocess uses `workers`; tcp uses the rest.
struct TransportOptions {
  /// Subprocess: fork fan-out per wave (0 → hardware concurrency).
  /// Tcp: worker connections to wait for before the first round (0 → 1).
  std::size_t workers = 0;
  std::string listen;       ///< tcp: coordinator bind address "host:port"
  int rpc_timeout_ms = 0;   ///< tcp: per-exchange deadline; 0 = wait forever
  /// Tcp: opaque session blob (an ExperimentSpec kv text) sent to every
  /// joining worker so it can mirror the federation before serving.
  std::vector<std::uint8_t> setup;
  /// Tcp: report dead exchanges as ok == false arrivals instead of throwing
  /// (buffered aggregation evicts them as stragglers). When false, a dead
  /// worker fails the round like a subprocess crash does.
  bool tolerate_failures = false;
  /// Tcp: each request is a whole experiment spec (kRunSpec → kRunResult)
  /// rather than one channel exchange (kExchange → kReply) — the sweep
  /// engine's run-sharding mode. The byte contract is unchanged: request
  /// bytes out, response bytes back, arrival order preserved.
  bool whole_runs = false;
};

/// Simulated completion time of exchange `index` whose request/response
/// framed to the given byte counts — in-process transports, which compute
/// every reply locally, use it to order replies the way a heterogeneous
/// fleet (comm/round_time.h's LinkFleet) would have delivered them.
using ArrivalModel = std::function<double(std::size_t index, std::size_t request_bytes,
                                          std::size_t response_bytes)>;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::string name() const = 0;

  /// True when the handler runs outside the caller's address space (so any
  /// client-side state mutation must be shipped back inside the response).
  virtual bool detached() const noexcept = 0;

  /// True when exchanges run on remote machines: requests must additionally
  /// carry all per-client state DOWN (the remote end shares no memory with
  /// the caller, not even copy-on-write).
  virtual bool remote() const noexcept { return false; }

  /// Address peers connect to ("host:port" with any ephemeral port
  /// resolved); empty for in-process and fork transports.
  virtual std::string endpoint() const { return {}; }

  /// Remote peers currently connected; 0 for in-process and fork transports.
  /// The resident server gates round ticks on this (serve/server.h).
  virtual std::size_t connected_peers() const noexcept { return 0; }

  /// Admits every peer waiting to join or rejoin, without blocking, and
  /// drops idle connections whose peer hung up (so connected_peers() stays
  /// honest between batches). Returns the number admitted. No-op for
  /// transports without peers.
  virtual std::size_t admit_pending() { return 0; }

  /// Listening fd an event loop can poll for incoming joins (net/io.h
  /// wait_readable); -1 when the transport accepts no connections.
  virtual int accept_fd() const noexcept { return -1; }

  /// Round-trips every request through the handler, returning the responses
  /// in request order. Implementations may run handlers concurrently; a
  /// handler that throws (or a worker that dies) surfaces as CheckError here.
  virtual std::vector<std::vector<std::uint8_t>> round_trip(
      std::span<const std::vector<std::uint8_t>> requests,
      const TransportHandler& handler) = 0;

  /// Round-trips every request like round_trip, but returns replies in
  /// ARRIVAL order — the seam buffered aggregation closes a round on.
  /// Subprocess reports genuine pipe-arrival order (the order response frames
  /// started landing); in-process transports order by `arrival` (ties broken
  /// by index), falling back to request order when no model is given. Every
  /// request is always answered, reported as a failed (ok == false) arrival
  /// by a tolerant transport, or the call throws: a caller that closes its
  /// round after the first K replies parks the rest — workers are never
  /// abandoned mid-reply and no pipe outlives the call.
  virtual std::vector<TransportArrival> collect(
      std::span<const std::vector<std::uint8_t>> requests, const TransportHandler& handler,
      const ArrivalModel& arrival = nullptr);
};

/// Builds a transport by name ("loopback" | "subprocess" | "tcp"). Throws
/// CheckError on unknown names ("memory" is not a Transport — the channel
/// short-circuits it without materializing bytes) and on a tcp configuration
/// with no listen address.
std::unique_ptr<Transport> make_transport(const std::string& name,
                                          const TransportOptions& options);
/// Back-compat shim: `workers` is TransportOptions::workers.
std::unique_ptr<Transport> make_transport(const std::string& name, std::size_t workers = 0);

/// True for names make_transport accepts.
bool has_transport(const std::string& name);

}  // namespace subfed
