// Pluggable byte transports for the client↔server channel.
//
// A Transport moves one encoded request (server → client) and one encoded
// response (client → server) per exchange; it knows nothing about envelopes
// or codecs — comm/channel.h owns those. Two backends:
//
//   loopback    — in-process: the handler runs on the calling process's
//                 thread pool, but every request/response is a real byte
//                 buffer the handler must decode, so measured traffic is
//                 materialized, not estimated.
//   subprocess  — fork-per-round worker pool: each exchange runs in a forked
//                 child speaking length-prefixed envelopes over pipes. The
//                 child inherits the federation state copy-on-write, computes
//                 the client's round, replies, and exits. A crashed or killed
//                 worker fails only the exchange (and hence the run) it was
//                 serving — the sweep engine's failure isolation contains it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace subfed {

/// Client-side half of an exchange: request bytes in, response bytes out.
/// `index` identifies the exchange within the batch (for per-slot state).
/// Must be safe to call concurrently for distinct indices.
using TransportHandler =
    std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>, std::size_t index)>;

/// One reply as it landed: `index` names the request it answers.
struct TransportArrival {
  std::size_t index = 0;
  std::vector<std::uint8_t> response;
};

/// Simulated completion time of exchange `index` whose request/response
/// framed to the given byte counts — in-process transports, which compute
/// every reply locally, use it to order replies the way a heterogeneous
/// fleet (comm/round_time.h's LinkFleet) would have delivered them.
using ArrivalModel = std::function<double(std::size_t index, std::size_t request_bytes,
                                          std::size_t response_bytes)>;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::string name() const = 0;

  /// True when the handler runs outside the caller's address space (so any
  /// client-side state mutation must be shipped back inside the response).
  virtual bool detached() const noexcept = 0;

  /// Round-trips every request through the handler, returning the responses
  /// in request order. Implementations may run handlers concurrently; a
  /// handler that throws (or a worker that dies) surfaces as CheckError here.
  virtual std::vector<std::vector<std::uint8_t>> round_trip(
      std::span<const std::vector<std::uint8_t>> requests,
      const TransportHandler& handler) = 0;

  /// Round-trips every request like round_trip, but returns replies in
  /// ARRIVAL order — the seam buffered aggregation closes a round on.
  /// Subprocess reports genuine pipe-arrival order (the order response frames
  /// started landing); in-process transports order by `arrival` (ties broken
  /// by index), falling back to request order when no model is given. Every
  /// request is always answered or the call throws: a caller that closes its
  /// round after the first K replies parks the rest — workers are never
  /// abandoned mid-reply and no pipe outlives the call.
  virtual std::vector<TransportArrival> collect(
      std::span<const std::vector<std::uint8_t>> requests, const TransportHandler& handler,
      const ArrivalModel& arrival = nullptr);
};

/// Builds a transport by name ("loopback" | "subprocess"). `workers` caps the
/// subprocess fan-out per batch (0 → hardware concurrency); loopback ignores
/// it. Throws CheckError on unknown names ("memory" is not a Transport — the
/// channel short-circuits it without materializing bytes).
std::unique_ptr<Transport> make_transport(const std::string& name, std::size_t workers = 0);

/// True for names make_transport accepts.
bool has_transport(const std::string& name);

}  // namespace subfed
