// Round wall-clock model: synchronous max and buffered K-th arrival.
//
// The paper motivates pruning with the uplink bottleneck (§2: US average
// 55 Mbps down vs 18.9 Mbps up; edge uplinks ≈ 1 MB/s). In a synchronous
// round the server waits for the slowest sampled client, so round time is
//
//   T_round = max over sampled clients of
//             (download_bytes/down_rate + compute_s + upload_bytes/up_rate)
//
// A buffered round (FedBuff-style, comm/channel.h) closes after the first K
// replies instead, so its duration is the K-th smallest of the same
// per-client times — the K-th percentile instead of the max.
//
// Clients draw heterogeneous link speeds once (a slow-device distribution),
// making stragglers — and the benefit of smaller updates — visible in time
// units rather than bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/ledger.h"
#include "util/rng.h"

namespace subfed {

/// Per-client link endowment.
struct ClientLink {
  double up_bytes_per_s = 1.0 * 1024 * 1024;
  double down_bytes_per_s = 8.0 * 1024 * 1024;
};

/// A fleet of clients with heterogeneous link speeds: each client's rates are
/// the base rates scaled by a log-uniform factor in [1/spread, 1].
///
/// Links are computed on demand from (rng, k) — the fleet is O(1) memory
/// regardless of population, so a million-client federation costs nothing to
/// endow. `link(k)` is a pure function of the construction arguments.
class LinkFleet {
 public:
  /// `spread` ≥ 1; spread == 1 makes all clients identical to `base`.
  LinkFleet(std::size_t num_clients, LinkModel base, double spread, Rng rng);

  std::size_t size() const noexcept { return num_clients_; }
  ClientLink link(std::size_t k) const;

 private:
  std::size_t num_clients_ = 0;
  LinkModel base_;
  double log_spread_ = 0.0;
  Rng rng_;
};

/// One client's contribution to a round.
struct ClientRoundCost {
  std::size_t client = 0;
  std::size_t up_bytes = 0;
  std::size_t down_bytes = 0;
  double compute_seconds = 0.0;
};

/// One participant's simulated completion time: down + compute + up under its
/// link endowment.
double client_seconds(const LinkFleet& fleet, const ClientRoundCost& cost);

/// Synchronous-round duration: max over participants of down + compute + up.
double round_seconds(const LinkFleet& fleet, const std::vector<ClientRoundCost>& costs);

/// Buffered-round duration: the K-th smallest participant completion time —
/// when the server closes the round after the first `k` replies, the K-th
/// arrival is what it waited for. `k` ≥ costs.size() (or 0) degenerates to
/// the synchronous max; an empty round is free. This is the reference model
/// for a single fresh round; Channel::close_buffered_round applies it with
/// cross-round bookkeeping on top (parked stragglers still in flight floor
/// the next round's duration).
double kth_arrival_seconds(const LinkFleet& fleet, const std::vector<ClientRoundCost>& costs,
                           std::size_t k);

}  // namespace subfed
