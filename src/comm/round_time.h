// Synchronous-round wall-clock model.
//
// The paper motivates pruning with the uplink bottleneck (§2: US average
// 55 Mbps down vs 18.9 Mbps up; edge uplinks ≈ 1 MB/s). In a synchronous
// round the server waits for the slowest sampled client, so round time is
//
//   T_round = max over sampled clients of
//             (download_bytes/down_rate + compute_s + upload_bytes/up_rate)
//
// Clients draw heterogeneous link speeds once (a slow-device distribution),
// making stragglers — and the benefit of smaller updates — visible in time
// units rather than bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/ledger.h"
#include "util/rng.h"

namespace subfed {

/// Per-client link endowment.
struct ClientLink {
  double up_bytes_per_s = 1.0 * 1024 * 1024;
  double down_bytes_per_s = 8.0 * 1024 * 1024;
};

/// A fleet of clients with heterogeneous link speeds: each client's rates are
/// the base rates scaled by a log-uniform factor in [1/spread, 1].
class LinkFleet {
 public:
  /// `spread` ≥ 1; spread == 1 makes all clients identical to `base`.
  LinkFleet(std::size_t num_clients, LinkModel base, double spread, Rng rng);

  std::size_t size() const noexcept { return links_.size(); }
  const ClientLink& link(std::size_t k) const;

 private:
  std::vector<ClientLink> links_;
};

/// One client's contribution to a round.
struct ClientRoundCost {
  std::size_t client = 0;
  std::size_t up_bytes = 0;
  std::size_t down_bytes = 0;
  double compute_seconds = 0.0;
};

/// Synchronous-round duration: max over participants of down + compute + up.
double round_seconds(const LinkFleet& fleet, const std::vector<ClientRoundCost>& costs);

}  // namespace subfed
