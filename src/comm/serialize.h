// Wire format for model updates.
//
// Clients upload (masked weights, mask); the server downloads aggregated
// state. The encoding is what the paper's cost model charges for:
// 32-bit floats for kept values, 1 bit per mask entry (§4.2.2), plus a
// small self-describing header (entry names/shapes) that the closed-form
// model ignores. encode/decode round-trip exactly, so the byte ledger
// measures real, reconstructible traffic — not an estimate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/parameter.h"
#include "pruning/mask.h"

namespace subfed {

/// Serializes `state`. For entries covered by `mask` (nullable), only kept
/// values are written, preceded by a packed bitmap; uncovered entries are
/// written dense.
std::vector<std::uint8_t> encode_update(const StateDict& state, const ModelMask* mask);

/// Inverse of encode_update. Masked-out positions decode as exact zeros.
/// When `mask_out` is non-null, the per-entry keep bitmaps are reconstructed
/// into it (covered entries only) — the wire format carries the mask, so a
/// receiver that never saw the sender's ModelMask recovers it exactly.
StateDict decode_update(std::span<const std::uint8_t> bytes, ModelMask* mask_out = nullptr);

/// Payload bytes the paper's cost model would charge for this update:
/// kept·4 + ⌈covered/8⌉ (mask bitmap) + uncovered·4. No header overhead.
std::size_t payload_bytes(const StateDict& state, const ModelMask* mask);

/// Self-describing header bytes encode_update spends on top of payload_bytes:
/// magic + entry count, and per entry its name, shape, and coverage flag.
/// Invariant (tested): encode_update(s, m).size() ==
///     payload_bytes(s, m) + encoded_header_bytes(s).
std::size_t encoded_header_bytes(const StateDict& state);

}  // namespace subfed
