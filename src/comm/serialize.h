// Wire format for model updates.
//
// Clients upload (masked weights, mask); the server downloads aggregated
// state. The encoding is what the paper's cost model charges for:
// 32-bit floats for kept values, 1 bit per mask entry (§4.2.2), plus a
// small self-describing header (entry names/shapes) that the closed-form
// model ignores. encode/decode round-trip exactly, so the byte ledger
// measures real, reconstructible traffic — not an estimate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/parameter.h"
#include "pruning/mask.h"

namespace subfed {

/// Serializes `state`. For entries covered by `mask` (nullable), only kept
/// values are written, preceded by a packed bitmap; uncovered entries are
/// written dense.
std::vector<std::uint8_t> encode_update(const StateDict& state, const ModelMask* mask);

/// Inverse of encode_update. Masked-out positions decode as exact zeros.
StateDict decode_update(std::span<const std::uint8_t> bytes);

/// Payload bytes the paper's cost model would charge for this update:
/// kept·4 + ⌈covered/8⌉ (mask bitmap) + uncovered·4. No header overhead.
std::size_t payload_bytes(const StateDict& state, const ModelMask* mask);

}  // namespace subfed
