#include "comm/quantize.h"

#include <cmath>
#include <cstring>

#include "util/check.h"

namespace subfed {

std::uint16_t fp32_to_fp16(float value) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &value, 4);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exponent = static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);  // inf/overflow
  if (exponent <= 0) {
    // Subnormal or underflow to zero.
    if (exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exponent);
    const std::uint32_t rounded = (mantissa + (1u << (shift - 1))) >> shift;
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Round mantissa to 10 bits (nearest, ties away — adequate here).
  const std::uint32_t rounded = (mantissa + 0x1000u) >> 13;
  if (rounded == 0x400u) {
    // Mantissa overflow bumps the exponent.
    return static_cast<std::uint16_t>(sign |
                                      ((static_cast<std::uint32_t>(exponent) + 1) << 10));
  }
  return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exponent) << 10) |
                                    rounded);
}

float fp16_to_fp32(std::uint16_t half) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1F;
  const std::uint32_t mantissa = half & 0x3FFu;

  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // ±0
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 31) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf/nan
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, 4);
  return value;
}

namespace {

constexpr std::uint32_t kMagic = 0x53465154;  // "SFQT"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f32(std::vector<std::uint8_t>& out, float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, 4);
  put_u32(out, bits);
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    SUBFEDAVG_CHECK(pos_ + 4 <= bytes_.size(), "truncated quantized update");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }

  std::uint16_t u16() {
    SUBFEDAVG_CHECK(pos_ + 2 <= bytes_.size(), "truncated quantized update");
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint8_t u8() {
    SUBFEDAVG_CHECK(pos_ < bytes_.size(), "truncated quantized update");
    return bytes_[pos_++];
  }

  std::string str(std::size_t n) {
    SUBFEDAVG_CHECK(pos_ + n <= bytes_.size(), "truncated quantized update");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> quantize_state(const StateDict& state, QuantKind kind) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  out.push_back(kind == QuantKind::kFp16 ? 0 : 1);
  put_u32(out, static_cast<std::uint32_t>(state.size()));

  for (const auto& [name, tensor] : state) {
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    put_u32(out, static_cast<std::uint32_t>(tensor.shape().rank()));
    for (const std::size_t d : tensor.shape().dims()) {
      put_u32(out, static_cast<std::uint32_t>(d));
    }

    if (kind == QuantKind::kFp16) {
      for (std::size_t i = 0; i < tensor.numel(); ++i) {
        const std::uint16_t h = fp32_to_fp16(tensor[i]);
        out.push_back(static_cast<std::uint8_t>(h & 0xFF));
        out.push_back(static_cast<std::uint8_t>(h >> 8));
      }
    } else {
      const float scale = tensor.abs_max() / 127.0f;
      put_f32(out, scale);
      for (std::size_t i = 0; i < tensor.numel(); ++i) {
        const float q = scale > 0.0f ? std::round(tensor[i] / scale) : 0.0f;
        out.push_back(static_cast<std::uint8_t>(static_cast<std::int8_t>(
            std::max(-127.0f, std::min(127.0f, q)))));
      }
    }
  }
  return out;
}

StateDict dequantize_state(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  SUBFEDAVG_CHECK(reader.u32() == kMagic, "bad quantized-update magic");
  const QuantKind kind = reader.u8() == 0 ? QuantKind::kFp16 : QuantKind::kInt8;
  const std::uint32_t entries = reader.u32();

  StateDict state;
  for (std::uint32_t e = 0; e < entries; ++e) {
    const std::uint32_t name_len = reader.u32();
    std::string name = reader.str(name_len);
    const std::uint32_t rank = reader.u32();
    std::vector<std::size_t> dims(rank);
    for (auto& d : dims) d = reader.u32();
    Tensor tensor{Shape(dims)};

    if (kind == QuantKind::kFp16) {
      for (std::size_t i = 0; i < tensor.numel(); ++i) {
        tensor[i] = fp16_to_fp32(reader.u16());
      }
    } else {
      const float scale = reader.f32();
      for (std::size_t i = 0; i < tensor.numel(); ++i) {
        tensor[i] = scale * static_cast<float>(static_cast<std::int8_t>(reader.u8()));
      }
    }
    state.add(std::move(name), std::move(tensor));
  }
  SUBFEDAVG_CHECK(reader.done(), "trailing bytes in quantized update");
  return state;
}

std::size_t quantized_payload_bytes(const StateDict& state, QuantKind kind) {
  std::size_t bytes = 0;
  for (const auto& [name, tensor] : state) {
    if (kind == QuantKind::kFp16) {
      bytes += tensor.numel() * 2;
    } else {
      bytes += tensor.numel() + 4;  // int8 values + per-tensor scale
    }
  }
  return bytes;
}

}  // namespace subfed
