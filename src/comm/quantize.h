// Lossy update quantization — the classic communication-reduction lever the
// paper contrasts with (Konečný et al. 2016's structured/sketched updates).
// Orthogonal to pruning: a masked update's kept values can additionally be
// sent at reduced precision. Provided for the comm ablation and as a
// building block for bandwidth-constrained deployments.
//
// Two codecs:
//   kFp16 — IEEE-754 half precision (round-to-nearest-even), 2 bytes/value.
//   kInt8 — per-tensor affine quantization x ≈ scale · q with q ∈ [−127,127],
//           scale = max|x| / 127, 1 byte/value + 4-byte scale per tensor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/parameter.h"

namespace subfed {

enum class QuantKind { kFp16, kInt8 };

/// Quantizes every tensor of `state`. The result decodes with
/// dequantize_state; names/shapes are preserved exactly, values lossily.
std::vector<std::uint8_t> quantize_state(const StateDict& state, QuantKind kind);

/// Inverse of quantize_state.
StateDict dequantize_state(std::span<const std::uint8_t> bytes);

/// Bytes the codec charges for this state (values only; the self-describing
/// header is excluded, mirroring comm/serialize.h's payload_bytes).
std::size_t quantized_payload_bytes(const StateDict& state, QuantKind kind);

/// Scalar helpers (exposed for tests).
std::uint16_t fp32_to_fp16(float value) noexcept;
float fp16_to_fp32(std::uint16_t half) noexcept;

}  // namespace subfed
