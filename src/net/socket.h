// TCP listener/connection wrappers and the coordinator↔worker message frame.
//
// The wire protocol is deliberately thin: a NetFrame is a fixed header
// (magic, kind, tag) followed by one u32-length-prefixed payload — and every
// Exchange payload is an existing comm/channel.h envelope
// (encode_envelope bytes), so the socket layer adds routing, not a second
// serialization format.
//
//   worker → coordinator   kHello                    "I can serve exchanges"
//   coordinator → worker   kSetup      spec kv blob  session configuration
//   coordinator → worker   kExchange   envelope      tag = request index
//   worker → coordinator   kReply      envelope      tag echoes the request
//   coordinator → worker   kRunSpec    spec kv blob  whole-run sweep sharding
//   worker → coordinator   kRunResult  result JSON   tag echoes the request
//   worker → coordinator   kError      error text    the tagged work threw
//   coordinator → worker   kShutdown                 clean end of session
//
// The resident coordinator (serve/server.h) answers operator requests on a
// separate listener with the same framing:
//
//   operator → coordinator kGetModel   client index (ASCII) or empty = global
//   coordinator → operator kReply      u32 section count + encoded sections
//   operator → coordinator kStatus                   live run metrics
//   coordinator → operator kReply      JSON text     round counter, ledger, …
//   operator → coordinator kCheckpointNow            snapshot the session now
//   operator → coordinator kShutdown                 checkpoint + clean exit
//   operator → coordinator kMetrics                  telemetry registry snapshot
//   coordinator → operator kReply      JSON text     counters/gauges/timers
//   operator → coordinator kMetricsTail cursor (ASCII) page the JSONL event log
//   coordinator → operator kReply      JSONL chunk   tag = next cursor
//
// kMetricsTail pages the coordinator's append-only event log by logical byte
// offset: the request payload is an ASCII-decimal cursor (empty = 0), the
// reply payload is a whole-lines JSONL chunk starting there, and the reply tag
// is the cursor for the next request. An empty reply means caught up; cursors
// are durable across server restarts and log rotation (telemetry/event_log.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/io.h"

namespace subfed::net {

struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port" ("127.0.0.1:9000", "0.0.0.0:0"). Throws CheckError with
/// the offending text on anything else.
HostPort parse_host_port(const std::string& text);

/// A connected TCP stream. Move-only RAII over the fd; TCP_NODELAY is set on
/// every connection (frames are latency-bound round-trip messages).
class TcpConn {
 public:
  TcpConn() = default;
  /// Adopts an already-connected fd (listener accept path).
  explicit TcpConn(int fd) noexcept : fd_(fd) {}
  ~TcpConn() { close(); }

  TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Nonblocking connect with a deadline: returns an invalid TcpConn on
  /// refusal, timeout, or resolution failure (reconnect loops poll this).
  static TcpConn connect(const HostPort& addr, const Deadline& deadline);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Bound, listening TCP socket. Port 0 binds an ephemeral port — port()
/// reports the real one, which is how tests and in-process workers rendezvous
/// without hard-coding ports.
class TcpListener {
 public:
  /// Binds and listens; throws CheckError when the address is unusable (busy
  /// port, bad host) — a coordinator that cannot listen must fail at startup,
  /// not at round one.
  explicit TcpListener(const HostPort& addr, int backlog = 64);
  ~TcpListener() { close(); }

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&&) = delete;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  /// "host:port" with the bound port resolved — what workers connect to.
  std::string endpoint() const { return host_ + ":" + std::to_string(port_); }
  int fd() const noexcept { return fd_; }

  /// Accepts one connection, waiting at most until the deadline (default: a
  /// poll-once, don't wait). Invalid TcpConn when nothing arrived.
  TcpConn accept(const Deadline& deadline = Deadline::after_ms(1));
  void close() noexcept;

 private:
  int fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
};

enum class FrameKind : std::uint8_t {
  kHello = 1,
  kSetup = 2,
  kExchange = 3,
  kReply = 4,
  kRunSpec = 5,
  kRunResult = 6,
  kError = 7,
  kShutdown = 8,
  kGetModel = 9,
  kStatus = 10,
  kCheckpointNow = 11,
  kMetrics = 12,
  kMetricsTail = 13,
};

struct NetFrame {
  FrameKind kind = FrameKind::kHello;
  std::uint64_t tag = 0;  ///< request index; replies echo it back
  std::vector<std::uint8_t> payload;
};

/// Writes/reads one frame. False on a dead peer, a deadline expiry, or (recv)
/// a malformed header — the connection is unusable afterwards either way. An
/// oversized payload length is rejected before any allocation.
bool send_frame(const TcpConn& conn, FrameKind kind, std::uint64_t tag,
                std::span<const std::uint8_t> payload, const Deadline& deadline = {});
bool send_frame(const TcpConn& conn, const NetFrame& frame, const Deadline& deadline = {});
bool recv_frame(const TcpConn& conn, NetFrame* out, const Deadline& deadline = {},
                std::size_t max_payload = kMaxFrameBytes);

}  // namespace subfed::net
