#include "net/io.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace subfed::net {

Deadline Deadline::after_ms(long long ms) {
  Deadline d;
  if (ms > 0) {
    d.armed_ = true;
    d.when_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  }
  return d;
}

bool Deadline::expired() const {
  return armed_ && std::chrono::steady_clock::now() >= when_;
}

int Deadline::remaining_ms() const {
  if (!armed_) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      when_ - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

namespace {

/// Waits until `fd` is ready for `events` or the deadline passes. True when
/// the following syscall may proceed (also on POLLHUP/POLLERR — the syscall
/// itself then observes the EOF or error, which is the diagnosis we want).
bool wait_single(int fd, short events, const Deadline& deadline) {
  while (true) {
    if (deadline.expired()) return false;
    struct pollfd pfd = {fd, events, 0};
    const int ready = ::poll(&pfd, 1, deadline.remaining_ms());
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;  // timed out
    return true;
  }
}

}  // namespace

bool write_exact(int fd, const void* data, std::size_t n, const Deadline& deadline) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    if (!deadline.unlimited() && !wait_single(fd, POLLOUT, deadline)) return false;
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE (→ false), not
    // as a process-killing SIGPIPE. Pipes say ENOTSOCK; retry with write().
    ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written < 0 && errno == ENOTSOCK) written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t n, const Deadline& deadline) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    if (!deadline.unlimited() && !wait_single(fd, POLLIN, deadline)) return false;
    const ssize_t got = ::read(fd, p, n);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // EOF (dead peer) or error
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_frame(int fd, std::span<const std::uint8_t> bytes, const Deadline& deadline) {
  const telemetry::StopWatch watch;
  std::uint8_t prefix[4];
  const std::uint32_t size = static_cast<std::uint32_t>(bytes.size());
  for (int i = 0; i < 4; ++i) prefix[i] = static_cast<std::uint8_t>(size >> (8 * i));
  const bool ok = write_exact(fd, prefix, 4, deadline) &&
                  write_exact(fd, bytes.data(), bytes.size(), deadline);
  if (ok && watch.armed()) {
    static telemetry::Counter& frames = telemetry::counter("net.frames_sent");
    static telemetry::Counter& sent = telemetry::counter("net.bytes_sent");
    static telemetry::Histogram& sizes = telemetry::histogram("net.frame_bytes_sent");
    static telemetry::Timer& time = telemetry::timer("net.write_seconds");
    frames.add();
    sent.add(bytes.size() + 4);
    sizes.record(bytes.size());
    time.add_seconds(watch.seconds());
  }
  return ok;
}

bool read_frame(int fd, std::vector<std::uint8_t>* out, const Deadline& deadline,
                std::size_t max_bytes) {
  const telemetry::StopWatch watch;
  std::uint8_t prefix[4];
  if (!read_exact(fd, prefix, 4, deadline)) return false;
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) size |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  if (size > max_bytes) return false;  // reject before the allocation, not after
  out->resize(size);
  const bool ok = read_exact(fd, out->data(), size, deadline);
  if (ok && watch.armed()) {
    static telemetry::Counter& frames = telemetry::counter("net.frames_received");
    static telemetry::Counter& received = telemetry::counter("net.bytes_received");
    static telemetry::Histogram& sizes = telemetry::histogram("net.frame_bytes_received");
    static telemetry::Timer& time = telemetry::timer("net.read_seconds");
    frames.add();
    received.add(size + 4ULL);
    sizes.record(size);
    time.add_seconds(watch.seconds());
  }
  return ok;
}

std::vector<std::size_t> wait_readable(std::span<const int> fds, int timeout_ms) {
  std::vector<struct pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) pfds.push_back({fd, POLLIN, 0});
  while (true) {
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      SUBFEDAVG_CHECK(false, "poll() failed: errno " << errno);
    }
    break;
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) out.push_back(i);
  }
  return out;
}

}  // namespace subfed::net
