// File-descriptor I/O shared by the pipe (subprocess) and socket (tcp)
// transports: exact-length reads/writes, u32-length-prefixed frames, poll
// readiness, and monotonic deadlines.
//
// Everything here reports failure by return value (EOF, a dead peer, or an
// expired deadline all look the same to the caller: the exchange is over);
// only programmer errors throw. That keeps the transports' failure paths
// allocation-free and lets a dead socket map onto the existing straggler
// eviction machinery instead of unwinding the round.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace subfed::net {

/// Frames larger than this are rejected BEFORE allocating — a corrupted or
/// hostile length prefix must not become a multi-gigabyte resize.
constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 30;

/// A monotonic-clock deadline. Default-constructed = no deadline (waits
/// forever); after_ms(0) also means no deadline, so configuration knobs can
/// use 0 as "off".
class Deadline {
 public:
  Deadline() = default;

  static Deadline after_ms(long long ms);

  bool unlimited() const noexcept { return !armed_; }
  bool expired() const;
  /// Milliseconds left, clamped to >= 0; -1 when unlimited (poll() style).
  int remaining_ms() const;

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point when_{};
};

/// Writes/reads exactly `n` bytes, retrying on EINTR. False on error, EOF, or
/// an expired deadline. The deadline is enforced with poll() before each
/// syscall, so a peer that stops mid-frame cannot park the caller forever.
bool write_exact(int fd, const void* data, std::size_t n,
                 const Deadline& deadline = {});
bool read_exact(int fd, void* data, std::size_t n, const Deadline& deadline = {});

/// u32-little-endian length prefix, then the bytes — the framing both the
/// subprocess pipes and the tcp message layer speak.
bool write_frame(int fd, std::span<const std::uint8_t> bytes,
                 const Deadline& deadline = {});
/// Reads one frame into `out`. A length prefix above `max_bytes` fails
/// without allocating.
bool read_frame(int fd, std::vector<std::uint8_t>* out, const Deadline& deadline = {},
                std::size_t max_bytes = kMaxFrameBytes);

/// Polls every fd for readability (POLLIN; POLLHUP/POLLERR count too — they
/// mean "read now and observe the EOF/error") and returns the indices into
/// `fds` that are ready, in fds order. timeout_ms as in poll(): -1 waits
/// forever, 0 returns immediately. Retries EINTR. Throws CheckError only on a
/// poll() failure that cannot be retried.
std::vector<std::size_t> wait_readable(std::span<const int> fds, int timeout_ms);

}  // namespace subfed::net
