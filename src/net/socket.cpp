#include "net/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace subfed::net {

namespace {

constexpr std::uint32_t kNetMagic = 0x53464E54;  // "SFNT"

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK)) >= 0;
}

/// getaddrinfo over the numeric-friendly path; the caller owns the result.
struct addrinfo* resolve(const HostPort& addr) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* result = nullptr;
  const std::string service = std::to_string(addr.port);
  if (::getaddrinfo(addr.host.c_str(), service.c_str(), &hints, &result) != 0) {
    return nullptr;
  }
  return result;
}

}  // namespace

HostPort parse_host_port(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  SUBFEDAVG_CHECK(colon != std::string::npos && colon > 0 && colon + 1 < text.size(),
                  "expected host:port, got '" << text << "'");
  HostPort out;
  out.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  unsigned long port = 0;
  for (const char c : port_text) {
    SUBFEDAVG_CHECK(c >= '0' && c <= '9', "bad port in '" << text << "'");
    port = port * 10 + static_cast<unsigned long>(c - '0');
    SUBFEDAVG_CHECK(port <= 65535, "port out of range in '" << text << "'");
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConn::close() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

TcpConn TcpConn::connect(const HostPort& addr, const Deadline& deadline) {
  struct addrinfo* info = resolve(addr);
  if (info == nullptr) return {};
  TcpConn conn;
  for (struct addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // Nonblocking connect so a black-holed peer honors the deadline: start
    // the handshake, poll for writability, then read the outcome from
    // SO_ERROR and restore blocking mode for the framing layer.
    if (!set_nonblocking(fd, true)) {
      ::close(fd);
      continue;
    }
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      while (true) {
        const int ready = ::poll(&pfd, 1, deadline.remaining_ms());
        if (ready < 0 && errno == EINTR) continue;
        rc = ready == 1 ? 0 : -1;
        break;
      }
      if (rc == 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) rc = -1;
      }
    }
    if (rc != 0 || !set_nonblocking(fd, false)) {
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    conn = TcpConn(fd);
    break;
  }
  ::freeaddrinfo(info);
  return conn;
}

TcpListener::TcpListener(const HostPort& addr, int backlog) : host_(addr.host) {
  struct addrinfo* info = resolve(addr);
  SUBFEDAVG_CHECK(info != nullptr, "cannot resolve listen address '" << addr.host << "'");
  std::string error = "cannot bind " + addr.host + ":" + std::to_string(addr.port);
  for (struct addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 || ::listen(fd, backlog) != 0) {
      error += std::string(": ") + std::strerror(errno);
      ::close(fd);
      continue;
    }
    fd_ = fd;
    break;
  }
  ::freeaddrinfo(info);
  SUBFEDAVG_CHECK(fd_ >= 0, error);
  // Resolve the actual port (ephemeral binds ask for 0).
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), host_(std::move(other.host_)), port_(other.port_) {
  other.fd_ = -1;
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

TcpConn TcpListener::accept(const Deadline& deadline) {
  while (true) {
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, deadline.remaining_ms());
    if (ready < 0 && errno == EINTR) continue;
    if (ready != 1) return {};
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return {};
    }
    set_nodelay(fd);
    return TcpConn(fd);
  }
}

bool send_frame(const TcpConn& conn, FrameKind kind, std::uint64_t tag,
                std::span<const std::uint8_t> payload, const Deadline& deadline) {
  if (!conn.valid()) return false;
  std::uint8_t header[13];
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(kNetMagic >> (8 * i));
  header[4] = static_cast<std::uint8_t>(kind);
  for (int i = 0; i < 8; ++i) {
    header[5 + i] = static_cast<std::uint8_t>(tag >> (8 * i));
  }
  return write_exact(conn.fd(), header, sizeof(header), deadline) &&
         write_frame(conn.fd(), payload, deadline);
}

bool send_frame(const TcpConn& conn, const NetFrame& frame, const Deadline& deadline) {
  return send_frame(conn, frame.kind, frame.tag, frame.payload, deadline);
}

bool recv_frame(const TcpConn& conn, NetFrame* out, const Deadline& deadline,
                std::size_t max_payload) {
  if (!conn.valid()) return false;
  std::uint8_t header[13];
  if (!read_exact(conn.fd(), header, sizeof(header), deadline)) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (magic != kNetMagic) return false;
  const std::uint8_t kind = header[4];
  if (kind < static_cast<std::uint8_t>(FrameKind::kHello) ||
      kind > static_cast<std::uint8_t>(FrameKind::kMetricsTail)) {
    return false;
  }
  out->kind = static_cast<FrameKind>(kind);
  out->tag = 0;
  for (int i = 0; i < 8; ++i) {
    out->tag |= static_cast<std::uint64_t>(header[5 + i]) << (8 * i);
  }
  return read_frame(conn.fd(), &out->payload, deadline, max_payload);
}

}  // namespace subfed::net
