#include "serve/session.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <vector>

#include "fl/checkpoint.h"
#include "fl/fedavg.h"
#include "fl/subfedavg.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/parse.h"

namespace subfed {

namespace {

constexpr std::uint32_t kSessionMagic = 0x5346534E;  // "SFSN"
constexpr std::uint32_t kSessionVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_blob(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> blob) {
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    SUBFEDAVG_CHECK(pos_ + 4 <= bytes_.size(), "truncated session checkpoint");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    SUBFEDAVG_CHECK(pos_ + 8 <= bytes_.size(), "truncated session checkpoint");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::span<const std::uint8_t> blob() {
    const std::uint32_t n = u32();
    SUBFEDAVG_CHECK(pos_ + n <= bytes_.size(), "truncated session checkpoint blob");
    std::span<const std::uint8_t> out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SUBFEDAVG_CHECK(f != nullptr, "cannot open session checkpoint: " << path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    SUBFEDAVG_CHECK(false, "cannot size session checkpoint: " << path);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  SUBFEDAVG_CHECK(read == bytes.size(), "short session checkpoint read: " << path);
  return bytes;
}

}  // namespace

FederationSession::FederationSession(FederatedAlgorithm& algorithm, const DriverConfig& config)
    : algorithm_(&algorithm), config_(config) {
  init_streams();
}

std::unique_ptr<FederationSession> FederationSession::from_spec(
    const ExperimentSpec& spec, const FederatedData* shared_data) {
  spec.validate();  // fail fast, before the (expensive) dataset synthesis
  // The spec's telemetry knob overrides the process level (SUBFEDAVG_TELEMETRY)
  // here — the one build path batch runs, the resident server, and tcp worker
  // mirrors all share — so every piece the session builds is instrumented.
  if (!spec.telemetry.empty()) {
    telemetry::set_level(telemetry::parse_level(spec.telemetry));
  }
  std::unique_ptr<FederationSession> session(new FederationSession());
  if (shared_data == nullptr) {
    session->data_ =
        std::make_unique<FederatedData>(spec.dataset_spec(), spec.data_config());
    shared_data = session->data_.get();
  }
  const FlContext ctx = spec.make_context(*shared_data);
  session->owned_algorithm_ = spec.make_algorithm(ctx);
  session->algorithm_ = session->owned_algorithm_.get();

  // Corruption is injected by the channel, but the norm-filter defense (and
  // the corrupted/filtered accounting) lives in the FedAvg-family and
  // Sub-FedAvg aggregation paths; silently running another algorithm "under
  // corruption" at its clean accuracy would poison robustness tables, so
  // reject the combination.
  SUBFEDAVG_CHECK(
      (spec.corrupt_fraction <= 0.0 && spec.robust_filter <= 0.0) ||
          dynamic_cast<const FedAvg*>(session->algorithm_) != nullptr ||
          dynamic_cast<const SubFedAvg*>(session->algorithm_) != nullptr,
      "corrupt_fraction/robust_filter are only honored by the FedAvg "
      "family and Sub-FedAvg; algorithm '"
          << spec.algo << "' does not support them");

  session->config_ = spec.driver_config();
  session->spec_kv_ = spec.to_kv();
  session->init_streams();
  return session;
}

ExperimentSpec FederationSession::mirror_spec(const std::string& kv) {
  ExperimentSpec spec = ExperimentSpec::from_kv(kv);
  // The mirror's channel must materialize payloads exactly like the
  // coordinator's tcp channel does — that's loopback, NOT memory (protocols
  // like MTL put extra sections on a materialized wire) — and it must not
  // open sockets, write the coordinator's files, or stand up its own
  // resident service.
  spec.transport = "loopback";
  spec.listen.clear();
  spec.connect.clear();
  spec.out.clear();
  spec.checkpoint_every = 0;
  spec.checkpoint_path.clear();
  spec.serve = 0;
  spec.status_listen.clear();
  spec.min_participants = 0;
  // The arrival process is coordinator-side state: the worker's mirror runs
  // whatever cohort each exchange names, and a replay file may not even exist
  // on the worker's machine.
  spec.arrivals = 0.0;
  spec.dwell = 0.0;
  spec.arrival_trace.clear();
  return spec;
}

std::unique_ptr<FederationSession> FederationSession::mirror_from_kv(const std::string& kv) {
  return from_spec(mirror_spec(kv));
}

void FederationSession::init_streams() {
  SUBFEDAVG_CHECK(config_.sample_rate > 0.0 && config_.sample_rate <= 1.0,
                  "sample rate " << config_.sample_rate);
  SUBFEDAVG_CHECK(config_.link_spread >= 1.0, "link spread " << config_.link_spread);
  const std::size_t n = algorithm_->num_clients();
  per_round_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.sample_rate * static_cast<double>(n)));
  sample_rng_ = Rng(config_.seed).split("client-sampling");
  dropout_rng_ = Rng(config_.seed).split("client-dropout");
  // The algorithm's channel owns the round-time model (it also needs it for
  // buffered arrival ordering); honor the driver-level spread knob there.
  // The default (1.0) defers to whatever FlContext.link_spread configured, so
  // a direct-API caller's context setting survives a default DriverConfig.
  if (config_.link_spread != 1.0) {
    algorithm_->apply_link_spread(config_.link_spread, config_.seed);
  }

  // Event-driven population: derive the arrival process. The arrival ORDER is
  // an affine permutation of [0, N) — full-coverage, pseudorandom, and O(1)
  // memory at any population size; interarrival TIMES come from either the
  // exponential process (arrival_rate) or an arrival_trace replay file.
  arrived_.clear();
  position_.clear();
  departures_ = {};
  next_arrival_ = 0;
  next_arrival_time_ = 0.0;
  trace_times_.clear();
  event_driven_ = config_.arrival_rate > 0.0 || !config_.arrival_trace.empty();
  if (!config_.arrival_trace.empty()) {
    SUBFEDAVG_CHECK(config_.arrival_rate == 0.0,
                    "arrival_trace and arrival_rate are mutually exclusive");
    std::ifstream file(config_.arrival_trace);
    SUBFEDAVG_CHECK(file.good(),
                    "cannot read arrival trace '" << config_.arrival_trace << "'");
    std::string line;
    while (std::getline(file, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
      const std::size_t start = line.find_first_not_of(' ');
      if (start == std::string::npos || line[start] == '#') continue;
      const double t = parse_double_strict("arrival_trace", line.substr(start));
      SUBFEDAVG_CHECK(t >= 0.0 && (trace_times_.empty() || t >= trace_times_.back()),
                      "arrival trace '" << config_.arrival_trace
                                        << "' timestamps must be non-negative and "
                                           "non-decreasing; offending entry: " << t);
      trace_times_.push_back(t);
    }
    SUBFEDAVG_CHECK(!trace_times_.empty(),
                    "arrival trace '" << config_.arrival_trace << "' has no timestamps");
  }
  if (event_driven_) {
    SUBFEDAVG_CHECK(config_.dwell >= 0.0, "dwell " << config_.dwell << " must be >= 0");
    Rng order_rng = Rng(config_.seed).split("arrival-order");
    perm_a_ = 1 + order_rng.uniform_index(n);
    while (std::gcd(perm_a_, static_cast<std::uint64_t>(n)) != 1) {
      perm_a_ = 1 + order_rng.uniform_index(n);
    }
    perm_b_ = order_rng.uniform_index(n);
    if (trace_times_.empty()) {
      arrival_rng_ = Rng(config_.seed).split("arrival-times");
      next_arrival_time_ = -std::log(1.0 - arrival_rng_.uniform()) / config_.arrival_rate;
    } else {
      next_arrival_time_ = trace_times_.front();
    }
  }
}

std::size_t FederationSession::arrival_client(std::size_t i) const noexcept {
  const std::uint64_t n = algorithm_->num_clients();
  return static_cast<std::size_t>((perm_a_ * static_cast<std::uint64_t>(i) + perm_b_) % n);
}

std::size_t FederationSession::arrival_budget() const noexcept {
  const std::size_t n = algorithm_->num_clients();
  return trace_times_.empty() ? n : std::min(n, trace_times_.size());
}

void FederationSession::process_events(double now) {
  const std::size_t budget = arrival_budget();
  while (next_arrival_ < budget && next_arrival_time_ <= now) {
    const std::size_t k = arrival_client(next_arrival_);
    position_[k] = arrived_.size();
    arrived_.push_back(k);
    if (config_.dwell > 0.0) {
      // Per-client stream so one client's stay never perturbs another's.
      Rng dwell_rng = Rng(config_.seed).split("dwell", k);
      const double stay = -config_.dwell * std::log(1.0 - dwell_rng.uniform());
      departures_.push({next_arrival_time_ + stay, k});
    }
    ++next_arrival_;
    if (next_arrival_ < budget) {
      next_arrival_time_ =
          trace_times_.empty()
              ? next_arrival_time_ -
                    std::log(1.0 - arrival_rng_.uniform()) / config_.arrival_rate
              : trace_times_[next_arrival_];
    }
  }
  while (!departures_.empty() && departures_.top().first <= now) {
    const std::size_t k = departures_.top().second;
    departures_.pop();
    const auto it = position_.find(k);
    if (it == position_.end()) continue;
    const std::size_t pos = it->second;
    const std::size_t last = arrived_.back();
    arrived_[pos] = last;
    position_[last] = pos;
    arrived_.pop_back();
    position_.erase(k);
  }
}

bool FederationSession::event_cohort(std::vector<std::size_t>& sampled) {
  const std::size_t budget = arrival_budget();
  process_events(result_.simulated_seconds);
  while (arrived_.empty()) {
    if (next_arrival_ >= budget) return false;  // population drained for good
    // Nobody is present: fast-forward the simulated clock to the next
    // arrival instead of burning empty rounds.
    result_.simulated_seconds = next_arrival_time_;
    process_events(result_.simulated_seconds);
  }
  const std::size_t want = std::min(per_round_, arrived_.size());
  const std::vector<std::size_t> picks =
      sample_rng_.sample_without_replacement(arrived_.size(), want);
  sampled.reserve(want);
  for (const std::size_t i : picks) sampled.push_back(arrived_[i]);
  return true;
}

std::uint64_t FederationSession::total_up_bytes() const noexcept {
  return base_up_bytes_ + algorithm_->ledger().total_up();
}

std::uint64_t FederationSession::total_down_bytes() const noexcept {
  return base_down_bytes_ + algorithm_->ledger().total_down();
}

bool FederationSession::advance_round(RoundObserver* observer) {
  const std::size_t round_index = round_;  // 0-based, what run_round receives
  ++round_;
  last_phases_ = {};  // the round's evaluate() adds its eval share afterwards
  const telemetry::StopWatch sample_watch;
  std::vector<std::size_t> sampled;
  if (event_driven_) {
    if (!event_cohort(sampled)) {
      ++result_.skipped_rounds;
      return false;
    }
  } else {
    const std::size_t n = algorithm_->num_clients();
    sampled = sample_rng_.sample_without_replacement(n, per_round_);
  }

  if (config_.dropout_prob > 0.0) {
    std::vector<std::size_t> alive;
    for (const std::size_t k : sampled) {
      if (dropout_rng_.bernoulli(config_.dropout_prob)) {
        ++result_.dropped_clients;
      } else {
        alive.push_back(k);
      }
    }
    sampled = std::move(alive);
    if (sampled.empty()) {
      // Nobody reported back; the server waits for the next round.
      ++result_.skipped_rounds;
      return false;
    }
  }
  last_phases_.sample = sample_watch.seconds();
  telemetry::record_span("sample", sample_watch);
  if (observer != nullptr) observer->on_round_begin(round_, sampled);
  const std::uint64_t up_before = algorithm_->ledger().total_up();
  const std::uint64_t down_before = algorithm_->ledger().total_down();
  const telemetry::StopWatch round_watch;
  algorithm_->run_round(round_index, sampled);
  // The aggregate phase is the round's wall time NOT spent inside the
  // channel's three phases — i.e. the algorithm's server-side work (mask
  // bookkeeping, aggregation rules). The span is emitted flush against the
  // round's end; the interleaved slices are summed into one block.
  if (round_watch.armed()) {
    const Channel::PhaseSeconds& channel = algorithm_->channel().last_phase_seconds();
    last_phases_.broadcast_encode = channel.encode;
    last_phases_.transport_exchange = channel.exchange;
    last_phases_.collect = channel.collect;
    const double wall = round_watch.seconds();
    last_phases_.aggregate =
        std::max(0.0, wall - channel.encode - channel.exchange - channel.collect);
    if (telemetry::enabled(telemetry::Level::kTrace)) {
      const auto end = std::chrono::steady_clock::now();
      const auto aggregate_span =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(last_phases_.aggregate));
      telemetry::record_span("aggregate", end - aggregate_span, end);
    }
    total_phases_.sample += last_phases_.sample;
    total_phases_.broadcast_encode += last_phases_.broadcast_encode;
    total_phases_.transport_exchange += last_phases_.transport_exchange;
    total_phases_.collect += last_phases_.collect;
    total_phases_.aggregate += last_phases_.aggregate;
  }
  const double simulated = algorithm_->last_round_seconds();
  result_.simulated_seconds += simulated;
  if (observer != nullptr) {
    RoundEndInfo info;
    info.round = round_;
    info.sampled = sampled;
    info.round_up_bytes = algorithm_->ledger().total_up() - up_before;
    info.round_down_bytes = algorithm_->ledger().total_down() - down_before;
    info.round_seconds = simulated;
    observer->on_round_end(info);
  }
  return true;
}

double FederationSession::evaluate(RoundObserver* observer) {
  const telemetry::StopWatch eval_watch;
  const double avg = algorithm_->average_test_accuracy();
  const double eval_seconds = eval_watch.seconds();
  last_phases_.eval += eval_seconds;
  total_phases_.eval += eval_seconds;
  telemetry::record_span("eval", eval_watch);
  result_.curve.push_back({round_, avg});
  if (config_.rounds > 0) {
    SUBFEDAVG_LOG(kInfo) << algorithm_->name() << " round " << round_ << "/"
                         << config_.rounds << " avg personalized acc = " << avg;
  } else {
    SUBFEDAVG_LOG(kInfo) << algorithm_->name() << " round " << round_
                         << " avg personalized acc = " << avg;
  }
  if (observer != nullptr) observer->on_eval(round_, avg);
  return avg;
}

RunResult FederationSession::finish(RoundObserver* observer) {
  result_.final_per_client = algorithm_->all_test_accuracies();
  result_.final_avg_accuracy = 0.0;
  for (const double a : result_.final_per_client) result_.final_avg_accuracy += a;
  if (!result_.final_per_client.empty()) {
    result_.final_avg_accuracy /= static_cast<double>(result_.final_per_client.size());
  }
  result_.up_bytes = total_up_bytes();
  result_.down_bytes = total_down_bytes();
  if (observer != nullptr) observer->on_run_end(result_);
  return result_;
}

RunResult FederationSession::run_to_completion(RoundObserver* observer) {
  SUBFEDAVG_CHECK(config_.rounds > 0, "need at least one round");
  while (round_ < config_.rounds) {
    if (!advance_round(observer)) continue;
    const bool last = round_ == config_.rounds;
    const bool periodic = config_.eval_every > 0 && round_ % config_.eval_every == 0;
    if (last || periodic) evaluate(observer);
  }
  return finish(observer);
}

void FederationSession::save(const std::string& path) {
  SUBFEDAVG_CHECK(!event_driven_,
                  "event-driven sessions (arrivals > 0 or arrival_trace) do not "
                  "checkpoint yet");
  static telemetry::Counter& writes = telemetry::counter("checkpoint.writes");
  static telemetry::Timer& write_time = telemetry::timer("checkpoint.write_seconds");
  writes.add();
  const telemetry::ScopedSpan span("checkpoint_write", &write_time);
  std::vector<std::uint8_t> out;
  put_u32(out, kSessionMagic);
  put_u32(out, kSessionVersion);
  put_blob(out, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(spec_kv_.data()), spec_kv_.size()));
  put_u64(out, round_);
  put_u64(out, result_.dropped_clients);
  put_u64(out, result_.skipped_rounds);
  put_f64(out, result_.simulated_seconds);
  put_u64(out, total_up_bytes());
  put_u64(out, total_down_bytes());
  put_u32(out, static_cast<std::uint32_t>(result_.curve.size()));
  for (const RoundPoint& point : result_.curve) {
    put_u64(out, point.round);
    put_f64(out, point.avg_accuracy);
  }
  put_blob(out, checkpoint_bytes(*algorithm_));

  // Atomic publish: a SIGKILL mid-write must leave the previous checkpoint
  // intact, so the bytes land in a sibling temp file first.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  SUBFEDAVG_CHECK(f != nullptr, "cannot open session checkpoint for writing: " << tmp);
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  SUBFEDAVG_CHECK(written == out.size(), "short session checkpoint write: " << tmp);
  SUBFEDAVG_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot publish session checkpoint " << tmp << " -> " << path);
}

void FederationSession::restore(const std::string& path) {
  SUBFEDAVG_CHECK(!event_driven_,
                  "event-driven sessions (arrivals > 0 or arrival_trace) do not "
                  "checkpoint yet");
  const std::vector<std::uint8_t> bytes = read_file(path);
  Reader reader(bytes);
  SUBFEDAVG_CHECK(reader.u32() == kSessionMagic, "bad session checkpoint magic");
  SUBFEDAVG_CHECK(reader.u32() == kSessionVersion, "unsupported session checkpoint version");
  const std::span<const std::uint8_t> kv = reader.blob();
  const std::string saved_kv(kv.begin(), kv.end());
  SUBFEDAVG_CHECK(spec_kv_.empty() || saved_kv.empty() || saved_kv == spec_kv_,
                  "session checkpoint " << path
                                        << " was written by a different spec — restart the "
                                           "server with the spec it was started with, or "
                                           "remove the checkpoint to begin a fresh federation");
  round_ = reader.u64();
  result_ = RunResult{};
  result_.dropped_clients = reader.u64();
  result_.skipped_rounds = reader.u64();
  result_.simulated_seconds = reader.f64();
  base_up_bytes_ = reader.u64();
  base_down_bytes_ = reader.u64();
  const std::uint32_t points = reader.u32();
  result_.curve.reserve(points);
  for (std::uint32_t i = 0; i < points; ++i) {
    RoundPoint point;
    point.round = reader.u64();
    point.avg_accuracy = reader.f64();
    result_.curve.push_back(point);
  }
  restore_checkpoint_bytes(*algorithm_, reader.blob());
  SUBFEDAVG_CHECK(reader.done(), "trailing bytes in session checkpoint");

  // Replay the sampling/dropout streams through the completed rounds: the
  // engines are derived from the seed alone, so re-issuing the exact draw
  // sequence leaves them in the same state the uninterrupted run's were in —
  // which is what makes round k+1 of a restored session bit-identical.
  init_streams();
  const std::size_t n = algorithm_->num_clients();
  for (std::size_t r = 0; r < round_; ++r) {
    const std::vector<std::size_t> sampled =
        sample_rng_.sample_without_replacement(n, per_round_);
    if (config_.dropout_prob > 0.0) {
      for (std::size_t i = 0; i < sampled.size(); ++i) {
        (void)dropout_rng_.bernoulli(config_.dropout_prob);
      }
    }
  }
}

}  // namespace subfed
