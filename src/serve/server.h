// ServerLoop: the resident federation coordinator.
//
// Batch mode runs a federation and exits; the ServerLoop keeps one alive. It
// multiplexes three event sources over the shared net/io.h poller:
//
//   * worker joins on the tcp transport's listener — workers are admitted
//     (kHello → kSetup handshake) whenever they arrive, exactly as they are
//     between rounds of a batch tcp run;
//   * round ticks — whenever at least `min_participants` workers are
//     connected (and `max_rounds` hasn't been reached), the session advances
//     one buffered round over whoever is present. There is no `rounds=`
//     horizon: the federation runs until an operator stops it;
//   * operator requests on a second listener (`status_listen=`), speaking the
//     same magic+kind+tag framing as the worker protocol: kGetModel returns
//     the current global (or a client's personalized/pruned) model, kStatus
//     returns live run metrics as JSON, kMetrics the telemetry registry
//     snapshot, kMetricsTail pages through the JSONL event log by logical
//     cursor, kCheckpointNow snapshots the session, kShutdown checkpoints and
//     exits cleanly.
//
// The session checkpoints itself every `checkpoint_every=` rounds (spec-
// validated ≥ 1 in serve mode) and once more on clean exit, atomically — so a
// SIGKILL at any point loses at most the rounds since the last snapshot, and
// a restart with the same spec restores mid-federation with the round counter
// (and the served byte totals) continuing monotonically. Reconnecting workers
// re-join the restarted coordinator with the ordinary reconnect-backoff path.
//
// The loop is deliberately single-threaded: rounds and requests interleave at
// round boundaries, so every reply is computed against a consistent
// federation state and the round stream stays deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.h"
#include "serve/session.h"
#include "telemetry/event_log.h"

namespace subfed {

struct ServeOptions {
  ExperimentSpec spec;         ///< serve=1, transport=tcp, checkpoint_every ≥ 1
  std::size_t max_rounds = 0;  ///< stop after N rounds THIS process; 0 = run forever
  long long idle_wait_ms = 200;  ///< poll granularity while waiting for workers
  /// Append-only JSONL event log (telemetry/event_log.h): one record per
  /// round, served incrementally by kMetricsTail. Setting it raises the
  /// telemetry level to at least counters. Empty = no log.
  std::string telemetry_log;
  std::uint64_t telemetry_log_rotate = 8ull << 20;  ///< rotation threshold, bytes
  /// Chrome trace_event JSON written on clean exit from the drained span
  /// buffers. Setting it raises the telemetry level to trace. Empty = none.
  std::string telemetry_trace;
};

class ServerLoop {
 public:
  /// kGetModel/kStatus conditional fetch: a request tag with this bit set
  /// carries, in the low bits, the round stamp of a reply the client already
  /// holds; a matching stamp earns an empty not-modified reply instead of the
  /// payload. Full replies carry the current stamp (round + 1, never 0) as
  /// their reply tag, so clients always learn the stamp to send back —
  /// `fedctl status --watch` polls on exactly this.
  static constexpr std::uint64_t kModelConditionalTag = 1ULL << 63;

  /// Builds (or, when the spec's checkpoint file already exists, restores)
  /// the session and binds both listeners. Throws CheckError on a spec that
  /// fails validation, an unusable address, or a checkpoint written by a
  /// different spec.
  explicit ServerLoop(ServeOptions options);

  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  /// Runs until kShutdown, request_stop(), or max_rounds; snapshots the
  /// session once more on the way out. `observer` (optional) receives the
  /// session's round hooks — tests attach recorders here.
  void run(RoundObserver* observer = nullptr);

  /// Stops the loop at the next event-loop pass (signal-handler safe).
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// Operator request endpoint ("host:port", ephemeral port resolved).
  std::string request_endpoint() const { return request_listener_.endpoint(); }
  /// Worker join endpoint (the tcp transport's listener).
  std::string worker_endpoint() const;

  FederationSession& session() noexcept { return *session_; }
  bool resumed() const noexcept { return resumed_; }
  std::size_t resumed_from() const noexcept { return resumed_from_; }
  std::size_t rounds_this_process() const noexcept { return rounds_this_process_; }
  std::uint64_t requests_served() const noexcept { return requests_served_; }
  /// Times the global model was actually encoded for kGetModel — stays at
  /// one per round however many requests arrive (the round-stamped cache).
  std::size_t model_encodes() const noexcept { return model_encodes_; }
  const std::string& checkpoint_path() const noexcept { return checkpoint_path_; }

  /// The kStatus reply: live run metrics as a JSON object (util/json.h
  /// parses it back). Public so tests can compare against the wire copy.
  std::string status_json() const;

  /// The telemetry event log when --telemetry-log is set, else nullptr.
  telemetry::EventLog* event_log() noexcept { return event_log_.get(); }

 private:
  void wait_for_events();
  void tick_round(RoundObserver* observer);
  void service_requests();
  bool handle_request(net::TcpConn& conn, const net::NetFrame& frame);
  /// Appends one record to the event log when it is open (never throws: a
  /// full disk degrades observability, not the federation).
  void log_event(const std::string& line) noexcept;

  ServeOptions options_;
  std::unique_ptr<FederationSession> session_;
  Transport* transport_ = nullptr;  ///< owned by the session's channel
  net::TcpListener request_listener_;
  std::vector<net::TcpConn> request_conns_;
  std::unique_ptr<telemetry::EventLog> event_log_;
  std::string checkpoint_path_;
  std::size_t min_participants_ = 1;
  std::atomic<bool> stop_{false};
  bool resumed_ = false;
  std::size_t resumed_from_ = 0;
  std::size_t rounds_this_process_ = 0;
  std::uint64_t requests_served_ = 0;
  std::size_t snapshots_ = 0;
  double wall_seconds_ticking_ = 0.0;  ///< host time spent inside round ticks
  std::size_t last_eval_round_ = 0;
  double last_eval_accuracy_ = 0.0;
  /// Round-stamped kGetModel byte cache: the global model encoded at
  /// model_cache_round_, served verbatim until the session's round advances.
  std::vector<std::uint8_t> model_cache_;
  std::size_t model_cache_round_ = static_cast<std::size_t>(-1);
  std::size_t model_encodes_ = 0;
};

}  // namespace subfed
