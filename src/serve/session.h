// FederationSession: one federation, advanced one round at a time.
//
// The session is the piece execute_experiment and the resident server share:
// it owns (or borrows) the algorithm plus every bit of round-loop state the
// old monolithic run_federation kept in locals — the sampling and dropout RNG
// streams, the round counter, the accuracy curve, the dropout/skip accounting
// and the simulated clock — so a federation can be
//
//   * run to completion in one call (batch mode: run_to_completion is
//     bit-identical to the pre-session run_federation loop),
//   * stepped round by round under external control (the resident server
//     ticks advance_round whenever enough workers are connected), and
//   * checkpointed/restored MID-FEDERATION: save() wraps the algorithm's
//     versioned checkpoint container with the session's own round counter and
//     accounting, and restore() replays the RNG streams' draws for the
//     completed rounds so round k+1 of a restored session is bit-identical to
//     round k+1 of an uninterrupted run.
//
// from_spec() is the single spec→running-federation build path; the tcp
// worker's mirror (fl/worker.cpp) goes through mirror_from_kv() so both sides
// of a remote federation are built by the same code.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fl/experiment.h"
#include "util/rng.h"

namespace subfed {

class FederationSession {
 public:
  /// Borrows an externally owned algorithm (run_federation's path). The
  /// algorithm must outlive the session. Honors config.link_spread exactly
  /// like the old driver loop (a non-default value rebuilds the link fleet).
  FederationSession(FederatedAlgorithm& algorithm, const DriverConfig& config);

  /// The spec→running-federation build path shared by execute_experiment, the
  /// resident server, and the tcp worker's mirror: synthesizes the federation
  /// data (unless `shared_data` provides a cached copy built from THIS spec's
  /// dataset_spec()/data_config()), builds the context and the algorithm
  /// through the registry, and wires the driver config. Validates the spec
  /// first (throws CheckError on misconfiguration, including the
  /// corruption-knobs-on-unsupporting-algorithm rule).
  static std::unique_ptr<FederationSession> from_spec(
      const ExperimentSpec& spec, const FederatedData* shared_data = nullptr);

  /// The worker-mirror spec for a coordinator's session blob: the same
  /// federation rebuilt for the connect side — loopback channel (payloads
  /// materialize exactly like the coordinator's tcp channel, without opening
  /// sockets), no coordinator-side outputs, no resident service.
  static ExperimentSpec mirror_spec(const std::string& kv);
  /// from_spec over mirror_spec: how a tcp worker builds its federation from
  /// the kSetup blob.
  static std::unique_ptr<FederationSession> mirror_from_kv(const std::string& kv);

  FederationSession(const FederationSession&) = delete;
  FederationSession& operator=(const FederationSession&) = delete;

  FederatedAlgorithm& algorithm() noexcept { return *algorithm_; }
  const DriverConfig& config() const noexcept { return config_; }
  /// Rounds advanced so far (including dropout-skipped ones) — the 1-based
  /// number of the most recently finished round, monotone across restores.
  std::size_t round() const noexcept { return round_; }
  /// Event-driven mode only: clients currently arrived and not departed
  /// (always 0 in the static-population default).
  std::size_t arrived_clients() const noexcept { return arrived_.size(); }
  /// True when arrivals come over simulated time — from the exponential
  /// process (arrivals > 0) or an arrival_trace replay file.
  bool event_driven() const noexcept { return event_driven_; }

  /// Host wall-clock phase breakdown of the round loop, in seconds — the six
  /// phases the telemetry trace spans record. All zeros when telemetry is off
  /// (the stopwatches never read the clock), so the accounting itself is
  /// near-free when disabled. `aggregate` is the round's wall time not spent
  /// in the channel's encode/exchange/collect phases — i.e. the algorithm's
  /// server-side work.
  struct RoundPhases {
    double sample = 0.0;             ///< cohort sampling + dropout draws
    double broadcast_encode = 0.0;   ///< channel broadcast-encode fan-out
    double transport_exchange = 0.0; ///< transport round-trip (client compute)
    double collect = 0.0;            ///< reply decode + round bookkeeping
    double aggregate = 0.0;          ///< algorithm server-side aggregation
    double eval = 0.0;               ///< full-federation evaluation passes
  };
  /// Most recent round (its evaluation included when one ran after it).
  const RoundPhases& last_phases() const noexcept { return last_phases_; }
  /// Accumulated across every round this session advanced.
  const RoundPhases& total_phases() const noexcept { return total_phases_; }
  /// Round-loop accounting so far (curve, dropout casualties, simulated
  /// clock). up/down byte totals are only filled in by finish().
  const RunResult& progress() const noexcept { return result_; }
  /// Cumulative federation traffic: the live ledger plus the totals carried
  /// over from restored checkpoints — the monotone counters kStatus reports.
  std::uint64_t total_up_bytes() const noexcept;
  std::uint64_t total_down_bytes() const noexcept;

  /// Advances one round: samples clients, applies dropout, runs the
  /// algorithm's round, fires `observer`'s begin/end hooks. Returns false when
  /// every sampled client dropped out (the round is counted but skipped —
  /// neither hook fires, matching the old driver loop). Does NOT evaluate.
  bool advance_round(RoundObserver* observer = nullptr);

  /// Full-federation evaluation: appends a curve point for the current round,
  /// logs it, fires on_eval. Returns the average personalized accuracy.
  double evaluate(RoundObserver* observer = nullptr);

  /// Fills the final per-client accuracies and byte totals, fires on_run_end,
  /// and returns the completed result. The session stays steppable.
  RunResult finish(RoundObserver* observer = nullptr);

  /// Batch mode: advance to config.rounds, evaluating every eval_every rounds
  /// and after the last round, then finish. Bit-identical to the historical
  /// run_federation loop. Throws CheckError when config.rounds == 0 (a
  /// resident session has no horizon — step it with advance_round instead).
  RunResult run_to_completion(RoundObserver* observer = nullptr);

  /// Snapshots the session — round counter, accounting, cumulative traffic,
  /// and the algorithm's full checkpoint sections — to `path`, atomically
  /// (temp file + rename, so a crash mid-write can never corrupt the latest
  /// checkpoint). Throws CheckError on I/O failure.
  void save(const std::string& path);

  /// Inverse of save into a session built from the SAME spec/config: restores
  /// the algorithm state, the round counter and accounting, and replays the
  /// sampling/dropout RNG streams through the completed rounds so the next
  /// advance_round is bit-identical to an uninterrupted run's. Throws
  /// CheckError on a corrupt file, an algorithm mismatch, or (when both
  /// sessions carry spec blobs) a spec mismatch.
  void restore(const std::string& path);

 private:
  FederationSession() = default;

  void init_streams();

  /// Event-driven mode: drains arrival/departure events up to the simulated
  /// clock (fast-forwarding to the next arrival when nobody is present) and
  /// samples this round's cohort among arrived clients. Returns false when
  /// the population has drained — every client arrived and departed.
  bool event_cohort(std::vector<std::size_t>& sampled);
  /// Applies every arrival, then every departure, with timestamp <= now
  /// (arrivals first, so a client arriving as another departs is available).
  void process_events(double now);
  /// i-th arriving client: an affine permutation of [0, N) — O(1) memory at
  /// any population size.
  std::size_t arrival_client(std::size_t i) const noexcept;
  /// Total arrivals this session will ever issue: the population, capped at
  /// the arrival-trace line count when replaying a trace.
  std::size_t arrival_budget() const noexcept;

  // Owned storage when built from a spec (teardown order: algorithm first —
  // it holds a pointer into data_).
  std::unique_ptr<const FederatedData> data_;
  std::unique_ptr<FederatedAlgorithm> owned_algorithm_;
  FederatedAlgorithm* algorithm_ = nullptr;

  DriverConfig config_;
  std::string spec_kv_;  ///< to_kv of the building spec; empty when borrowed
  std::size_t per_round_ = 1;  ///< sampled clients per round

  Rng sample_rng_{0};
  Rng dropout_rng_{0};

  // Event-driven population state (event_driven_; all O(active)).
  bool event_driven_ = false;     ///< arrivals > 0 or an arrival_trace replay
  std::vector<double> trace_times_;  ///< arrival_trace timestamps (sorted)
  Rng arrival_rng_{0};            ///< exponential interarrival draws
  std::uint64_t perm_a_ = 1;      ///< affine arrival-order permutation σ(i) = a·i + b mod N
  std::uint64_t perm_b_ = 0;
  std::size_t next_arrival_ = 0;  ///< arrivals issued so far
  double next_arrival_time_ = 0.0;
  std::vector<std::size_t> arrived_;  ///< present clients, swap-removed on departure
  std::unordered_map<std::size_t, std::size_t> position_;  ///< client → arrived_ index
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>,
                      std::greater<std::pair<double, std::size_t>>>
      departures_;

  std::size_t round_ = 0;
  RunResult result_;
  RoundPhases last_phases_;
  RoundPhases total_phases_;
  /// Traffic carried over from restored checkpoints (the live ledger restarts
  /// at zero after a crash; these keep the served counters monotone).
  std::uint64_t base_up_bytes_ = 0;
  std::uint64_t base_down_bytes_ = 0;
};

}  // namespace subfed
