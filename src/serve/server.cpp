#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>
#include <sstream>

#include "comm/serialize.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace subfed {

namespace {

void append_json_string(std::ostringstream& os, const std::string& value) {
  os << '"';
  for (const char c : value) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// kGetModel reply: u32 section count, then u32-length-prefixed
/// encode_update blobs (the checkpoint container's section wire format).
std::vector<std::uint8_t> encode_sections(const std::vector<StateDict>& sections) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(sections.size()));
  for (const StateDict& section : sections) {
    const std::vector<std::uint8_t> blob = encode_update(section, nullptr);
    put_u32(out, static_cast<std::uint32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

net::Deadline request_io_deadline() { return net::Deadline::after_ms(5000); }

/// Largest kMetricsTail reply chunk: big enough to drain thousands of round
/// records per page, small enough to never stress the framing layer.
constexpr std::size_t kTailChunkBytes = 256 * 1024;

/// Captures the round-end/eval facts tick_round logs, chained in front of the
/// caller's observer so recording never changes what tests/operators see.
class RoundRecorder final : public RoundObserver {
 public:
  void on_round_end(const RoundEndInfo& info) override {
    saw_round_ = true;
    sampled_ = info.sampled.size();
    up_bytes_ = info.round_up_bytes;
    down_bytes_ = info.round_down_bytes;
    round_seconds_ = info.round_seconds;
  }
  void on_eval(std::size_t round, double avg_accuracy) override {
    (void)round;
    saw_eval_ = true;
    accuracy_ = avg_accuracy;
  }

  bool saw_round() const noexcept { return saw_round_; }
  std::size_t sampled() const noexcept { return sampled_; }
  std::uint64_t up_bytes() const noexcept { return up_bytes_; }
  std::uint64_t down_bytes() const noexcept { return down_bytes_; }
  double round_seconds() const noexcept { return round_seconds_; }
  bool saw_eval() const noexcept { return saw_eval_; }
  double accuracy() const noexcept { return accuracy_; }

 private:
  bool saw_round_ = false;
  std::size_t sampled_ = 0;
  std::uint64_t up_bytes_ = 0;
  std::uint64_t down_bytes_ = 0;
  double round_seconds_ = 0.0;
  bool saw_eval_ = false;
  double accuracy_ = 0.0;
};

}  // namespace

ServerLoop::ServerLoop(ServeOptions options)
    : options_(std::move(options)),
      session_(FederationSession::from_spec(options_.spec)),
      request_listener_(net::parse_host_port(options_.spec.status_listen)) {
  SUBFEDAVG_CHECK(options_.spec.serve == 1,
                  "ServerLoop needs a serve=1 spec (got serve=" << options_.spec.serve << ")");
  transport_ = session_->algorithm().channel().transport();
  SUBFEDAVG_CHECK(transport_ != nullptr && transport_->remote(),
                  "ServerLoop needs a remote (tcp) transport");
  checkpoint_path_ = options_.spec.resolved_checkpoint_path();
  // buffer_k is the natural quorum: a buffered round closes on its first
  // buffer_k replies, so that many connected workers keep a round from
  // stalling on an empty fleet. min_participants overrides it for operators
  // that want a larger (or smaller) bar.
  min_participants_ = options_.spec.min_participants > 0
                          ? options_.spec.min_participants
                          : std::max<std::size_t>(1, options_.spec.buffer_k);
  if (std::filesystem::exists(checkpoint_path_)) {
    session_->restore(checkpoint_path_);
    resumed_ = true;
    resumed_from_ = session_->round();
    SUBFEDAVG_LOG(kInfo) << "serve: resumed federation at round " << resumed_from_
                         << " from " << checkpoint_path_;
  }
  // Observability flags only ever RAISE the level: --telemetry-log needs the
  // counters tier for phase stopwatches, --telemetry-trace the span buffers.
  if (!options_.telemetry_trace.empty() &&
      !telemetry::enabled(telemetry::Level::kTrace)) {
    telemetry::set_level(telemetry::Level::kTrace);
  }
  if (!options_.telemetry_log.empty()) {
    if (!telemetry::enabled(telemetry::Level::kCounters)) {
      telemetry::set_level(telemetry::Level::kCounters);
    }
    event_log_ = std::make_unique<telemetry::EventLog>(options_.telemetry_log,
                                                       options_.telemetry_log_rotate);
    std::ostringstream os;
    os << "{\"event\": " << (resumed_ ? "\"resume\"" : "\"start\"")
       << ", \"round\": " << session_->round()
       << ", \"checkpoint_path\": ";
    append_json_string(os, checkpoint_path_);
    os << "}";
    log_event(os.str());
  }
}

std::string ServerLoop::worker_endpoint() const { return transport_->endpoint(); }

void ServerLoop::log_event(const std::string& line) noexcept {
  if (!event_log_) return;
  try {
    event_log_->append(line);
  } catch (const std::exception& e) {
    SUBFEDAVG_LOG(kWarn) << "serve: telemetry log append failed: " << e.what();
  }
}

std::string ServerLoop::status_json() const {
  const RunResult& progress = session_->progress();
  const Channel& channel = session_->algorithm().channel();
  const double rounds_per_sec =
      wall_seconds_ticking_ > 0.0
          ? static_cast<double>(rounds_this_process_) / wall_seconds_ticking_
          : 0.0;
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"algorithm\": ";
  append_json_string(os, session_->algorithm().name());
  os << ",\n  \"round\": " << session_->round()
     << ",\n  \"rounds_this_process\": " << rounds_this_process_
     << ",\n  \"rounds_per_sec\": " << rounds_per_sec
     << ",\n  \"resumed_from\": " << resumed_from_
     << ",\n  \"workers\": " << transport_->connected_peers()
     << ",\n  \"min_participants\": " << min_participants_
     << ",\n  \"up_bytes\": " << session_->total_up_bytes()
     << ",\n  \"down_bytes\": " << session_->total_down_bytes()
     << ",\n  \"total_bytes\": " << session_->total_up_bytes() + session_->total_down_bytes()
     << ",\n  \"simulated_seconds\": " << progress.simulated_seconds
     << ",\n  \"dropped_clients\": " << progress.dropped_clients
     << ",\n  \"skipped_rounds\": " << progress.skipped_rounds
     << ",\n  \"stale_updates\": " << channel.stale_updates()
     << ",\n  \"evicted_updates\": " << channel.evicted_updates()
     << ",\n  \"parked_updates\": " << channel.parked_updates()
     << ",\n  \"last_eval_round\": " << last_eval_round_
     << ",\n  \"last_eval_accuracy\": " << last_eval_accuracy_
     << ",\n  \"snapshots\": " << snapshots_
     << ",\n  \"checkpoint_path\": ";
  append_json_string(os, checkpoint_path_);
  os << ",\n  \"telemetry_level\": ";
  append_json_string(os, telemetry::level_name(telemetry::level()));
  os << ",\n  \"requests_served\": " << requests_served_ << "\n}\n";
  return os.str();
}

void ServerLoop::run(RoundObserver* observer) {
  SUBFEDAVG_LOG(kInfo) << "serve: workers join " << worker_endpoint() << "; requests on "
                       << request_endpoint() << " (round " << session_->round() << ")";
  while (!stop_.load(std::memory_order_relaxed)) {
    transport_->admit_pending();
    service_requests();
    if (stop_.load(std::memory_order_relaxed)) break;
    if (options_.max_rounds > 0 && rounds_this_process_ >= options_.max_rounds) break;
    if (transport_->connected_peers() >= min_participants_) {
      tick_round(observer);
      continue;
    }
    wait_for_events();
  }
  // One last snapshot so a clean exit loses nothing, whatever the cadence.
  session_->save(checkpoint_path_);
  ++snapshots_;
  if (event_log_) {
    std::ostringstream os;
    os << "{\"event\": \"stop\", \"round\": " << session_->round()
       << ", \"rounds_this_process\": " << rounds_this_process_ << "}";
    log_event(os.str());
  }
  if (!options_.telemetry_trace.empty()) {
    try {
      telemetry::write_chrome_trace(options_.telemetry_trace, telemetry::drain_spans());
      SUBFEDAVG_LOG(kInfo) << "serve: wrote Chrome trace to " << options_.telemetry_trace;
    } catch (const std::exception& e) {
      SUBFEDAVG_LOG(kWarn) << "serve: Chrome trace export failed: " << e.what();
    }
  }
  SUBFEDAVG_LOG(kInfo) << "serve: stopped at round " << session_->round() << " ("
                       << rounds_this_process_ << " this process), checkpoint at "
                       << checkpoint_path_;
}

void ServerLoop::wait_for_events() {
  std::vector<int> fds;
  fds.push_back(request_listener_.fd());
  for (const net::TcpConn& conn : request_conns_) fds.push_back(conn.fd());
  if (transport_->accept_fd() >= 0) fds.push_back(transport_->accept_fd());
  net::wait_readable(fds, static_cast<int>(options_.idle_wait_ms));
}

void ServerLoop::tick_round(RoundObserver* observer) {
  const auto start = std::chrono::steady_clock::now();
  // The recorder rides in front of the caller's observer only when the event
  // log is open — the no-telemetry tick stays exactly the historical path.
  RoundRecorder recorder;
  ObserverChain chain;
  RoundObserver* effective = observer;
  if (event_log_) {
    chain.attach(&recorder);
    if (observer != nullptr) chain.attach(observer);
    effective = &chain;
  }
  try {
    session_->advance_round(effective);
    ++rounds_this_process_;
    if (options_.spec.eval_every > 0 && session_->round() % options_.spec.eval_every == 0) {
      last_eval_accuracy_ = session_->evaluate(effective);
      last_eval_round_ = session_->round();
    }
    if (session_->round() % options_.spec.checkpoint_every == 0) {
      session_->save(checkpoint_path_);
      ++snapshots_;
    }
    if (event_log_) {
      const FederationSession::RoundPhases& phases = session_->last_phases();
      std::ostringstream os;
      os.precision(std::numeric_limits<double>::max_digits10);
      os << "{\"event\": \"round\", \"round\": " << session_->round()
         << ", \"sampled\": " << recorder.sampled()
         << ", \"skipped\": " << (recorder.saw_round() ? "false" : "true")
         << ", \"up_bytes\": " << recorder.up_bytes()
         << ", \"down_bytes\": " << recorder.down_bytes()
         << ", \"round_seconds\": " << recorder.round_seconds()
         << ", \"workers\": " << transport_->connected_peers()
         << ", \"phases\": {\"sample\": " << phases.sample
         << ", \"broadcast_encode\": " << phases.broadcast_encode
         << ", \"transport_exchange\": " << phases.transport_exchange
         << ", \"collect\": " << phases.collect
         << ", \"aggregate\": " << phases.aggregate
         << ", \"eval\": " << phases.eval << "}";
      if (recorder.saw_eval()) os << ", \"eval_accuracy\": " << recorder.accuracy();
      os << "}";
      log_event(os.str());
    }
  } catch (const std::exception& e) {
    // A failed round (fleet died mid-exchange in fail-fast mode, say) must
    // not take the service down: workers reconnect with the usual backoff
    // and the next quorum tick retries. The round counter HAS advanced —
    // matching a dropout-skipped round — so the stream stays deterministic.
    ++rounds_this_process_;
    SUBFEDAVG_LOG(kWarn) << "serve: round " << session_->round() << " failed: " << e.what();
    if (event_log_) {
      std::ostringstream os;
      os << "{\"event\": \"round_failed\", \"round\": " << session_->round()
         << ", \"error\": ";
      append_json_string(os, e.what());
      os << "}";
      log_event(os.str());
    }
  }
  wall_seconds_ticking_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void ServerLoop::service_requests() {
  // Paging clients (fedctl tail) send one request per reply; if servicing ran
  // exactly once per round tick, such a client could never catch up with an
  // event log that gains a record every round. Keep draining while the
  // conversation is hot — the follow-up request (or reconnect: the listener
  // is part of the poll set) lands within a scheduling quantum on any sane
  // link — bounded so a chatty operator cannot starve the rounds. Idle
  // connections cost nothing (the first poll is non-blocking) and a finished
  // conversation costs one trailing wait.
  for (int spin = 0; spin < 64; ++spin) {
    // Admit operator connections (no handshake: the first frame is a request).
    while (true) {
      net::TcpConn conn = request_listener_.accept(net::Deadline::after_ms(1));
      if (!conn.valid()) break;
      request_conns_.push_back(std::move(conn));
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    std::vector<int> fds;
    fds.reserve(request_conns_.size() + 1);
    fds.push_back(request_listener_.fd());
    for (const net::TcpConn& conn : request_conns_) fds.push_back(conn.fd());
    const std::vector<std::size_t> ready = net::wait_readable(fds, spin == 0 ? 0 : 10);
    if (ready.empty()) return;
    for (const std::size_t i : ready) {
      if (i == 0) continue;  // listener: accepted at the top of the next spin
      net::TcpConn& conn = request_conns_[i - 1];
      net::NetFrame frame;
      if (!net::recv_frame(conn, &frame, request_io_deadline()) ||
          !handle_request(conn, frame)) {
        conn.close();
      }
    }
    std::erase_if(request_conns_, [](const net::TcpConn& c) { return !c.valid(); });
  }
}

bool ServerLoop::handle_request(net::TcpConn& conn, const net::NetFrame& frame) {
  const auto reply = [&](std::span<const std::uint8_t> payload) {
    return net::send_frame(conn, net::FrameKind::kReply, frame.tag, payload,
                           request_io_deadline());
  };
  const auto reply_text = [&](const std::string& text) {
    return reply(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  };
  const auto reply_error = [&](const std::string& text) {
    return net::send_frame(
        conn, net::FrameKind::kError, frame.tag,
        std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                      text.size()),
        request_io_deadline());
  };
  ++requests_served_;
  switch (frame.kind) {
    case net::FrameKind::kStatus: {
      // Conditional poll (fedctl status --watch): same stamp protocol as
      // kGetModel — an unchanged round earns an empty not-modified reply.
      const std::uint64_t stamp = static_cast<std::uint64_t>(session_->round()) + 1;
      if ((frame.tag & kModelConditionalTag) != 0 &&
          (frame.tag & ~kModelConditionalTag) == stamp) {
        return net::send_frame(conn, net::FrameKind::kReply, stamp, {},
                               request_io_deadline());
      }
      const std::string text = status_json();
      return net::send_frame(
          conn, net::FrameKind::kReply, stamp,
          std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                        text.size()),
          request_io_deadline());
    }
    case net::FrameKind::kMetrics:
      return reply_text(telemetry::metrics_json());
    case net::FrameKind::kMetricsTail: {
      try {
        SUBFEDAVG_CHECK(event_log_ != nullptr,
                        "telemetry log not enabled (start serve with --telemetry-log)");
        std::uint64_t cursor = 0;
        if (!frame.payload.empty()) {
          const std::string text(frame.payload.begin(), frame.payload.end());
          std::size_t parsed = 0;
          cursor = std::stoull(text, &parsed);
          SUBFEDAVG_CHECK(parsed == text.size(), "tail cursor '" << text << "'");
        }
        std::uint64_t next = cursor;
        const std::string chunk = event_log_->tail(cursor, kTailChunkBytes, &next);
        return net::send_frame(
            conn, net::FrameKind::kReply, next,
            std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size()),
            request_io_deadline());
      } catch (const std::exception& e) {
        return reply_error(e.what());
      }
    }
    case net::FrameKind::kGetModel: {
      try {
        if (frame.payload.empty()) {
          // Round-stamped byte cache: the global model is encoded at most
          // once per round; every further request until the next round tick
          // serves the identical bytes.
          if (model_cache_round_ != session_->round()) {
            model_cache_ = encode_sections({session_->algorithm().global_model()});
            model_cache_round_ = session_->round();
            ++model_encodes_;
          }
          const std::uint64_t stamp = static_cast<std::uint64_t>(session_->round()) + 1;
          if ((frame.tag & kModelConditionalTag) != 0 &&
              (frame.tag & ~kModelConditionalTag) == stamp) {
            // Not modified: the requester already holds this round's model.
            return net::send_frame(conn, net::FrameKind::kReply, stamp, {},
                                   request_io_deadline());
          }
          return net::send_frame(conn, net::FrameKind::kReply, stamp, model_cache_,
                                 request_io_deadline());
        }
        // Non-empty payload: an ASCII client index — that client's
        // personalized (pruned) side-band state, or its view of the global
        // model for algorithms without per-client state.
        const std::string text(frame.payload.begin(), frame.payload.end());
        std::size_t parsed = 0;
        const unsigned long long k = std::stoull(text, &parsed);
        SUBFEDAVG_CHECK(parsed == text.size(), "client index '" << text << "'");
        SUBFEDAVG_CHECK(k < session_->algorithm().num_clients(),
                        "client " << k << " out of range (federation has "
                                  << session_->algorithm().num_clients() << ")");
        std::vector<StateDict> sections =
            session_->algorithm().client_state_sections(static_cast<std::size_t>(k));
        if (sections.empty()) sections.push_back(session_->algorithm().global_model());
        return reply(encode_sections(sections));
      } catch (const std::exception& e) {
        return reply_error(e.what());
      }
    }
    case net::FrameKind::kCheckpointNow:
      try {
        session_->save(checkpoint_path_);
        ++snapshots_;
        return reply_text(checkpoint_path_);
      } catch (const std::exception& e) {
        return reply_error(e.what());
      }
    case net::FrameKind::kShutdown:
      request_stop();
      return reply_text("stopping");
    default:
      // Unknown request kinds get an error but keep the connection — a newer
      // fedctl talking to an older server should see the message, not a hangup.
      return reply_error("unsupported request kind");
  }
}

}  // namespace subfed
