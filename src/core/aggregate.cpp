#include "core/aggregate.h"

#include "util/check.h"

namespace subfed {

namespace {

void check_aligned(std::span<const ClientUpdate> updates, const StateDict& reference) {
  SUBFEDAVG_CHECK(!updates.empty(), "aggregate needs at least one update");
  for (const ClientUpdate& u : updates) {
    SUBFEDAVG_CHECK(u.state.size() == reference.size(), "update entry count mismatch");
    for (std::size_t e = 0; e < reference.size(); ++e) {
      SUBFEDAVG_CHECK(u.state[e].first == reference[e].first,
                      "update entry name mismatch at " << e);
      SUBFEDAVG_CHECK(u.state[e].second.shape() == reference[e].second.shape(),
                      "update entry shape mismatch for " << reference[e].first);
    }
  }
}

enum class CoveredRule { kCounting, kStrictIntersection };

StateDict masked_aggregate(std::span<const ClientUpdate> updates,
                           const StateDict& previous_global, CoveredRule rule) {
  check_aligned(updates, previous_global);

  StateDict out;
  for (std::size_t e = 0; e < previous_global.size(); ++e) {
    const auto& [name, prev] = previous_global[e];
    Tensor merged(prev.shape());

    // Covered by any client's mask? (All clients share mask coverage sets by
    // construction; tolerate per-client differences by checking each.)
    bool any_covered = false;
    for (const ClientUpdate& u : updates) {
      if (u.mask.find(name) != nullptr) {
        any_covered = true;
        break;
      }
    }

    // Staleness multipliers ride every rule: each contribution is scaled by
    // its update's weight and the normalizer sums the weights, so weight 1.0
    // everywhere (the synchronous case) reproduces the unweighted math
    // bit-for-bit (×1.0 and Σ1.0-counts are exact in float).
    if (!any_covered) {
      // Weighted average (biases, BN affine terms, running stats).
      float weight_sum = 0.0f;
      for (const ClientUpdate& u : updates) {
        const float w = static_cast<float>(u.weight);
        merged.axpy_(w, *u.state.find(name));
        weight_sum += w;
      }
      SUBFEDAVG_CHECK(weight_sum > 0.0f, "zero total aggregation weight");
      merged.scale_(1.0f / weight_sum);
      out.add(name, std::move(merged));
      continue;
    }

    for (std::size_t i = 0; i < merged.numel(); ++i) {
      float sum = 0.0f;
      float weight_sum = 0.0f;
      std::size_t keepers = 0;
      for (const ClientUpdate& u : updates) {
        const Tensor* m = u.mask.find(name);
        const bool kept = (m == nullptr) || ((*m)[i] != 0.0f);
        if (kept) {
          const float w = static_cast<float>(u.weight);
          sum += w * (*u.state.find(name))[i];
          weight_sum += w;
          ++keepers;
        }
      }
      const bool use_average = rule == CoveredRule::kCounting
                                   ? keepers > 0 && weight_sum > 0.0f
                                   : keepers == updates.size() && weight_sum > 0.0f;
      merged[i] = use_average ? sum / weight_sum : prev[i];
    }
    out.add(name, std::move(merged));
  }
  return out;
}

}  // namespace

StateDict sub_fedavg_aggregate(std::span<const ClientUpdate> updates,
                               const StateDict& previous_global) {
  return masked_aggregate(updates, previous_global, CoveredRule::kCounting);
}

StateDict sub_fedavg_aggregate_strict(std::span<const ClientUpdate> updates,
                                      const StateDict& previous_global) {
  return masked_aggregate(updates, previous_global, CoveredRule::kStrictIntersection);
}

StateDict fedavg_aggregate(std::span<const ClientUpdate> updates) {
  SUBFEDAVG_CHECK(!updates.empty(), "aggregate needs at least one update");
  check_aligned(updates, updates.front().state);

  // Example counts × staleness weights; weight 1.0 everywhere degenerates to
  // the plain example-count mean bit-for-bit.
  double total_weight = 0.0;
  for (const ClientUpdate& u : updates) {
    total_weight += u.weight * static_cast<double>(u.num_examples);
  }
  SUBFEDAVG_CHECK(total_weight > 0, "zero total aggregation weight");

  StateDict out;
  const StateDict& reference = updates.front().state;
  for (std::size_t e = 0; e < reference.size(); ++e) {
    const auto& [name, first] = reference[e];
    Tensor merged(first.shape());
    for (const ClientUpdate& u : updates) {
      const float w =
          static_cast<float>(u.weight * static_cast<double>(u.num_examples) / total_weight);
      merged.axpy_(w, *u.state.find(name));
    }
    out.add(name, std::move(merged));
  }
  return out;
}

}  // namespace subfed
