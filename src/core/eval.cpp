#include "core/eval.h"

#include <cstring>

#include "nn/loss.h"
#include "util/check.h"

namespace subfed {

EvalStats evaluate_client_test(Model& model, const ClientData& data,
                               std::size_t batch_size) {
  const std::size_t n = data.test_size();
  EvalStats stats;
  stats.examples = n;
  if (n == 0) return stats;

  // Row addressing into the virtual concatenation: slice s covers rows
  // [offset_s, offset_s + rows_s). Slices are label-major in labels_present
  // order, matching the layout the materialized test tensor used to have.
  const std::size_t row_floats =
      data.test.front()->images.numel() /
      static_cast<std::size_t>(data.test.front()->images.shape()[0]);
  std::vector<std::size_t> dims = data.test.front()->images.shape().dims();

  double total_loss = 0.0;
  std::size_t correct = 0, batches = 0;
  std::size_t slice = 0, slice_row = 0;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    dims[0] = count;
    Tensor batch_images{Shape(dims)};
    std::vector<std::int32_t> batch_labels(count);
    for (std::size_t i = 0; i < count; ++i) {
      const TestSlice& s = *data.test[slice];
      const std::size_t rows = static_cast<std::size_t>(s.images.shape()[0]);
      std::memcpy(batch_images.data() + i * row_floats,
                  s.images.data() + slice_row * row_floats, row_floats * sizeof(float));
      batch_labels[i] = s.label;
      if (++slice_row == rows) {
        slice_row = 0;
        ++slice;
      }
    }
    Tensor logits = model.forward(batch_images, /*train=*/false);
    LossResult loss = softmax_cross_entropy(logits, batch_labels);
    total_loss += loss.loss;
    correct += loss.correct;
    ++batches;
  }
  SUBFEDAVG_CHECK(slice == data.test.size() && slice_row == 0,
                  "test slices misaligned with test_size()");
  stats.loss = total_loss / batches;
  stats.accuracy = static_cast<double>(correct) / n;
  return stats;
}

}  // namespace subfed
