// Client test-set evaluation over shared per-label slices.
//
// Clients no longer hold a private copy of the label-filtered global test
// set; they reference immutable per-label TestSlice objects
// (data/client_data.h). This helper evaluates a model over their virtual
// concatenation with exactly the batching the old materialized path used
// (fixed-size batches that cross slice boundaries), so loss and accuracy are
// bit-identical to evaluating the concatenated tensor.
#pragma once

#include "data/client_data.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace subfed {

/// Inference-mode evaluation of `model` over the client's test slices, in
/// labels_present order — equivalent to `evaluate()` on the concatenation.
EvalStats evaluate_client_test(Model& model, const ClientData& data,
                               std::size_t batch_size = 64);

}  // namespace subfed
