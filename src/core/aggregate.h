// Server-side aggregation rules.
//
// Sub-FedAvg (the paper's contribution, §3.4 / Remark-1): the server averages
// each parameter ONLY over the clients whose subnetwork retained it:
//
//     θ_g[i] ← Σ_k m_k[i]·θ_k[i] / Σ_k m_k[i]      (when Σ_k m_k[i] > 0)
//     θ_g[i] ← previous θ_g[i]                      (when no client kept i)
//
// The paper's prose says "intersection of unpruned parameters"; the released
// author code implements the per-parameter counting rule above (which reduces
// to the intersection average on entries all clients keep). We implement the
// author-code semantics and expose a strict-intersection variant for the
// ablation benchmark.
//
// Plain FedAvg (example-count weighted) is provided for the baselines.
#pragma once

#include <cstddef>
#include <span>

#include "nn/parameter.h"
#include "pruning/mask.h"

namespace subfed {

/// One client's upload: its (masked) state and the mask describing which
/// covered entries are alive. `num_examples` weights FedAvg-style rules;
/// `weight` is an extra multiplier every rule honors — the channel's buffered
/// mode sets it to the staleness down-weight 1/(1+staleness)^a, so a late
/// update counts for less without a separate aggregation path. 1.0 (the
/// default) reproduces the unweighted rules bit-for-bit.
struct ClientUpdate {
  StateDict state;
  ModelMask mask;          ///< empty mask → dense update
  std::size_t num_examples = 1;
  double weight = 1.0;     ///< staleness multiplier (buffered aggregation)
};

/// Per-parameter counting aggregation (Sub-FedAvg). Entries covered by no
/// client's kept set inherit `previous_global`. Buffers / uncovered entries
/// average over all updates uniformly (weighted by ClientUpdate::weight).
StateDict sub_fedavg_aggregate(std::span<const ClientUpdate> updates,
                               const StateDict& previous_global);

/// Strict-intersection ablation: a covered entry is averaged only when EVERY
/// update keeps it; otherwise it inherits `previous_global`. Uncovered
/// entries behave as in sub_fedavg_aggregate.
StateDict sub_fedavg_aggregate_strict(std::span<const ClientUpdate> updates,
                                      const StateDict& previous_global);

/// Classic FedAvg: example-count-weighted mean of all entries (masks, if any,
/// are ignored — baselines upload dense states).
StateDict fedavg_aggregate(std::span<const ClientUpdate> updates);

}  // namespace subfed
