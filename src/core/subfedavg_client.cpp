#include "core/subfedavg_client.h"

#include "core/eval.h"
#include "pruning/unstructured.h"
#include "util/check.h"
#include "util/logging.h"

namespace subfed {

SubFedAvgClient::SubFedAvgClient(std::size_t id, const ModelSpec& spec,
                                 SubFedAvgConfig config, ClientDataPtr data, Rng rng)
    : id_(id),
      spec_(spec),
      config_(std::move(config)),
      data_(std::move(data)),
      rng_(rng),
      model_(spec.build()) {
  SUBFEDAVG_CHECK(data_ != nullptr, "client needs data");
  if (config_.hybrid) model_.set_bn_l1(config_.bn_l1);

  weight_mask_ = ModelMask::ones_like(
      model_, config_.hybrid ? MaskScope::kFcOnly : MaskScope::kAllPrunable);
  channel_mask_ = ChannelMask::ones_like(model_);

  // Until first sampled, the personal model is the (zero-weight) template;
  // the algorithm seeds clients with the initial global state before round 0.
  personal_state_ = model_.state();
}

void SubFedAvgClient::seed_personal(const StateDict& state) { personal_state_ = state; }

void SubFedAvgClient::restore(StateDict personal, ModelMask weight_mask,
                              ChannelMask channel_mask) {
  // Validate against the architecture before committing anything.
  model_.load_state(personal);
  SUBFEDAVG_CHECK(channel_mask.num_blocks() == model_.topology().conv_blocks.size(),
                  "checkpoint channel mask does not match architecture");
  personal_state_ = std::move(personal);
  weight_mask_ = std::move(weight_mask);
  channel_mask_ = std::move(channel_mask);
  pruned_us_ = weight_mask_.pruned_fraction();
  pruned_s_ = channel_mask_.pruned_fraction();
}

ModelMask SubFedAvgClient::combined_mask() {
  if (!config_.hybrid) return weight_mask_;
  return channel_mask_.to_model_mask(model_).intersected(weight_mask_);
}

ClientUpdate SubFedAvgClient::run_round(const StateDict& global, std::size_t round,
                                        ClientRoundReport* report) {
  // 1. Download + personalize: θ ← θ_g ⊙ m_k.
  model_.load_state(global);
  ModelMask own_mask = combined_mask();
  own_mask.apply_to_weights(model_);

  Sgd optimizer(model_.parameters(), config_.sgd);

  // Per-round pruning step targets (fraction of remaining pruned this round).
  const double next_us = next_pruned_fraction(pruned_us_, config_.unstructured.step_rate,
                                              config_.unstructured.target_rate);
  const double next_s = next_pruned_fraction(pruned_s_, config_.structured.step_rate,
                                             config_.structured.target_rate);

  // Candidate masks captured at the end of the first and last local epochs.
  std::optional<ModelMask> us_first, us_last;
  std::optional<ChannelMask> s_first, s_last;
  const std::size_t last_epoch = config_.train.epochs;
  auto on_epoch_end = [&](std::size_t epoch) {
    if (epoch != 1 && epoch != last_epoch) return;
    ModelMask us = derive_magnitude_mask(model_, weight_mask_, next_us);
    std::optional<ChannelMask> s;
    if (config_.hybrid) s = derive_channel_mask(model_, channel_mask_, next_s);
    // With a single local epoch the same candidates serve as both first- and
    // last-epoch masks (Δ = 0 → no pruning), so copy before the final move.
    if (epoch == 1) {
      us_first = us;
      s_first = s;
    }
    if (epoch == last_epoch) {
      us_last = std::move(us);
      s_last = std::move(s);
    }
  };

  // Pruned weights stay frozen at zero: grads are masked before each step.
  auto grad_hook = [&](Model& m) { own_mask.apply_to_grads(m); };

  Rng round_rng = rng_.split("round", round);
  const TrainStats train_stats =
      train_local(model_, optimizer, data_->train_images, data_->train_labels,
                  config_.train, round_rng, on_epoch_end, grad_hook);

  // 2. Gate evaluation on the trained model θ^{j,le}.
  const EvalStats val = evaluate(model_, data_->val_images, data_->val_labels);

  ClientRoundReport local_report;
  local_report.val_accuracy = val.accuracy;
  local_report.train_loss = train_stats.last_epoch_loss;

  SUBFEDAVG_CHECK(us_first.has_value() && us_last.has_value(), "epoch masks missing");
  local_report.mask_distance_us = ModelMask::hamming_distance(*us_first, *us_last);
  const PruneGateInputs us_inputs{val.accuracy, pruned_us_, local_report.mask_distance_us};
  if (prune_gate_open(config_.unstructured, us_inputs)) {
    weight_mask_ = std::move(*us_last);
    pruned_us_ = weight_mask_.pruned_fraction();
    local_report.pruned_us = true;
  }

  if (config_.hybrid) {
    SUBFEDAVG_CHECK(s_first.has_value() && s_last.has_value(), "channel masks missing");
    local_report.mask_distance_s = ChannelMask::hamming_distance(*s_first, *s_last);
    const PruneGateInputs s_inputs{val.accuracy, pruned_s_, local_report.mask_distance_s};
    if (prune_gate_open(config_.structured, s_inputs)) {
      channel_mask_ = std::move(*s_last);
      pruned_s_ = channel_mask_.pruned_fraction();
      local_report.pruned_s = true;
    }
  }
  local_report.pruned_fraction_us = pruned_us_;
  local_report.pruned_fraction_s = pruned_s_;

  // 3. Apply the committed masks: θ^{j+1} = θ^{j,le} ⊙ m.
  own_mask = combined_mask();
  own_mask.apply_to_weights(model_);
  personal_state_ = model_.state();

  SUBFEDAVG_LOG(kDebug) << "client " << id_ << " round " << round << " val="
                        << val.accuracy << " us_pruned=" << pruned_us_
                        << " s_pruned=" << pruned_s_;
  if (report != nullptr) *report = local_report;

  ClientUpdate update;
  update.state = personal_state_;
  update.mask = std::move(own_mask);
  update.num_examples = data_->train_labels.size();
  return update;
}

EvalStats SubFedAvgClient::evaluate_test() {
  model_.load_state(personal_state_);
  return evaluate_client_test(model_, *data_);
}

EvalStats SubFedAvgClient::evaluate_val() {
  model_.load_state(personal_state_);
  return evaluate(model_, data_->val_images, data_->val_labels);
}

}  // namespace subfed
