// Client-side Sub-FedAvg: Algorithms 1 (unstructured) and 2 (hybrid).
//
// Per communication round a sampled client:
//  1. downloads θ_g and personalizes it with its OWN mask (θ_g ⊙ m_k —
//     entries this client pruned stay zero; Remark-1),
//  2. trains locally (masked gradients keep pruned weights frozen),
//  3. derives candidate masks at the end of the FIRST and LAST local epoch
//     (magnitude masks for unstructured; BN-|γ| channel masks for structured),
//  4. opens the pruning gate(s): validation accuracy ≥ Accth, target rate not
//     reached, and mask distance Δ ≥ ε — structured and unstructured gates
//     are evaluated independently in hybrid mode (§3.5),
//  5. commits the last-epoch mask(s) when gated open, applies them, and
//     uploads (masked weights, mask).
#pragma once

#include <cstdint>
#include <optional>

#include "core/aggregate.h"
#include "data/client_data.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"
#include "pruning/gate.h"
#include "pruning/structured.h"
#include "util/rng.h"

namespace subfed {

struct SubFedAvgConfig {
  /// Unstructured gate: target p_us, per-round rate r_us, ε_us, Accth.
  PruneGateConfig unstructured{0.5, 0.5, 1e-4, 0.1};
  /// Structured gate (hybrid mode only): target p_s, rate r_s, ε_s, Accth.
  PruneGateConfig structured{0.5, 0.5, 0.05, 0.2};
  bool hybrid = false;   ///< Algorithm 2: channel pruning + FC-only unstructured
  float bn_l1 = 1e-4f;   ///< network-slimming γ penalty (hybrid mode)
  TrainConfig train{};   ///< paper: 5 local epochs, batch 10
  SgdConfig sgd{};       ///< paper: lr 0.01, momentum 0.5
};

/// Result of one client round, for round-level reporting.
struct ClientRoundReport {
  double val_accuracy = 0.0;
  double train_loss = 0.0;
  double mask_distance_us = 0.0;
  double mask_distance_s = 0.0;
  bool pruned_us = false;
  bool pruned_s = false;
  double pruned_fraction_us = 0.0;  ///< committed, after this round
  double pruned_fraction_s = 0.0;
};

class SubFedAvgClient {
 public:
  SubFedAvgClient(std::size_t id, const ModelSpec& spec, SubFedAvgConfig config,
                  ClientDataPtr data, Rng rng);
  /// Convenience for call sites holding eager data by reference; the pointer
  /// must outlive the client (non-owning).
  SubFedAvgClient(std::size_t id, const ModelSpec& spec, SubFedAvgConfig config,
                  const ClientData* data, Rng rng)
      : SubFedAvgClient(id, spec, std::move(config), ClientDataPtr(ClientDataPtr{}, data),
                        rng) {}

  /// Sets the client's personal model (used before round 0 so never-sampled
  /// clients evaluate the initial global model rather than a blank template).
  void seed_personal(const StateDict& state);

  /// Restores full pruning/personalization state (checkpoint resume).
  void restore(StateDict personal, ModelMask weight_mask, ChannelMask channel_mask);

  /// Executes one local round starting from the global state; returns the
  /// upload (masked state + mask) and fills `report`.
  ClientUpdate run_round(const StateDict& global, std::size_t round,
                         ClientRoundReport* report = nullptr);

  /// Personalized accuracy: the client's latest trained (masked) model on its
  /// label-filtered test set.
  EvalStats evaluate_test();
  /// Same model on the local validation split.
  EvalStats evaluate_val();

  std::size_t id() const noexcept { return id_; }
  double unstructured_pruned() const noexcept { return pruned_us_; }
  double structured_pruned() const noexcept { return pruned_s_; }
  const ModelMask& weight_mask() const noexcept { return weight_mask_; }
  const ChannelMask& channel_mask() const noexcept { return channel_mask_; }
  /// Channel mask ⊗ unstructured mask, as uploaded.
  ModelMask combined_mask();
  const StateDict& personal_state() const noexcept { return personal_state_; }

 private:
  std::size_t id_;
  ModelSpec spec_;
  SubFedAvgConfig config_;
  ClientDataPtr data_;  ///< pins lazily-materialized data while the client lives
  Rng rng_;

  Model model_;                 ///< reused across rounds/evals
  StateDict personal_state_;    ///< latest trained masked state
  ModelMask weight_mask_;       ///< committed unstructured mask
  ChannelMask channel_mask_;    ///< committed structured mask (hybrid)
  double pruned_us_ = 0.0;
  double pruned_s_ = 0.0;
};

}  // namespace subfed
