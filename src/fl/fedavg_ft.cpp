#include "fl/fedavg_ft.h"

#include "core/eval.h"

namespace subfed {

FedAvgFinetune::FedAvgFinetune(FlContext ctx, std::size_t finetune_epochs)
    : FedAvg(std::move(ctx)), finetune_epochs_(finetune_epochs) {}

double FedAvgFinetune::client_test_accuracy(std::size_t k) {
  const ClientDataPtr data = ctx_.data->client_ptr(k);
  Model model = ctx_.spec.build();
  model.load_state(global_);

  if (finetune_epochs_ > 0) {
    Sgd optimizer(model.parameters(), ctx_.sgd);
    TrainConfig config = ctx_.train;
    config.epochs = finetune_epochs_;
    // Dedicated stream so fine-tuning does not perturb round training RNG.
    Rng rng = Rng(ctx_.seed).split("finetune", k);
    const TrainStats stats = train_local(model, optimizer, data->train_images,
                                         data->train_labels, config, rng);
    finetune_steps_.fetch_add(stats.steps, std::memory_order_relaxed);
  }
  return evaluate_client_test(model, *data).accuracy;
}

}  // namespace subfed
