// Federated multi-task learning baseline (Smith et al. 2017, MOCHA).
//
// MOCHA's primal-dual solver targets convex models; for the paper's CNNs we
// use the standard non-convex MTL surrogate (as in the pFedMe/Ditto line of
// work): each client k keeps a personal model w_k and every local gradient
// step is pulled toward the federation mean w̄ by a task-relationship term
// λ(w_k − w̄). Clients additionally exchange dual/relationship state, which
// is what makes MTL the most communication-hungry row of Table 1 — carried
// on the wire as one extra model-sized payload section per direction per
// round. (Substitution documented in DESIGN.md §1.)
#pragma once

#include "fl/algorithm.h"
#include "fl/client_state.h"

namespace subfed {

class FedMtl final : public FederatedAlgorithm {
 public:
  FedMtl(FlContext ctx, double lambda);

  std::string name() const override { return "MTL"; }
  void run_round(std::size_t round, std::span<const std::size_t> sampled) override;
  /// λ-pulls the client's personal model (installed from job.state on remote
  /// exchanges) toward the received mean, uploads model + dual state.
  ClientResult run_client(std::size_t round, const ClientJob& job, const StateDict& received,
                          bool detached) override;
  /// One section: the client's personal model.
  std::vector<StateDict> client_state_sections(std::size_t k) override;
  double client_test_accuracy(std::size_t k) override;

  /// Checkpoint layout: one section per client; w̄ is recomputed on restore.
  std::vector<StateDict> checkpoint_state() override;
  void restore_checkpoint_state(std::vector<StateDict> sections) override;

 private:
  void recompute_mean();

  double lambda_;
  /// Per-client personal models: one section per client, untouched clients
  /// sharing the initial state, cold ones spilled past client_cache.
  ClientStateStore store_;
  StateDict mean_;  ///< federation mean w̄ over all clients
};

}  // namespace subfed
