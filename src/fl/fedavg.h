// FedAvg (McMahan et al. 2017) and FedProx (Li et al. 2018) baselines.
//
// FedProx is FedAvg plus a proximal pull μ(w − w_global) added to every
// gradient step, implemented through the trainer's grad hook. Both exchange
// dense global states through the message channel: broadcast down, trained
// state up, aggregation example-count weighted.
#pragma once

#include "core/aggregate.h"
#include "fl/algorithm.h"

namespace subfed {

class FedAvg : public FederatedAlgorithm {
 public:
  explicit FedAvg(FlContext ctx);

  std::string name() const override { return "FedAvg"; }
  void run_round(std::size_t round, std::span<const std::size_t> sampled) override;
  /// Stateless client: trains from `received`, uploads the result. Runs
  /// unchanged on remote workers (no side-band state either way).
  ClientResult run_client(std::size_t round, const ClientJob& job, const StateDict& received,
                          bool detached) override;
  double client_test_accuracy(std::size_t k) override;

  /// Checkpoint layout: one section, the global model.
  std::vector<StateDict> checkpoint_state() override;
  void restore_checkpoint_state(std::vector<StateDict> sections) override;

  const StateDict& global_state() const noexcept { return global_; }
  StateDict global_model() override { return global_; }

  /// Robustness counters (ctx.corrupt_fraction / ctx.robust_filter): uploads
  /// the channel replaced by noise, and updates the norm filter discarded.
  std::size_t corrupted_updates() const noexcept { return channel_->corrupted_updates(); }
  std::size_t filtered_updates() const noexcept { return filtered_updates_; }

 protected:
  /// Per-client gradient hook, anchored on the broadcast the client received
  /// (identical to the true global under lossless codecs); base FedAvg uses
  /// none.
  virtual GradHook make_grad_hook(const StateDict& received) {
    (void)received;
    return {};
  }

  StateDict global_;

 private:
  std::size_t filtered_updates_ = 0;
};

class FedProx final : public FedAvg {
 public:
  FedProx(FlContext ctx, double mu);

  std::string name() const override { return "FedProx"; }

 protected:
  GradHook make_grad_hook(const StateDict& received) override;

 private:
  double mu_;
};

}  // namespace subfed
