#include "fl/robust.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace subfed {

void corrupt_update(ClientUpdate& update, const CorruptionConfig& config, Rng& rng) {
  for (auto& [name, tensor] : update.state) {
    tensor.fill_normal(rng, 0.0f, config.noise_stddev);
  }
}

double update_distance(const ClientUpdate& update, const StateDict& reference) {
  SUBFEDAVG_CHECK(update.state.size() == reference.size(), "state arity mismatch");
  double total = 0.0;
  for (std::size_t e = 0; e < reference.size(); ++e) {
    const auto& [name, a] = update.state[e];
    const Tensor& b = reference[e].second;
    SUBFEDAVG_CHECK(a.numel() == b.numel(), "entry size mismatch at " << e);
    const Tensor* m = update.mask.empty() ? nullptr : update.mask.find(name);
    for (std::size_t i = 0; i < a.numel(); ++i) {
      if (m != nullptr && (*m)[i] == 0.0f) continue;  // never uploaded
      const double d = static_cast<double>(a[i]) - b[i];
      total += d * d;
    }
  }
  return std::sqrt(total);
}

std::vector<std::size_t> filter_updates_by_norm(std::span<const ClientUpdate> updates,
                                                const StateDict& previous_global,
                                                double filter_factor) {
  SUBFEDAVG_CHECK(filter_factor > 0.0, "filter factor must be positive");
  std::vector<std::size_t> all(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) all[i] = i;
  if (updates.size() < 3) return all;

  std::vector<double> distances(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    distances[i] = update_distance(updates[i], previous_global);
  }
  std::vector<double> sorted = distances;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size() / 2),
                   sorted.end());
  const double median = sorted[sorted.size() / 2];

  std::vector<std::size_t> passed;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (distances[i] <= filter_factor * median) passed.push_back(i);
  }
  // Degenerate cohort (e.g. median 0): keep everyone rather than nobody.
  if (passed.empty()) return all;
  return passed;
}

}  // namespace subfed
