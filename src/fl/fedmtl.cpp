#include "fl/fedmtl.h"

#include "core/eval.h"
#include "util/check.h"

namespace subfed {

namespace {

/// MTL exchanges the model plus same-sized dual/relationship state each
/// direction. The wire payload carries both halves explicitly ("dual."-
/// prefixed entries), so the ledger's 2×-model cost is materialized, not
/// modeled — and the grad hook's anchor lookup by parameter name simply never
/// matches the dual entries.
StateDict with_dual_state(const StateDict& model_state) {
  StateDict doubled;
  for (const auto& [name, tensor] : model_state) doubled.add(name, tensor);
  for (const auto& [name, tensor] : model_state) doubled.add("dual." + name, tensor);
  return doubled;
}

}  // namespace

FedMtl::FedMtl(FlContext ctx, double lambda)
    : FederatedAlgorithm(std::move(ctx)), lambda_(lambda) {
  store_.init(num_clients(), {initial_state()}, ctx_.client_cache);
  mean_ = initial_state();
}

void FedMtl::recompute_mean() {
  // peek() keeps the reduction cache-neutral and the k-order fixed, so the
  // float summation sequence per entry — and therefore the mean — is
  // bit-identical to the historical all-resident loop regardless of which
  // clients happen to be hot.
  StateDict next = (*store_.peek(0))[0];
  for (std::size_t k = 1; k < store_.size(); ++k) {
    const StateSectionsPtr sections = store_.peek(k);
    const StateDict& personal = (*sections)[0];
    for (std::size_t e = 0; e < next.size(); ++e) {
      next[e].second.add_(personal[e].second);
    }
  }
  for (std::size_t e = 0; e < next.size(); ++e) {
    next[e].second.scale_(1.0f / static_cast<float>(store_.size()));
  }
  mean_ = std::move(next);
}

void FedMtl::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  // Snapshot the mean so all sampled clients this round see the same anchor.
  // Materializing transports carry the dual state as real payload entries;
  // the memory fast path charges the same 2× bytes through payload_copies
  // without ever building the copies.
  const bool materialized = channel_->config().transport != "memory";
  const std::size_t copies = materialized ? 1 : 2;
  const StateDict broadcast = materialized ? with_dual_state(mean_) : mean_;

  std::vector<ClientJob> jobs(sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    jobs[i] = {sampled[i], &broadcast, nullptr, copies, {}};
  }

  std::vector<Exchange> exchanges = exchange_round(round, jobs);

  for (Exchange& exchange : exchanges) {
    if (!exchange.state.empty()) {
      store_.put(exchange.client, {std::move(exchange.state[0])});
    }
  }
  recompute_mean();
}

ClientResult FedMtl::run_client(std::size_t round, const ClientJob& job,
                                const StateDict& received, bool detached) {
  const std::size_t k = job.client;
  // Remote exchange: the client's personal model arrives as side-band. Note
  // `materialized` is true both here (the worker's mirror channel is
  // loopback) and on a tcp coordinator, so the wire payloads match loopback
  // byte-for-byte.
  if (!job.state.empty()) store_.put(k, {job.state[0]});
  const bool materialized = channel_->config().transport != "memory";
  const std::size_t copies = materialized ? 1 : 2;
  const float lambda = static_cast<float>(lambda_);
  const ClientDataPtr data = ctx_.data->client_ptr(k);
  Model model = ctx_.spec.build();
  model.load_state((*store_.read(k))[0]);

  // Task-relationship pull toward the federation mean as received.
  auto hook = [lambda, &received](Model& m) {
    for (Parameter* p : m.parameters()) {
      const Tensor* g = received.find(p->name);
      if (g == nullptr) continue;
      p->grad.axpy_(lambda, p->value);
      p->grad.axpy_(-lambda, *g);
    }
  };

  Sgd optimizer(model.parameters(), ctx_.sgd);
  Rng rng = client_round_rng(k, round);
  train_local(model, optimizer, data->train_images, data->train_labels, ctx_.train, rng, {},
              hook);
  StateDict trained = model.state();

  ClientResult result;
  result.update.state = materialized ? with_dual_state(trained) : trained;
  result.update.num_examples = data->train_labels.size();
  result.payload_copies = copies;
  if (detached) result.state.push_back(trained);
  store_.put(k, {std::move(trained)});
  return result;
}

std::vector<StateDict> FedMtl::client_state_sections(std::size_t k) {
  return {(*store_.read(k))[0]};
}

double FedMtl::client_test_accuracy(std::size_t k) {
  const ClientDataPtr data = ctx_.data->client_ptr(k);
  Model model = ctx_.spec.build();
  model.load_state((*store_.read(k))[0]);
  return evaluate_client_test(model, *data).accuracy;
}


std::vector<StateDict> FedMtl::checkpoint_state() {
  std::vector<StateDict> sections;
  sections.reserve(store_.size());
  for (std::size_t k = 0; k < store_.size(); ++k) {
    sections.push_back((*store_.peek(k))[0]);
  }
  return sections;
}

void FedMtl::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == store_.size(),
                  "MTL checkpoint has " << sections.size() << " sections, federation has "
                                        << store_.size() << " clients");
  store_.reset();
  for (std::size_t k = 0; k < sections.size(); ++k) {
    store_.put(k, {std::move(sections[k])});
  }
  recompute_mean();
}

}  // namespace subfed
