#include "fl/fedmtl.h"

#include "util/check.h"

namespace subfed {

namespace {

/// MTL exchanges the model plus same-sized dual/relationship state each
/// direction. The wire payload carries both halves explicitly ("dual."-
/// prefixed entries), so the ledger's 2×-model cost is materialized, not
/// modeled — and the grad hook's anchor lookup by parameter name simply never
/// matches the dual entries.
StateDict with_dual_state(const StateDict& model_state) {
  StateDict doubled;
  for (const auto& [name, tensor] : model_state) doubled.add(name, tensor);
  for (const auto& [name, tensor] : model_state) doubled.add("dual." + name, tensor);
  return doubled;
}

}  // namespace

FedMtl::FedMtl(FlContext ctx, double lambda)
    : FederatedAlgorithm(std::move(ctx)), lambda_(lambda) {
  personal_.assign(num_clients(), initial_state());
  mean_ = initial_state();
}

void FedMtl::recompute_mean() {
  StateDict next = personal_.front();
  for (std::size_t e = 0; e < next.size(); ++e) {
    Tensor& acc = next[e].second;
    for (std::size_t k = 1; k < personal_.size(); ++k) {
      acc.add_(personal_[k][e].second);
    }
    acc.scale_(1.0f / static_cast<float>(personal_.size()));
  }
  mean_ = std::move(next);
}

void FedMtl::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  // Snapshot the mean so all sampled clients this round see the same anchor.
  // Materializing transports carry the dual state as real payload entries;
  // the memory fast path charges the same 2× bytes through payload_copies
  // without ever building the copies.
  const bool materialized = channel_->config().transport != "memory";
  const std::size_t copies = materialized ? 1 : 2;
  const StateDict broadcast = materialized ? with_dual_state(mean_) : mean_;

  std::vector<ClientJob> jobs(sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    jobs[i] = {sampled[i], &broadcast, nullptr, copies, {}};
  }

  std::vector<Exchange> exchanges = exchange_round(round, jobs);

  for (Exchange& exchange : exchanges) {
    if (!exchange.state.empty()) personal_[exchange.client] = std::move(exchange.state[0]);
  }
  recompute_mean();
}

ClientResult FedMtl::run_client(std::size_t round, const ClientJob& job,
                                const StateDict& received, bool detached) {
  const std::size_t k = job.client;
  // Remote exchange: the client's personal model arrives as side-band. Note
  // `materialized` is true both here (the worker's mirror channel is
  // loopback) and on a tcp coordinator, so the wire payloads match loopback
  // byte-for-byte.
  if (!job.state.empty()) personal_[k] = job.state[0];
  const bool materialized = channel_->config().transport != "memory";
  const std::size_t copies = materialized ? 1 : 2;
  const float lambda = static_cast<float>(lambda_);
  const ClientData& data = ctx_.data->client(k);
  Model model = ctx_.spec.build();
  model.load_state(personal_[k]);

  // Task-relationship pull toward the federation mean as received.
  auto hook = [lambda, &received](Model& m) {
    for (Parameter* p : m.parameters()) {
      const Tensor* g = received.find(p->name);
      if (g == nullptr) continue;
      p->grad.axpy_(lambda, p->value);
      p->grad.axpy_(-lambda, *g);
    }
  };

  Sgd optimizer(model.parameters(), ctx_.sgd);
  Rng rng = client_round_rng(k, round);
  train_local(model, optimizer, data.train_images, data.train_labels, ctx_.train, rng, {},
              hook);
  personal_[k] = model.state();

  ClientResult result;
  result.update.state = materialized ? with_dual_state(personal_[k]) : personal_[k];
  result.update.num_examples = data.train_labels.size();
  result.payload_copies = copies;
  if (detached) result.state.push_back(personal_[k]);
  return result;
}

std::vector<StateDict> FedMtl::client_state_sections(std::size_t k) {
  return {personal_[k]};
}

double FedMtl::client_test_accuracy(std::size_t k) {
  const ClientData& data = ctx_.data->client(k);
  Model model = ctx_.spec.build();
  model.load_state(personal_[k]);
  return evaluate(model, data.test_images, data.test_labels).accuracy;
}


std::vector<StateDict> FedMtl::checkpoint_state() { return personal_; }

void FedMtl::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == personal_.size(),
                  "MTL checkpoint has " << sections.size() << " sections, federation has "
                                        << personal_.size() << " clients");
  personal_ = std::move(sections);
  recompute_mean();
}

}  // namespace subfed
