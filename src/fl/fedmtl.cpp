#include "fl/fedmtl.h"

#include "comm/serialize.h"
#include "util/thread_pool.h"
#include "util/check.h"

namespace subfed {

FedMtl::FedMtl(FlContext ctx, double lambda)
    : FederatedAlgorithm(std::move(ctx)), lambda_(lambda) {
  personal_.assign(num_clients(), initial_state());
  mean_ = initial_state();
}

void FedMtl::recompute_mean() {
  StateDict next = personal_.front();
  for (std::size_t e = 0; e < next.size(); ++e) {
    Tensor& acc = next[e].second;
    for (std::size_t k = 1; k < personal_.size(); ++k) {
      acc.add_(personal_[k][e].second);
    }
    acc.scale_(1.0f / static_cast<float>(personal_.size()));
  }
  mean_ = std::move(next);
}

void FedMtl::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  std::vector<std::size_t> up_bytes(sampled.size()), down_bytes(sampled.size());
  const float lambda = static_cast<float>(lambda_);

  // Snapshot the mean so all sampled clients this round see the same anchor.
  const StateDict anchor = mean_;

  ThreadPool::global().parallel_for(sampled.size(), [&](std::size_t i) {
    const std::size_t k = sampled[i];
    const ClientData& data = ctx_.data->client(k);
    Model model = ctx_.spec.build();
    model.load_state(personal_[k]);

    // Task-relationship pull toward the federation mean.
    auto hook = [lambda, &anchor](Model& m) {
      for (Parameter* p : m.parameters()) {
        const Tensor* g = anchor.find(p->name);
        if (g == nullptr) continue;
        p->grad.axpy_(lambda, p->value);
        p->grad.axpy_(-lambda, *g);
      }
    };

    Sgd optimizer(model.parameters(), ctx_.sgd);
    Rng rng = client_round_rng(k, round);
    train_local(model, optimizer, data.train_images, data.train_labels, ctx_.train, rng,
                {}, hook);
    personal_[k] = model.state();

    // Model + dual/relationship state in each direction (2× a dense model).
    up_bytes[i] = 2 * payload_bytes(personal_[k], nullptr);
    down_bytes[i] = 2 * payload_bytes(anchor, nullptr);
  });

  for (std::size_t i = 0; i < sampled.size(); ++i) {
    ledger_.record(round, up_bytes[i], down_bytes[i]);
  }
  recompute_mean();
}

double FedMtl::client_test_accuracy(std::size_t k) {
  const ClientData& data = ctx_.data->client(k);
  Model model = ctx_.spec.build();
  model.load_state(personal_[k]);
  return evaluate(model, data.test_images, data.test_labels).accuracy;
}


std::vector<StateDict> FedMtl::checkpoint_state() { return personal_; }

void FedMtl::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == personal_.size(),
                  "MTL checkpoint has " << sections.size() << " sections, federation has "
                                        << personal_.size() << " clients");
  personal_ = std::move(sections);
  recompute_mean();
}

}  // namespace subfed
