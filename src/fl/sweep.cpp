#include "fl/sweep.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "comm/transport.h"
#include "util/check.h"
#include "util/json.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace subfed {

namespace {

/// Spec keys that always differ between runs but never identify a result row.
bool is_bookkeeping_key(const std::string& key) {
  return key == "out" || key == "checkpoint_path" || key == "tag";
}

/// Matches the sweep_run_file_name pattern: "NNNNN-<name>.json".
bool is_sweep_run_file(const std::string& name) {
  if (name.size() < 11 || name.substr(name.size() - 5) != ".json") return false;
  for (std::size_t i = 0; i < 5; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  return name[5] == '-';
}

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

/// Everything FederatedData synthesis depends on; runs that agree on this key
/// can share one instance (FederatedData is immutable after construction).
std::string data_cache_key(const ExperimentSpec& spec) {
  const FederatedDataConfig config = spec.data_config();
  std::ostringstream os;
  // Full double precision: configs differing past the default 6 significant
  // digits must not collide into one shared dataset.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << spec.dataset << '|' << static_cast<int>(config.partition.kind) << '|'
     << config.partition.num_clients << '|' << config.partition.shards_per_client << '|'
     << config.partition.shard_size << '|' << config.partition.dirichlet_alpha << '|'
     << config.test_per_class << '|' << config.val_fraction << '|' << config.seed;
  return os.str();
}

/// Per-sweep dataset cache: the first run needing a configuration synthesizes
/// it (outside the lock) and publishes it through a shared_future; later runs
/// with the same key block on that future instead of re-synthesizing. The
/// cache is constructed with each key's total use count, and release() drops
/// an entry once its last run finished — peak residency is bounded by the
/// datasets of the runs in flight, not the whole grid.
class FederatedDataCache {
 public:
  explicit FederatedDataCache(std::map<std::string, std::size_t> uses)
      : remaining_(std::move(uses)) {}

  std::shared_ptr<const FederatedData> get(const std::string& key,
                                           const ExperimentSpec& spec) {
    std::shared_future<std::shared_ptr<const FederatedData>> future;
    std::promise<std::shared_ptr<const FederatedData>> promise;
    bool creator = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = entries_.emplace(key, future);
      if (inserted) {
        it->second = promise.get_future().share();
        creator = true;
        ++synthesized_;
      }
      future = it->second;
    }
    if (creator) {
      try {
        promise.set_value(
            std::make_shared<const FederatedData>(spec.dataset_spec(), spec.data_config()));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    return future.get();  // rethrows the creator's synthesis error, if any
  }

  /// One run with this key finished (successfully or not).
  void release(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = remaining_.find(key);
    if (it == remaining_.end()) return;
    if (--it->second == 0) {
      entries_.erase(key);
      remaining_.erase(it);
    }
  }

  /// Distinct data configurations actually synthesized.
  std::size_t synthesized() const {
    std::lock_guard<std::mutex> lock(mu_);
    return synthesized_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::size_t> remaining_;
  std::map<std::string, std::shared_future<std::shared_ptr<const FederatedData>>> entries_;
  std::size_t synthesized_ = 0;
};

}  // namespace

SweepAxis parse_axis(const std::string& text) {
  const std::size_t eq = text.find('=');
  SUBFEDAVG_CHECK(eq != std::string::npos && eq > 0,
                  "axis expects key=v1,v2,..., got '" << text << "'");
  SweepAxis axis;
  axis.key = text.substr(0, eq);
  std::string rest = text.substr(eq + 1);
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = rest.find(',', start);
    const std::string value = rest.substr(start, comma - start);
    SUBFEDAVG_CHECK(!value.empty(),
                    "axis '" << axis.key << "' has an empty value in '" << text << "'");
    axis.values.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return axis;
}

void SweepDescription::add_axis(const std::string& text) {
  SweepAxis axis = parse_axis(text);
  for (const SweepAxis& existing : axes) {
    SUBFEDAVG_CHECK(existing.key != axis.key,
                    "axis '" << axis.key << "' declared twice");
  }
  axes.push_back(std::move(axis));
}

void SweepDescription::add_replicas(std::size_t n) {
  SUBFEDAVG_CHECK(n > 0, "replicas must be positive");
  for (const SweepAxis& existing : axes) {
    SUBFEDAVG_CHECK(existing.key != "seed",
                    "cannot add replicas: a seed axis is already declared");
  }
  SweepAxis axis;
  axis.key = "seed";
  for (std::size_t i = 0; i < n; ++i) {
    axis.values.push_back(std::to_string(base.seed + i));
  }
  axes.push_back(std::move(axis));
}

void SweepDescription::apply_file(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    const std::size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    line = line.substr(start);
    if (line[0] == '#') continue;
    if (line.find(',') != std::string::npos) {
      add_axis(line);
    } else {
      base.apply_kv(line);
    }
  }
}

std::size_t SweepDescription::total_runs() const {
  std::size_t total = 1;
  for (const SweepAxis& axis : axes) total *= axis.values.size();
  return total;
}

std::vector<SweepRun> SweepDescription::expand() const {
  for (const SweepAxis& axis : axes) {
    SUBFEDAVG_CHECK(!axis.values.empty(), "axis '" << axis.key << "' has no values");
  }
  const std::size_t total = total_runs();
  std::vector<SweepRun> runs;
  runs.reserve(total);

  std::vector<std::size_t> pick(axes.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    SweepRun run;
    run.index = index;
    run.spec = base;
    std::ostringstream name;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const std::string& key = axes[a].key;
      const std::string& value = axes[a].values[pick[a]];
      // apply_kv validates the key and value exactly like a spec file would.
      run.spec.apply_kv(key + "=" + value);
      run.assignment.emplace_back(key, value);
      if (a != 0) name << ',';
      name << key << '=' << value;
    }
    run.name = axes.empty() ? "run" : name.str();
    runs.push_back(std::move(run));

    // Odometer increment, last axis fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++pick[a] < axes[a].values.size()) break;
      pick[a] = 0;
    }
  }
  return runs;
}

std::string sweep_run_file_name(const SweepRun& run) {
  std::string safe;
  for (const char c : run.name) {
    if (c == ',') {
      safe += "__";
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '=' || c == '.' ||
               c == '-' || c == '_') {
      safe += c;
    } else {
      safe += '_';
    }
  }
  // Five digits keep lexicographic file order equal to expansion order for
  // any realistic grid (a 100k-run sweep would take days anyway).
  char index[16];
  std::snprintf(index, sizeof(index), "%05zu", run.index);
  return std::string(index) + "-" + safe + ".json";
}

std::size_t SweepSummary::num_ok() const {
  std::size_t n = 0;
  for (const SweepRunOutcome& o : outcomes) n += o.ok ? 1 : 0;
  return n;
}

std::size_t SweepSummary::num_failed() const { return outcomes.size() - num_ok(); }

void report_failed_runs(const SweepSummary& summary) {
  for (const SweepRunOutcome& outcome : summary.outcomes) {
    if (!outcome.ok) {
      std::fprintf(stderr, "failed: %s: %s\n", outcome.run.name.c_str(),
                   outcome.error.c_str());
    }
  }
}

namespace {

void prepare_out_dir(const SweepOptions& options) {
  if (options.out_dir.empty()) return;
  std::filesystem::create_directories(options.out_dir);
  // A reused directory must not blend stale runs into later aggregation:
  // clear previous sweeps' per-run files — and ONLY those (the NNNNN-*.json
  // pattern), so pointing --out-dir at a directory with unrelated JSONs
  // never destroys user data.
  for (const auto& entry : std::filesystem::directory_iterator(options.out_dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && is_sweep_run_file(name)) {
      std::filesystem::remove(entry.path());
    }
  }
}

/// Rebuilds a SweepRunOutcome from the result JSON a remote worker streamed
/// back — the exact run_result_json document a local run would have written.
/// Throws CheckError on malformed JSON.
SweepRunOutcome outcome_from_result_json(SweepRun run, const std::string& json) {
  const JsonValue doc = parse_json(json);
  SUBFEDAVG_CHECK(doc.is_object(), "worker result for '" << run.name
                                                         << "' is not a JSON object");
  SweepRunOutcome outcome;
  outcome.run = std::move(run);
  outcome.ok = true;
  outcome.algorithm_name = doc.string_or("algorithm", "");
  outcome.result.final_avg_accuracy = doc.number_or("final_avg_accuracy", 0.0);
  outcome.result.up_bytes = static_cast<std::uint64_t>(doc.number_or("up_bytes", 0.0));
  outcome.result.down_bytes = static_cast<std::uint64_t>(doc.number_or("down_bytes", 0.0));
  outcome.result.simulated_seconds = doc.number_or("simulated_seconds", 0.0);
  outcome.result.dropped_clients =
      static_cast<std::size_t>(doc.number_or("dropped_clients", 0.0));
  outcome.result.skipped_rounds =
      static_cast<std::size_t>(doc.number_or("skipped_rounds", 0.0));
  if (const JsonValue* curve = doc.find("curve"); curve != nullptr && curve->is_array()) {
    for (const JsonValue& point : curve->array) {
      outcome.result.curve.push_back(
          {static_cast<std::size_t>(point.number_or("round", 0.0)),
           point.number_or("avg_accuracy", 0.0)});
    }
  }
  if (const JsonValue* per_client = doc.find("final_per_client");
      per_client != nullptr && per_client->is_array()) {
    for (const JsonValue& accuracy : per_client->array) {
      if (accuracy.is_number()) outcome.result.final_per_client.push_back(accuracy.number);
    }
  }
  if (const JsonValue* metrics = doc.find("metrics"); metrics != nullptr) {
    for (const auto& [key, value] : metrics->object) {
      if (value.is_number()) outcome.metrics[key] = value.number;
    }
  }
  return outcome;
}

/// Dispatches every run as a whole (kRunSpec) to the remote workers joined at
/// options.listen; the coordinator machine only routes frames and writes the
/// returned JSON. Runs that die with their worker are retried once on
/// whoever is connected then, and recorded as failed outcomes after that.
SweepSummary run_sweep_remote(const std::vector<SweepRun>& runs, const SweepOptions& options) {
  SweepSummary summary;
  summary.outcomes.resize(runs.size());
  summary.workers = options.remote_workers;
  if (runs.empty()) return summary;
  prepare_out_dir(options);

  TransportOptions transport_options;
  transport_options.workers = options.remote_workers;
  transport_options.listen = options.listen;
  transport_options.rpc_timeout_ms = static_cast<int>(options.rpc_timeout_ms);
  transport_options.tolerate_failures = true;  // a dead worker fails runs, not the sweep
  transport_options.whole_runs = true;
  const std::unique_ptr<Transport> transport = make_transport("tcp", transport_options);
  if (options.echo_progress) {
    std::fprintf(stderr, "sweep: %zu runs sharded over %zu remote workers at %s\n",
                 runs.size(), options.remote_workers, transport->endpoint().c_str());
  }

  const auto request_for = [&runs](std::size_t i) {
    ExperimentSpec spec = runs[i].spec;  // the coordinator owns all files
    spec.out.clear();
    spec.checkpoint_every = 0;
    spec.checkpoint_path.clear();
    const std::string kv = spec.to_kv();
    return std::vector<std::uint8_t>(kv.begin(), kv.end());
  };

  const auto sweep_start = std::chrono::steady_clock::now();
  std::size_t completed = 0;
  // `map[batch index] = run index`: retries dispatch a sub-batch.
  const auto ingest = [&](const std::vector<TransportArrival>& arrivals,
                          const std::vector<std::size_t>& map,
                          std::vector<std::size_t>* retry) {
    for (const TransportArrival& arrival : arrivals) {
      const std::size_t i = map[arrival.index];
      SweepRunOutcome& outcome = summary.outcomes[i];
      if (!arrival.ok) {
        if (retry != nullptr) {
          retry->push_back(i);
          continue;
        }
        outcome.run = runs[i];
        outcome.error = arrival.error;
      } else {
        const std::string json(arrival.response.begin(), arrival.response.end());
        try {
          outcome = outcome_from_result_json(runs[i], json);
          if (!options.out_dir.empty()) {
            const std::string path =
                (std::filesystem::path(options.out_dir) / sweep_run_file_name(runs[i]))
                    .string();
            std::ofstream file(path, std::ios::trunc);
            file << json;
            if (file.good()) outcome.json_path = path;
          }
        } catch (const std::exception& e) {
          outcome.run = runs[i];
          outcome.ok = false;
          outcome.error = e.what();
        }
      }
      outcome.seconds = elapsed_seconds(sweep_start);  // arrival time, not run time
      if (options.echo_progress) {
        ++completed;
        if (outcome.ok) {
          std::fprintf(stderr, "[%zu/%zu] ok   %s: acc %.4f (remote)\n", completed,
                       runs.size(), outcome.run.name.c_str(),
                       outcome.result.final_avg_accuracy);
        } else if (retry != nullptr) {
          --completed;  // not resolved yet; the retry will report it
        } else {
          std::fprintf(stderr, "[%zu/%zu] FAIL %s: %s\n", completed, runs.size(),
                       outcome.run.name.c_str(), outcome.error.c_str());
        }
      }
    }
  };

  std::vector<std::vector<std::uint8_t>> requests(runs.size());
  std::vector<std::size_t> map(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    requests[i] = request_for(i);
    map[i] = i;
  }
  std::vector<std::size_t> retry;
  ingest(transport->collect(requests, TransportHandler{}), map, &retry);

  if (!retry.empty()) {
    std::vector<std::vector<std::uint8_t>> retry_requests(retry.size());
    for (std::size_t b = 0; b < retry.size(); ++b) retry_requests[b] = request_for(retry[b]);
    ingest(transport->collect(retry_requests, TransportHandler{}), retry, nullptr);
  }

  summary.seconds = elapsed_seconds(sweep_start);
  if (options.echo_progress) {
    std::fprintf(stderr, "sweep: %zu ok, %zu failed in %.1fs (remote, %zu retried)\n",
                 summary.num_ok(), summary.num_failed(), summary.seconds, retry.size());
  }
  return summary;
}

}  // namespace

SweepSummary run_sweep(const std::vector<SweepRun>& runs, const SweepOptions& options) {
  if (!options.listen.empty()) return run_sweep_remote(runs, options);

  SweepSummary summary;
  summary.outcomes.resize(runs.size());
  if (runs.empty()) return summary;

  prepare_out_dir(options);

  ThreadPool pool(options.jobs);
  summary.workers = pool.size();

  // Cache keys are precomputed so the cache knows each configuration's total
  // use count up front (entries free as their last run completes). A spec
  // whose data config does not even parse gets no key and fails inside
  // execute_experiment with its normal error.
  std::vector<std::string> cache_keys(runs.size());
  std::vector<bool> has_cache_key(runs.size(), false);
  std::map<std::string, std::size_t> key_uses;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    try {
      cache_keys[i] = data_cache_key(runs[i].spec);
      has_cache_key[i] = true;
      ++key_uses[cache_keys[i]];
    } catch (const std::exception&) {
    }
  }
  FederatedDataCache data_cache(std::move(key_uses));
  const auto sweep_start = std::chrono::steady_clock::now();

  std::mutex progress_mu;
  std::size_t completed = 0;
  if (options.echo_progress) {
    std::fprintf(stderr, "sweep: %zu runs on %zu workers\n", runs.size(), summary.workers);
  }

  pool.parallel_for(runs.size(), [&](std::size_t i) {
    SweepRunOutcome outcome;
    outcome.run = runs[i];
    if (!options.out_dir.empty()) {
      outcome.run.spec.out =
          (std::filesystem::path(options.out_dir) / sweep_run_file_name(runs[i])).string();
    } else {
      outcome.run.spec.out.clear();
    }
    // Checkpoint paths must be unique per run or concurrent snapshots clobber
    // each other: an explicit base path gets the run index spliced in before
    // its extension; an empty one (with no out to derive from) gets the run's
    // file name. The out_dir case is already unique via `out`.
    if (outcome.run.spec.checkpoint_every > 0 && runs.size() > 1) {
      std::string& path = outcome.run.spec.checkpoint_path;
      if (!path.empty()) {
        char index[16];
        std::snprintf(index, sizeof(index), "-%05zu", runs[i].index);
        const std::size_t dot = path_extension_dot(path);
        path.insert(dot == std::string::npos ? path.size() : dot, index);
      } else if (outcome.run.spec.out.empty()) {
        std::string name = sweep_run_file_name(runs[i]);
        name.replace(name.size() - 5, 5, ".ckpt");
        path = name;
      }
    }

    const auto run_start = std::chrono::steady_clock::now();
    try {
      std::shared_ptr<const FederatedData> data;
      if (has_cache_key[i]) data = data_cache.get(cache_keys[i], outcome.run.spec);
      ExecutedRun executed =
          execute_experiment(outcome.run.spec, /*observer=*/nullptr, data.get());
      outcome.ok = true;
      outcome.algorithm_name = std::move(executed.algorithm_name);
      outcome.result = std::move(executed.result);
      outcome.metrics = std::move(executed.metrics);
      outcome.json_path = outcome.run.spec.out;
    } catch (const std::exception& e) {
      outcome.error = e.what();
    }
    if (has_cache_key[i]) data_cache.release(cache_keys[i]);
    outcome.seconds = elapsed_seconds(run_start);

    {
      std::lock_guard<std::mutex> lock(progress_mu);
      ++completed;
      if (options.echo_progress) {
        if (outcome.ok) {
          std::fprintf(stderr, "[%zu/%zu] ok   %s: acc %.4f (%.1fs)\n", completed,
                       runs.size(), outcome.run.name.c_str(),
                       outcome.result.final_avg_accuracy, outcome.seconds);
        } else {
          std::fprintf(stderr, "[%zu/%zu] FAIL %s: %s\n", completed, runs.size(),
                       outcome.run.name.c_str(), outcome.error.c_str());
        }
      }
    }
    summary.outcomes[i] = std::move(outcome);
  });

  summary.seconds = elapsed_seconds(sweep_start);
  summary.unique_datasets = data_cache.synthesized();
  if (options.echo_progress) {
    std::fprintf(stderr, "sweep: %zu ok, %zu failed in %.1fs (%zu dataset%s synthesized)\n",
                 summary.num_ok(), summary.num_failed(), summary.seconds,
                 summary.unique_datasets, summary.unique_datasets == 1 ? "" : "s");
  }
  return summary;
}

// -- aggregation -------------------------------------------------------------

namespace {

std::map<std::string, std::string> kv_to_map(const std::string& kv_text) {
  std::map<std::string, std::string> out;
  std::istringstream is(kv_text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    out[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return out;
}

/// The record's value for a metric column; false when this record lacks it.
bool metric_value(const SweepRecord& record, const std::string& metric, double* value) {
  if (metric == "accuracy") {
    *value = record.final_avg_accuracy;
    return true;
  }
  if (metric == "comm") {
    *value = static_cast<double>(record.total_bytes());
    return true;
  }
  if (metric == "round_time") {
    *value = record.simulated_seconds;
    return true;
  }
  const auto it = record.metrics.find(metric);
  if (it == record.metrics.end()) return false;
  *value = it->second;
  return true;
}

std::string format_mean_std(const std::string& metric, const Summary& s) {
  std::string mean, std_part;
  if (metric == "accuracy" || metric.find("pruned") != std::string::npos) {
    mean = format_percent(s.mean);
    std_part = format_percent(s.stddev);
  } else if (metric == "comm") {
    mean = format_bytes(s.mean);
    std_part = format_bytes(s.stddev);
  } else if (metric == "round_time") {
    mean = format_float(s.mean, 1) + "s";
    std_part = format_float(s.stddev, 1) + "s";
  } else {
    mean = format_float(s.mean, 4);
    std_part = format_float(s.stddev, 4);
  }
  return s.count > 1 ? mean + " ± " + std_part : mean;
}

}  // namespace

SweepRecord load_run_record(const std::string& path) {
  std::ifstream file(path);
  SUBFEDAVG_CHECK(file.good(), "cannot read run result '" << path << "'");
  std::ostringstream text;
  text << file.rdbuf();
  const JsonValue doc = parse_json(text.str());
  SUBFEDAVG_CHECK(doc.is_object(), "run result '" << path << "' is not a JSON object");

  SweepRecord record;
  record.path = path;
  record.algorithm = doc.string_or("algorithm", "");
  const JsonValue& spec = doc.at("spec");
  SUBFEDAVG_CHECK(spec.is_object(), "run result '" << path << "' has no spec object");
  for (const auto& [key, value] : spec.object) {
    SUBFEDAVG_CHECK(value.is_string(), "spec member '" << key << "' is not a string");
    record.spec[key] = value.string;
  }
  record.final_avg_accuracy = doc.number_or("final_avg_accuracy", 0.0);
  record.up_bytes = static_cast<std::uint64_t>(doc.number_or("up_bytes", 0.0));
  record.down_bytes = static_cast<std::uint64_t>(doc.number_or("down_bytes", 0.0));
  record.simulated_seconds = doc.number_or("simulated_seconds", 0.0);
  if (const JsonValue* metrics = doc.find("metrics"); metrics != nullptr) {
    for (const auto& [key, value] : metrics->object) {
      if (value.is_number()) record.metrics[key] = value.number;
    }
  }
  return record;
}

std::vector<SweepRecord> load_run_records(const std::string& dir) {
  SUBFEDAVG_CHECK(std::filesystem::is_directory(dir),
                  "'" << dir << "' is not a directory");
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SweepRecord> records;
  records.reserve(paths.size());
  for (const std::string& path : paths) records.push_back(load_run_record(path));
  return records;
}

SweepRecord record_from_outcome(const SweepRunOutcome& outcome) {
  SUBFEDAVG_CHECK(outcome.ok, "cannot build a record from failed run '"
                                  << outcome.run.name << "': " << outcome.error);
  SweepRecord record;
  record.algorithm = outcome.algorithm_name;
  record.spec = kv_to_map(outcome.run.spec.to_kv());
  record.final_avg_accuracy = outcome.result.final_avg_accuracy;
  record.up_bytes = outcome.result.up_bytes;
  record.down_bytes = outcome.result.down_bytes;
  record.simulated_seconds = outcome.result.simulated_seconds;
  record.metrics = outcome.metrics;
  return record;
}

std::vector<std::string> resolve_group_by(const std::vector<SweepRecord>& records,
                                          const AggregateOptions& options) {
  if (!options.group_by.empty()) return options.group_by;
  // Infer: every spec key whose value varies across records, except the
  // replicate axis and per-run bookkeeping.
  std::map<std::string, std::set<std::string>> values;
  for (const SweepRecord& record : records) {
    for (const auto& [key, value] : record.spec) values[key].insert(value);
  }
  std::vector<std::string> group_by;
  for (const auto& [key, seen] : values) {
    if (seen.size() > 1 && key != options.over && !is_bookkeeping_key(key)) {
      group_by.push_back(key);
    }
  }
  return group_by;
}

std::vector<AggregateRow> aggregate_records(const std::vector<SweepRecord>& records,
                                            const AggregateOptions& options) {
  const std::vector<std::string> group_by = resolve_group_by(records, options);

  // Group in first-appearance order.
  std::vector<AggregateRow> rows;
  std::map<std::string, std::size_t> row_index;
  std::vector<std::map<std::string, std::vector<double>>> metric_samples;

  for (const SweepRecord& record : records) {
    std::string id;
    std::vector<std::string> group;
    for (const std::string& key : group_by) {
      const auto it = record.spec.find(key);
      const std::string value = it == record.spec.end() ? "" : it->second;
      group.push_back(value);
      id += value;
      id += '\x1f';
    }
    const auto [it, inserted] = row_index.emplace(id, rows.size());
    if (inserted) {
      AggregateRow row;
      row.group = std::move(group);
      rows.push_back(std::move(row));
      metric_samples.emplace_back();
    }
    AggregateRow& row = rows[it->second];
    ++row.runs;
    for (const std::string& metric : options.metrics) {
      double value = 0.0;
      if (metric_value(record, metric, &value)) {
        metric_samples[it->second][metric].push_back(value);
      }
    }
  }

  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (const std::string& metric : options.metrics) {
      const auto it = metric_samples[r].find(metric);
      if (it != metric_samples[r].end()) {
        rows[r].stats[metric] = summarize(it->second);
      }
    }
  }
  return rows;
}

TablePrinter aggregation_table(const std::vector<AggregateRow>& rows,
                               const AggregateOptions& options) {
  // Callers pass options with group_by resolved (resolve_group_by) so the
  // header names line up with the rows' group values.
  std::vector<std::string> header = options.group_by;
  const std::size_t group_width = rows.empty() ? header.size() : rows.front().group.size();
  while (header.size() < group_width) {
    header.push_back("key" + std::to_string(header.size() + 1));
  }
  header.resize(group_width);
  if (header.empty()) header.push_back("group");
  const std::size_t label_columns = header.size();
  header.push_back("runs");
  for (const std::string& metric : options.metrics) header.push_back(metric);

  TablePrinter table(header);
  for (const AggregateRow& row : rows) {
    std::vector<std::string> cells = row.group;
    if (cells.empty()) cells.push_back("all");
    cells.resize(label_columns);
    cells.push_back(std::to_string(row.runs));
    for (const std::string& metric : options.metrics) {
      const auto it = row.stats.find(metric);
      cells.push_back(it == row.stats.end() ? "-" : format_mean_std(metric, it->second));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

std::string render_table(const TablePrinter& table, const std::string& format) {
  if (format == "ascii") return table.to_string();
  if (format == "csv") return table.to_csv();
  if (format == "markdown") return table.to_markdown();
  SUBFEDAVG_CHECK(false, "unknown table format '" << format
                                                  << "' (ascii | csv | markdown)");
  return {};
}

}  // namespace subfed
