// Per-client side-band state with lazy construction and LRU spill-to-disk.
//
// Algorithms that keep state per client (Standalone/LG/MTL local models,
// Sub-FedAvg's personal state + masks) historically held all of it resident
// — population size was a memory cost even when only `per_round_` clients
// were ever sampled. This store makes that state O(active):
//
//  * every client starts "untouched", sharing one immutable copy of the
//    algorithm's initial sections (nothing allocated per client);
//  * the first put() marks a client touched and caches its sections hot;
//  * beyond `hot_capacity` touched clients, the least-recently-used entry is
//    spilled to an anonymous temp file as an SFCG record (the same versioned
//    container full checkpoints use — fl/checkpoint.h), and reloaded exactly
//    on the next access ("refault");
//  * hot_capacity == 0 keeps every touched client resident — the historical
//    behavior, with identical values.
//
// Entries are immutable snapshots behind shared_ptr: readers keep a
// consistent view even if the entry is evicted (or replaced by a newer put)
// concurrently. All methods are thread-safe.
#pragma once

#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nn/parameter.h"

namespace subfed {

using StateSections = std::vector<StateDict>;
using StateSectionsPtr = std::shared_ptr<const StateSections>;

class ClientStateStore {
 public:
  ClientStateStore() = default;
  ~ClientStateStore();
  ClientStateStore(const ClientStateStore&) = delete;
  ClientStateStore& operator=(const ClientStateStore&) = delete;

  /// `initial` is the shared untouched-client state; `hot_capacity` bounds
  /// resident touched clients (0 = unbounded, the historical behavior).
  void init(std::size_t num_clients, StateSections initial, std::size_t hot_capacity);

  std::size_t size() const noexcept { return num_clients_; }
  bool touched(std::size_t k) const;
  const StateSections& initial_sections() const { return *initial_; }

  /// Current sections for client k, promoting the entry to hot (refaulting
  /// from the spill file if evicted). Untouched clients see the shared
  /// initial sections.
  StateSectionsPtr read(std::size_t k);

  /// Same value as read(k) but cache-neutral: no promotion, no eviction, and
  /// spilled entries are loaded transiently. Use on paths whose iteration
  /// order is bit-identity-critical (e.g. an all-clients reduction) so
  /// observation never perturbs residency.
  StateSectionsPtr peek(std::size_t k) const;

  /// Replaces client k's sections (marks it touched).
  void put(std::size_t k, StateSections sections);

  /// Forgets every touched entry (hot and spilled) — back to the shared
  /// initial sections. Used before a full checkpoint restore.
  void reset();

  std::uint64_t spills() const noexcept { return spills_; }
  std::uint64_t refaults() const noexcept { return refaults_; }

 private:
  /// Record name inside the SFCG container, validated on refault.
  static std::string record_name(std::size_t k);
  StateSectionsPtr load_spilled_locked(std::size_t k) const;
  void promote_locked(std::size_t k);
  void evict_overflow_locked();

  std::size_t num_clients_ = 0;
  std::size_t hot_capacity_ = 0;
  StateSectionsPtr initial_;
  std::vector<bool> touched_;

  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, StateSectionsPtr> hot_;
  std::list<std::size_t> lru_;  ///< front = most recently used
  std::unordered_map<std::size_t, std::list<std::size_t>::iterator> lru_it_;

  struct SpillRecord {
    long offset = 0;
    std::size_t size = 0;
  };
  mutable std::FILE* spill_file_ = nullptr;  ///< std::tmpfile(); unlinked on close
  std::unordered_map<std::size_t, SpillRecord> spilled_;
  mutable std::uint64_t spills_ = 0;
  mutable std::uint64_t refaults_ = 0;
};

}  // namespace subfed
