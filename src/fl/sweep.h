// Sharded experiment sweeps.
//
// The paper's headline results are grids of runs — algorithm × partition ×
// pruning-rate × seed. A SweepDescription holds a base ExperimentSpec plus
// one or more axes over its key=value fields (`algo=subfedavg_un,fedavg ×
// alpha=0.1,0.5 × seed=1,2,3`, including `algo.*` hyper-parameter keys);
// expand() takes the cross-product into concrete per-run specs, run_sweep
// shards them across a fixed-size thread pool (each run's training still
// parallelizes over clients on the global pool), and the aggregation layer
// folds the per-run JSON results into paper-style tables — mean ± std over a
// replicate axis (normally `seed`), grouped by the remaining axes.
//
// Failure isolation: one run throwing (bad spec value, unknown algorithm,
// I/O) records an error outcome and the rest of the sweep proceeds.
// Determinism: expansion order is the lexicographic cross-product with the
// LAST axis fastest, every run's seed comes from its spec (so a sweep file is
// a complete, reproducible artifact), and results land in per-index slots —
// worker scheduling cannot change any value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fl/experiment.h"
#include "metrics/stats.h"
#include "util/table.h"

namespace subfed {

/// One sweep dimension: a spec key (any kv field, including `algo.*`
/// hyper-parameters) and the values it takes.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Parses "key=v1,v2,v3". Throws CheckError on a missing '=', an empty key,
/// or an empty value element.
SweepAxis parse_axis(const std::string& text);

/// One expanded run of a sweep: its position, the `key=value` assignment that
/// produced it, a stable human-readable name, and the concrete spec.
struct SweepRun {
  std::size_t index = 0;
  std::string name;  ///< "algo=fedavg,seed=2" (or "run" when there are no axes)
  std::vector<std::pair<std::string, std::string>> assignment;
  ExperimentSpec spec;
};

struct SweepDescription {
  ExperimentSpec base;
  std::vector<SweepAxis> axes;

  /// parse_axis + duplicate-key check.
  void add_axis(const std::string& text);
  /// Appends a deterministic replicate axis: seed = base.seed … base.seed+n-1.
  /// Throws when a seed axis is already present.
  void add_replicas(std::size_t n);
  /// Sweep-file text: one `key=value[,value...]` per line; a multi-value line
  /// becomes an axis, a single-value line sets the base spec field. Blank
  /// lines and `#` comments are skipped.
  void apply_file(const std::string& text);

  /// Cross-product size (1 when there are no axes).
  std::size_t total_runs() const;
  /// Expands the cross-product, last axis fastest. Axis keys/values are
  /// validated by applying them — unknown keys and bad values throw here,
  /// before any run executes.
  std::vector<SweepRun> expand() const;
};

/// `run.name` with ',' → "__" and filesystem-hostile characters replaced,
/// prefixed by the zero-padded run index: "003-algo=fedavg__seed=2.json".
std::string sweep_run_file_name(const SweepRun& run);

struct SweepOptions {
  std::size_t jobs = 0;     ///< worker threads; 0 → hardware concurrency
  std::string out_dir;      ///< per-run JSON directory; empty → no files
  bool echo_progress = true;///< per-run completion lines on stderr
  // Remote sharding: when `listen` is set, grid points are dispatched as
  // whole runs to worker processes (tools/worker) that join this address —
  // each worker executes runs on its own machine and streams the result JSON
  // back; the coordinator writes the per-run files and aggregates as usual.
  // A run that dies with its worker is retried once on another worker, then
  // recorded as a failed outcome (the sweep's normal failure isolation).
  std::string listen;              ///< "host:port"; empty → local thread pool
  std::size_t remote_workers = 1;  ///< workers to wait for before dispatching
  std::size_t rpc_timeout_ms = 0;  ///< per-run deadline; 0 = no limit
};

/// What happened to one run. `ok == false` outcomes carry the error text and
/// an empty result; they are excluded from aggregation.
struct SweepRunOutcome {
  SweepRun run;
  bool ok = false;
  std::string error;
  std::string algorithm_name;
  std::string json_path;    ///< written file; empty when out_dir is unset or failed
  double seconds = 0.0;
  RunResult result;
  std::map<std::string, double> metrics;
};

struct SweepSummary {
  std::vector<SweepRunOutcome> outcomes;  ///< in expansion order
  std::size_t workers = 0;                ///< pool size actually used
  double seconds = 0.0;                   ///< wall-clock for the whole sweep
  /// Distinct data configurations synthesized: grid points that share a data
  /// configuration (dataset/partition/seed) reuse one cached FederatedData
  /// instead of re-synthesizing per run.
  std::size_t unique_datasets = 0;

  std::size_t num_ok() const;
  std::size_t num_failed() const;
};

/// One "failed: <run>: <error>" stderr line per failed outcome.
void report_failed_runs(const SweepSummary& summary);

/// Executes every run on a dedicated `jobs`-wide thread pool (execute_experiment
/// per run: checkpoint observers, JSON output and metrics collection
/// included). Creates `out_dir` when set. Never throws on individual run
/// failure — see SweepRunOutcome.
SweepSummary run_sweep(const std::vector<SweepRun>& runs, const SweepOptions& options);

// -- aggregation -------------------------------------------------------------

/// One run's result flattened for aggregation: the full spec as key=value
/// pairs (incl. `algo.*`), the headline scalars, and the extra metrics.
struct SweepRecord {
  std::string path;       ///< source file; empty for in-memory records
  std::string algorithm;  ///< display name, e.g. "Sub-FedAvg (Un)"
  std::map<std::string, std::string> spec;
  double final_avg_accuracy = 0.0;
  std::uint64_t up_bytes = 0;
  std::uint64_t down_bytes = 0;
  double simulated_seconds = 0.0;  ///< driver's synchronous round-time total
  std::map<std::string, double> metrics;

  std::uint64_t total_bytes() const noexcept { return up_bytes + down_bytes; }
};

/// Parses one per-run JSON file (the run_result_json format). Throws
/// CheckError on unreadable or malformed input.
SweepRecord load_run_record(const std::string& path);

/// Loads every *.json under `dir` (sorted by file name). Throws when the
/// directory cannot be read; skips nothing — a malformed file throws.
std::vector<SweepRecord> load_run_records(const std::string& dir);

/// Converts a successful outcome without touching the filesystem. Throws on
/// failed outcomes.
SweepRecord record_from_outcome(const SweepRunOutcome& outcome);

struct AggregateOptions {
  /// Spec keys identifying a table row. Empty → inferred: every spec key
  /// whose value varies across the records, minus `over` and `out`-like
  /// bookkeeping keys.
  std::vector<std::string> group_by;
  /// Replicate key folded into mean ± std (its values never form rows).
  std::string over = "seed";
  /// Metric columns: "accuracy", "comm", "round_time" (the driver's
  /// simulated seconds — slowest client in sync mode, K-th arrival in
  /// buffered mode), or any extra-metrics key (e.g. "unstructured_pruned",
  /// "compression_ratio", "stale_updates", "evicted_updates").
  std::vector<std::string> metrics = {"accuracy", "comm"};
};

/// One aggregated row: the group's key values (aligned with group_by) and a
/// Summary per requested metric. `runs` counts the records that landed in the
/// group; a metric absent from some record is summarized over those that
/// have it.
struct AggregateRow {
  std::vector<std::string> group;
  std::size_t runs = 0;
  std::map<std::string, Summary> stats;
};

/// The group keys actually used: options.group_by when set, otherwise the
/// inferred varying-key set (sorted). Pass the result back in options so
/// aggregation_table's headers match.
std::vector<std::string> resolve_group_by(const std::vector<SweepRecord>& records,
                                          const AggregateOptions& options);

/// Groups records (first-appearance order) and summarizes each metric.
std::vector<AggregateRow> aggregate_records(const std::vector<SweepRecord>& records,
                                            const AggregateOptions& options);

/// Renders rows as a table: one column per group key, `runs`, then
/// "mean ± std" per metric (accuracy as percent, comm as bytes). Single-run
/// groups print the plain mean.
TablePrinter aggregation_table(const std::vector<AggregateRow>& rows,
                               const AggregateOptions& options);

/// "ascii" (aligned, default), "csv", or "markdown". Throws on other names.
std::string render_table(const TablePrinter& table, const std::string& format);

}  // namespace subfed
