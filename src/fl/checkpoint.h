// Federation checkpointing.
//
// Paper-scale runs (100 clients × 300-500 rounds) take hours on CPU; the
// checkpoint captures everything a Sub-FedAvg federation needs to resume:
// the server's global state plus every client's personal model, unstructured
// mask, and channel mask. Pruned fractions are re-derived from the masks on
// load. The communication ledger is intentionally NOT persisted — resumed
// runs account their own traffic.
//
// The file reuses the comm/serialize wire format for tensors, wrapped in a
// small versioned container, so a checkpoint is readable by any build that
// can decode an update.
#pragma once

#include <string>

#include "fl/subfedavg.h"

namespace subfed {

/// Writes the federation's full state to `path` (overwrites).
/// Throws CheckError on I/O failure.
void save_subfedavg_checkpoint(SubFedAvg& algorithm, const std::string& path);

/// Restores state saved by save_subfedavg_checkpoint into an algorithm built
/// with the SAME data/spec/config. Throws CheckError on mismatch or corrupt
/// input.
void load_subfedavg_checkpoint(SubFedAvg& algorithm, const std::string& path);

}  // namespace subfed
