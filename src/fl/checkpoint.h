// Federation checkpointing.
//
// Paper-scale runs (100 clients × 300-500 rounds) take hours on CPU; a
// checkpoint captures everything a federation needs to resume. Two formats
// share the comm/serialize wire format for tensors:
//
//   * the generic container (save_checkpoint / load_checkpoint) stores the
//     algorithm's named state sections from
//     FederatedAlgorithm::checkpoint_state(), so EVERY built-in algorithm —
//     not just Sub-FedAvg — can snapshot and resume;
//   * the legacy Sub-FedAvg format (save_subfedavg_checkpoint /
//     load_subfedavg_checkpoint) is kept for files written by earlier builds.
//
// CheckpointObserver wires snapshots into the driver's RoundObserver hooks:
// attach one and every N-th round (plus the final state) lands on disk
// without the driver or the algorithm knowing about it. ExperimentSpec's
// `checkpoint_every=` / `checkpoint_path=` fields reach it through
// execute_experiment (fl/experiment.h).
//
// Pruned fractions are re-derived from the masks on load. The communication
// ledger is intentionally NOT persisted — resumed runs account their own
// traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fl/driver.h"
#include "fl/subfedavg.h"

namespace subfed {

/// One SFCG (generic sections) container as bytes: magic + version + `name`
/// + the sections. This is the building block under checkpoint_bytes, exposed
/// so per-client state spilled to disk (fl/client_state.h) rides the same
/// versioned format as full checkpoints.
std::vector<std::uint8_t> encode_state_sections(std::string_view name,
                                                const std::vector<StateDict>& sections);

/// Inverse of encode_state_sections. Throws CheckError on magic/version
/// mismatch, a name different from `expect_name`, or corrupt input.
std::vector<StateDict> decode_state_sections(std::span<const std::uint8_t> bytes,
                                             std::string_view expect_name);

/// The generic checkpoint container (magic + version + algorithm name +
/// checkpoint_state sections) as bytes, so callers that embed a federation
/// snapshot inside a larger record (serve/FederationSession) share the file
/// format with save_checkpoint. Throws CheckError when the algorithm does not
/// support checkpointing.
std::vector<std::uint8_t> checkpoint_bytes(FederatedAlgorithm& algorithm);

/// Inverse of checkpoint_bytes into an algorithm built with the SAME
/// data/spec/config. Throws CheckError on algorithm-name mismatch, section
/// mismatch, or corrupt input.
void restore_checkpoint_bytes(FederatedAlgorithm& algorithm,
                              std::span<const std::uint8_t> bytes);

/// Writes `algorithm`'s full state (name + checkpoint_state sections) to
/// `path` (overwrites). Throws CheckError on I/O failure or when the
/// algorithm does not support checkpointing.
void save_checkpoint(FederatedAlgorithm& algorithm, const std::string& path);

/// Restores state saved by save_checkpoint into an algorithm built with the
/// SAME data/spec/config. Throws CheckError on algorithm-name mismatch,
/// section mismatch, or corrupt input.
void load_checkpoint(FederatedAlgorithm& algorithm, const std::string& path);

/// Snapshots the federation every `every` rounds (and once more at run end)
/// via save_checkpoint. Attach to run_federation; the observer does not own
/// the algorithm, which must outlive it.
class CheckpointObserver final : public RoundObserver {
 public:
  /// `every` = 0 disables periodic snapshots (only the final one is written).
  CheckpointObserver(FederatedAlgorithm& algorithm, std::string path, std::size_t every);

  void on_round_end(const RoundEndInfo& info) override;
  void on_run_end(const RunResult& result) override;

  std::size_t snapshots_taken() const noexcept { return snapshots_; }
  const std::string& path() const noexcept { return path_; }

 private:
  FederatedAlgorithm& algorithm_;
  std::string path_;
  std::size_t every_;
  std::size_t snapshots_ = 0;
  std::size_t last_round_ = 0;        ///< last round that actually ran
  std::size_t last_saved_round_ = 0;  ///< last round whose end was snapshotted
};

/// Legacy Sub-FedAvg-only format. Prefer save_checkpoint for new code.
void save_subfedavg_checkpoint(SubFedAvg& algorithm, const std::string& path);

/// Restores state saved by save_subfedavg_checkpoint into an algorithm built
/// with the SAME data/spec/config. Throws CheckError on mismatch or corrupt
/// input.
void load_subfedavg_checkpoint(SubFedAvg& algorithm, const std::string& path);

}  // namespace subfed
