// Federation worker: the connect-side half of transport=tcp.
//
// A worker joins a coordinator (a run with transport=tcp listen=host:port),
// receives the experiment spec as a kSetup blob, mirrors the federation
// locally — same dataset synthesis, same algorithm construction, loopback
// channel — and then serves kExchange requests until the coordinator shuts it
// down. Each exchange ships the client's full personal state down and back,
// so the mirror never needs to have seen previous rounds: workers can join,
// die, and rejoin mid-run and the federation stays bit-identical to a local
// loopback run.
//
// Workers also serve kRunSpec frames (whole runs, for sweep sharding across
// machines), returning the finished run's result JSON.
#pragma once

#include <cstddef>
#include <string>

namespace subfed {

struct WorkerOptions {
  std::string connect;          ///< coordinator "host:port" (required)
  std::size_t reconnect = 5;    ///< consecutive failed joins before giving up
  std::size_t rpc_timeout_ms = 120000;  ///< handshake/reply deadline; 0 = forever
  /// Close the connection after serving this many exchanges (0 = unlimited).
  /// The failure-injection hook: the straggler-eviction tests and the CI
  /// kill-a-worker smoke job use it to die mid-round, after accepting a
  /// request and before replying.
  std::size_t max_exchanges = 0;
  bool echo = false;            ///< progress lines on stderr
};

struct WorkerStats {
  std::size_t sessions = 0;     ///< successful joins (first + reconnects)
  std::size_t exchanges = 0;    ///< kExchange frames served
  std::size_t runs = 0;         ///< kRunSpec runs executed
  bool shutdown = false;        ///< coordinator ended the session cleanly
};

/// Runs a worker until the coordinator sends kShutdown, `max_exchanges` is
/// reached, or the coordinator cannot be (re)joined within `reconnect`
/// consecutive attempts (throws CheckError then). A dropped connection is
/// not fatal: the worker reconnects with exponential backoff and keeps its
/// mirror when the coordinator re-sends the same session spec.
WorkerStats run_worker(const WorkerOptions& options);

}  // namespace subfed
