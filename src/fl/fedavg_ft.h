// FedAvg + local fine-tuning: the classic two-step personalization the paper
// argues against (§2: "two separate steps where a global model is constituted
// collaboratively in the first step, and then the global model is
// personalized for each client ... These two steps might add extra
// computational overhead").
//
// Federated rounds are plain FedAvg; at evaluation time each client takes the
// current global model and fine-tunes it on its local data for
// `finetune_epochs` before being scored. The fine-tuning cost is surfaced via
// extra_finetune_steps() so benches can report the overhead the paper points
// at.
#pragma once

#include <atomic>

#include "fl/fedavg.h"

namespace subfed {

class FedAvgFinetune final : public FedAvg {
 public:
  FedAvgFinetune(FlContext ctx, std::size_t finetune_epochs);

  std::string name() const override { return "FedAvg+FT"; }
  double client_test_accuracy(std::size_t k) override;

  /// Total local fine-tuning optimizer steps spent on evaluation so far —
  /// the "extra computational overhead" of two-step personalization.
  std::size_t extra_finetune_steps() const noexcept { return finetune_steps_.load(); }

 private:
  std::size_t finetune_epochs_;
  std::atomic<std::size_t> finetune_steps_{0};
};

}  // namespace subfed
