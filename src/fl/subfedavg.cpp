#include "fl/subfedavg.h"

#include "fl/robust.h"
#include "util/check.h"

namespace subfed {

SubFedAvg::SubFedAvg(FlContext ctx, SubFedAvgConfig config)
    : FederatedAlgorithm(std::move(ctx)), config_(config) {
  config_.train = ctx_.train;
  config_.sgd = ctx_.sgd;
  global_ = initial_state();

  clients_.reserve(num_clients());
  for (std::size_t k = 0; k < num_clients(); ++k) {
    Rng client_rng = Rng(ctx_.seed).split("subfed-client", k);
    clients_.push_back(std::make_unique<SubFedAvgClient>(
        k, ctx_.spec, config_, &ctx_.data->client(k), client_rng));
    clients_.back()->seed_personal(global_);
  }
}

std::string SubFedAvg::name() const {
  return config_.hybrid ? "Sub-FedAvg (Hy)" : "Sub-FedAvg (Un)";
}

SubFedAvgClient& SubFedAvg::client(std::size_t k) {
  SUBFEDAVG_CHECK(k < clients_.size(), "client " << k);
  return *clients_[k];
}

void SubFedAvg::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  // Download: each client needs only the entries its pre-round mask keeps
  // (the client re-applies θ_g ⊙ m_k on arrival, so the masked broadcast is
  // exactly what it would have computed from the full global).
  std::vector<ModelMask> pre_masks(sampled.size());
  std::vector<ClientJob> jobs(sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    pre_masks[i] = clients_[sampled[i]]->combined_mask();
    jobs[i] = {sampled[i], &global_, &pre_masks[i], 1, {}};
  }

  std::vector<Exchange> exchanges = exchange_round(round, jobs);

  std::vector<ClientUpdate> updates;
  updates.reserve(exchanges.size());
  for (Exchange& exchange : exchanges) {
    // A detached round mutated a worker-process copy of the client; its
    // side-band sections bring this process's mirror up to date.
    if (!exchange.state.empty()) {
      restore_client_sections(exchange.client, exchange.state);
    }
    updates.push_back(std::move(exchange.update));
  }

  // Mask-aware server defense: distances count only entries each update
  // actually uploaded, so honest heavily-pruned clients are not mistaken for
  // outliers (ROADMAP robustness knob, extended to the masked path).
  if (ctx_.robust_filter > 0.0) {
    const std::vector<std::size_t> passed =
        filter_updates_by_norm(updates, global_, ctx_.robust_filter);
    if (!passed.empty() && passed.size() < updates.size()) {
      filtered_updates_ += updates.size() - passed.size();
      std::vector<ClientUpdate> kept;
      kept.reserve(passed.size());
      for (const std::size_t i : passed) kept.push_back(std::move(updates[i]));
      updates = std::move(kept);
    }
  }

  global_ = strict_ ? sub_fedavg_aggregate_strict(updates, global_)
                    : sub_fedavg_aggregate(updates, global_);
}

ClientResult SubFedAvg::run_client(std::size_t round, const ClientJob& job,
                                   const StateDict& received, bool detached) {
  if (!job.state.empty()) {
    // Remote exchange: install the coordinator's client mirror — personal
    // model, weight mask, channel mask — before computing. The round RNG is
    // split deterministically from (seed, client, round), so the mirror plus
    // these sections is the client's complete state.
    std::vector<StateDict> inbound(job.state);
    restore_client_sections(job.client, inbound);
  }
  ClientResult result;
  result.update = clients_[job.client]->run_round(received, round);
  if (detached) result.state = client_sections(job.client);
  return result;
}

std::vector<StateDict> SubFedAvg::client_state_sections(std::size_t k) {
  return client_sections(k);
}

double SubFedAvg::client_test_accuracy(std::size_t k) {
  return client(k).evaluate_test().accuracy;
}

double SubFedAvg::average_unstructured_pruned() const {
  double sum = 0.0;
  for (const auto& c : clients_) sum += c->unstructured_pruned();
  return clients_.empty() ? 0.0 : sum / static_cast<double>(clients_.size());
}

double SubFedAvg::average_structured_pruned() const {
  double sum = 0.0;
  for (const auto& c : clients_) sum += c->structured_pruned();
  return clients_.empty() ? 0.0 : sum / static_cast<double>(clients_.size());
}

ReductionReport SubFedAvg::client_reduction(std::size_t k) {
  SubFedAvgClient& c = client(k);
  Model model = ctx_.spec.build();
  model.load_state(c.personal_state());
  const ChannelMask* channel = config_.hybrid ? &c.channel_mask() : nullptr;
  const ModelMask& weights = c.weight_mask();
  return reduction_report(model, channel, &weights);
}


std::vector<StateDict> SubFedAvg::client_sections(std::size_t k) const {
  const SubFedAvgClient& client = *clients_[k];
  std::vector<StateDict> sections;
  sections.reserve(3);
  sections.push_back(client.personal_state());
  StateDict weights;
  for (const auto& [name, tensor] : client.weight_mask()) weights.add(name, tensor);
  sections.push_back(std::move(weights));
  StateDict channels;
  const ChannelMask& cm = client.channel_mask();
  for (std::size_t b = 0; b < cm.num_blocks(); ++b) {
    std::vector<float> keep(cm.block(b).begin(), cm.block(b).end());
    const Shape shape{keep.size()};
    channels.add("block" + std::to_string(b), Tensor(shape, std::move(keep)));
  }
  sections.push_back(std::move(channels));
  return sections;
}

void SubFedAvg::restore_client_sections(std::size_t k, std::span<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == 3, "client " << k << " state expects 3 sections, got "
                                                  << sections.size());
  StateDict personal = std::move(sections[0]);
  ModelMask weight_mask;
  for (auto& [name, tensor] : sections[1]) weight_mask.set(name, std::move(tensor));
  // Start from the client's current mask to get the architecture's block
  // sizes, then overwrite the keep bits from the section.
  ChannelMask channel_mask = clients_[k]->channel_mask();
  const StateDict& channels = sections[2];
  SUBFEDAVG_CHECK(channels.size() == channel_mask.num_blocks(), "channel mask block count");
  for (std::size_t b = 0; b < channel_mask.num_blocks(); ++b) {
    const Tensor* keep = channels.find("block" + std::to_string(b));
    SUBFEDAVG_CHECK(keep != nullptr && keep->numel() == channel_mask.block(b).size(),
                    "channel mask block size");
    for (std::size_t c = 0; c < channel_mask.block(b).size(); ++c) {
      channel_mask.block(b)[c] = (*keep)[c] != 0.0f ? 1 : 0;
    }
  }
  clients_[k]->restore(std::move(personal), std::move(weight_mask),
                       std::move(channel_mask));
}

std::vector<StateDict> SubFedAvg::checkpoint_state() {
  std::vector<StateDict> sections;
  sections.reserve(1 + 3 * clients_.size());
  sections.push_back(global_);
  for (std::size_t k = 0; k < clients_.size(); ++k) {
    std::vector<StateDict> client = client_sections(k);
    for (StateDict& section : client) sections.push_back(std::move(section));
  }
  return sections;
}

void SubFedAvg::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == 1 + 3 * clients_.size(),
                  name() << " checkpoint expects " << 1 + 3 * clients_.size()
                         << " sections, got " << sections.size());
  global_ = std::move(sections[0]);
  for (std::size_t k = 0; k < clients_.size(); ++k) {
    restore_client_sections(k, {sections.data() + 1 + 3 * k, 3});
  }
}

}  // namespace subfed
