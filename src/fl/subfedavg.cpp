#include "fl/subfedavg.h"

#include <string>
#include <utility>

#include "fl/robust.h"
#include "util/check.h"

namespace subfed {

namespace {

/// Weight mask as a StateDict section (0/1 float tensors, entry-per-entry).
StateDict mask_state(const ModelMask& mask) {
  StateDict state;
  for (const auto& [name, tensor] : mask) state.add(name, tensor);
  return state;
}

/// Channel mask as a StateDict section: one "block<b>" keep-vector per block.
StateDict channel_state(const ChannelMask& mask) {
  StateDict state;
  for (std::size_t b = 0; b < mask.num_blocks(); ++b) {
    std::vector<float> keep(mask.block(b).begin(), mask.block(b).end());
    const Shape shape{keep.size()};
    state.add("block" + std::to_string(b), Tensor(shape, std::move(keep)));
  }
  return state;
}

/// Installs a 3-section mirror {personal, weight mask, channel mask} into a
/// live client (the inverse of SubFedAvg::sections_of). Consumes `sections`.
void restore_into(SubFedAvgClient& client, std::span<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == 3, "client " << client.id()
                                                  << " state expects 3 sections, got "
                                                  << sections.size());
  StateDict personal = std::move(sections[0]);
  ModelMask weight_mask;
  for (auto& [name, tensor] : sections[1]) weight_mask.set(name, std::move(tensor));
  // Start from the client's current mask to get the architecture's block
  // sizes, then overwrite the keep bits from the section.
  ChannelMask channel_mask = client.channel_mask();
  const StateDict& channels = sections[2];
  SUBFEDAVG_CHECK(channels.size() == channel_mask.num_blocks(), "channel mask block count");
  for (std::size_t b = 0; b < channel_mask.num_blocks(); ++b) {
    const Tensor* keep = channels.find("block" + std::to_string(b));
    SUBFEDAVG_CHECK(keep != nullptr && keep->numel() == channel_mask.block(b).size(),
                    "channel mask block size");
    for (std::size_t c = 0; c < channel_mask.block(b).size(); ++c) {
      channel_mask.block(b)[c] = (*keep)[c] != 0.0f ? 1 : 0;
    }
  }
  client.restore(std::move(personal), std::move(weight_mask), std::move(channel_mask));
}

}  // namespace

SubFedAvg::SubFedAvg(FlContext ctx, SubFedAvgConfig config)
    : FederatedAlgorithm(std::move(ctx)), config_(config) {
  config_.train = ctx_.train;
  config_.sgd = ctx_.sgd;
  global_ = initial_state();

  // A never-sampled client's mirror is the seeded initial global plus
  // all-ones masks — shared once here instead of materialized per client, so
  // construction is O(1) in the population.
  Model model = ctx_.spec.build();
  const ModelMask weight_ones = ModelMask::ones_like(
      model, config_.hybrid ? MaskScope::kFcOnly : MaskScope::kAllPrunable);
  const ChannelMask channel_ones = ChannelMask::ones_like(model);
  store_.init(num_clients(),
              {global_, mask_state(weight_ones), channel_state(channel_ones)},
              ctx_.client_cache);
  frac_us_.assign(num_clients(), 0.0);
  frac_s_.assign(num_clients(), 0.0);
}

std::string SubFedAvg::name() const {
  return config_.hybrid ? "Sub-FedAvg (Hy)" : "Sub-FedAvg (Un)";
}

std::shared_ptr<SubFedAvgClient> SubFedAvg::acquire(std::size_t k) {
  SUBFEDAVG_CHECK(k < num_clients(), "client " << k);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = live_.find(k);
    if (it != live_.end()) {
      lru_.splice(lru_.begin(), lru_, lru_it_[k]);
      return it->second;
    }
  }

  // Build outside the lock: model construction and (possibly lazy) data
  // materialization dominate, and parallel evaluation touches distinct k.
  Rng client_rng = Rng(ctx_.seed).split("subfed-client", k);
  auto built = std::make_shared<SubFedAvgClient>(k, ctx_.spec, config_,
                                                 ctx_.data->client_ptr(k), client_rng);
  bool refaulted = false;
  if (store_.touched(k)) {
    // Evicted earlier: reinstall the exact spilled mirror (restore recomputes
    // the pruned fractions from the masks, so nothing else is needed).
    StateSections sections = *store_.peek(k);
    restore_into(*built, sections);
    refaulted = true;
  } else {
    // First touch ever: seed with the initial global, as the eager
    // constructor did before round 0.
    built->seed_personal(initial_state());
  }

  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto [it, inserted] = live_.try_emplace(k, built);
  if (!inserted) {
    // Another thread materialized k while we built; both copies are
    // bit-identical (state is deterministic between rounds) — keep theirs.
    lru_.splice(lru_.begin(), lru_, lru_it_[k]);
    return it->second;
  }
  lru_.push_front(k);
  lru_it_[k] = lru_.begin();
  if (refaulted) ++refaults_;
  evict_overflow_locked(k);
  return built;
}

void SubFedAvg::evict_overflow_locked(std::size_t keep) {
  const std::size_t cap = ctx_.client_cache;
  if (cap == 0) return;
  auto it = lru_.end();
  while (live_.size() > cap && it != lru_.begin()) {
    --it;
    const std::size_t victim = *it;
    const auto live_it = live_.find(victim);
    SUBFEDAVG_CHECK(live_it != live_.end(), "LRU entry without live client");
    // use_count > 1 means a round, an evaluation or the pin still holds the
    // object — skip it; it becomes evictable once released.
    if (victim == keep || live_it->second.use_count() > 1) continue;
    frac_us_[victim] = live_it->second->unstructured_pruned();
    frac_s_[victim] = live_it->second->structured_pruned();
    store_.put(victim, sections_of(*live_it->second));
    live_.erase(live_it);
    lru_it_.erase(victim);
    it = lru_.erase(it);
  }
}

SubFedAvgClient& SubFedAvg::client(std::size_t k) {
  std::shared_ptr<SubFedAvgClient> c = acquire(k);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  pinned_ = std::move(c);
  return *pinned_;
}

void SubFedAvg::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  // Pin the round's cohort so eviction cannot recycle an object mid-round
  // (loopback run_client re-acquires the same live objects).
  std::vector<std::shared_ptr<SubFedAvgClient>> cohort(sampled.size());

  // Download: each client needs only the entries its pre-round mask keeps
  // (the client re-applies θ_g ⊙ m_k on arrival, so the masked broadcast is
  // exactly what it would have computed from the full global).
  std::vector<ModelMask> pre_masks(sampled.size());
  std::vector<ClientJob> jobs(sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    cohort[i] = acquire(sampled[i]);
    pre_masks[i] = cohort[i]->combined_mask();
    jobs[i] = {sampled[i], &global_, &pre_masks[i], 1, {}};
  }

  std::vector<Exchange> exchanges = exchange_round(round, jobs);

  std::vector<ClientUpdate> updates;
  updates.reserve(exchanges.size());
  for (Exchange& exchange : exchanges) {
    // A detached round mutated a worker-process copy of the client; its
    // side-band sections bring this process's mirror up to date.
    if (!exchange.state.empty()) {
      restore_client_sections(exchange.client, exchange.state);
    }
    updates.push_back(std::move(exchange.update));
  }

  // Mask-aware server defense: distances count only entries each update
  // actually uploaded, so honest heavily-pruned clients are not mistaken for
  // outliers (ROADMAP robustness knob, extended to the masked path).
  if (ctx_.robust_filter > 0.0) {
    const std::vector<std::size_t> passed =
        filter_updates_by_norm(updates, global_, ctx_.robust_filter);
    if (!passed.empty() && passed.size() < updates.size()) {
      filtered_updates_ += updates.size() - passed.size();
      std::vector<ClientUpdate> kept;
      kept.reserve(passed.size());
      for (const std::size_t i : passed) kept.push_back(std::move(updates[i]));
      updates = std::move(kept);
    }
  }

  global_ = strict_ ? sub_fedavg_aggregate_strict(updates, global_)
                    : sub_fedavg_aggregate(updates, global_);
}

ClientResult SubFedAvg::run_client(std::size_t round, const ClientJob& job,
                                   const StateDict& received, bool detached) {
  const std::shared_ptr<SubFedAvgClient> client = acquire(job.client);
  if (!job.state.empty()) {
    // Remote exchange: install the coordinator's client mirror — personal
    // model, weight mask, channel mask — before computing. The round RNG is
    // split deterministically from (seed, client, round), so the mirror plus
    // these sections is the client's complete state.
    std::vector<StateDict> inbound(job.state);
    restore_into(*client, inbound);
  }
  ClientResult result;
  result.update = client->run_round(received, round);
  if (detached) result.state = sections_of(*client);
  return result;
}

std::vector<StateDict> SubFedAvg::client_state_sections(std::size_t k) {
  return client_sections(k);
}

double SubFedAvg::client_test_accuracy(std::size_t k) {
  return acquire(k)->evaluate_test().accuracy;
}

double SubFedAvg::average_unstructured_pruned() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  double sum = 0.0;
  for (std::size_t k = 0; k < frac_us_.size(); ++k) {
    const auto it = live_.find(k);
    sum += it != live_.end() ? it->second->unstructured_pruned() : frac_us_[k];
  }
  return frac_us_.empty() ? 0.0 : sum / static_cast<double>(frac_us_.size());
}

double SubFedAvg::average_structured_pruned() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  double sum = 0.0;
  for (std::size_t k = 0; k < frac_s_.size(); ++k) {
    const auto it = live_.find(k);
    sum += it != live_.end() ? it->second->structured_pruned() : frac_s_[k];
  }
  return frac_s_.empty() ? 0.0 : sum / static_cast<double>(frac_s_.size());
}

ReductionReport SubFedAvg::client_reduction(std::size_t k) {
  const std::shared_ptr<SubFedAvgClient> c = acquire(k);
  Model model = ctx_.spec.build();
  model.load_state(c->personal_state());
  const ChannelMask* channel = config_.hybrid ? &c->channel_mask() : nullptr;
  const ModelMask& weights = c->weight_mask();
  return reduction_report(model, channel, &weights);
}


std::vector<StateDict> SubFedAvg::sections_of(const SubFedAvgClient& client) {
  std::vector<StateDict> sections;
  sections.reserve(3);
  sections.push_back(client.personal_state());
  sections.push_back(mask_state(client.weight_mask()));
  sections.push_back(channel_state(client.channel_mask()));
  return sections;
}

std::vector<StateDict> SubFedAvg::client_sections(std::size_t k) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = live_.find(k);
    if (it != live_.end()) return sections_of(*it->second);
  }
  // Evicted (exact spilled mirror) or never touched (shared initial
  // sections) — either way the store answers without materializing k.
  return *store_.peek(k);
}

void SubFedAvg::restore_client_sections(std::size_t k, std::span<StateDict> sections) {
  const std::shared_ptr<SubFedAvgClient> client = acquire(k);
  restore_into(*client, sections);
}

std::vector<StateDict> SubFedAvg::checkpoint_state() {
  std::vector<StateDict> sections;
  sections.reserve(1 + 3 * num_clients());
  sections.push_back(global_);
  for (std::size_t k = 0; k < num_clients(); ++k) {
    std::vector<StateDict> client = client_sections(k);
    for (StateDict& section : client) sections.push_back(std::move(section));
  }
  return sections;
}

void SubFedAvg::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == 1 + 3 * num_clients(),
                  name() << " checkpoint expects " << 1 + 3 * num_clients()
                         << " sections, got " << sections.size());
  global_ = std::move(sections[0]);
  for (std::size_t k = 0; k < num_clients(); ++k) {
    restore_client_sections(k, {sections.data() + 1 + 3 * k, 3});
  }
}

}  // namespace subfed
