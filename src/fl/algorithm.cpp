#include "fl/algorithm.h"

#include "tensor/backend.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace subfed {

FederatedAlgorithm::FederatedAlgorithm(FlContext ctx) : ctx_(ctx) {
  SUBFEDAVG_CHECK(ctx_.data != nullptr, "FlContext.data is null");
  // The context's compute knobs take effect here, so callers that build an
  // FlContext directly (benches, tests) get them honored too: an explicit
  // ctx.backend wins over whatever the model spec carried, and a nonzero
  // math_threads caps the process-wide GEMM fan-out for this algorithm's
  // lifetime (the destructor restores the previous cap, so one run's
  // override never leaks over a SUBFEDAVG_MATH_THREADS setting).
  if (ctx_.backend != "auto") ctx_.spec.backend = ctx_.backend;
  if (ctx_.math_threads > 0) {
    restore_math_threads_ = math_threads();
    set_math_threads(ctx_.math_threads);
  }
  Rng init_rng = Rng(ctx_.seed).split("global-init");
  Model initial = ctx_.spec.build_init(init_rng);
  initial_state_ = initial.state();

  SUBFEDAVG_CHECK(ctx_.codec == "sparse" || ctx_.codec == "delta",
                  "unknown codec '" << ctx_.codec << "' (sparse | delta)");
  ChannelConfig channel_config;
  channel_config.transport = ctx_.transport;
  channel_config.delta = ctx_.codec == "delta";
  channel_config.quantize = parse_quant_codec(ctx_.quantize);
  channel_config.workers = ctx_.channel_workers;
  channel_config.corrupt_fraction = ctx_.corrupt_fraction;
  channel_config.corrupt_noise = ctx_.corrupt_noise;
  channel_config.seed = ctx_.seed;
  channel_ = std::make_unique<Channel>(std::move(channel_config), &ledger_);
}

FederatedAlgorithm::~FederatedAlgorithm() {
  if (restore_math_threads_) set_math_threads(*restore_math_threads_);
}

Rng FederatedAlgorithm::client_round_rng(std::size_t client, std::size_t round) const {
  return Rng(ctx_.seed).split("client-round", client * 1000003ULL + round);
}

std::vector<double> FederatedAlgorithm::all_test_accuracies() {
  std::vector<double> acc(num_clients());
  ThreadPool::global().parallel_for(num_clients(),
                                    [&](std::size_t k) { acc[k] = client_test_accuracy(k); });
  return acc;
}

std::vector<StateDict> FederatedAlgorithm::checkpoint_state() {
  SUBFEDAVG_CHECK(false, name() << " does not support checkpointing");
  return {};
}

void FederatedAlgorithm::restore_checkpoint_state(std::vector<StateDict> /*sections*/) {
  SUBFEDAVG_CHECK(false, name() << " does not support checkpointing");
}

double FederatedAlgorithm::average_test_accuracy() {
  const std::vector<double> acc = all_test_accuracies();
  double sum = 0.0;
  for (const double a : acc) sum += a;
  return acc.empty() ? 0.0 : sum / static_cast<double>(acc.size());
}

}  // namespace subfed
