#include "fl/algorithm.h"

#include "tensor/backend.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace subfed {

FederatedAlgorithm::FederatedAlgorithm(FlContext ctx) : ctx_(ctx) {
  SUBFEDAVG_CHECK(ctx_.data != nullptr, "FlContext.data is null");
  // The context's compute knobs take effect here, so callers that build an
  // FlContext directly (benches, tests) get them honored too: an explicit
  // ctx.backend wins over whatever the model spec carried, and a nonzero
  // math_threads caps the process-wide GEMM fan-out for this algorithm's
  // lifetime (the destructor restores the previous cap, so one run's
  // override never leaks over a SUBFEDAVG_MATH_THREADS setting).
  if (ctx_.backend != "auto") ctx_.spec.backend = ctx_.backend;
  if (ctx_.compute != "auto") ctx_.spec.compute = ctx_.compute;
  if (ctx_.math_threads > 0) {
    restore_math_threads_ = math_threads();
    set_math_threads(ctx_.math_threads);
  }
  Rng init_rng = Rng(ctx_.seed).split("global-init");
  Model initial = ctx_.spec.build_init(init_rng);
  initial_state_ = initial.state();

  SUBFEDAVG_CHECK(ctx_.codec == "sparse" || ctx_.codec == "delta",
                  "unknown codec '" << ctx_.codec << "' (sparse | delta)");
  SUBFEDAVG_CHECK(ctx_.aggregation == "sync" || ctx_.aggregation == "buffered",
                  "unknown aggregation '" << ctx_.aggregation << "' (sync | buffered)");
  ChannelConfig channel_config;
  channel_config.transport = ctx_.transport;
  channel_config.delta = ctx_.codec == "delta";
  channel_config.quantize = parse_quant_codec(ctx_.quantize);
  channel_config.workers = ctx_.channel_workers;
  channel_config.corrupt_fraction = ctx_.corrupt_fraction;
  channel_config.corrupt_noise = ctx_.corrupt_noise;
  channel_config.seed = ctx_.seed;
  channel_config.buffered = ctx_.aggregation == "buffered";
  channel_config.buffer_k = ctx_.buffer_k;
  channel_config.staleness_decay = ctx_.staleness_decay;
  channel_config.max_staleness = ctx_.max_staleness;
  channel_config.listen = ctx_.listen;
  channel_config.rpc_timeout_ms = static_cast<int>(ctx_.rpc_timeout_ms);
  channel_config.remote_setup.assign(ctx_.remote_setup.begin(), ctx_.remote_setup.end());
  channel_ = std::make_unique<Channel>(std::move(channel_config), &ledger_);

  fleet_spread_ = ctx_.link_spread;
  fleet_seed_ = ctx_.seed;
  fleet_ = std::make_unique<LinkFleet>(num_clients(), LinkModel{}, fleet_spread_,
                                       Rng(fleet_seed_).split("link-fleet"));
  channel_->set_link_fleet(fleet_.get());
}

void FederatedAlgorithm::apply_link_spread(double spread, std::uint64_t seed) {
  SUBFEDAVG_CHECK(spread >= 1.0, "link spread " << spread);
  if (spread == fleet_spread_ && seed == fleet_seed_) return;
  fleet_spread_ = spread;
  fleet_seed_ = seed;
  fleet_ = std::make_unique<LinkFleet>(num_clients(), LinkModel{}, fleet_spread_,
                                       Rng(fleet_seed_).split("link-fleet"));
  channel_->set_link_fleet(fleet_.get());
}

FederatedAlgorithm::~FederatedAlgorithm() {
  if (restore_math_threads_) set_math_threads(*restore_math_threads_);
}

Rng FederatedAlgorithm::client_round_rng(std::size_t client, std::size_t round) const {
  return Rng(ctx_.seed).split("client-round", client * 1000003ULL + round);
}

std::vector<double> FederatedAlgorithm::all_test_accuracies() {
  std::vector<double> acc(num_clients());
  ThreadPool::global().parallel_for(num_clients(),
                                    [&](std::size_t k) { acc[k] = client_test_accuracy(k); });
  return acc;
}

ClientResult FederatedAlgorithm::run_client(std::size_t /*round*/, const ClientJob& /*job*/,
                                            const StateDict& /*received*/, bool /*detached*/) {
  SUBFEDAVG_CHECK(false, name() << " does not support remote execution");
  return {};
}

std::vector<StateDict> FederatedAlgorithm::client_state_sections(std::size_t /*k*/) {
  return {};
}

std::vector<Exchange> FederatedAlgorithm::exchange_round(std::size_t round,
                                                         std::span<ClientJob> jobs) {
  if (channel_->ships_client_state()) {
    for (ClientJob& job : jobs) job.state = client_state_sections(job.client);
  }
  return channel_->run_round(
      round, jobs, [&](const ClientJob& job, const StateDict& received, bool detached) {
        return run_client(round, job, received, detached);
      });
}

std::vector<std::uint8_t> FederatedAlgorithm::serve_remote(
    std::span<const std::uint8_t> request_bytes) {
  return channel_->serve_remote_exchange(
      request_bytes, [&](std::size_t round, const ClientJob& job, const StateDict& received) {
        return run_client(round, job, received, /*detached=*/true);
      });
}

std::vector<StateDict> FederatedAlgorithm::checkpoint_state() {
  SUBFEDAVG_CHECK(false, name() << " does not support checkpointing");
  return {};
}

void FederatedAlgorithm::restore_checkpoint_state(std::vector<StateDict> /*sections*/) {
  SUBFEDAVG_CHECK(false, name() << " does not support checkpointing");
}

StateDict FederatedAlgorithm::global_model() {
  std::vector<StateDict> sections = checkpoint_state();
  SUBFEDAVG_CHECK(!sections.empty(), name() << " has no checkpointable state to serve");
  return std::move(sections.front());
}

double FederatedAlgorithm::average_test_accuracy() {
  const std::vector<double> acc = all_test_accuracies();
  double sum = 0.0;
  for (const double a : acc) sum += a;
  return acc.empty() ? 0.0 : sum / static_cast<double>(acc.size());
}

}  // namespace subfed
