#include "fl/algorithm.h"

#include "util/check.h"
#include "util/thread_pool.h"

namespace subfed {

FederatedAlgorithm::FederatedAlgorithm(FlContext ctx) : ctx_(ctx) {
  SUBFEDAVG_CHECK(ctx_.data != nullptr, "FlContext.data is null");
  Rng init_rng = Rng(ctx_.seed).split("global-init");
  Model initial = ctx_.spec.build_init(init_rng);
  initial_state_ = initial.state();
}

Rng FederatedAlgorithm::client_round_rng(std::size_t client, std::size_t round) const {
  return Rng(ctx_.seed).split("client-round", client * 1000003ULL + round);
}

std::vector<double> FederatedAlgorithm::all_test_accuracies() {
  std::vector<double> acc(num_clients());
  ThreadPool::global().parallel_for(num_clients(),
                                    [&](std::size_t k) { acc[k] = client_test_accuracy(k); });
  return acc;
}

std::vector<StateDict> FederatedAlgorithm::checkpoint_state() {
  SUBFEDAVG_CHECK(false, name() << " does not support checkpointing");
  return {};
}

void FederatedAlgorithm::restore_checkpoint_state(std::vector<StateDict> /*sections*/) {
  SUBFEDAVG_CHECK(false, name() << " does not support checkpointing");
}

double FederatedAlgorithm::average_test_accuracy() {
  const std::vector<double> acc = all_test_accuracies();
  double sum = 0.0;
  for (const double a : acc) sum += a;
  return acc.empty() ? 0.0 : sum / static_cast<double>(acc.size());
}

}  // namespace subfed
