// The paper's algorithms as FederatedAlgorithm implementations:
// Sub-FedAvg (Un) — Algorithm 1 — and Sub-FedAvg (Hy) — Algorithm 2.
//
// The server aggregates sampled clients' uploads with per-parameter counting
// over retained entries (core/aggregate.h) and keeps its previous value for
// entries no sampled client retained.
#pragma once

#include <memory>

#include "core/subfedavg_client.h"
#include "fl/algorithm.h"
#include "metrics/flops.h"

namespace subfed {

class SubFedAvg final : public FederatedAlgorithm {
 public:
  /// `config.hybrid` selects Algorithm 2; otherwise Algorithm 1. The train /
  /// sgd settings of `ctx` are copied into the client config.
  SubFedAvg(FlContext ctx, SubFedAvgConfig config);

  std::string name() const override;
  void run_round(std::size_t round, std::span<const std::size_t> sampled) override;
  /// Installs the inbound client mirror (remote exchanges), runs the client's
  /// prune-train-upload round, ships the refreshed mirror back when detached.
  ClientResult run_client(std::size_t round, const ClientJob& job, const StateDict& received,
                          bool detached) override;
  /// {personal model, weight mask, channel mask} — what a remote exchange
  /// ships down so the worker's mirror matches this process's.
  std::vector<StateDict> client_state_sections(std::size_t k) override;
  double client_test_accuracy(std::size_t k) override;

  /// Checkpoint layout: the global state, then per client {personal model,
  /// weight mask, channel mask} — the same coverage as the legacy
  /// save_subfedavg_checkpoint format, expressed as generic sections.
  std::vector<StateDict> checkpoint_state() override;
  void restore_checkpoint_state(std::vector<StateDict> sections) override;

  const StateDict& global_state() const noexcept { return global_; }
  StateDict global_model() override { return global_; }
  SubFedAvgClient& client(std::size_t k);

  /// Mean committed pruned fractions across clients.
  double average_unstructured_pruned() const;
  double average_structured_pruned() const;

  /// FLOP / parameter reduction of client k's current subnetwork.
  ReductionReport client_reduction(std::size_t k);

  /// Use the strict-intersection aggregation ablation instead of counting.
  void set_strict_intersection(bool strict) noexcept { strict_ = strict; }

  /// Replaces the server's global state (checkpoint resume).
  void set_global_state(StateDict state) { global_ = std::move(state); }

  bool hybrid() const noexcept { return config_.hybrid; }

  /// Robustness counters, mirroring the FedAvg family: uploads the channel
  /// replaced by noise, and updates the mask-aware norm filter discarded.
  std::size_t corrupted_updates() const noexcept { return channel_->corrupted_updates(); }
  std::size_t filtered_updates() const noexcept { return filtered_updates_; }

 private:
  /// {personal model, weight mask, channel mask} of client k — the same
  /// 3-section layout checkpoint_state uses per client, reused as the
  /// side-band mirror a detached (subprocess) round ships back.
  std::vector<StateDict> client_sections(std::size_t k) const;
  void restore_client_sections(std::size_t k, std::span<StateDict> sections);

  SubFedAvgConfig config_;
  StateDict global_;
  std::vector<std::unique_ptr<SubFedAvgClient>> clients_;
  bool strict_ = false;
  std::size_t filtered_updates_ = 0;
};

}  // namespace subfed
