// The paper's algorithms as FederatedAlgorithm implementations:
// Sub-FedAvg (Un) — Algorithm 1 — and Sub-FedAvg (Hy) — Algorithm 2.
//
// The server aggregates sampled clients' uploads with per-parameter counting
// over retained entries (core/aggregate.h) and keeps its previous value for
// entries no sampled client retained.
//
// Client residency is lazy: a SubFedAvgClient object (model buffers, data
// pin, masks) exists only while its client is hot. With ctx.client_cache > 0
// the live set is LRU-bounded; evicted clients spill their 3-section mirror
// {personal model, weight mask, channel mask} into a ClientStateStore and are
// reconstructed bit-exactly on the next touch (SubFedAvgClient::restore
// recomputes the pruned fractions from the masks, and the per-client RNG is
// re-derived from (seed, k), so nothing is lost). At the default cache of 0
// every touched client stays live — the historical behavior.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/subfedavg_client.h"
#include "fl/algorithm.h"
#include "fl/client_state.h"
#include "metrics/flops.h"

namespace subfed {

class SubFedAvg final : public FederatedAlgorithm {
 public:
  /// `config.hybrid` selects Algorithm 2; otherwise Algorithm 1. The train /
  /// sgd settings of `ctx` are copied into the client config.
  SubFedAvg(FlContext ctx, SubFedAvgConfig config);

  std::string name() const override;
  void run_round(std::size_t round, std::span<const std::size_t> sampled) override;
  /// Installs the inbound client mirror (remote exchanges), runs the client's
  /// prune-train-upload round, ships the refreshed mirror back when detached.
  ClientResult run_client(std::size_t round, const ClientJob& job, const StateDict& received,
                          bool detached) override;
  /// {personal model, weight mask, channel mask} — what a remote exchange
  /// ships down so the worker's mirror matches this process's.
  std::vector<StateDict> client_state_sections(std::size_t k) override;
  double client_test_accuracy(std::size_t k) override;

  /// Checkpoint layout: the global state, then per client {personal model,
  /// weight mask, channel mask} — the same coverage as the legacy
  /// save_subfedavg_checkpoint format, expressed as generic sections.
  std::vector<StateDict> checkpoint_state() override;
  void restore_checkpoint_state(std::vector<StateDict> sections) override;

  const StateDict& global_state() const noexcept { return global_; }
  StateDict global_model() override { return global_; }
  /// Materializes client k if needed. The reference stays valid until the
  /// NEXT client() call (a one-slot pin protects it from LRU eviction);
  /// callers iterating clients must not hold references across calls.
  SubFedAvgClient& client(std::size_t k);

  /// Mean committed pruned fractions across clients (live clients answer
  /// directly, evicted ones from the fraction snapshot taken at eviction —
  /// no client needs materializing).
  double average_unstructured_pruned() const;
  double average_structured_pruned() const;

  /// FLOP / parameter reduction of client k's current subnetwork.
  ReductionReport client_reduction(std::size_t k);

  /// Use the strict-intersection aggregation ablation instead of counting.
  void set_strict_intersection(bool strict) noexcept { strict_ = strict; }

  /// Replaces the server's global state (checkpoint resume).
  void set_global_state(StateDict state) { global_ = std::move(state); }

  bool hybrid() const noexcept { return config_.hybrid; }

  /// Robustness counters, mirroring the FedAvg family: uploads the channel
  /// replaced by noise, and updates the mask-aware norm filter discarded.
  std::size_t corrupted_updates() const noexcept { return channel_->corrupted_updates(); }
  std::size_t filtered_updates() const noexcept { return filtered_updates_; }

  /// Clients reconstructed from the spill store (lazy-mode observability).
  std::size_t client_refaults() const noexcept { return refaults_; }

 private:
  /// Returns the live client for k, constructing (and restoring from the
  /// store when previously evicted) on demand; bounds the live set.
  std::shared_ptr<SubFedAvgClient> acquire(std::size_t k);
  /// LRU-evicts live clients past the cap into the store. Caller holds
  /// cache_mutex_. Never evicts `keep` or a client another thread still uses.
  void evict_overflow_locked(std::size_t keep);

  /// {personal model, weight mask, channel mask} of client k — the same
  /// 3-section layout checkpoint_state uses per client, reused as the
  /// side-band mirror a detached (subprocess) round ships back.
  std::vector<StateDict> client_sections(std::size_t k);
  /// Same encoding from a live object (also the eviction spill path).
  static std::vector<StateDict> sections_of(const SubFedAvgClient& client);
  void restore_client_sections(std::size_t k, std::span<StateDict> sections);

  SubFedAvgConfig config_;
  StateDict global_;
  bool strict_ = false;
  std::size_t filtered_updates_ = 0;

  /// Live client objects (model buffers pinned), LRU-bounded when
  /// ctx_.client_cache > 0; front of lru_ is most recent.
  mutable std::mutex cache_mutex_;
  std::unordered_map<std::size_t, std::shared_ptr<SubFedAvgClient>> live_;
  std::list<std::size_t> lru_;
  std::unordered_map<std::size_t, std::list<std::size_t>::iterator> lru_it_;
  /// Keeps the most recent client() return alive across eviction.
  std::shared_ptr<SubFedAvgClient> pinned_;
  /// Section mirrors of evicted clients; untouched clients resolve to the
  /// shared initial sections {θ_0, ones, ones}.
  ClientStateStore store_;
  std::size_t refaults_ = 0;

  /// Committed pruned fractions of EVICTED clients, snapshotted as they
  /// spill (live clients are read directly) — keeps average_*_pruned() O(N)
  /// doubles instead of forcing every client resident.
  std::vector<double> frac_us_;
  std::vector<double> frac_s_;
};

}  // namespace subfed
