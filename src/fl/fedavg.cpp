#include "fl/fedavg.h"

#include "core/eval.h"
#include "fl/robust.h"
#include "util/check.h"

namespace subfed {

FedAvg::FedAvg(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {
  global_ = initial_state();
}

void FedAvg::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  std::vector<ClientJob> jobs(sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    jobs[i] = {sampled[i], &global_, nullptr, 1, {}};
  }

  std::vector<Exchange> exchanges = exchange_round(round, jobs);

  std::vector<ClientUpdate> updates;
  updates.reserve(exchanges.size());
  for (Exchange& exchange : exchanges) updates.push_back(std::move(exchange.update));

  // Server-side defense: drop updates whose distance from the previous global
  // exceeds robust_filter × the cohort median before aggregating.
  if (ctx_.robust_filter > 0.0) {
    const std::vector<std::size_t> passed =
        filter_updates_by_norm(updates, global_, ctx_.robust_filter);
    if (!passed.empty() && passed.size() < updates.size()) {
      filtered_updates_ += updates.size() - passed.size();
      std::vector<ClientUpdate> kept;
      kept.reserve(passed.size());
      for (const std::size_t i : passed) kept.push_back(std::move(updates[i]));
      updates = std::move(kept);
    }
  }

  global_ = fedavg_aggregate(updates);
}

ClientResult FedAvg::run_client(std::size_t round, const ClientJob& job,
                                const StateDict& received, bool detached) {
  (void)detached;  // stateless client: the upload carries everything
  const ClientDataPtr data = ctx_.data->client_ptr(job.client);
  Model model = ctx_.spec.build();
  model.load_state(received);

  Sgd optimizer(model.parameters(), ctx_.sgd);
  Rng rng = client_round_rng(job.client, round);
  train_local(model, optimizer, data->train_images, data->train_labels, ctx_.train, rng, {},
              make_grad_hook(received));

  ClientResult result;
  result.update.state = model.state();
  result.update.num_examples = data->train_labels.size();
  return result;
}

double FedAvg::client_test_accuracy(std::size_t k) {
  const ClientDataPtr data = ctx_.data->client_ptr(k);
  Model model = ctx_.spec.build();
  model.load_state(global_);
  return evaluate_client_test(model, *data).accuracy;
}

FedProx::FedProx(FlContext ctx, double mu) : FedAvg(std::move(ctx)), mu_(mu) {}

GradHook FedProx::make_grad_hook(const StateDict& received) {
  // Anchor the proximal term on the broadcast the client received: what a
  // deployed client would actually hold (and a by-value copy, so the hook
  // stays valid while global_ is being replaced by aggregation).
  const float mu = static_cast<float>(mu_);
  StateDict anchor = received;
  return [mu, anchor = std::move(anchor)](Model& model) {
    for (Parameter* p : model.parameters()) {
      const Tensor* g = anchor.find(p->name);
      if (g == nullptr) continue;
      // grad += μ(w − w_global)
      p->grad.axpy_(mu, p->value);
      p->grad.axpy_(-mu, *g);
    }
  };
}


std::vector<StateDict> FedAvg::checkpoint_state() { return {global_}; }

void FedAvg::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == 1,
                  name() << " checkpoint expects 1 section, got " << sections.size());
  global_ = std::move(sections.front());
}

}  // namespace subfed
