#include "fl/fedavg.h"

#include "comm/serialize.h"
#include "fl/robust.h"
#include "util/thread_pool.h"
#include "util/check.h"

namespace subfed {

FedAvg::FedAvg(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {
  global_ = initial_state();
}

void FedAvg::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  std::vector<ClientUpdate> updates(sampled.size());
  std::vector<std::size_t> up_bytes(sampled.size()), down_bytes(sampled.size());

  ThreadPool::global().parallel_for(sampled.size(), [&](std::size_t i) {
    const std::size_t k = sampled[i];
    const ClientData& data = ctx_.data->client(k);
    Model model = ctx_.spec.build();
    model.load_state(global_);
    down_bytes[i] = payload_bytes(global_, nullptr);

    Sgd optimizer(model.parameters(), ctx_.sgd);
    Rng rng = client_round_rng(k, round);
    train_local(model, optimizer, data.train_images, data.train_labels, ctx_.train, rng,
                {}, make_grad_hook());

    updates[i].state = model.state();
    updates[i].num_examples = data.train_labels.size();
    up_bytes[i] = payload_bytes(updates[i].state, nullptr);
  });

  for (std::size_t i = 0; i < sampled.size(); ++i) {
    ledger_.record(round, up_bytes[i], down_bytes[i]);
  }

  // Fault injection (§1.1's "corrupted updates"): replace a deterministic
  // per-round subset of uploads with noise, in sampled order so results do
  // not depend on worker scheduling.
  if (ctx_.corrupt_fraction > 0.0) {
    Rng corrupt_rng = Rng(ctx_.seed).split("corrupt-updates", round);
    const CorruptionConfig config{1.0, static_cast<float>(ctx_.corrupt_noise)};
    for (ClientUpdate& update : updates) {
      if (corrupt_rng.bernoulli(ctx_.corrupt_fraction)) {
        corrupt_update(update, config, corrupt_rng);
        ++corrupted_updates_;
      }
    }
  }

  // Server-side defense: drop updates whose distance from the previous global
  // exceeds robust_filter × the cohort median before aggregating.
  if (ctx_.robust_filter > 0.0) {
    const std::vector<std::size_t> passed =
        filter_updates_by_norm(updates, global_, ctx_.robust_filter);
    if (!passed.empty() && passed.size() < updates.size()) {
      filtered_updates_ += updates.size() - passed.size();
      std::vector<ClientUpdate> kept;
      kept.reserve(passed.size());
      for (const std::size_t i : passed) kept.push_back(std::move(updates[i]));
      updates = std::move(kept);
    }
  }

  global_ = fedavg_aggregate(updates);
}

double FedAvg::client_test_accuracy(std::size_t k) {
  const ClientData& data = ctx_.data->client(k);
  Model model = ctx_.spec.build();
  model.load_state(global_);
  return evaluate(model, data.test_images, data.test_labels).accuracy;
}

FedProx::FedProx(FlContext ctx, double mu) : FedAvg(std::move(ctx)), mu_(mu) {}

GradHook FedProx::make_grad_hook() {
  // Capture the round's global snapshot by value so the hook stays valid
  // while global_ is being replaced by aggregation.
  const float mu = static_cast<float>(mu_);
  StateDict anchor = global_;
  return [mu, anchor = std::move(anchor)](Model& model) {
    for (Parameter* p : model.parameters()) {
      const Tensor* g = anchor.find(p->name);
      if (g == nullptr) continue;
      // grad += μ(w − w_global)
      p->grad.axpy_(mu, p->value);
      p->grad.axpy_(-mu, *g);
    }
  };
}


std::vector<StateDict> FedAvg::checkpoint_state() { return {global_}; }

void FedAvg::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == 1,
                  name() << " checkpoint expects 1 section, got " << sections.size());
  global_ = std::move(sections.front());
}

}  // namespace subfed
