#include "fl/driver.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace subfed {

std::size_t RunResult::rounds_to_reach(double threshold) const noexcept {
  for (const RoundPoint& p : curve) {
    if (p.avg_accuracy >= threshold) return p.round;
  }
  return 0;
}

void ObserverChain::attach(RoundObserver* observer) {
  SUBFEDAVG_CHECK(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

void ObserverChain::on_round_begin(std::size_t round, std::span<const std::size_t> sampled) {
  for (RoundObserver* o : observers_) o->on_round_begin(round, sampled);
}

void ObserverChain::on_round_end(const RoundEndInfo& info) {
  for (RoundObserver* o : observers_) o->on_round_end(info);
}

void ObserverChain::on_eval(std::size_t round, double avg_accuracy) {
  for (RoundObserver* o : observers_) o->on_eval(round, avg_accuracy);
}

void ObserverChain::on_run_end(const RunResult& result) {
  for (RoundObserver* o : observers_) o->on_run_end(result);
}

RunResult run_federation(FederatedAlgorithm& algorithm, const DriverConfig& config,
                         RoundObserver* observer) {
  SUBFEDAVG_CHECK(config.rounds > 0, "need at least one round");
  SUBFEDAVG_CHECK(config.sample_rate > 0.0 && config.sample_rate <= 1.0,
                  "sample rate " << config.sample_rate);
  SUBFEDAVG_CHECK(config.link_spread >= 1.0, "link spread " << config.link_spread);

  const std::size_t n = algorithm.num_clients();
  const std::size_t per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.sample_rate * static_cast<double>(n)));

  Rng sample_rng = Rng(config.seed).split("client-sampling");
  Rng dropout_rng = Rng(config.seed).split("client-dropout");
  // The algorithm's channel owns the round-time model (it also needs it for
  // buffered arrival ordering); honor the driver-level spread knob there.
  // The default (1.0) defers to whatever FlContext.link_spread configured, so
  // a direct-API caller's context setting survives a default DriverConfig.
  if (config.link_spread != 1.0) {
    algorithm.apply_link_spread(config.link_spread, config.seed);
  }
  RunResult result;

  for (std::size_t round = 0; round < config.rounds; ++round) {
    std::vector<std::size_t> sampled =
        sample_rng.sample_without_replacement(n, per_round);

    if (config.dropout_prob > 0.0) {
      std::vector<std::size_t> alive;
      for (const std::size_t k : sampled) {
        if (dropout_rng.bernoulli(config.dropout_prob)) {
          ++result.dropped_clients;
        } else {
          alive.push_back(k);
        }
      }
      sampled = std::move(alive);
      if (sampled.empty()) {
        // Nobody reported back; the server waits for the next round.
        ++result.skipped_rounds;
        continue;
      }
    }
    if (observer != nullptr) observer->on_round_begin(round + 1, sampled);
    const std::uint64_t up_before = algorithm.ledger().total_up();
    const std::uint64_t down_before = algorithm.ledger().total_down();
    algorithm.run_round(round, sampled);
    const double simulated = algorithm.last_round_seconds();
    result.simulated_seconds += simulated;
    if (observer != nullptr) {
      RoundEndInfo info;
      info.round = round + 1;
      info.sampled = sampled;
      info.round_up_bytes = algorithm.ledger().total_up() - up_before;
      info.round_down_bytes = algorithm.ledger().total_down() - down_before;
      info.round_seconds = simulated;
      observer->on_round_end(info);
    }

    const bool last = (round + 1 == config.rounds);
    const bool checkpoint =
        config.eval_every > 0 && ((round + 1) % config.eval_every == 0);
    if (last || checkpoint) {
      const double avg = algorithm.average_test_accuracy();
      result.curve.push_back({round + 1, avg});
      SUBFEDAVG_LOG(kInfo) << algorithm.name() << " round " << (round + 1) << "/"
                           << config.rounds << " avg personalized acc = " << avg;
      if (observer != nullptr) observer->on_eval(round + 1, avg);
    }
  }

  result.final_per_client = algorithm.all_test_accuracies();
  result.final_avg_accuracy = 0.0;
  for (const double a : result.final_per_client) result.final_avg_accuracy += a;
  if (!result.final_per_client.empty()) {
    result.final_avg_accuracy /= static_cast<double>(result.final_per_client.size());
  }
  result.up_bytes = algorithm.ledger().total_up();
  result.down_bytes = algorithm.ledger().total_down();
  if (observer != nullptr) observer->on_run_end(result);
  return result;
}

}  // namespace subfed
