#include "fl/driver.h"

#include "serve/session.h"
#include "util/check.h"

namespace subfed {

std::size_t RunResult::rounds_to_reach(double threshold) const noexcept {
  for (const RoundPoint& p : curve) {
    if (p.avg_accuracy >= threshold) return p.round;
  }
  return 0;
}

void ObserverChain::attach(RoundObserver* observer) {
  SUBFEDAVG_CHECK(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

void ObserverChain::on_round_begin(std::size_t round, std::span<const std::size_t> sampled) {
  for (RoundObserver* o : observers_) o->on_round_begin(round, sampled);
}

void ObserverChain::on_round_end(const RoundEndInfo& info) {
  for (RoundObserver* o : observers_) o->on_round_end(info);
}

void ObserverChain::on_eval(std::size_t round, double avg_accuracy) {
  for (RoundObserver* o : observers_) o->on_eval(round, avg_accuracy);
}

void ObserverChain::on_run_end(const RunResult& result) {
  for (RoundObserver* o : observers_) o->on_run_end(result);
}

RunResult run_federation(FederatedAlgorithm& algorithm, const DriverConfig& config,
                         RoundObserver* observer) {
  // The round loop lives in FederationSession (serve/session.h) so the
  // resident server can step the same federation one round at a time; batch
  // mode is "borrow the algorithm, run the session to the horizon".
  SUBFEDAVG_CHECK(config.rounds > 0, "need at least one round");
  FederationSession session(algorithm, config);
  return session.run_to_completion(observer);
}

}  // namespace subfed
