#include "fl/worker.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fl/experiment.h"
#include "net/socket.h"
#include "serve/session.h"
#include "util/check.h"

namespace subfed {

namespace {

/// The worker's mirror of the coordinator's federation, built through the
/// same FederationSession::from_spec path the coordinator uses (via
/// mirror_from_kv, which rewrites the coordinator-side fields first).
struct Session {
  std::string kv;  ///< the spec blob this mirror was built from
  std::unique_ptr<FederationSession> federation;
};

void build_session(Session& session, std::string kv) {
  // An empty blob is a run-only session (sweep sharding): the coordinator
  // will send whole kRunSpec runs, so there is no federation to mirror.
  if (kv.empty()) return;
  // Reconnects re-send the same blob; keep the mirror instead of
  // re-synthesizing the dataset.
  if (session.federation != nullptr && session.kv == kv) return;
  session.federation.reset();
  session.federation = FederationSession::mirror_from_kv(kv);
  session.kv = std::move(kv);
}

std::string payload_text(const net::NetFrame& frame) {
  return std::string(frame.payload.begin(), frame.payload.end());
}

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

}  // namespace

WorkerStats run_worker(const WorkerOptions& options) {
  SUBFEDAVG_CHECK(!options.connect.empty(), "worker needs --connect host:port");
  const net::HostPort coordinator = net::parse_host_port(options.connect);
  const auto say = [&options](const std::string& line) {
    if (options.echo) std::cerr << "[worker] " << line << std::endl;
  };
  const auto rpc_deadline = [&options] {
    return options.rpc_timeout_ms == 0
               ? net::Deadline{}
               : net::Deadline::after_ms(static_cast<long long>(options.rpc_timeout_ms));
  };

  WorkerStats stats;
  Session session;
  std::size_t failed_joins = 0;
  while (true) {
    // -- join ---------------------------------------------------------------
    net::TcpConn conn = net::TcpConn::connect(coordinator, net::Deadline::after_ms(2000));
    bool joined = false;
    if (conn.valid() && net::send_frame(conn, net::FrameKind::kHello, 0, {}, rpc_deadline())) {
      net::NetFrame setup;
      if (net::recv_frame(conn, &setup, rpc_deadline()) &&
          setup.kind == net::FrameKind::kSetup) {
        build_session(session, payload_text(setup));
        joined = true;
        ++stats.sessions;
        failed_joins = 0;
        say("joined " + options.connect);
      }
    }
    if (!joined) {
      conn.close();
      ++failed_joins;
      SUBFEDAVG_CHECK(failed_joins <= options.reconnect,
                      "worker: cannot reach coordinator " << options.connect << " ("
                          << failed_joins << " consecutive failed attempts)");
      // Exponential backoff, ~200ms doubling to a 5s ceiling.
      const long long backoff =
          std::min<long long>(5000, 200LL << std::min<std::size_t>(failed_joins - 1, 5));
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      continue;
    }

    // -- serve --------------------------------------------------------------
    bool alive = true;
    while (alive) {
      net::NetFrame frame;
      // No deadline between requests: rounds can take arbitrarily long on
      // the coordinator, and an idle worker just waits.
      if (!net::recv_frame(conn, &frame)) break;
      switch (frame.kind) {
        case net::FrameKind::kExchange: {
          if (options.max_exchanges != 0 && stats.exchanges >= options.max_exchanges) {
            // Failure injection: die mid-round, request in hand, reply never
            // sent — exactly the straggler buffered aggregation must evict.
            say("max-exchanges reached; dropping the connection");
            return stats;
          }
          try {
            SUBFEDAVG_CHECK(session.federation != nullptr,
                            "exchange received but the session carries no federation "
                            "(run-only setup blob)");
            const std::vector<std::uint8_t> reply =
                session.federation->algorithm().serve_remote(frame.payload);
            ++stats.exchanges;
            alive = net::send_frame(conn, net::FrameKind::kReply, frame.tag, reply,
                                    rpc_deadline());
          } catch (const std::exception& e) {
            // The exchange failed but the worker is fine: report and stay.
            say(std::string("exchange failed: ") + e.what());
            alive = net::send_frame(conn, net::FrameKind::kError, frame.tag,
                                    bytes_of(e.what()), rpc_deadline());
          }
          break;
        }
        case net::FrameKind::kRunSpec: {
          // Sweep sharding: one whole run. The result JSON travels back; the
          // coordinator owns all files.
          try {
            ExperimentSpec spec = ExperimentSpec::from_kv(payload_text(frame));
            spec.out.clear();
            spec.checkpoint_every = 0;
            spec.checkpoint_path.clear();
            spec.serve = 0;
            spec.status_listen.clear();
            spec.min_participants = 0;
            const ExecutedRun run = execute_experiment(spec);
            const std::string json =
                run_result_json(spec, run.algorithm_name, run.result, run.metrics);
            ++stats.runs;
            alive = net::send_frame(conn, net::FrameKind::kRunResult, frame.tag,
                                    bytes_of(json), rpc_deadline());
          } catch (const std::exception& e) {
            say(std::string("run failed: ") + e.what());
            alive = net::send_frame(conn, net::FrameKind::kError, frame.tag,
                                    bytes_of(e.what()), rpc_deadline());
          }
          break;
        }
        case net::FrameKind::kSetup:
          // Mid-session reconfiguration (a new run on the same coordinator).
          build_session(session, payload_text(frame));
          break;
        case net::FrameKind::kShutdown:
          stats.shutdown = true;
          say("shutdown");
          return stats;
        default:
          say("protocol violation: unexpected frame kind");
          alive = false;
      }
    }
    conn.close();
    say("connection lost; reconnecting");
  }
}

}  // namespace subfed
