#include "fl/experiment.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "fl/checkpoint.h"
#include "fl/fedavg_ft.h"
#include "fl/subfedavg.h"
#include "net/socket.h"
#include "serve/session.h"
#include "telemetry/telemetry.h"
#include "tensor/backend.h"
#include "tensor/device.h"
#include "util/check.h"
#include "util/parse.h"

namespace subfed {

namespace {

/// One serializable/flag-settable spec field. Getter renders the kv value,
/// setter parses it (throwing CheckError on bad input).
struct Field {
  const char* key;
  const char* help;
  std::string (*get)(const ExperimentSpec&);
  void (*set)(ExperimentSpec&, const std::string&);
};

#define SUBFED_STRING_FIELD(name, help)                                     \
  Field{#name, help, [](const ExperimentSpec& s) { return s.name; },        \
        [](ExperimentSpec& s, const std::string& v) { s.name = v; }}
#define SUBFED_DOUBLE_FIELD(name, help)                                       \
  Field{#name, help,                                                          \
        [](const ExperimentSpec& s) { return format_double_shortest(s.name); }, \
        [](ExperimentSpec& s, const std::string& v) {                         \
          s.name = parse_double_strict(#name, v);                             \
        }}
#define SUBFED_UINT_FIELD(name, help)                                         \
  Field{#name, help,                                                          \
        [](const ExperimentSpec& s) {                                         \
          return std::to_string(static_cast<std::uint64_t>(s.name));          \
        },                                                                    \
        [](ExperimentSpec& s, const std::string& v) {                         \
          s.name = static_cast<decltype(s.name)>(parse_uint64_strict(#name, v)); \
        }}

const Field kFields[] = {
    SUBFED_STRING_FIELD(dataset, "mnist | emnist | cifar10 | cifar100"),
    SUBFED_STRING_FIELD(partition, "shards | dirichlet"),
    SUBFED_DOUBLE_FIELD(alpha, "Dirichlet concentration (dirichlet partition)"),
    SUBFED_UINT_FIELD(clients, "number of clients"),
    SUBFED_UINT_FIELD(shards_per_client, "shards assigned to each client"),
    SUBFED_UINT_FIELD(shard, "shard size; 0 = dataset's paper value"),
    SUBFED_UINT_FIELD(test_per_class, "test pool size per class"),
    SUBFED_STRING_FIELD(model, "auto | cnn5 | lenet5 | cnn_deep"),
    SUBFED_STRING_FIELD(backend, "math backend: auto | naive | blocked | sparse"),
    SUBFED_STRING_FIELD(compute, "GEMM compute dtype: auto | fp32 | fp16"),
    SUBFED_UINT_FIELD(math_threads, "GEMM row-panel cap; 0 = process setting"),
    SUBFED_STRING_FIELD(transport, "channel transport: memory | loopback | subprocess | tcp"),
    SUBFED_STRING_FIELD(codec, "uplink codec: sparse | delta"),
    SUBFED_STRING_FIELD(quantize, "payload precision: none | fp16 | int8"),
    SUBFED_UINT_FIELD(channel_workers, "subprocess fan-out / tcp fleet size; 0 = hardware"),
    SUBFED_DOUBLE_FIELD(link_spread, "straggler tail; slowest link = 1/spread"),
    SUBFED_STRING_FIELD(listen, "tcp coordinator bind host:port; port 0 = ephemeral"),
    SUBFED_STRING_FIELD(connect, "worker role only; see the worker tool"),
    SUBFED_UINT_FIELD(rpc_timeout_ms, "per-exchange worker deadline; 0 = forever"),
    SUBFED_STRING_FIELD(aggregation, "round aggregation: sync | buffered"),
    SUBFED_UINT_FIELD(buffer_k, "replies closing a buffered round; 0 = all sampled"),
    SUBFED_DOUBLE_FIELD(staleness_decay, "stale update weight = 1/(1+s)^decay"),
    SUBFED_UINT_FIELD(max_staleness, "evict updates parked more rounds than this"),
    SUBFED_UINT_FIELD(client_cache, "resident per-client cap; 0 = keep all (eager)"),
    SUBFED_UINT_FIELD(epochs, "local epochs per round"),
    SUBFED_UINT_FIELD(batch, "local batch size"),
    SUBFED_DOUBLE_FIELD(lr, "SGD learning rate"),
    SUBFED_DOUBLE_FIELD(momentum, "SGD momentum"),
    SUBFED_UINT_FIELD(rounds, "communication rounds"),
    SUBFED_DOUBLE_FIELD(sample, "client sampling rate per round"),
    SUBFED_UINT_FIELD(eval_every, "evaluate every N rounds; 0 = final only"),
    SUBFED_DOUBLE_FIELD(dropout, "per-round client dropout probability"),
    SUBFED_DOUBLE_FIELD(arrivals, "client arrivals per simulated second; 0 = static"),
    SUBFED_DOUBLE_FIELD(dwell, "mean seconds an arrived client stays; 0 = forever"),
    SUBFED_STRING_FIELD(arrival_trace,
                        "replay arrivals from a timestamp file; excludes arrivals > 0"),
    SUBFED_UINT_FIELD(seed, "master seed"),
    SUBFED_DOUBLE_FIELD(corrupt_fraction, "chance an upload is replaced by noise"),
    SUBFED_DOUBLE_FIELD(corrupt_noise, "stddev of the corruption noise"),
    SUBFED_DOUBLE_FIELD(robust_filter, "median-distance filter factor; 0 = off"),
    SUBFED_STRING_FIELD(algo, "algorithm name (see list below)"),
    SUBFED_DOUBLE_FIELD(target, "pruning target (Sub-FedAvg variants)"),
    SUBFED_DOUBLE_FIELD(step, "per-round prune rate; 0 = adaptive"),
    SUBFED_STRING_FIELD(tag, "free-form run label"),
    SUBFED_STRING_FIELD(out, "JSON result path; empty = no file"),
    SUBFED_STRING_FIELD(telemetry, "off | counters | trace; empty = SUBFEDAVG_TELEMETRY"),
    SUBFED_UINT_FIELD(checkpoint_every, "snapshot every N rounds; 0 = off"),
    SUBFED_STRING_FIELD(checkpoint_path, "snapshot path; empty = derive from out"),
    SUBFED_UINT_FIELD(serve, "1 = resident coordinator (see the serve tool)"),
    SUBFED_STRING_FIELD(status_listen, "serve request-API bind host:port; port 0 = ephemeral"),
    SUBFED_UINT_FIELD(min_participants, "workers needed to tick a round; 0 = max(1, buffer_k)"),
};

#undef SUBFED_STRING_FIELD
#undef SUBFED_DOUBLE_FIELD
#undef SUBFED_UINT_FIELD

const Field* find_field(const std::string& key) {
  for (const Field& field : kFields) {
    if (key == field.key) return &field;
  }
  return nullptr;
}

constexpr char kAlgoParamPrefix[] = "algo.";

std::string flag_name(const std::string& key) {
  std::string flag = "--" + key;
  for (char& c : flag) {
    if (c == '_') c = '-';
  }
  return flag;
}

std::string key_from_flag(const std::string& flag) {
  std::string key = flag.substr(2);
  for (char& c : key) {
    if (c == '-') c = '_';
  }
  return key;
}

void set_algo_param_kv(ExperimentSpec& spec, const std::string& assignment) {
  const std::size_t eq = assignment.find('=');
  SUBFEDAVG_CHECK(eq != std::string::npos && eq > 0,
                  "--algo-param expects key=value, got '" << assignment << "'");
  spec.algo_params.set(assignment.substr(0, eq), assignment.substr(eq + 1));
}

void append_json_escaped(std::ostringstream& os, const std::string& value) {
  os << '"';
  for (const char c : value) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

double adaptive_prune_step(double target, std::size_t rounds, double sample_rate) {
  if (target <= 0.0) return 0.0;
  const double participations =
      std::max(2.0, static_cast<double>(rounds) * sample_rate * 0.7);
  return 1.0 - std::pow(1.0 - target, 1.0 / participations);
}

void ExperimentSpec::parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      help_requested = true;
      continue;
    }
    SUBFEDAVG_CHECK(flag.rfind("--", 0) == 0,
                    "expected a flag, got '" << flag << "' (see --help)");
    SUBFEDAVG_CHECK(i + 1 < argc, "flag " << flag << " expects a value");
    const std::string value = argv[++i];
    if (flag == "--algo-param") {
      set_algo_param_kv(*this, value);
      continue;
    }
    if (flag == "--spec") {
      std::ifstream file(value);
      SUBFEDAVG_CHECK(file.good(), "cannot read spec file '" << value << "'");
      std::ostringstream text;
      text << file.rdbuf();
      apply_kv(text.str());
      continue;
    }
    const Field* field = find_field(key_from_flag(flag));
    SUBFEDAVG_CHECK(field != nullptr, "unknown flag " << flag << " (see --help)");
    field->set(*this, value);
  }
}

std::string ExperimentSpec::to_kv() const {
  std::ostringstream os;
  for (const Field& field : kFields) {
    os << field.key << '=' << field.get(*this) << '\n';
  }
  for (const auto& [key, value] : algo_params.entries()) {
    os << kAlgoParamPrefix << key << '=' << value << '\n';
  }
  return os.str();
}

void ExperimentSpec::apply_kv(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    std::size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    line = line.substr(start);
    if (line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    SUBFEDAVG_CHECK(eq != std::string::npos && eq > 0,
                    "expected key=value, got '" << line << "'");
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key.rfind(kAlgoParamPrefix, 0) == 0) {
      algo_params.set(key.substr(sizeof(kAlgoParamPrefix) - 1), value);
      continue;
    }
    const Field* field = find_field(key);
    SUBFEDAVG_CHECK(field != nullptr, "unknown spec key '" << key << "'");
    field->set(*this, value);
  }
}

ExperimentSpec ExperimentSpec::from_kv(const std::string& text) {
  ExperimentSpec spec;
  spec.apply_kv(text);
  return spec;
}

std::string ExperimentSpec::help_text() {
  const ExperimentSpec defaults;
  std::ostringstream os;
  os << "flags (all optional, --key value):\n";
  for (const Field& field : kFields) {
    std::string flag = flag_name(field.key);
    flag.resize(std::max<std::size_t>(flag.size(), 20), ' ');
    os << "  " << flag << field.help;
    const std::string fallback = field.get(defaults);
    os << "  [" << (fallback.empty() ? "unset" : fallback) << "]\n";
  }
  os << "  --algo-param k=v    extra algorithm hyper-parameter (repeatable)\n";
  os << "  --spec path         apply a saved key=value spec file; later flags override\n";
  os << "  --help              print this reference\n\nalgorithms:\n";
  for (const std::string& name : list_algorithms()) {
    std::string padded = name;
    padded.resize(std::max<std::size_t>(padded.size(), 14), ' ');
    os << "  " << padded << registry().info(name).description << '\n';
  }
  return os.str();
}

void ExperimentSpec::validate() const {
  SUBFEDAVG_CHECK(has_channel_transport(transport),
                  "unknown transport '" << transport
                                        << "' (memory | loopback | subprocess | tcp)");
  SUBFEDAVG_CHECK(codec == "sparse" || codec == "delta",
                  "unknown codec '" << codec << "' (sparse | delta)");
  parse_quant_codec(quantize);
  SUBFEDAVG_CHECK(transport != "memory" || (codec == "sparse" && quantize == "none"),
                  "codec=" << codec << " quantize=" << quantize
                           << " require transport=loopback, subprocess, or tcp");
  SUBFEDAVG_CHECK(aggregation == "sync" || aggregation == "buffered",
                  "unknown aggregation '" << aggregation << "' (sync | buffered)");
  SUBFEDAVG_CHECK(link_spread >= 1.0, "link_spread " << link_spread << " must be >= 1");
  // Remote-federation roles. A spec always describes a coordinator run;
  // `connect` belongs to the worker binary, which has no spec of its own.
  SUBFEDAVG_CHECK(connect.empty(),
                  "connect=" << connect
                             << " describes a worker, not a run — start one with: worker "
                                "--connect " << connect);
  if (transport == "tcp") {
    SUBFEDAVG_CHECK(!listen.empty(),
                    "transport=tcp needs listen=host:port on the coordinator "
                    "(workers join it with: worker --connect <host:port>)");
    net::parse_host_port(listen);  // throws with the offending text
  } else {
    SUBFEDAVG_CHECK(listen.empty(),
                    "listen=" << listen << " requires transport=tcp (got transport="
                              << transport << ")");
  }
  // Event-driven population: dwell only means something once clients arrive
  // over time, and an arrival-driven session has no save/restore replay yet —
  // keep it out of the resident/checkpointing paths.
  SUBFEDAVG_CHECK(arrivals >= 0.0, "arrivals " << arrivals << " must be >= 0");
  SUBFEDAVG_CHECK(dwell >= 0.0, "dwell " << dwell << " must be >= 0");
  SUBFEDAVG_CHECK(arrival_trace.empty() || arrivals == 0.0,
                  "arrival_trace=" << arrival_trace << " and arrivals=" << arrivals
                                   << " are mutually exclusive — the trace file IS the "
                                      "arrival process");
  SUBFEDAVG_CHECK(dwell == 0.0 || arrivals > 0.0 || !arrival_trace.empty(),
                  "dwell=" << dwell << " requires arrivals > 0 or arrival_trace (an "
                                       "event-driven population)");
  if (arrivals > 0.0 || !arrival_trace.empty()) {
    const char* knob = arrivals > 0.0 ? "arrivals > 0" : "arrival_trace";
    SUBFEDAVG_CHECK(serve == 0, knob << " is not supported by the resident "
                                        "coordinator yet (serve=1)");
    SUBFEDAVG_CHECK(checkpoint_every == 0,
                    knob << " does not checkpoint yet — the event queue has no "
                            "save/restore replay (set checkpoint_every=0)");
  }
  // Telemetry is validated here but applied by FederationSession::from_spec —
  // batch runs, serve, and remote workers all build through that one path.
  if (!telemetry.empty()) telemetry::parse_level(telemetry);
  // Resident-service fields (serve/server.h).
  SUBFEDAVG_CHECK(serve <= 1, "serve=" << serve << " must be 0 or 1");
  if (serve == 1) {
    SUBFEDAVG_CHECK(transport == "tcp",
                    "serve=1 runs the resident coordinator over real sockets — set "
                    "transport=tcp listen=host:port (got transport=" << transport << ")");
    SUBFEDAVG_CHECK(checkpoint_every >= 1,
                    "serve=1 requires checkpoint_every >= 1: a resident federation "
                    "snapshots itself so a crash-restart resumes mid-federation instead "
                    "of losing every round since startup");
    SUBFEDAVG_CHECK(!status_listen.empty(),
                    "serve=1 needs status_listen=host:port for the request API "
                    "(kGetModel/kStatus/kCheckpointNow/kShutdown; port 0 = ephemeral)");
    net::parse_host_port(status_listen);  // throws with the offending text
  } else {
    SUBFEDAVG_CHECK(status_listen.empty(),
                    "status_listen=" << status_listen
                                     << " requires serve=1 (the resident coordinator — "
                                        "start one with the serve tool)");
    SUBFEDAVG_CHECK(min_participants == 0,
                    "min_participants=" << min_participants
                                        << " requires serve=1 — a batch run always waits "
                                           "for every sampled client");
  }
}

DatasetSpec ExperimentSpec::dataset_spec() const { return DatasetSpec::by_name(dataset); }

FederatedDataConfig ExperimentSpec::data_config() const {
  SUBFEDAVG_CHECK(partition == "shards" || partition == "dirichlet",
                  "unknown partition '" << partition << "' (shards | dirichlet)");
  const PartitionKind kind =
      partition == "dirichlet" ? PartitionKind::kDirichlet : PartitionKind::kShards;
  FederatedDataConfig config;
  config.partition = {clients, shards_per_client, shard, kind, alpha};
  config.test_per_class = test_per_class;
  config.seed = seed;
  config.client_cache = client_cache;
  return config;
}

ModelSpec ExperimentSpec::model_spec() const {
  const DatasetSpec data_spec = dataset_spec();
  if (model == "auto") {
    // Paper §4.1: 5-layer CNN for MNIST/EMNIST, LeNet-5 for CIFAR-10/100.
    return data_spec.channels == 3 ? ModelSpec::lenet5(data_spec.num_classes)
                                   : ModelSpec::cnn5(data_spec.num_classes);
  }
  if (model == "cnn5") return ModelSpec::cnn5(data_spec.num_classes);
  if (model == "lenet5") return ModelSpec::lenet5(data_spec.num_classes);
  SUBFEDAVG_CHECK(model == "cnn_deep",
                  "unknown model '" << model << "' (auto | cnn5 | lenet5 | cnn_deep)");
  return ModelSpec::cnn_deep(data_spec.num_classes);
}

FlContext ExperimentSpec::make_context(const FederatedData& data) const {
  if (backend != "auto" && !has_device(backend)) {
    std::string known = "auto";
    for (const std::string& name : list_devices()) known += " | " + name;
    SUBFEDAVG_CHECK(false, "unknown backend '" << backend << "' (" << known << ")");
  }
  SUBFEDAVG_CHECK(compute == "auto" || compute == "fp32" || compute == "fp16",
                  "unknown compute '" << compute << "' (auto | fp32 | fp16)");
  // "auto" resolves SUBFEDAVG_BACKEND/SUBFEDAVG_COMPUTE lazily — force it
  // here so a bad env value fails before training instead of deep inside the
  // first forward.
  if (backend == "auto" || compute == "auto") default_device();
  FlContext ctx;
  ctx.data = &data;
  ctx.spec = model_spec();
  ctx.train = {epochs, batch};
  ctx.sgd = {static_cast<float>(lr), static_cast<float>(momentum), /*weight_decay=*/0.0f};
  ctx.seed = seed;
  ctx.backend = backend;
  ctx.compute = compute;
  ctx.math_threads = math_threads;
  ctx.corrupt_fraction = corrupt_fraction;
  ctx.corrupt_noise = corrupt_noise;
  ctx.robust_filter = robust_filter;
  // Channel misconfigurations (unknown transport, lossy codec over the
  // memory fast path, tcp without a listen address) are caught here, before
  // training — and by execute_experiment even before data synthesis.
  validate();
  ctx.transport = transport;
  ctx.codec = codec;
  ctx.quantize = quantize;
  ctx.channel_workers = channel_workers;
  ctx.listen = listen;
  ctx.rpc_timeout_ms = rpc_timeout_ms;
  if (transport == "tcp") {
    // Workers mirror this exact federation from the spec blob the
    // coordinator hands them at join time (the worker overrides the
    // transport/output fields that only make sense coordinator-side).
    ctx.remote_setup = to_kv();
  }
  ctx.link_spread = link_spread;
  ctx.aggregation = aggregation;
  ctx.buffer_k = buffer_k;
  ctx.staleness_decay = staleness_decay;
  ctx.max_staleness = max_staleness;
  ctx.client_cache = client_cache;
  return ctx;
}

DriverConfig ExperimentSpec::driver_config() const {
  DriverConfig config;
  config.rounds = rounds;
  config.sample_rate = sample;
  config.eval_every = eval_every;
  config.seed = seed;
  config.dropout_prob = dropout;
  config.link_spread = link_spread;
  config.arrival_rate = arrivals;
  config.dwell = dwell;
  config.arrival_trace = arrival_trace;
  return config;
}

AlgoParams ExperimentSpec::resolved_algo_params() const {
  AlgoParams params = algo_params;
  if (!params.has("target")) params.set_double("target", target);
  // Calibrate the adaptive step to the target actually in effect — an
  // explicit algo_params target overrides the spec field.
  const double effective_target = params.get_double("target", target);
  if (!params.has("step")) {
    params.set_double(
        "step", step > 0.0 ? step : adaptive_prune_step(effective_target, rounds, sample));
  }
  // Hybrid runs prune channels toward min(50%, target) — channel pruning past
  // ~50% kills personal parameters (paper §4.2.3) — unless overridden.
  if (!params.has("channel_target") && registry().contains(algo) &&
      registry().info(algo).name == "subfedavg_hy") {
    params.set_double("channel_target", std::min(0.5, effective_target));
  }
  return params;
}

std::unique_ptr<FederatedAlgorithm> ExperimentSpec::make_algorithm(const FlContext& ctx) const {
  return registry().create(algo, ctx, resolved_algo_params());
}

std::size_t path_extension_dot(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.find_last_of('/');
  const bool has_ext =
      dot != std::string::npos && (slash == std::string::npos || dot > slash);
  return has_ext ? dot : std::string::npos;
}

std::string ExperimentSpec::resolved_checkpoint_path() const {
  if (!checkpoint_path.empty()) return checkpoint_path;
  if (out.empty()) return "checkpoint.ckpt";
  const std::size_t dot = path_extension_dot(out);
  return (dot == std::string::npos ? out : out.substr(0, dot)) + ".ckpt";
}

ExecutedRun execute_experiment(const ExperimentSpec& spec, RoundObserver* observer,
                               const FederatedData* shared_data) {
  // math_threads/backend flow through FlContext and take effect in the
  // FederatedAlgorithm constructor. math_threads is a process-wide knob
  // (kernel results are thread-count independent, so concurrent sweep runs
  // racing on it only affect timing); 0 means "inherit" and never overwrites
  // a SUBFEDAVG_MATH_THREADS cap.
  SUBFEDAVG_CHECK(spec.serve == 0,
                  "serve=1 is the resident coordinator, not a batch run — start it "
                  "with the serve tool");
  // The session is the shared spec→federation build path (it validates the
  // spec, synthesizes the data unless shared, and rejects corruption knobs on
  // algorithms that don't honor them); batch mode is just "run it to the
  // spec's horizon".
  std::unique_ptr<FederationSession> session = FederationSession::from_spec(spec, shared_data);
  FederatedAlgorithm* algorithm = &session->algorithm();

  ObserverChain chain;
  std::unique_ptr<CheckpointObserver> checkpointer;
  if (spec.checkpoint_every > 0) {
    checkpointer = std::make_unique<CheckpointObserver>(
        *algorithm, spec.resolved_checkpoint_path(), spec.checkpoint_every);
    chain.attach(checkpointer.get());
  }
  if (observer != nullptr) chain.attach(observer);

  ExecutedRun run;
  run.result = session->run_to_completion((checkpointer || observer) ? &chain : nullptr);
  run.algorithm_name = algorithm->name();

  if (const auto* sub = dynamic_cast<const SubFedAvg*>(algorithm)) {
    run.metrics["unstructured_pruned"] = sub->average_unstructured_pruned();
    if (sub->hybrid()) run.metrics["structured_pruned"] = sub->average_structured_pruned();
  }
  if (const auto* ft = dynamic_cast<const FedAvgFinetune*>(algorithm)) {
    run.metrics["finetune_steps"] = static_cast<double>(ft->extra_finetune_steps());
  }
  if (spec.corrupt_fraction > 0.0 || spec.robust_filter > 0.0) {
    if (const auto* fa = dynamic_cast<const FedAvg*>(algorithm)) {
      run.metrics["corrupted_updates"] = static_cast<double>(fa->corrupted_updates());
      run.metrics["filtered_updates"] = static_cast<double>(fa->filtered_updates());
    } else if (const auto* sub = dynamic_cast<const SubFedAvg*>(algorithm)) {
      run.metrics["corrupted_updates"] = static_cast<double>(sub->corrupted_updates());
      run.metrics["filtered_updates"] = static_cast<double>(sub->filtered_updates());
    }
  }
  // Channel economics: how far the codec stack compressed the dense-fp32
  // traffic the same exchanges would have cost.
  if (algorithm->channel().charged_bytes() > 0) {
    run.metrics["compression_ratio"] = algorithm->channel().compression_ratio();
  }
  // Buffered-aggregation accounting: how many updates landed late, were
  // evicted past max_staleness, or were still parked when the run ended.
  if (spec.aggregation == "buffered") {
    const Channel& channel = algorithm->channel();
    run.metrics["stale_updates"] = static_cast<double>(channel.stale_updates());
    run.metrics["evicted_updates"] = static_cast<double>(channel.evicted_updates());
    run.metrics["parked_updates"] = static_cast<double>(channel.parked_updates());
  }
  // Telemetry phase totals: where the run's host wall-clock went, phase by
  // phase. Scalar metrics flow through RunResult JSON into sweep tables, so
  // grid sweeps get a per-run phase breakdown for free.
  if (telemetry::enabled(telemetry::Level::kCounters)) {
    const FederationSession::RoundPhases& phases = session->total_phases();
    run.metrics["phase_sample_seconds"] = phases.sample;
    run.metrics["phase_broadcast_encode_seconds"] = phases.broadcast_encode;
    run.metrics["phase_transport_exchange_seconds"] = phases.transport_exchange;
    run.metrics["phase_collect_seconds"] = phases.collect;
    run.metrics["phase_aggregate_seconds"] = phases.aggregate;
    run.metrics["phase_eval_seconds"] = phases.eval;
  }

  if (!spec.out.empty()) {
    write_run_result_json(spec.out, spec, run.algorithm_name, run.result, run.metrics);
  }
  return run;
}

std::string run_result_json(const ExperimentSpec& spec, const std::string& algorithm_name,
                            const RunResult& result,
                            const std::map<std::string, double>& metrics) {
  std::ostringstream os;
  // Round-trip precision: the aggregation layer reloads these numbers and
  // must reproduce live tables bit-for-bit.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"algorithm\": ";
  append_json_escaped(os, algorithm_name);
  os << ",\n  \"spec\": {";
  bool first = true;
  for (const Field& field : kFields) {
    if (!first) os << ',';
    first = false;
    os << "\n    ";
    append_json_escaped(os, field.key);
    os << ": ";
    append_json_escaped(os, field.get(spec));
  }
  for (const auto& [key, value] : spec.algo_params.entries()) {
    os << ",\n    ";
    append_json_escaped(os, kAlgoParamPrefix + key);
    os << ": ";
    append_json_escaped(os, value);
  }
  os << "\n  },\n  \"curve\": [";
  first = true;
  for (const RoundPoint& point : result.curve) {
    if (!first) os << ',';
    first = false;
    os << "\n    {\"round\": " << point.round << ", \"avg_accuracy\": " << point.avg_accuracy
       << "}";
  }
  os << (result.curve.empty() ? "]" : "\n  ]") << ",\n  \"final_avg_accuracy\": "
     << result.final_avg_accuracy << ",\n  \"final_per_client\": [";
  first = true;
  for (const double accuracy : result.final_per_client) {
    os << (first ? "" : ", ") << accuracy;
    first = false;
  }
  os << "],\n  \"up_bytes\": " << result.up_bytes
     << ",\n  \"down_bytes\": " << result.down_bytes
     << ",\n  \"total_bytes\": " << result.total_bytes()
     << ",\n  \"simulated_seconds\": " << result.simulated_seconds
     << ",\n  \"dropped_clients\": " << result.dropped_clients
     << ",\n  \"skipped_rounds\": " << result.skipped_rounds;
  os << ",\n  \"metrics\": {";
  first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) os << ',';
    first = false;
    os << "\n    ";
    append_json_escaped(os, key);
    os << ": " << value;
  }
  os << (metrics.empty() ? "}" : "\n  }") << "\n}\n";
  return os.str();
}

void write_run_result_json(const std::string& path, const ExperimentSpec& spec,
                           const std::string& algorithm_name, const RunResult& result,
                           const std::map<std::string, double>& metrics) {
  std::ofstream out(path, std::ios::trunc);
  SUBFEDAVG_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << run_result_json(spec, algorithm_name, result, metrics);
  out.flush();
  SUBFEDAVG_CHECK(out.good(), "failed writing '" << path << "'");
}

}  // namespace subfed
