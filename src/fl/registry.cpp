#include "fl/registry.h"

#include <sstream>

#include "fl/fedavg.h"
#include "fl/fedavg_ft.h"
#include "fl/fedmtl.h"
#include "fl/lg_fedavg.h"
#include "fl/standalone.h"
#include "fl/subfedavg.h"
#include "util/check.h"
#include "util/parse.h"

namespace subfed {

AlgoParams& AlgoParams::set(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
  return *this;
}

AlgoParams& AlgoParams::set_double(const std::string& key, double value) {
  return set(key, format_double_shortest(value));
}

AlgoParams& AlgoParams::set_size_t(const std::string& key, std::size_t value) {
  return set(key, std::to_string(value));
}

AlgoParams& AlgoParams::set_bool(const std::string& key, bool value) {
  return set(key, value ? "1" : "0");
}

std::string AlgoParams::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

double AlgoParams::get_double(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : parse_double_strict(key, it->second);
}

std::size_t AlgoParams::get_size_t(const std::string& key, std::size_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  return static_cast<std::size_t>(parse_uint64_strict(key, it->second));
}

bool AlgoParams::get_bool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  SUBFEDAVG_CHECK(false, "algo param '" << key << "': not a boolean: '" << v << "'");
  return fallback;
}

void AlgorithmRegistry::add(std::string name, std::string description, AlgoFactory factory) {
  SUBFEDAVG_CHECK(!name.empty() && factory != nullptr, "invalid registration");
  SUBFEDAVG_CHECK(algos_.count(name) == 0 && aliases_.count(name) == 0,
                  "algorithm '" << name << "' registered twice");
  AlgoInfo info{name, std::move(description), std::move(factory)};
  algos_.emplace(std::move(name), std::move(info));
}

void AlgorithmRegistry::alias(std::string alias_name, std::string canonical) {
  SUBFEDAVG_CHECK(algos_.count(canonical) == 1, "alias target '" << canonical << "' unknown");
  SUBFEDAVG_CHECK(algos_.count(alias_name) == 0 && aliases_.count(alias_name) == 0,
                  "alias '" << alias_name << "' registered twice");
  aliases_.emplace(std::move(alias_name), std::move(canonical));
}

const AlgoInfo* AlgorithmRegistry::find(const std::string& name) const {
  auto it = algos_.find(name);
  if (it != algos_.end()) return &it->second;
  const auto alias_it = aliases_.find(name);
  if (alias_it != aliases_.end()) {
    it = algos_.find(alias_it->second);
    if (it != algos_.end()) return &it->second;
  }
  return nullptr;
}

bool AlgorithmRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const AlgoInfo& AlgorithmRegistry::info(const std::string& name) const {
  const AlgoInfo* found = find(name);
  SUBFEDAVG_CHECK(found != nullptr, "unknown algorithm '" << name << "'");
  return *found;
}

std::unique_ptr<FederatedAlgorithm> AlgorithmRegistry::create(const std::string& name,
                                                              const FlContext& ctx,
                                                              const AlgoParams& params) const {
  const AlgoInfo* found = find(name);
  if (found == nullptr) {
    std::ostringstream known;
    for (const std::string& n : names()) known << " " << n;
    SUBFEDAVG_CHECK(false, "unknown algorithm '" << name << "'; known:" << known.str());
  }
  std::unique_ptr<FederatedAlgorithm> algorithm = found->factory(ctx, params);
  SUBFEDAVG_CHECK(algorithm != nullptr, "factory for '" << name << "' returned null");
  return algorithm;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(algos_.size());
  for (const auto& [name, info] : algos_) out.push_back(name);
  return out;  // std::map iterates sorted
}

AlgorithmRegistry& registry() {
  static AlgorithmRegistry instance;
  return instance;
}

std::vector<std::string> list_algorithms() { return registry().names(); }

RegisterAlgorithm::RegisterAlgorithm(const char* name, const char* description,
                                     AlgoFactory factory) {
  registry().add(name, description, std::move(factory));
}

// ---------------------------------------------------------------------------
// Built-in registrations. These live in the same translation unit as
// `registry()` so linking the library always links the built-ins (static
// registration objects in other TUs of a static library may be dropped).
namespace {

/// Sub-FedAvg gate configuration from params; `prefix` distinguishes the
/// unstructured keys (no prefix) from the structured `channel_*` keys.
SubFedAvgConfig subfedavg_config(const AlgoParams& p, bool hybrid) {
  SubFedAvgConfig config;
  config.hybrid = hybrid;
  const double target = p.get_double("target", 0.5);
  const double step = p.get_double("step", 0.1);
  config.unstructured = {p.get_double("acc_threshold", 0.5), target,
                         p.get_double("epsilon", 1e-4), step};
  if (hybrid) {
    config.structured = {p.get_double("channel_acc_threshold",
                                      p.get_double("acc_threshold", 0.5)),
                         p.get_double("channel_target", 0.45),
                         p.get_double("channel_epsilon", 0.05),
                         p.get_double("channel_step", step)};
    config.bn_l1 = static_cast<float>(p.get_double("bn_l1", 1e-4));
  }
  return config;
}

std::unique_ptr<FederatedAlgorithm> make_subfedavg(const FlContext& ctx, const AlgoParams& p,
                                                   bool hybrid) {
  auto algorithm = std::make_unique<SubFedAvg>(ctx, subfedavg_config(p, hybrid));
  algorithm->set_strict_intersection(p.get_bool("strict", false));
  return algorithm;
}

const struct RegisterBuiltins {
  RegisterBuiltins() {
    AlgorithmRegistry& r = registry();
    r.add("standalone", "local-only training, no federation",
          [](const FlContext& ctx, const AlgoParams&) {
            return std::make_unique<Standalone>(ctx);
          });
    r.add("fedavg", "FedAvg global model (McMahan et al. 2017)",
          [](const FlContext& ctx, const AlgoParams&) {
            return std::make_unique<FedAvg>(ctx);
          });
    r.add("fedprox", "FedAvg + proximal term mu (Li et al. 2018); param: mu [0.1]",
          [](const FlContext& ctx, const AlgoParams& p) {
            return std::make_unique<FedProx>(ctx, p.get_double("mu", 0.1));
          });
    r.add("lg_fedavg", "local conv layers + federated FC head (Liang et al. 2020)",
          [](const FlContext& ctx, const AlgoParams&) {
            return std::make_unique<LgFedAvg>(ctx);
          });
    r.add("fedmtl", "federated multi-task learning; param: lambda [0.1]",
          [](const FlContext& ctx, const AlgoParams& p) {
            return std::make_unique<FedMtl>(ctx, p.get_double("lambda", 0.1));
          });
    r.add("fedavg_ft",
          "FedAvg + local fine-tuning at evaluation; param: finetune_epochs [local epochs]",
          [](const FlContext& ctx, const AlgoParams& p) {
            return std::make_unique<FedAvgFinetune>(
                ctx, p.get_size_t("finetune_epochs", ctx.train.epochs));
          });
    r.add("subfedavg_un",
          "Sub-FedAvg (Un), Algorithm 1; params: target [0.5], step [0.1], "
          "acc_threshold [0.5], epsilon [1e-4], strict [0]",
          [](const FlContext& ctx, const AlgoParams& p) {
            return make_subfedavg(ctx, p, /*hybrid=*/false);
          });
    r.add("subfedavg_hy",
          "Sub-FedAvg (Hy), Algorithm 2; adds channel_target [0.45], channel_step, "
          "channel_epsilon [0.05], bn_l1 [1e-4]",
          [](const FlContext& ctx, const AlgoParams& p) {
            return make_subfedavg(ctx, p, /*hybrid=*/true);
          });
    // Spellings used by earlier revisions of the experiment runner.
    r.alias("lgfedavg", "lg_fedavg");
    r.alias("mtl", "fedmtl");
  }
} register_builtins;

}  // namespace

}  // namespace subfed
