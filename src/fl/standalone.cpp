#include "fl/standalone.h"

#include "util/thread_pool.h"
#include "util/check.h"

namespace subfed {

Standalone::Standalone(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {
  personal_.assign(num_clients(), initial_state());
}

void Standalone::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  ThreadPool::global().parallel_for(sampled.size(), [&](std::size_t i) {
    const std::size_t k = sampled[i];
    const ClientData& data = ctx_.data->client(k);
    Model model = ctx_.spec.build();
    model.load_state(personal_[k]);
    Sgd optimizer(model.parameters(), ctx_.sgd);
    Rng rng = client_round_rng(k, round);
    train_local(model, optimizer, data.train_images, data.train_labels, ctx_.train, rng);
    personal_[k] = model.state();
  });
  // No traffic: standalone never talks to a server.
}

double Standalone::client_test_accuracy(std::size_t k) {
  const ClientData& data = ctx_.data->client(k);
  Model model = ctx_.spec.build();
  model.load_state(personal_[k]);
  return evaluate(model, data.test_images, data.test_labels).accuracy;
}


std::vector<StateDict> Standalone::checkpoint_state() { return personal_; }

void Standalone::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == personal_.size(),
                  "Standalone checkpoint has " << sections.size() << " sections, federation has "
                                               << personal_.size() << " clients");
  personal_ = std::move(sections);
}

}  // namespace subfed
