#include "fl/standalone.h"

#include "core/eval.h"
#include "util/check.h"

namespace subfed {

Standalone::Standalone(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {
  store_.init(num_clients(), {initial_state()}, ctx_.client_cache);
}

void Standalone::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  // No model traffic: the channel carries empty coordinator pings (zero
  // payload-model bytes in memory mode, a few header bytes when
  // materialized), which still buys standalone the transports' crash
  // isolation and a slot in the round-time model.
  static const StateDict kEmptyPayload;
  std::vector<ClientJob> jobs(sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    jobs[i] = {sampled[i], &kEmptyPayload, nullptr, 1, {}};
  }

  std::vector<Exchange> exchanges = exchange_round(round, jobs);

  for (Exchange& exchange : exchanges) {
    if (!exchange.state.empty()) {
      store_.put(exchange.client, {std::move(exchange.state[0])});
    }
  }
}

ClientResult Standalone::run_client(std::size_t round, const ClientJob& job,
                                    const StateDict& received, bool detached) {
  (void)received;  // no federation: the broadcast is an empty ping
  const std::size_t k = job.client;
  // Remote exchange: the client's local model arrives as side-band.
  if (!job.state.empty()) store_.put(k, {job.state[0]});
  const ClientDataPtr data = ctx_.data->client_ptr(k);
  Model model = ctx_.spec.build();
  model.load_state((*store_.read(k))[0]);
  Sgd optimizer(model.parameters(), ctx_.sgd);
  Rng rng = client_round_rng(k, round);
  train_local(model, optimizer, data->train_images, data->train_labels, ctx_.train, rng);
  StateDict trained = model.state();

  ClientResult result;
  if (detached) result.state.push_back(trained);
  store_.put(k, {std::move(trained)});
  return result;
}

std::vector<StateDict> Standalone::client_state_sections(std::size_t k) {
  return {(*store_.read(k))[0]};
}

double Standalone::client_test_accuracy(std::size_t k) {
  const ClientDataPtr data = ctx_.data->client_ptr(k);
  Model model = ctx_.spec.build();
  model.load_state((*store_.read(k))[0]);
  return evaluate_client_test(model, *data).accuracy;
}


std::vector<StateDict> Standalone::checkpoint_state() {
  std::vector<StateDict> out;
  out.reserve(store_.size());
  for (std::size_t k = 0; k < store_.size(); ++k) out.push_back((*store_.peek(k))[0]);
  return out;
}

void Standalone::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == store_.size(),
                  "Standalone checkpoint has " << sections.size() << " sections, federation has "
                                               << store_.size() << " clients");
  store_.reset();
  for (std::size_t k = 0; k < sections.size(); ++k) {
    store_.put(k, {std::move(sections[k])});
  }
}

}  // namespace subfed
