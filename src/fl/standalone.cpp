#include "fl/standalone.h"

#include "util/check.h"

namespace subfed {

Standalone::Standalone(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {
  personal_.assign(num_clients(), initial_state());
}

void Standalone::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  // No model traffic: the channel carries empty coordinator pings (zero
  // payload-model bytes in memory mode, a few header bytes when
  // materialized), which still buys standalone the transports' crash
  // isolation and a slot in the round-time model.
  static const StateDict kEmptyPayload;
  std::vector<ClientJob> jobs(sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    jobs[i] = {sampled[i], &kEmptyPayload, nullptr, 1, {}};
  }

  std::vector<Exchange> exchanges = exchange_round(round, jobs);

  for (Exchange& exchange : exchanges) {
    if (!exchange.state.empty()) personal_[exchange.client] = std::move(exchange.state[0]);
  }
}

ClientResult Standalone::run_client(std::size_t round, const ClientJob& job,
                                    const StateDict& received, bool detached) {
  (void)received;  // no federation: the broadcast is an empty ping
  const std::size_t k = job.client;
  // Remote exchange: the client's local model arrives as side-band.
  if (!job.state.empty()) personal_[k] = job.state[0];
  const ClientData& data = ctx_.data->client(k);
  Model model = ctx_.spec.build();
  model.load_state(personal_[k]);
  Sgd optimizer(model.parameters(), ctx_.sgd);
  Rng rng = client_round_rng(k, round);
  train_local(model, optimizer, data.train_images, data.train_labels, ctx_.train, rng);
  personal_[k] = model.state();

  ClientResult result;
  if (detached) result.state.push_back(personal_[k]);
  return result;
}

std::vector<StateDict> Standalone::client_state_sections(std::size_t k) {
  return {personal_[k]};
}

double Standalone::client_test_accuracy(std::size_t k) {
  const ClientData& data = ctx_.data->client(k);
  Model model = ctx_.spec.build();
  model.load_state(personal_[k]);
  return evaluate(model, data.test_images, data.test_labels).accuracy;
}


std::vector<StateDict> Standalone::checkpoint_state() { return personal_; }

void Standalone::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == personal_.size(),
                  "Standalone checkpoint has " << sections.size() << " sections, federation has "
                                               << personal_.size() << " clients");
  personal_ = std::move(sections);
}

}  // namespace subfed
