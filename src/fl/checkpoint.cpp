#include "fl/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <span>
#include <vector>

#include "comm/serialize.h"
#include "util/check.h"

namespace subfed {

namespace {

constexpr std::uint32_t kMagic = 0x53464350;         // "SFCP" (legacy Sub-FedAvg)
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kGenericMagic = 0x53464347;  // "SFCG" (generic sections)
constexpr std::uint32_t kGenericVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_blob(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& blob) {
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    SUBFEDAVG_CHECK(pos_ + 4 <= bytes_.size(), "truncated checkpoint");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint8_t u8() {
    SUBFEDAVG_CHECK(pos_ < bytes_.size(), "truncated checkpoint");
    return bytes_[pos_++];
  }

  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    SUBFEDAVG_CHECK(pos_ + n <= bytes_.size(), "truncated checkpoint blob");
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// ModelMask ↔ StateDict bridging so masks reuse the tensor wire format.
StateDict mask_to_state(const ModelMask& mask) {
  StateDict state;
  for (const auto& [name, tensor] : mask) state.add(name, tensor);
  return state;
}

ModelMask state_to_mask(const StateDict& state) {
  ModelMask mask;
  for (const auto& [name, tensor] : state) mask.set(name, tensor);
  return mask;
}

std::vector<std::uint8_t> channel_mask_bytes(const ChannelMask& mask) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(mask.num_blocks()));
  for (std::size_t b = 0; b < mask.num_blocks(); ++b) {
    put_u32(out, static_cast<std::uint32_t>(mask.block(b).size()));
    out.insert(out.end(), mask.block(b).begin(), mask.block(b).end());
  }
  return out;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  SUBFEDAVG_CHECK(f != nullptr, "cannot open checkpoint for writing: " << path);
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  SUBFEDAVG_CHECK(written == out.size(), "short checkpoint write: " << path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  // fopen happily opens directories on Linux and ftell then reports LONG_MAX;
  // reject non-files up front so bad paths throw instead of allocating wild.
  SUBFEDAVG_CHECK(std::filesystem::is_regular_file(path),
                  "checkpoint is not a regular file: " << path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SUBFEDAVG_CHECK(f != nullptr, "cannot open checkpoint: " << path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    SUBFEDAVG_CHECK(false, "cannot size checkpoint: " << path);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  SUBFEDAVG_CHECK(read == bytes.size(), "short checkpoint read: " << path);
  return bytes;
}

}  // namespace

std::vector<std::uint8_t> encode_state_sections(std::string_view name,
                                                const std::vector<StateDict>& sections) {
  std::vector<std::uint8_t> out;
  put_u32(out, kGenericMagic);
  put_u32(out, kGenericVersion);
  put_blob(out, std::vector<std::uint8_t>(name.begin(), name.end()));
  put_u32(out, static_cast<std::uint32_t>(sections.size()));
  for (const StateDict& section : sections) {
    put_blob(out, encode_update(section, nullptr));
  }
  return out;
}

std::vector<StateDict> decode_state_sections(std::span<const std::uint8_t> bytes,
                                             std::string_view expect_name) {
  Reader reader(bytes);
  SUBFEDAVG_CHECK(reader.u32() == kGenericMagic, "bad checkpoint magic");
  SUBFEDAVG_CHECK(reader.u32() == kGenericVersion, "unsupported checkpoint version");
  const std::vector<std::uint8_t> name_bytes = reader.blob();
  const std::string name(name_bytes.begin(), name_bytes.end());
  SUBFEDAVG_CHECK(name == expect_name, "checkpoint was written by '"
                                           << name << "', loading into '" << expect_name
                                           << "'");
  const std::uint32_t count = reader.u32();
  std::vector<StateDict> sections;
  sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    sections.push_back(decode_update(reader.blob()));
  }
  SUBFEDAVG_CHECK(reader.done(), "trailing bytes in checkpoint");
  return sections;
}

std::vector<std::uint8_t> checkpoint_bytes(FederatedAlgorithm& algorithm) {
  return encode_state_sections(algorithm.name(), algorithm.checkpoint_state());
}

void restore_checkpoint_bytes(FederatedAlgorithm& algorithm,
                              std::span<const std::uint8_t> bytes) {
  algorithm.restore_checkpoint_state(decode_state_sections(bytes, algorithm.name()));
}

void save_checkpoint(FederatedAlgorithm& algorithm, const std::string& path) {
  write_file(path, checkpoint_bytes(algorithm));
}

void load_checkpoint(FederatedAlgorithm& algorithm, const std::string& path) {
  restore_checkpoint_bytes(algorithm, read_file(path));
}

CheckpointObserver::CheckpointObserver(FederatedAlgorithm& algorithm, std::string path,
                                       std::size_t every)
    : algorithm_(algorithm), path_(std::move(path)), every_(every) {
  SUBFEDAVG_CHECK(!path_.empty(), "checkpoint path is empty");
}

void CheckpointObserver::on_round_end(const RoundEndInfo& info) {
  last_round_ = info.round;
  if (every_ == 0 || info.round % every_ != 0) return;
  save_checkpoint(algorithm_, path_);
  last_saved_round_ = info.round;
  ++snapshots_;
}

void CheckpointObserver::on_run_end(const RunResult& /*result*/) {
  // Skip the final save when the last executed round already snapshotted —
  // at paper scale rewriting an identical multi-hundred-MB state is pure I/O.
  if (snapshots_ > 0 && last_saved_round_ == last_round_) return;
  save_checkpoint(algorithm_, path_);
  ++snapshots_;
}

void save_subfedavg_checkpoint(SubFedAvg& algorithm, const std::string& path) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_blob(out, encode_update(algorithm.global_state(), nullptr));
  put_u32(out, static_cast<std::uint32_t>(algorithm.num_clients()));
  for (std::size_t k = 0; k < algorithm.num_clients(); ++k) {
    SubFedAvgClient& client = algorithm.client(k);
    put_blob(out, encode_update(client.personal_state(), nullptr));
    put_blob(out, encode_update(mask_to_state(client.weight_mask()), nullptr));
    put_blob(out, channel_mask_bytes(client.channel_mask()));
  }

  write_file(path, out);
}

void load_subfedavg_checkpoint(SubFedAvg& algorithm, const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  Reader reader(bytes);
  SUBFEDAVG_CHECK(reader.u32() == kMagic, "bad checkpoint magic");
  SUBFEDAVG_CHECK(reader.u32() == kVersion, "unsupported checkpoint version");

  algorithm.set_global_state(decode_update(reader.blob()));
  const std::uint32_t clients = reader.u32();
  SUBFEDAVG_CHECK(clients == algorithm.num_clients(),
                  "checkpoint has " << clients << " clients, federation has "
                                    << algorithm.num_clients());
  for (std::uint32_t k = 0; k < clients; ++k) {
    StateDict personal = decode_update(reader.blob());
    ModelMask weight_mask = state_to_mask(decode_update(reader.blob()));

    const std::vector<std::uint8_t> cm_bytes = reader.blob();
    Reader cm(cm_bytes);
    const std::uint32_t blocks = cm.u32();
    // Start from the client's current mask to get the right block sizes.
    ChannelMask channel_mask = algorithm.client(k).channel_mask();
    SUBFEDAVG_CHECK(blocks == channel_mask.num_blocks(), "channel mask block count");
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::uint32_t block_size = cm.u32();
      SUBFEDAVG_CHECK(block_size == channel_mask.block(b).size(),
                      "channel mask block size");
      for (std::uint32_t c = 0; c < block_size; ++c) {
        channel_mask.block(b)[c] = cm.u8();
      }
    }
    SUBFEDAVG_CHECK(cm.done(), "trailing channel-mask bytes");
    algorithm.client(k).restore(std::move(personal), std::move(weight_mask),
                                std::move(channel_mask));
  }
  SUBFEDAVG_CHECK(reader.done(), "trailing bytes in checkpoint");
}

}  // namespace subfed
