// Algorithm registry: name → factory for every FederatedAlgorithm.
//
// Benches, examples and the experiment runner construct algorithms ONLY
// through this registry, so adding an algorithm (or an out-of-tree variant)
// is one registration instead of a string if/else ladder per entry point.
// Factories take the shared FlContext plus loosely-typed AlgoParams; every
// parameter has a paper-default, so `create("fedavg", ctx, {})` always works.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fl/algorithm.h"

namespace subfed {

/// Loosely-typed algorithm hyper-parameters: string key → string value with
/// typed accessors. Factories read the keys they understand and fall back to
/// the paper's defaults; unknown keys are ignored (forward compatibility).
class AlgoParams {
 public:
  AlgoParams() = default;
  AlgoParams(std::initializer_list<std::pair<const std::string, std::string>> init)
      : entries_(init) {}

  AlgoParams& set(const std::string& key, std::string value);
  AlgoParams& set_double(const std::string& key, double value);
  AlgoParams& set_size_t(const std::string& key, std::size_t value);
  AlgoParams& set_bool(const std::string& key, bool value);

  bool has(const std::string& key) const { return entries_.count(key) != 0; }
  std::string get_string(const std::string& key, const std::string& fallback) const;
  /// Throws CheckError when the stored value is not numeric.
  double get_double(const std::string& key, double fallback) const;
  std::size_t get_size_t(const std::string& key, std::size_t fallback) const;
  /// Accepts 1/0/true/false/yes/no.
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& entries() const noexcept { return entries_; }
  bool operator==(const AlgoParams& other) const { return entries_ == other.entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

using AlgoFactory =
    std::function<std::unique_ptr<FederatedAlgorithm>(const FlContext&, const AlgoParams&)>;

/// One registered algorithm: canonical name, one-line description (shown by
/// `run_experiment --help`), and its factory.
struct AlgoInfo {
  std::string name;
  std::string description;
  AlgoFactory factory;
};

class AlgorithmRegistry {
 public:
  /// Registers a factory under a canonical name. Throws CheckError on
  /// duplicate names (catches accidental double registration early).
  void add(std::string name, std::string description, AlgoFactory factory);

  /// Registers an alternate spelling for an existing canonical name.
  void alias(std::string alias_name, std::string canonical);

  /// True when `name` resolves (canonical or alias).
  bool contains(const std::string& name) const;

  /// Builds the algorithm, throwing CheckError with the list of known names
  /// when `name` does not resolve.
  std::unique_ptr<FederatedAlgorithm> create(const std::string& name, const FlContext& ctx,
                                             const AlgoParams& params = {}) const;

  /// Metadata for a registered name (resolves aliases). Throws on unknown.
  const AlgoInfo& info(const std::string& name) const;

  /// Sorted canonical names (aliases excluded).
  std::vector<std::string> names() const;

 private:
  const AlgoInfo* find(const std::string& name) const;

  std::map<std::string, AlgoInfo> algos_;
  std::map<std::string, std::string> aliases_;
};

/// The process-wide registry. The built-in algorithms (standalone, fedavg,
/// fedprox, lg_fedavg, fedmtl, fedavg_ft, subfedavg_un, subfedavg_hy)
/// self-register before main() runs.
AlgorithmRegistry& registry();

/// Sorted canonical names of every registered algorithm.
std::vector<std::string> list_algorithms();

/// Static-initialization registration handle:
///   static RegisterAlgorithm reg("myalgo", "description", factory);
struct RegisterAlgorithm {
  RegisterAlgorithm(const char* name, const char* description, AlgoFactory factory);
};

}  // namespace subfed
