#include "fl/client_state.h"

#include <string>
#include <utility>

#include "fl/checkpoint.h"
#include "telemetry/telemetry.h"
#include "util/check.h"

namespace subfed {

ClientStateStore::~ClientStateStore() {
  if (spill_file_ != nullptr) std::fclose(spill_file_);
}

void ClientStateStore::init(std::size_t num_clients, StateSections initial,
                            std::size_t hot_capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  num_clients_ = num_clients;
  hot_capacity_ = hot_capacity;
  initial_ = std::make_shared<const StateSections>(std::move(initial));
  touched_.assign(num_clients, false);
  hot_.clear();
  lru_.clear();
  lru_it_.clear();
  spilled_.clear();
}

bool ClientStateStore::touched(std::size_t k) const {
  SUBFEDAVG_CHECK(k < num_clients_, "client " << k << " out of " << num_clients_);
  std::lock_guard<std::mutex> lock(mutex_);
  return touched_[k];
}

std::string ClientStateStore::record_name(std::size_t k) {
  return "client-" + std::to_string(k);
}

StateSectionsPtr ClientStateStore::load_spilled_locked(std::size_t k) const {
  const auto it = spilled_.find(k);
  SUBFEDAVG_CHECK(it != spilled_.end(), "client " << k << " not in spill index");
  SUBFEDAVG_CHECK(spill_file_ != nullptr, "spill file missing");
  std::vector<std::uint8_t> bytes(it->second.size);
  SUBFEDAVG_CHECK(std::fseek(spill_file_, it->second.offset, SEEK_SET) == 0,
                  "spill seek failed");
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), spill_file_);
  SUBFEDAVG_CHECK(read == bytes.size(), "short spill read for client " << k);
  ++refaults_;
  static telemetry::Counter& refaults = telemetry::counter("state.refaults");
  refaults.add();
  return std::make_shared<const StateSections>(
      decode_state_sections(bytes, record_name(k)));
}

void ClientStateStore::promote_locked(std::size_t k) {
  const auto it = lru_it_.find(k);
  if (it != lru_it_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(k);
    lru_it_[k] = lru_.begin();
  }
}

void ClientStateStore::evict_overflow_locked() {
  if (hot_capacity_ == 0) return;
  while (hot_.size() > hot_capacity_ && lru_.size() > 1) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    lru_it_.erase(victim);
    const auto it = hot_.find(victim);
    SUBFEDAVG_CHECK(it != hot_.end(), "LRU entry without hot sections");
    // Spill through the same versioned container full checkpoints use, then
    // drop the hot reference (readers holding the shared_ptr keep their view).
    if (spill_file_ == nullptr) {
      spill_file_ = std::tmpfile();
      SUBFEDAVG_CHECK(spill_file_ != nullptr, "cannot create spill file");
    }
    const std::vector<std::uint8_t> bytes =
        encode_state_sections(record_name(victim), *it->second);
    SUBFEDAVG_CHECK(std::fseek(spill_file_, 0, SEEK_END) == 0, "spill seek failed");
    const long offset = std::ftell(spill_file_);
    SUBFEDAVG_CHECK(offset >= 0, "spill tell failed");
    const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), spill_file_);
    SUBFEDAVG_CHECK(written == bytes.size(), "short spill write");
    spilled_[victim] = {offset, bytes.size()};
    hot_.erase(it);
    ++spills_;
    static telemetry::Counter& spills = telemetry::counter("state.spills");
    static telemetry::Counter& spilled_bytes = telemetry::counter("state.spilled_bytes");
    spills.add();
    spilled_bytes.add(bytes.size());
  }
}

StateSectionsPtr ClientStateStore::read(std::size_t k) {
  SUBFEDAVG_CHECK(k < num_clients_, "client " << k << " out of " << num_clients_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!touched_[k]) return initial_;
  const auto it = hot_.find(k);
  if (it != hot_.end()) {
    promote_locked(k);
    return it->second;
  }
  StateSectionsPtr sections = load_spilled_locked(k);
  spilled_.erase(k);
  hot_[k] = sections;
  promote_locked(k);
  evict_overflow_locked();
  return sections;
}

StateSectionsPtr ClientStateStore::peek(std::size_t k) const {
  SUBFEDAVG_CHECK(k < num_clients_, "client " << k << " out of " << num_clients_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!touched_[k]) return initial_;
  const auto it = hot_.find(k);
  if (it != hot_.end()) return it->second;
  return load_spilled_locked(k);
}

void ClientStateStore::put(std::size_t k, StateSections sections) {
  SUBFEDAVG_CHECK(k < num_clients_, "client " << k << " out of " << num_clients_);
  std::lock_guard<std::mutex> lock(mutex_);
  touched_[k] = true;
  spilled_.erase(k);  // a newer value supersedes any spilled record
  hot_[k] = std::make_shared<const StateSections>(std::move(sections));
  promote_locked(k);
  evict_overflow_locked();
}

void ClientStateStore::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  touched_.assign(num_clients_, false);
  hot_.clear();
  lru_.clear();
  lru_it_.clear();
  spilled_.clear();
}

}  // namespace subfed
