// Standalone benchmark: every client trains only on its own local data —
// no federation, no communication. The paper's lower (sometimes upper!)
// reference under pathological non-IID (§4.2, Remark-2).
#pragma once

#include "fl/algorithm.h"
#include "fl/client_state.h"

namespace subfed {

class Standalone final : public FederatedAlgorithm {
 public:
  explicit Standalone(FlContext ctx);

  std::string name() const override { return "Standalone"; }
  void run_round(std::size_t round, std::span<const std::size_t> sampled) override;
  /// Trains the client's local model (installed from job.state on remote
  /// exchanges); uploads nothing.
  ClientResult run_client(std::size_t round, const ClientJob& job, const StateDict& received,
                          bool detached) override;
  /// One section: the client's local model.
  std::vector<StateDict> client_state_sections(std::size_t k) override;
  double client_test_accuracy(std::size_t k) override;

  /// Checkpoint layout: one section per client (its local model).
  std::vector<StateDict> checkpoint_state() override;
  void restore_checkpoint_state(std::vector<StateDict> sections) override;

 private:
  /// Each client's persistent local model: one section per client, untouched
  /// clients sharing the initial state, cold ones spilled past client_cache.
  ClientStateStore store_;
};

}  // namespace subfed
