// Declarative experiment description.
//
// An ExperimentSpec bundles everything one federation run needs — dataset,
// partition, model, local-training and driver parameters, and the algorithm
// name + hyper-parameters — in one value that:
//   * parses from argv-style flags (`--dataset cifar10 --algo subfedavg_hy`),
//   * round-trips through a key=value text form (`to_kv` / `from_kv`), so a
//     finished run's exact configuration is a reproducible artifact,
//   * builds all the runtime pieces (FederatedData config, FlContext,
//     DriverConfig, and the algorithm via the registry).
// The JSON result writer pairs a spec with its RunResult so sweeps emit
// machine-readable accuracy curves and communication totals.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "data/client_data.h"
#include "fl/driver.h"
#include "fl/registry.h"

namespace subfed {

/// Per-round prune step calibrated to the run length: a client participates
/// in ≈ rounds × sample_rate rounds and must reach `target` within them.
/// The paper prunes 5-20% of remaining per round over 300-500 rounds; scaled
/// runs compress that schedule the same way.
double adaptive_prune_step(double target, std::size_t rounds, double sample_rate);

/// Position of the extension dot in `path`'s final component (dots in
/// directory names don't count), or std::string::npos when it has none.
/// Shared by checkpoint-path derivation here and in the sweep runner.
std::size_t path_extension_dot(const std::string& path);

struct ExperimentSpec {
  // Data.
  std::string dataset = "mnist";     ///< mnist | emnist | cifar10 | cifar100
  std::string partition = "shards";  ///< shards | dirichlet
  double alpha = 0.5;                ///< Dirichlet concentration
  std::size_t clients = 16;
  std::size_t shards_per_client = 2;
  std::size_t shard = 40;            ///< shard size; 0 → dataset's paper value
  std::size_t test_per_class = 16;
  // Model.
  std::string model = "auto";        ///< auto | cnn5 | lenet5 | cnn_deep
  // Compute (tensor/device.h).
  std::string backend = "auto";      ///< auto | naive | blocked | sparse
  std::string compute = "auto";      ///< auto | fp32 | fp16 GEMM compute dtype
  std::size_t math_threads = 0;      ///< GEMM row-panel cap; 0 → process setting
  // Communication (comm/channel.h, comm/transport.h, comm/round_time.h).
  std::string transport = "memory";  ///< memory | loopback | subprocess | tcp
  std::string codec = "sparse";      ///< sparse | delta (uplink vs broadcast)
  std::string quantize = "none";     ///< none | fp16 | int8 kept-value precision
  std::size_t channel_workers = 0;   ///< subprocess fan-out / tcp fleet size
  double link_spread = 1.0;          ///< straggler tail: slowest link = 1/spread
  // Remote federation (transport=tcp): this run is the COORDINATOR and binds
  // `listen`; worker processes on other machines join it with the worker
  // tool (`worker --connect host:port`). `connect` is rejected here with a
  // pointer at that tool — a spec describes one coordinator run.
  std::string listen;                ///< coordinator bind "host:port"; port 0 = ephemeral
  std::string connect;               ///< (workers only — use the worker tool)
  std::size_t rpc_timeout_ms = 120000;  ///< per-exchange worker deadline; 0 = forever
  // Round aggregation (comm/channel.h): buffered closes a round after the
  // first buffer_k replies and parks stragglers' updates for the next round,
  // staleness-down-weighted by 1/(1+s)^staleness_decay, evicted past
  // max_staleness.
  std::string aggregation = "sync";  ///< sync | buffered
  std::size_t buffer_k = 0;          ///< replies closing a buffered round; 0 → all
  double staleness_decay = 0.5;      ///< stale-update down-weight exponent
  std::size_t max_staleness = 4;     ///< parked updates older than this drop
  // Scale (data/client_data.h, fl/client_state.h): bounds resident per-client
  // data AND per-client algorithm state to the cache size, synthesizing /
  // spilling the rest on demand — memory O(active set), not O(population).
  // 0 keeps everything resident (the historical default, bit-identical).
  std::size_t client_cache = 0;
  // Local training.
  std::size_t epochs = 3;
  std::size_t batch = 10;
  double lr = 0.01;
  double momentum = 0.5;
  // Driver.
  std::size_t rounds = 12;
  double sample = 0.4;
  std::size_t eval_every = 0;        ///< 0 → evaluate only after the last round
  double dropout = 0.0;
  // Event-driven population (serve/session.h): when arrivals > 0 clients join
  // the federation at exponential interarrival times (arrivals per simulated
  // second, in a pseudorandom order) and each round samples only among
  // clients that have arrived; dwell > 0 gives each arrival an exponential
  // mean-dwell stay before it departs for good. 0 = the static population
  // round loop (bit-identical to previous behavior).
  double arrivals = 0.0;
  double dwell = 0.0;
  /// Replay arrivals from a timestamp file (one non-decreasing simulated
  /// second per line, '#' comments) instead of the exponential process —
  /// mutually exclusive with arrivals > 0; the population is capped at the
  /// file's line count.
  std::string arrival_trace;
  std::uint64_t seed = 1;
  // Robustness (fl/robust.h; honored by the FedAvg family).
  double corrupt_fraction = 0.0;     ///< chance an upload is replaced by noise
  double corrupt_noise = 1.0;        ///< stddev of the corruption noise
  double robust_filter = 0.0;        ///< median-distance filter factor; 0 → off
  // Algorithm.
  std::string algo = "subfedavg_un"; ///< any registry() name
  double target = 0.5;               ///< pruning target (Sub-FedAvg variants)
  double step = 0.0;                 ///< per-round prune rate; 0 → adaptive
  AlgoParams algo_params;            ///< extra per-algorithm overrides
  // Output.
  std::string tag;                   ///< free-form run label, carried into results
  std::string out;                   ///< JSON result path; empty → no file
  // Observability (telemetry/telemetry.h): off | counters | trace. Empty (the
  // default) leaves the process level alone — i.e. whatever the
  // SUBFEDAVG_TELEMETRY env var selected. Applied by FederationSession::
  // from_spec, so batch runs, the resident server, and remote workers all
  // share one switch. Never affects results: telemetry is timing-only.
  std::string telemetry;
  // Checkpointing (fl/checkpoint.h).
  std::size_t checkpoint_every = 0;  ///< snapshot every N rounds; 0 → off
  std::string checkpoint_path;       ///< empty → derived from `out` (.ckpt)
  // Resident service (serve/server.h): serve=1 turns the spec into a
  // long-lived coordinator — no fixed `rounds` horizon; rounds tick whenever
  // enough workers are connected, and the session checkpoints itself so a
  // crash-restart resumes mid-federation. Start one with the serve tool.
  std::size_t serve = 0;             ///< 1 = resident coordinator (tools/serve)
  std::string status_listen;         ///< request-API bind "host:port" (serve=1)
  std::size_t min_participants = 0;  ///< workers needed to tick a round; 0 → max(1, buffer_k)

  bool help_requested = false;       ///< set by parse_args on --help / -h

  /// Applies `--key value` flags to this spec (so callers can pre-seed
  /// defaults). Flag names are the kv keys with '_' → '-'; algorithm extras
  /// pass as repeated `--algo-param key=value`; `--spec path` applies a saved
  /// kv file (later flags override it). Throws CheckError on unknown flags,
  /// bad values, and a trailing flag with no value.
  void parse_args(int argc, char** argv);

  /// One `key=value` per line, in a fixed order; algorithm extras serialize
  /// as `algo.key=value`.
  std::string to_kv() const;
  /// Applies kv lines over the current values. Blank lines and `#` comments
  /// are skipped; unknown keys throw CheckError.
  void apply_kv(const std::string& text);
  /// Defaults + apply_kv — inverse of to_kv.
  static ExperimentSpec from_kv(const std::string& text);

  /// Flag reference plus the registered algorithm names.
  static std::string help_text();

  /// Validates everything that needs no data — transport/codec/aggregation
  /// names, the tcp listen/connect rules — so misconfigurations fail at
  /// spec-parse time with actionable messages, before any dataset synthesis
  /// or training. Called by make_context and execute_experiment; throws
  /// CheckError.
  void validate() const;

  // -- runtime pieces ------------------------------------------------------
  DatasetSpec dataset_spec() const;
  FederatedDataConfig data_config() const;
  /// Resolves "auto" to the paper's architecture for the dataset (LeNet-5
  /// for 3-channel inputs, CNN-5 otherwise).
  ModelSpec model_spec() const;
  FlContext make_context(const FederatedData& data) const;
  DriverConfig driver_config() const;
  /// step (adaptive when 0) and target merged over `algo_params`; explicit
  /// algo_params entries win.
  AlgoParams resolved_algo_params() const;
  /// Builds the algorithm through the registry.
  std::unique_ptr<FederatedAlgorithm> make_algorithm(const FlContext& ctx) const;
  /// checkpoint_path, or when empty a path derived from `out` (extension
  /// replaced by .ckpt), falling back to "checkpoint.ckpt".
  std::string resolved_checkpoint_path() const;
};

/// A completed run: the algorithm's display name, the driver result, and
/// algorithm-specific scalar metrics (e.g. `unstructured_pruned` /
/// `structured_pruned` for Sub-FedAvg, `finetune_steps` for FedAvg+FT).
struct ExecutedRun {
  std::string algorithm_name;
  RunResult result;
  std::map<std::string, double> metrics;
};

/// One call from spec to finished run: builds the data/context/algorithm,
/// attaches a CheckpointObserver when `checkpoint_every` > 0 (chained with
/// `observer` when both are present), runs the federation, collects the
/// algorithm's extra metrics, and writes the JSON result when `out` is set.
/// This is the execution path shared by run_experiment and the sweep engine.
/// `shared_data`, when non-null, must have been synthesized from this spec's
/// dataset_spec()/data_config() — the sweep engine passes a cached federation
/// so grid points sharing one data configuration synthesize it once.
ExecutedRun execute_experiment(const ExperimentSpec& spec, RoundObserver* observer = nullptr,
                               const FederatedData* shared_data = nullptr);

/// JSON document pairing the spec with its result: algorithm name, the full
/// spec, the accuracy curve, per-client accuracies, up/down byte totals, and
/// any extra scalar metrics.
std::string run_result_json(const ExperimentSpec& spec, const std::string& algorithm_name,
                            const RunResult& result,
                            const std::map<std::string, double>& metrics = {});

/// Writes run_result_json to `path` (overwrites). Throws CheckError on I/O
/// failure.
void write_run_result_json(const std::string& path, const ExperimentSpec& spec,
                           const std::string& algorithm_name, const RunResult& result,
                           const std::map<std::string, double>& metrics = {});

}  // namespace subfed
