#include "fl/lg_fedavg.h"

#include "core/eval.h"
#include "util/check.h"

namespace subfed {

bool LgFedAvg::is_global_entry(const std::string& name) {
  return name.rfind("fc", 0) == 0;  // fc1.weight, fc2.bias, ...
}

namespace {

StateDict extract_head(const StateDict& full) {
  StateDict head;
  for (const auto& [name, tensor] : full) {
    if (LgFedAvg::is_global_entry(name)) head.add(name, tensor);
  }
  return head;
}

}  // namespace

LgFedAvg::LgFedAvg(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {
  store_.init(num_clients(), {initial_state()}, ctx_.client_cache);
  global_head_ = extract_head(initial_state());
  SUBFEDAVG_CHECK(!global_head_.empty(), "model has no FC head to federate");
}

void LgFedAvg::merge_head(StateDict& state) const {
  for (auto& [name, tensor] : state) {
    if (const Tensor* g = global_head_.find(name)) tensor = *g;
  }
}

void LgFedAvg::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  // Only the FC head crosses the channel; the convolutional representation
  // stays client-local (it rides back as an uncharged side-band mirror when
  // the round ran in a detached worker).
  std::vector<ClientJob> jobs(sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    jobs[i] = {sampled[i], &global_head_, nullptr, 1, {}};
  }

  std::vector<Exchange> exchanges = exchange_round(round, jobs);

  std::vector<ClientUpdate> updates;
  updates.reserve(exchanges.size());
  for (Exchange& exchange : exchanges) {
    if (!exchange.state.empty()) {
      store_.put(exchange.client, {std::move(exchange.state[0])});
    }
    updates.push_back(std::move(exchange.update));
  }
  global_head_ = fedavg_aggregate(updates);
}

ClientResult LgFedAvg::run_client(std::size_t round, const ClientJob& job,
                                  const StateDict& received, bool detached) {
  const std::size_t k = job.client;
  // Remote exchange: the client's full personal state arrives as side-band.
  if (!job.state.empty()) store_.put(k, {job.state[0]});
  const ClientDataPtr data = ctx_.data->client_ptr(k);

  StateDict start = (*store_.read(k))[0];
  for (auto& [name, tensor] : start) {
    if (const Tensor* g = received.find(name)) tensor = *g;
  }

  Model model = ctx_.spec.build();
  model.load_state(start);
  Sgd optimizer(model.parameters(), ctx_.sgd);
  Rng rng = client_round_rng(k, round);
  train_local(model, optimizer, data->train_images, data->train_labels, ctx_.train, rng);

  StateDict trained = model.state();
  ClientResult result;
  result.update.state = extract_head(trained);
  result.update.num_examples = data->train_labels.size();
  if (detached) result.state.push_back(trained);
  store_.put(k, {std::move(trained)});
  return result;
}

std::vector<StateDict> LgFedAvg::client_state_sections(std::size_t k) {
  return {(*store_.read(k))[0]};
}

double LgFedAvg::client_test_accuracy(std::size_t k) {
  const ClientDataPtr data = ctx_.data->client_ptr(k);
  StateDict state = (*store_.read(k))[0];
  merge_head(state);
  Model model = ctx_.spec.build();
  model.load_state(state);
  return evaluate_client_test(model, *data).accuracy;
}


std::vector<StateDict> LgFedAvg::checkpoint_state() {
  std::vector<StateDict> sections;
  sections.reserve(store_.size() + 1);
  for (std::size_t k = 0; k < store_.size(); ++k) {
    sections.push_back((*store_.peek(k))[0]);
  }
  sections.push_back(global_head_);
  return sections;
}

void LgFedAvg::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == store_.size() + 1,
                  "LG-FedAvg checkpoint expects " << store_.size() + 1 << " sections, got "
                                                  << sections.size());
  global_head_ = std::move(sections.back());
  sections.pop_back();
  store_.reset();
  for (std::size_t k = 0; k < sections.size(); ++k) {
    store_.put(k, {std::move(sections[k])});
  }
}

}  // namespace subfed
