#include "fl/lg_fedavg.h"

#include "comm/serialize.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace subfed {

bool LgFedAvg::is_global_entry(const std::string& name) {
  return name.rfind("fc", 0) == 0;  // fc1.weight, fc2.bias, ...
}

namespace {

StateDict extract_head(const StateDict& full) {
  StateDict head;
  for (const auto& [name, tensor] : full) {
    if (LgFedAvg::is_global_entry(name)) head.add(name, tensor);
  }
  return head;
}

}  // namespace

LgFedAvg::LgFedAvg(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {
  personal_.assign(num_clients(), initial_state());
  global_head_ = extract_head(initial_state());
  SUBFEDAVG_CHECK(!global_head_.empty(), "model has no FC head to federate");
}

void LgFedAvg::merge_head(StateDict& state) const {
  for (auto& [name, tensor] : state) {
    if (const Tensor* g = global_head_.find(name)) tensor = *g;
  }
}

void LgFedAvg::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  std::vector<ClientUpdate> updates(sampled.size());
  std::vector<std::size_t> up_bytes(sampled.size()), down_bytes(sampled.size());

  ThreadPool::global().parallel_for(sampled.size(), [&](std::size_t i) {
    const std::size_t k = sampled[i];
    const ClientData& data = ctx_.data->client(k);

    StateDict start = personal_[k];
    merge_head(start);
    down_bytes[i] = payload_bytes(global_head_, nullptr);

    Model model = ctx_.spec.build();
    model.load_state(start);
    Sgd optimizer(model.parameters(), ctx_.sgd);
    Rng rng = client_round_rng(k, round);
    train_local(model, optimizer, data.train_images, data.train_labels, ctx_.train, rng);

    personal_[k] = model.state();
    updates[i].state = extract_head(personal_[k]);
    updates[i].num_examples = data.train_labels.size();
    up_bytes[i] = payload_bytes(updates[i].state, nullptr);
  });

  for (std::size_t i = 0; i < sampled.size(); ++i) {
    ledger_.record(round, up_bytes[i], down_bytes[i]);
  }
  global_head_ = fedavg_aggregate(updates);
}

double LgFedAvg::client_test_accuracy(std::size_t k) {
  const ClientData& data = ctx_.data->client(k);
  StateDict state = personal_[k];
  merge_head(state);
  Model model = ctx_.spec.build();
  model.load_state(state);
  return evaluate(model, data.test_images, data.test_labels).accuracy;
}


std::vector<StateDict> LgFedAvg::checkpoint_state() {
  std::vector<StateDict> sections = personal_;
  sections.push_back(global_head_);
  return sections;
}

void LgFedAvg::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == personal_.size() + 1,
                  "LG-FedAvg checkpoint expects " << personal_.size() + 1 << " sections, got "
                                                  << sections.size());
  global_head_ = std::move(sections.back());
  sections.pop_back();
  personal_ = std::move(sections);
}

}  // namespace subfed
