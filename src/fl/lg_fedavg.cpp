#include "fl/lg_fedavg.h"

#include "util/check.h"

namespace subfed {

bool LgFedAvg::is_global_entry(const std::string& name) {
  return name.rfind("fc", 0) == 0;  // fc1.weight, fc2.bias, ...
}

namespace {

StateDict extract_head(const StateDict& full) {
  StateDict head;
  for (const auto& [name, tensor] : full) {
    if (LgFedAvg::is_global_entry(name)) head.add(name, tensor);
  }
  return head;
}

}  // namespace

LgFedAvg::LgFedAvg(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {
  personal_.assign(num_clients(), initial_state());
  global_head_ = extract_head(initial_state());
  SUBFEDAVG_CHECK(!global_head_.empty(), "model has no FC head to federate");
}

void LgFedAvg::merge_head(StateDict& state) const {
  for (auto& [name, tensor] : state) {
    if (const Tensor* g = global_head_.find(name)) tensor = *g;
  }
}

void LgFedAvg::run_round(std::size_t round, std::span<const std::size_t> sampled) {
  // Only the FC head crosses the channel; the convolutional representation
  // stays client-local (it rides back as an uncharged side-band mirror when
  // the round ran in a detached worker).
  std::vector<ClientJob> jobs(sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    jobs[i] = {sampled[i], &global_head_, nullptr, 1, {}};
  }

  std::vector<Exchange> exchanges = exchange_round(round, jobs);

  std::vector<ClientUpdate> updates;
  updates.reserve(exchanges.size());
  for (Exchange& exchange : exchanges) {
    if (!exchange.state.empty()) personal_[exchange.client] = std::move(exchange.state[0]);
    updates.push_back(std::move(exchange.update));
  }
  global_head_ = fedavg_aggregate(updates);
}

ClientResult LgFedAvg::run_client(std::size_t round, const ClientJob& job,
                                  const StateDict& received, bool detached) {
  const std::size_t k = job.client;
  // Remote exchange: the client's full personal state arrives as side-band.
  if (!job.state.empty()) personal_[k] = job.state[0];
  const ClientData& data = ctx_.data->client(k);

  StateDict start = personal_[k];
  for (auto& [name, tensor] : start) {
    if (const Tensor* g = received.find(name)) tensor = *g;
  }

  Model model = ctx_.spec.build();
  model.load_state(start);
  Sgd optimizer(model.parameters(), ctx_.sgd);
  Rng rng = client_round_rng(k, round);
  train_local(model, optimizer, data.train_images, data.train_labels, ctx_.train, rng);

  personal_[k] = model.state();
  ClientResult result;
  result.update.state = extract_head(personal_[k]);
  result.update.num_examples = data.train_labels.size();
  if (detached) result.state.push_back(personal_[k]);
  return result;
}

std::vector<StateDict> LgFedAvg::client_state_sections(std::size_t k) {
  return {personal_[k]};
}

double LgFedAvg::client_test_accuracy(std::size_t k) {
  const ClientData& data = ctx_.data->client(k);
  StateDict state = personal_[k];
  merge_head(state);
  Model model = ctx_.spec.build();
  model.load_state(state);
  return evaluate(model, data.test_images, data.test_labels).accuracy;
}


std::vector<StateDict> LgFedAvg::checkpoint_state() {
  std::vector<StateDict> sections = personal_;
  sections.push_back(global_head_);
  return sections;
}

void LgFedAvg::restore_checkpoint_state(std::vector<StateDict> sections) {
  SUBFEDAVG_CHECK(sections.size() == personal_.size() + 1,
                  "LG-FedAvg checkpoint expects " << personal_.size() + 1 << " sections, got "
                                                  << sections.size());
  global_head_ = std::move(sections.back());
  sections.pop_back();
  personal_ = std::move(sections);
}

}  // namespace subfed
