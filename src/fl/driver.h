// Federation driver: the synchronized round loop of §3.4 —
// sample clients, run the algorithm's round, periodically evaluate the
// personalized accuracy of every client.
//
// Cross-cutting concerns (logging, accuracy traces, comm-cost sampling, and
// eventually checkpointing — see ROADMAP) attach through RoundObserver hooks
// instead of forking the loop: the driver calls back at round boundaries and
// evaluation points, so observers compose without the driver knowing about
// them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fl/algorithm.h"
#include "metrics/stats.h"

namespace subfed {

struct DriverConfig {
  std::size_t rounds = 50;
  double sample_rate = 0.1;   ///< K; sampled count = max(1, ⌊K·N⌋)
  std::size_t eval_every = 0; ///< 0 → evaluate only after the last round
  std::uint64_t seed = 1;     ///< sampling stream seed
  /// Availability fault injection (paper §1.1 lists client availability as a
  /// practical FL issue): each sampled client independently drops out of the
  /// round with this probability. A round where everyone drops is skipped.
  double dropout_prob = 0.0;
  /// Heterogeneous-link straggler model (comm/round_time.h): every client
  /// draws a log-uniform slowdown in [1/spread, 1] of the nominal edge link
  /// (1 MB/s up, 8 MB/s down) once per run. 1 = homogeneous fleet; must be
  /// ≥ 1. A synchronous round lasts as long as its slowest sampled client's
  /// transfers — a buffered round (FlContext.aggregation = "buffered") only
  /// as long as its K-th arrival — so RunResult::simulated_seconds turns the
  /// byte ledger into wall-clock the paper's uplink-bottleneck argument is
  /// about. 1.0 (the default) defers to FlContext.link_spread; any other
  /// value overrides it for the run.
  double link_spread = 1.0;
  /// Event-driven population (serve/session.h): when > 0, clients ARRIVE over
  /// simulated time as a Poisson-like process of this rate (one arrival per
  /// client, in a pseudorandom order) and rounds sample only among arrived
  /// clients; rounds before the first arrival fast-forward the clock. 0 = the
  /// static population loop (bit-identical to previous behavior).
  double arrival_rate = 0.0;
  /// Mean simulated seconds an arrived client stays before departing for
  /// good (exponential, per-client stream); 0 = arrived clients never leave.
  double dwell = 0.0;
  /// Replay arrivals from a timestamp file (one non-decreasing simulated
  /// second per line; '#' comments) instead of drawing the exponential
  /// process: telemetry logs from one run become replayable input for the
  /// next. Mutually exclusive with arrival_rate; the population is capped at
  /// the file's line count.
  std::string arrival_trace;
};

struct RoundPoint {
  std::size_t round = 0;       ///< 1-based round index at evaluation time
  double avg_accuracy = 0.0;   ///< mean personalized accuracy over all clients
};

struct RunResult {
  std::vector<RoundPoint> curve;            ///< eval checkpoints (incl. final)
  double final_avg_accuracy = 0.0;
  std::vector<double> final_per_client;
  std::uint64_t up_bytes = 0;
  std::uint64_t down_bytes = 0;
  std::size_t dropped_clients = 0;          ///< fault-injection casualties
  std::size_t skipped_rounds = 0;           ///< rounds where everyone dropped
  /// Sum over rounds of the simulated round time under the link fleet
  /// (slowest sampled client in sync mode, K-th arrival in buffered mode).
  /// Derived from the ledger's bytes, not from host wall-clock —
  /// deterministic per seed, except buffered + subprocess, where genuine
  /// pipe-arrival order decides buffer membership (like a real async fleet,
  /// OS scheduling is part of the experiment).
  double simulated_seconds = 0.0;

  std::uint64_t total_bytes() const noexcept { return up_bytes + down_bytes; }
  /// First evaluated round whose average accuracy reaches `threshold`;
  /// returns 0 when never reached (for Fig. 3's rounds-to-target).
  std::size_t rounds_to_reach(double threshold) const noexcept;
};

/// What one completed round exchanged. Bytes are this round's ledger deltas,
/// so they stay correct even when dropout skips rounds.
struct RoundEndInfo {
  std::size_t round = 0;                   ///< 1-based round number
  std::span<const std::size_t> sampled;    ///< clients that actually ran
  std::uint64_t round_up_bytes = 0;
  std::uint64_t round_down_bytes = 0;
  double round_seconds = 0.0;              ///< simulated synchronous duration
};

/// Driver callbacks. All default to no-ops; rounds where every sampled client
/// dropped out fire neither begin nor end. The `sampled` spans are only valid
/// for the duration of the call.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  /// Before the algorithm's round runs, with the surviving sampled clients.
  virtual void on_round_begin(std::size_t round, std::span<const std::size_t> sampled) {
    (void)round;
    (void)sampled;
  }
  /// After the algorithm's round ran.
  virtual void on_round_end(const RoundEndInfo& info) { (void)info; }
  /// After each periodic (and the final) full-federation evaluation.
  virtual void on_eval(std::size_t round, double avg_accuracy) {
    (void)round;
    (void)avg_accuracy;
  }
  /// Once, with the fully populated result.
  virtual void on_run_end(const RunResult& result) { (void)result; }
};

/// Fans every callback out to the attached observers, in attachment order.
/// Does not own them; attached pointers must outlive the run.
class ObserverChain final : public RoundObserver {
 public:
  void attach(RoundObserver* observer);

  void on_round_begin(std::size_t round, std::span<const std::size_t> sampled) override;
  void on_round_end(const RoundEndInfo& info) override;
  void on_eval(std::size_t round, double avg_accuracy) override;
  void on_run_end(const RunResult& result) override;

 private:
  std::vector<RoundObserver*> observers_;
};

/// Runs `config.rounds` federation rounds of `algorithm`, invoking `observer`
/// (when non-null) at round boundaries and evaluation points.
RunResult run_federation(FederatedAlgorithm& algorithm, const DriverConfig& config,
                         RoundObserver* observer = nullptr);

}  // namespace subfed
