// Federation driver: the synchronized round loop of §3.4 —
// sample clients, run the algorithm's round, periodically evaluate the
// personalized accuracy of every client.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/algorithm.h"
#include "metrics/stats.h"

namespace subfed {

struct DriverConfig {
  std::size_t rounds = 50;
  double sample_rate = 0.1;   ///< K; sampled count = max(1, ⌊K·N⌋)
  std::size_t eval_every = 0; ///< 0 → evaluate only after the last round
  std::uint64_t seed = 1;     ///< sampling stream seed
  /// Availability fault injection (paper §1.1 lists client availability as a
  /// practical FL issue): each sampled client independently drops out of the
  /// round with this probability. A round where everyone drops is skipped.
  double dropout_prob = 0.0;
};

struct RoundPoint {
  std::size_t round = 0;       ///< 1-based round index at evaluation time
  double avg_accuracy = 0.0;   ///< mean personalized accuracy over all clients
};

struct RunResult {
  std::vector<RoundPoint> curve;            ///< eval checkpoints (incl. final)
  double final_avg_accuracy = 0.0;
  std::vector<double> final_per_client;
  std::uint64_t up_bytes = 0;
  std::uint64_t down_bytes = 0;
  std::size_t dropped_clients = 0;          ///< fault-injection casualties
  std::size_t skipped_rounds = 0;           ///< rounds where everyone dropped

  std::uint64_t total_bytes() const noexcept { return up_bytes + down_bytes; }
  /// First evaluated round whose average accuracy reaches `threshold`;
  /// returns 0 when never reached (for Fig. 3's rounds-to-target).
  std::size_t rounds_to_reach(double threshold) const noexcept;
};

/// Runs `config.rounds` federation rounds of `algorithm`.
RunResult run_federation(FederatedAlgorithm& algorithm, const DriverConfig& config);

}  // namespace subfed
