// LG-FedAvg baseline (Liang et al. 2020, "Think Locally, Act Globally").
//
// Each client keeps its convolutional representation layers LOCAL
// (personalized) and only the fully-connected head is federated: clients
// upload/download the FC entries, the server FedAvg-averages them. This is
// the strongest personalization baseline in the paper's Table 1.
#pragma once

#include "core/aggregate.h"
#include "fl/algorithm.h"
#include "fl/client_state.h"

namespace subfed {

class LgFedAvg final : public FederatedAlgorithm {
 public:
  explicit LgFedAvg(FlContext ctx);

  std::string name() const override { return "LG-FedAvg"; }
  void run_round(std::size_t round, std::span<const std::size_t> sampled) override;
  /// Merges the received head into the client's personal state (installed
  /// from job.state on remote exchanges), trains, uploads the new head.
  ClientResult run_client(std::size_t round, const ClientJob& job, const StateDict& received,
                          bool detached) override;
  /// One section: the client's full personal state.
  std::vector<StateDict> client_state_sections(std::size_t k) override;
  double client_test_accuracy(std::size_t k) override;

  /// Checkpoint layout: one section per client plus the global FC head.
  std::vector<StateDict> checkpoint_state() override;
  void restore_checkpoint_state(std::vector<StateDict> sections) override;

  /// Whether a state entry belongs to the globally shared FC head.
  static bool is_global_entry(const std::string& name);

 private:
  /// Overwrites the FC entries of `state` with the current global head.
  void merge_head(StateDict& state) const;

  /// Full per-client states (conv part is personal): one section per client,
  /// untouched clients sharing the initial state, cold ones spilled.
  ClientStateStore store_;
  StateDict global_head_;  ///< FC entries only
};

}  // namespace subfed
