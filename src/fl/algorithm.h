// Federated-algorithm interface and shared context.
//
// Every algorithm (the paper's Sub-FedAvg variants and the Table-1 baselines)
// implements the same round/evaluate contract so the driver, benches and
// examples treat them interchangeably. Accuracy is always *personalized*:
// client k's model is scored on the global test pool filtered to k's labels
// (paper §4.1) — for global-model methods that means scoring the single
// global model per-client.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "comm/channel.h"
#include "comm/ledger.h"
#include "data/client_data.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace subfed {

/// Everything an algorithm needs to run: the federation's data, the shared
/// architecture, and the paper's local-training hyper-parameters.
struct FlContext {
  const FederatedData* data = nullptr;
  ModelSpec spec;
  TrainConfig train{};  ///< 5 local epochs, batch 10 (§4.1)
  SgdConfig sgd{};      ///< lr 0.01, momentum 0.5 (§4.1)
  std::uint64_t seed = 1;
  /// Math backend name for every model built from `spec` ("auto" = keep the
  /// spec's choice / process default); applied to `spec` by the
  /// FederatedAlgorithm constructor.
  std::string backend = "auto";
  /// GEMM compute dtype ("auto" | "fp32" | "fp16"), applied to `spec` like
  /// `backend` above. fp16 stages operands through half precision with fp32
  /// accumulation (tensor/device.h).
  std::string compute = "auto";
  /// Row-panel cap for a single GEMM, applied process-wide when nonzero by
  /// the FederatedAlgorithm constructor (0 = inherit). Affects only
  /// wall-clock time — kernel results are thread-count independent.
  std::size_t math_threads = 0;
  /// Robustness fault injection: each upload is replaced by N(0,
  /// corrupt_noise) with probability corrupt_fraction — injected by the
  /// channel after the server decodes the payload, so it composes with every
  /// transport and codec. When robust_filter > 0 the FedAvg family and
  /// Sub-FedAvg drop updates whose (mask-aware) distance from the previous
  /// global exceeds robust_filter × the cohort median before aggregating.
  double corrupt_fraction = 0.0;
  double corrupt_noise = 1.0;
  double robust_filter = 0.0;
  /// Client↔server channel (comm/channel.h): where uploads/downloads run and
  /// which codecs they pass through. transport: memory | loopback |
  /// subprocess | tcp; codec: sparse | delta; quantize: none | fp16 | int8.
  std::string transport = "memory";
  std::string codec = "sparse";
  std::string quantize = "none";
  /// Subprocess-transport fan-out per round; tcp worker connections to wait
  /// for before round 0 (0 → hardware concurrency / one worker).
  std::size_t channel_workers = 0;
  /// Remote (tcp) transport: coordinator bind address "host:port" (port 0
  /// binds an ephemeral port — Channel::transport_endpoint() reports it).
  std::string listen;
  /// Per-exchange deadline for remote workers; 0 waits forever.
  std::size_t rpc_timeout_ms = 120000;
  /// Opaque session blob (an ExperimentSpec kv text) handed to every joining
  /// worker so it can mirror this federation before serving exchanges.
  std::string remote_setup;
  /// Straggler model (comm/round_time.h): every client draws a log-uniform
  /// slowdown in [1/link_spread, 1] of the nominal edge link once per run.
  double link_spread = 1.0;
  /// Round aggregation (comm/channel.h): "sync" waits for every sampled
  /// client; "buffered" closes the round after the first buffer_k replies
  /// (0 → all sampled) and parks late updates for the next round, delivered
  /// down-weighted by 1/(1+staleness)^staleness_decay and evicted past
  /// max_staleness.
  std::string aggregation = "sync";
  std::size_t buffer_k = 0;
  double staleness_decay = 0.5;
  std::size_t max_staleness = 4;
  /// Lazy-residency cap for per-client algorithm state (mirrors
  /// FederatedDataConfig::client_cache): 0 keeps every touched client's
  /// side-band state resident (the historical behavior); > 0 bounds resident
  /// clients, spilling the rest through the checkpoint container
  /// (fl/client_state.h) so memory is O(active), not O(population).
  std::size_t client_cache = 0;
};

class FederatedAlgorithm {
 public:
  explicit FederatedAlgorithm(FlContext ctx);
  /// Restores the process math-thread cap if this algorithm overrode it.
  virtual ~FederatedAlgorithm();

  FederatedAlgorithm(const FederatedAlgorithm&) = delete;
  FederatedAlgorithm& operator=(const FederatedAlgorithm&) = delete;

  virtual std::string name() const = 0;

  /// Executes one communication round over the sampled client indices.
  /// Implementations train sampled clients in parallel and record traffic.
  virtual void run_round(std::size_t round, std::span<const std::size_t> sampled) = 0;

  /// Personalized test accuracy of client k under this algorithm's current
  /// model(s). Must be safe to call concurrently for distinct k.
  virtual double client_test_accuracy(std::size_t k) = 0;

  /// One client's round, runnable ANYWHERE — this process (loopback), a
  /// forked child (subprocess), or a remote worker (tcp). `job.state`, when
  /// non-empty, carries the client's side-band mirror shipped down by a
  /// remote coordinator and must be installed before computing; fill
  /// ClientResult::state iff `detached`. Every built-in algorithm overrides
  /// this (run_round routes through it via exchange_round); the base
  /// implementation throws CheckError so out-of-tree algorithms that never
  /// leave the process keep compiling.
  virtual ClientResult run_client(std::size_t round, const ClientJob& job,
                                  const StateDict& received, bool detached);

  /// The side-band sections a remote exchange must ship DOWN for client k —
  /// the same layout run_client installs from job.state and returns in
  /// ClientResult::state. Default: none (stateless clients).
  virtual std::vector<StateDict> client_state_sections(std::size_t k);

  /// Worker side of one remote exchange: decodes the request, runs
  /// run_client detached, returns the encoded reply (fl/worker.h drives it).
  std::vector<std::uint8_t> serve_remote(std::span<const std::uint8_t> request_bytes);

  /// Named state sections that fully describe this algorithm's mutable state,
  /// in the order restore_checkpoint_state expects them back. Every built-in
  /// algorithm overrides this pair so fl/checkpoint.h can snapshot any run;
  /// the base implementation throws CheckError (out-of-tree algorithms opt in
  /// by overriding).
  virtual std::vector<StateDict> checkpoint_state();
  /// Inverse of checkpoint_state: replaces the algorithm's mutable state.
  /// Throws CheckError when the sections do not match this federation.
  virtual void restore_checkpoint_state(std::vector<StateDict> sections);

  /// The current server-side global model — what the resident coordinator
  /// serves to kGetModel requests. Default: the first checkpoint_state
  /// section, which every built-in algorithm lays out as its global/shared
  /// state (for fully-local algorithms like standalone that is client 0's
  /// model — the closest thing they have to one). FedAvg-family and
  /// Sub-FedAvg override this with a direct copy of their global state.
  virtual StateDict global_model();

  std::size_t num_clients() const noexcept { return ctx_.data->num_clients(); }
  const FlContext& context() const noexcept { return ctx_; }
  const CommLedger& ledger() const noexcept { return ledger_; }
  /// The message channel every built-in algorithm exchanges through.
  const Channel& channel() const noexcept { return *channel_; }
  /// Mutable access (the resident server admits transport joins through it).
  Channel& channel() noexcept { return *channel_; }
  /// Per-client byte costs of the most recent round, for the round-time
  /// model (empty before the first round).
  const std::vector<ClientRoundCost>& last_round_costs() const noexcept {
    return channel_->last_round_costs();
  }
  /// Simulated duration of the most recent round under the link fleet:
  /// slowest participant in sync mode, K-th arrival in buffered mode.
  double last_round_seconds() const noexcept { return channel_->last_round_seconds(); }
  /// Rebuilds the link fleet when `spread`/`seed` differ from the current
  /// draw — the driver honors DriverConfig::link_spread (and its seed, which
  /// may differ from ctx.seed for direct-API callers) this way. The draw uses
  /// the same "link-fleet" stream the driver used before it moved here.
  void apply_link_spread(double spread, std::uint64_t seed);

  /// Mean personalized accuracy over ALL clients (evaluated in parallel).
  double average_test_accuracy();
  /// Per-client personalized accuracies.
  std::vector<double> all_test_accuracies();

 protected:
  /// The shared initial model state θ_0 every algorithm starts from — derived
  /// only from the seed so different algorithms are comparable run-to-run.
  const StateDict& initial_state() const noexcept { return initial_state_; }

  /// Deterministic per-(client, round) RNG stream.
  Rng client_round_rng(std::size_t client, std::size_t round) const;

  /// Runs one round of exchanges through the channel, routing each client's
  /// compute to run_client. When the transport is remote, first fills every
  /// job's side-band state (client_state_sections) so the wire carries the
  /// client mirrors down. Algorithms call this instead of channel_->run_round.
  std::vector<Exchange> exchange_round(std::size_t round, std::span<ClientJob> jobs);

  FlContext ctx_;
  CommLedger ledger_;
  /// Built from ctx_'s transport/codec/quantize/corruption fields; records
  /// into ledger_. Subclasses route every upload/download through it.
  std::unique_ptr<Channel> channel_;

 private:
  StateDict initial_state_;
  /// Heterogeneous per-client links (ctx.link_spread); the channel holds a
  /// pointer for arrival ordering and round timing.
  std::unique_ptr<LinkFleet> fleet_;
  double fleet_spread_ = 1.0;
  std::uint64_t fleet_seed_ = 0;
  /// Previous process-wide math-thread cap when ctx.math_threads overrode it.
  std::optional<std::size_t> restore_math_threads_;
};

}  // namespace subfed
