// Corrupted-update injection and a server-side defense.
//
// The paper lists "corrupted updates by the clients" among the practical FL
// issues outside its scope (§1.1). This module makes the threat concrete for
// the simulator: a configurable fraction of uploads is replaced by noise
// (crashed/byzantine devices), and the server may screen updates before
// aggregation with a norm-based outlier filter — updates whose distance from
// the previous global exceeds `filter_factor` × the median distance of the
// cohort are discarded.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/aggregate.h"
#include "util/rng.h"

namespace subfed {

struct CorruptionConfig {
  double probability = 0.0;   ///< chance an upload is corrupted
  float noise_stddev = 1.0f;  ///< N(0, σ) replacing every tensor entry
};

/// Replaces `update`'s state values with Gaussian noise (mask/coverage and
/// example counts untouched — the corruption is in the payload, not the
/// metadata).
void corrupt_update(ClientUpdate& update, const CorruptionConfig& config, Rng& rng);

/// L2 distance between an update's state and a reference state. Mask-aware:
/// for entries the update's mask covers, only positions the client actually
/// uploaded (mask == 1) contribute — a heavily-pruned honest Sub-FedAvg
/// client is not penalized for the reference values it never sent. Updates
/// with an empty mask (the dense FedAvg family) compare every position.
double update_distance(const ClientUpdate& update, const StateDict& reference);

/// Returns the indices of updates that PASS the median-distance filter:
/// d_k ≤ filter_factor × median(d). With fewer than 3 updates everything
/// passes (no meaningful median).
std::vector<std::size_t> filter_updates_by_norm(std::span<const ClientUpdate> updates,
                                                const StateDict& previous_global,
                                                double filter_factor);

}  // namespace subfed
