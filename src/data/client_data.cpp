#include "data/client_data.h"

#include <cstring>

#include "util/check.h"
#include "util/thread_pool.h"

namespace subfed {

namespace {

/// Stacks generator-produced [C,H,W] images into one [N,C,H,W] tensor.
class ImageStacker {
 public:
  ImageStacker(std::size_t n, std::size_t channels, std::size_t hw)
      : tensor_({n, channels, hw, hw}), row_(channels * hw * hw) {}

  void put(std::size_t i, const Tensor& image) {
    SUBFEDAVG_CHECK(image.numel() == row_, "image size mismatch");
    std::memcpy(tensor_.data() + i * row_, image.data(), row_ * sizeof(float));
  }

  Tensor take() { return std::move(tensor_); }

 private:
  Tensor tensor_;
  std::size_t row_;
};

}  // namespace

FederatedData::FederatedData(DatasetSpec spec, FederatedDataConfig config)
    : spec_(std::move(spec)),
      config_(config),
      generator_(spec_, config.seed),
      partitioner_(spec_, config.partition, Rng(config.seed).split("partition")) {
  clients_.resize(partitioner_.num_clients());

  // Materialize clients in parallel; every image is a pure function of
  // (seed, label, index), so thread scheduling cannot change the data.
  ThreadPool::global().parallel_for(clients_.size(), [&](std::size_t k) {
    const ClientShards& shards = partitioner_.client(k);
    ClientData& cd = clients_[k];
    cd.labels_present = shards.labels_present;

    // Deterministic local shuffle, then split off the validation tail.
    std::vector<std::size_t> order(shards.examples.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    Rng rng = Rng(config_.seed).split("client-split", k);
    rng.shuffle(order);

    std::size_t n_val = static_cast<std::size_t>(
        static_cast<double>(order.size()) * config_.val_fraction);
    n_val = std::max<std::size_t>(n_val, 1);
    SUBFEDAVG_CHECK(n_val < order.size(), "validation split consumed all local data");
    const std::size_t n_train = order.size() - n_val;

    ImageStacker train_stack(n_train, spec_.channels, spec_.hw);
    cd.train_labels.resize(n_train);
    for (std::size_t i = 0; i < n_train; ++i) {
      const ExampleRef& ref = shards.examples[order[i]];
      train_stack.put(i, generator_.train_image(static_cast<std::size_t>(ref.label),
                                                ref.index));
      cd.train_labels[i] = ref.label;
    }
    cd.train_images = train_stack.take();

    ImageStacker val_stack(n_val, spec_.channels, spec_.hw);
    cd.val_labels.resize(n_val);
    for (std::size_t i = 0; i < n_val; ++i) {
      const ExampleRef& ref = shards.examples[order[n_train + i]];
      val_stack.put(i, generator_.test_image(static_cast<std::size_t>(ref.label),
                                             // offset the stream so val never
                                             // collides with the shared test pool
                                             config_.test_per_class + ref.index));
      cd.val_labels[i] = ref.label;
    }
    cd.val_images = val_stack.take();

    // Test set: the full test pool restricted to the client's labels.
    const std::size_t n_test = cd.labels_present.size() * config_.test_per_class;
    ImageStacker test_stack(n_test, spec_.channels, spec_.hw);
    cd.test_labels.resize(n_test);
    std::size_t t = 0;
    for (const std::int32_t label : cd.labels_present) {
      for (std::size_t i = 0; i < config_.test_per_class; ++i, ++t) {
        test_stack.put(t, generator_.test_image(static_cast<std::size_t>(label), i));
        cd.test_labels[t] = label;
      }
    }
    cd.test_images = test_stack.take();
  });
}

const ClientData& FederatedData::client(std::size_t k) const {
  SUBFEDAVG_CHECK(k < clients_.size(), "client " << k << " out of " << clients_.size());
  return clients_[k];
}

}  // namespace subfed
