#include "data/client_data.h"

#include <cstring>

#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace subfed {

namespace {

/// Stacks generator-produced [C,H,W] images into one [N,C,H,W] tensor.
class ImageStacker {
 public:
  ImageStacker(std::size_t n, std::size_t channels, std::size_t hw)
      : tensor_({n, channels, hw, hw}), row_(channels * hw * hw) {}

  void put(std::size_t i, const Tensor& image) {
    SUBFEDAVG_CHECK(image.numel() == row_, "image size mismatch");
    std::memcpy(tensor_.data() + i * row_, image.data(), row_ * sizeof(float));
  }

  Tensor take() { return std::move(tensor_); }

 private:
  Tensor tensor_;
  std::size_t row_;
};

}  // namespace

FederatedData::FederatedData(DatasetSpec spec, FederatedDataConfig config)
    : spec_(std::move(spec)),
      config_(config),
      generator_(spec_, config.seed),
      partitioner_(spec_, config.partition, Rng(config.seed).split("partition"),
                   /*lazy=*/config.client_cache > 0) {
  if (lazy()) return;  // clients materialize on demand through client_ptr()

  clients_.resize(partitioner_.num_clients());
  // Materialize clients in parallel; every image is a pure function of
  // (seed, label, index), so thread scheduling cannot change the data.
  ThreadPool::global().parallel_for(clients_.size(), [&](std::size_t k) {
    clients_[k] = build_client(k);
  });
}

ClientData FederatedData::build_client(std::size_t k) const {
  const ClientShards shards = partitioner_.shards_for(k);
  ClientData cd;
  cd.labels_present = shards.labels_present;

  // Deterministic local shuffle, then split off the validation tail.
  std::vector<std::size_t> order(shards.examples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng = Rng(config_.seed).split("client-split", k);
  rng.shuffle(order);

  std::size_t n_val = static_cast<std::size_t>(
      static_cast<double>(order.size()) * config_.val_fraction);
  n_val = std::max<std::size_t>(n_val, 1);
  SUBFEDAVG_CHECK(n_val < order.size(), "validation split consumed all local data");
  const std::size_t n_train = order.size() - n_val;

  ImageStacker train_stack(n_train, spec_.channels, spec_.hw);
  cd.train_labels.resize(n_train);
  for (std::size_t i = 0; i < n_train; ++i) {
    const ExampleRef& ref = shards.examples[order[i]];
    train_stack.put(i, generator_.train_image(static_cast<std::size_t>(ref.label),
                                              ref.index));
    cd.train_labels[i] = ref.label;
  }
  cd.train_images = train_stack.take();

  ImageStacker val_stack(n_val, spec_.channels, spec_.hw);
  cd.val_labels.resize(n_val);
  for (std::size_t i = 0; i < n_val; ++i) {
    const ExampleRef& ref = shards.examples[order[n_train + i]];
    val_stack.put(i, generator_.test_image(static_cast<std::size_t>(ref.label),
                                           // offset the stream so val never
                                           // collides with the shared test pool
                                           config_.test_per_class + ref.index));
    cd.val_labels[i] = ref.label;
  }
  cd.val_images = val_stack.take();

  // Test set: the shared per-label pool restricted to the client's labels.
  cd.test.reserve(cd.labels_present.size());
  for (const std::int32_t label : cd.labels_present) {
    cd.test.push_back(test_slice(label));
  }
  return cd;
}

std::shared_ptr<const TestSlice> FederatedData::test_slice(std::int32_t label) const {
  {
    std::lock_guard<std::mutex> lock(test_mutex_);
    const auto it = test_slices_.find(label);
    if (it != test_slices_.end()) return it->second;
  }
  // Build outside the lock (concurrent duplicate builds are pure and cheap;
  // the first insert wins below).
  auto slice = std::make_shared<TestSlice>();
  slice->label = label;
  ImageStacker stack(config_.test_per_class, spec_.channels, spec_.hw);
  for (std::size_t i = 0; i < config_.test_per_class; ++i) {
    stack.put(i, generator_.test_image(static_cast<std::size_t>(label), i));
  }
  slice->images = stack.take();

  std::lock_guard<std::mutex> lock(test_mutex_);
  const auto [it, inserted] = test_slices_.emplace(label, std::move(slice));
  return it->second;
}

const ClientData& FederatedData::client(std::size_t k) const {
  SUBFEDAVG_CHECK(!lazy(),
                  "client() needs eager data (client_cache=0); use client_ptr()");
  SUBFEDAVG_CHECK(k < clients_.size(), "client " << k << " out of " << clients_.size());
  return clients_[k];
}

ClientDataPtr FederatedData::client_ptr(std::size_t k) const {
  SUBFEDAVG_CHECK(k < num_clients(), "client " << k << " out of " << num_clients());
  if (!lazy()) {
    // Non-owning alias into the resident table (the table outlives callers).
    return ClientDataPtr(ClientDataPtr{}, &clients_[k]);
  }

  std::shared_ptr<Cell> cell;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cells_.find(k);
    if (it != cells_.end()) {
      ++hits_;
      static telemetry::Counter& hits = telemetry::counter("data.cache_hits");
      hits.add();
      cell = it->second;
      lru_.splice(lru_.begin(), lru_, lru_it_[k]);  // promote to MRU
    } else {
      ++misses_;
      static telemetry::Counter& misses = telemetry::counter("data.cache_misses");
      misses.add();
      cell = std::make_shared<Cell>();
      cells_.emplace(k, cell);
      lru_.push_front(k);
      lru_it_[k] = lru_.begin();
      while (cells_.size() > config_.client_cache) {
        const std::size_t victim = lru_.back();
        if (victim == k) break;  // never evict the entry being materialized
        lru_.pop_back();
        lru_it_.erase(victim);
        cells_.erase(victim);
        ++evictions_;
        static telemetry::Counter& evictions = telemetry::counter("data.cache_evictions");
        evictions.add();
      }
    }
  }
  // Materialize outside the cache lock; concurrent callers for the same
  // client block on the cell, not on each other's builds. Handles returned
  // earlier keep evicted tensors alive until released.
  std::call_once(cell->once, [&] {
    cell->data = std::make_shared<const ClientData>(build_client(k));
  });
  return cell->data;
}

}  // namespace subfed
