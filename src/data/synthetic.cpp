#include "data/synthetic.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace subfed {

// Noise levels are calibrated (see EXPERIMENTS.md "Calibration") so that the
// paper's relative ordering emerges at simulator scale: local training
// overfits a client's small shard, FedAvg collapses under 2-label non-IID,
// and Sub-FedAvg's partner averaging recovers the gap.
DatasetSpec DatasetSpec::mnist() { return {"mnist", 10, 1, 28, 250, 1.0f}; }
DatasetSpec DatasetSpec::emnist() { return {"emnist", 47, 1, 28, 250, 1.0f}; }
DatasetSpec DatasetSpec::cifar10() { return {"cifar10", 10, 3, 32, 250, 1.3f}; }
DatasetSpec DatasetSpec::cifar100() { return {"cifar100", 100, 3, 32, 125, 1.3f}; }

DatasetSpec DatasetSpec::by_name(const std::string& name) {
  if (name == "mnist") return mnist();
  if (name == "emnist") return emnist();
  if (name == "cifar10") return cifar10();
  if (name == "cifar100") return cifar100();
  SUBFEDAVG_CHECK(false, "unknown dataset '" << name << "'");
  return {};
}

SyntheticImageGenerator::SyntheticImageGenerator(DatasetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {}

Tensor SyntheticImageGenerator::prototype(std::size_t label, std::size_t which) const {
  SUBFEDAVG_CHECK(label < spec_.num_classes, "label " << label);
  SUBFEDAVG_CHECK(which < kPrototypes, "prototype index " << which);
  const std::size_t hw = spec_.hw, ch = spec_.channels;
  Tensor img({ch, hw, hw});

  // Independent stream per (class, prototype). The pattern is a mixture of
  // low-frequency cosines plus a few Gaussian bumps; different classes draw
  // different frequencies/placements, giving CNN-learnable signatures.
  Rng rng = Rng(seed_).split("prototype", label * kPrototypes + which);

  constexpr std::size_t kWaves = 4;
  constexpr std::size_t kBlobs = 3;
  for (std::size_t c = 0; c < ch; ++c) {
    struct Wave { double fx, fy, phase, amp; };
    struct Blob { double cx, cy, sigma, amp; };
    Wave waves[kWaves];
    Blob blobs[kBlobs];
    for (auto& wv : waves) {
      wv.fx = rng.uniform(0.5, 3.0);
      wv.fy = rng.uniform(0.5, 3.0);
      wv.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      wv.amp = rng.uniform(0.2, 0.5);
    }
    for (auto& bl : blobs) {
      bl.cx = rng.uniform(0.15, 0.85);
      bl.cy = rng.uniform(0.15, 0.85);
      bl.sigma = rng.uniform(0.08, 0.2);
      bl.amp = rng.uniform(0.5, 1.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    }
    for (std::size_t y = 0; y < hw; ++y) {
      for (std::size_t x = 0; x < hw; ++x) {
        const double u = static_cast<double>(x) / hw;
        const double v = static_cast<double>(y) / hw;
        double value = 0.0;
        for (const auto& wv : waves) {
          value += wv.amp *
                   std::cos(2.0 * std::numbers::pi * (wv.fx * u + wv.fy * v) + wv.phase);
        }
        for (const auto& bl : blobs) {
          const double dx = u - bl.cx, dy = v - bl.cy;
          value += bl.amp * std::exp(-(dx * dx + dy * dy) / (2.0 * bl.sigma * bl.sigma));
        }
        img[(c * hw + y) * hw + x] = static_cast<float>(value);
      }
    }
  }
  return img;
}

Tensor SyntheticImageGenerator::render(std::size_t label, std::uint64_t stream_tag,
                                       std::size_t index) const {
  SUBFEDAVG_CHECK(label < spec_.num_classes, "label " << label);
  const std::size_t hw = spec_.hw, ch = spec_.channels;

  Rng rng = Rng(seed_).split("example", stream_tag ^ (label * 0x1000003ULL + index));
  const std::size_t which = static_cast<std::size_t>(rng.uniform_index(kPrototypes));
  const Tensor proto = prototype(label, which);

  // Brightness jitter, ±2px translation, pixel noise.
  const float gain = static_cast<float>(rng.uniform(0.8, 1.2));
  const int shift_x = static_cast<int>(rng.uniform_index(5)) - 2;
  const int shift_y = static_cast<int>(rng.uniform_index(5)) - 2;

  Tensor img({ch, hw, hw});
  for (std::size_t c = 0; c < ch; ++c) {
    for (std::size_t y = 0; y < hw; ++y) {
      for (std::size_t x = 0; x < hw; ++x) {
        const int sy = static_cast<int>(y) - shift_y;
        const int sx = static_cast<int>(x) - shift_x;
        float value = 0.0f;
        if (sy >= 0 && sy < static_cast<int>(hw) && sx >= 0 && sx < static_cast<int>(hw)) {
          value = proto[(c * hw + static_cast<std::size_t>(sy)) * hw +
                        static_cast<std::size_t>(sx)];
        }
        value = gain * value + static_cast<float>(rng.normal(0.0, spec_.noise));
        img[(c * hw + y) * hw + x] = value;
      }
    }
  }
  return img;
}

Tensor SyntheticImageGenerator::train_image(std::size_t label, std::size_t index) const {
  return render(label, hash_name("train"), index);
}

Tensor SyntheticImageGenerator::test_image(std::size_t label, std::size_t index) const {
  return render(label, hash_name("test"), index);
}

}  // namespace subfed
