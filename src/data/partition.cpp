#include "data/partition.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace subfed {

namespace {

/// Gamma(shape, 1) sampler (Marsaglia–Tsang for shape ≥ 1, boost for < 1) —
/// enough for Dirichlet draws; not exposed publicly.
double sample_gamma(Rng& rng, double shape) {
  if (shape < 1.0) {
    // Gamma(a) = Gamma(a+1) · U^{1/a}
    const double u = std::max(rng.uniform(), 1e-12);
    return sample_gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace

ShardPartitioner::ShardPartitioner(const DatasetSpec& spec, PartitionConfig config,
                                   Rng rng, bool lazy)
    : kind_(config.kind),
      lazy_(lazy),
      num_clients_(config.num_clients),
      shards_per_client_(config.shards_per_client),
      num_classes_(spec.num_classes),
      dirichlet_alpha_(config.dirichlet_alpha),
      base_rng_(rng) {
  SUBFEDAVG_CHECK(config.num_clients > 0 && config.shards_per_client > 0,
                  "bad partition config");
  shard_size_ = config.shard_size == 0 ? spec.shard_size : config.shard_size;
  SUBFEDAVG_CHECK(shard_size_ > 0, "shard size must be positive");
  per_client_ = shards_per_client_ * shard_size_;

  switch (kind_) {
    case PartitionKind::kShards:
      build_shard_order(rng);
      break;
    case PartitionKind::kDirichlet:
      build_dirichlet(rng);
      break;
  }
  if (!lazy_) {
    clients_.resize(num_clients_);
    for (std::size_t k = 0; k < num_clients_; ++k) {
      clients_[k] = kind_ == PartitionKind::kShards ? synthesize_shards(k)
                                                    : synthesize_dirichlet(k);
    }
  }
}

void ShardPartitioner::build_shard_order(Rng& rng) {
  const std::size_t total_shards = num_clients_ * shards_per_client_;
  const std::size_t total_examples = total_shards * shard_size_;
  SUBFEDAVG_CHECK(total_shards <= 0xffffffffu, "too many shards for u32 deal");
  // Balanced pool: every class contributes ⌈total/num_classes⌉ examples; the
  // label-sorted sequence is then cut into equal shards. The pool itself is
  // never materialized: entry p of the label-major pool is
  // {p / pool_per_class_, p % pool_per_class_} by construction.
  pool_per_class_ = (total_examples + num_classes_ - 1) / num_classes_;

  shard_order_.resize(total_shards);
  for (std::size_t s = 0; s < total_shards; ++s) {
    shard_order_[s] = static_cast<std::uint32_t>(s);
  }
  Rng shard_rng = rng.split("shard-deal");
  shard_rng.shuffle(shard_order_);
}

std::vector<std::size_t> ShardPartitioner::dirichlet_counts(std::size_t k) const {
  Rng client_rng = base_rng_.split("dirichlet", k);
  // Mixture over classes ~ Dir(α·1).
  std::vector<double> weights(num_classes_);
  double total = 0.0;
  for (double& w : weights) {
    w = sample_gamma(client_rng, dirichlet_alpha_);
    total += w;
  }
  SUBFEDAVG_CHECK(total > 0.0, "degenerate Dirichlet draw");

  // Largest-remainder apportionment of the client's budget.
  std::vector<std::size_t> counts(num_classes_, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const double share = per_client_ * weights[c] / total;
    counts[c] = static_cast<std::size_t>(std::floor(share));
    assigned += counts[c];
    remainders.emplace_back(share - std::floor(share), c);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < per_client_; ++i, ++assigned) {
    ++counts[remainders[i % remainders.size()].second];
  }
  return counts;
}

void ShardPartitioner::build_dirichlet(Rng& rng) {
  SUBFEDAVG_CHECK(dirichlet_alpha_ > 0.0, "dirichlet alpha " << dirichlet_alpha_);
  (void)rng;  // per-client streams split from base_rng_ (an identical copy)

  // One pass over the population advancing the per-class cursors (each class
  // hands out fresh pool indices, so no example is assigned twice across the
  // federation). Snapshots every kCursorStride clients let shards_for(k)
  // replay just a stride's worth of histograms instead of the whole prefix.
  std::vector<std::uint32_t> cursor(num_classes_, 0);
  std::size_t max_index = 0;
  cursor_snapshots_.clear();
  cursor_snapshots_.reserve(num_clients_ / kCursorStride + 1);
  for (std::size_t k = 0; k < num_clients_; ++k) {
    if (k % kCursorStride == 0) cursor_snapshots_.push_back(cursor);
    const std::vector<std::size_t> counts = dirichlet_counts(k);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      if (counts[c] == 0) continue;
      max_index = std::max<std::size_t>(max_index, cursor[c] + counts[c] - 1);
      cursor[c] += static_cast<std::uint32_t>(counts[c]);
    }
  }
  pool_per_class_ = max_index + 1;
}

ClientShards ShardPartitioner::synthesize_shards(std::size_t k) const {
  ClientShards cs;
  cs.examples.reserve(per_client_);
  const std::size_t pool_size = pool_per_class_ * num_classes_;
  for (std::size_t j = 0; j < shards_per_client_; ++j) {
    const std::size_t shard = shard_order_[k * shards_per_client_ + j];
    const std::size_t begin = shard * shard_size_;
    for (std::size_t i = 0; i < shard_size_; ++i) {
      const std::size_t p = begin + i;
      SUBFEDAVG_CHECK(p < pool_size, "shard overruns pool");
      cs.examples.push_back({static_cast<std::int32_t>(p / pool_per_class_),
                             static_cast<std::uint32_t>(p % pool_per_class_)});
    }
  }
  fill_labels(cs);
  return cs;
}

ClientShards ShardPartitioner::synthesize_dirichlet(std::size_t k) const {
  // Replay cursors from the nearest snapshot up to (but not including) k,
  // then deal client k's histogram at the replayed cursor positions.
  const std::size_t snap = k / kCursorStride;
  SUBFEDAVG_CHECK(snap < cursor_snapshots_.size(), "dirichlet snapshot missing");
  std::vector<std::uint32_t> cursor = cursor_snapshots_[snap];
  for (std::size_t c0 = snap * kCursorStride; c0 < k; ++c0) {
    const std::vector<std::size_t> counts = dirichlet_counts(c0);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      cursor[c] += static_cast<std::uint32_t>(counts[c]);
    }
  }
  const std::vector<std::size_t> counts = dirichlet_counts(k);
  ClientShards cs;
  cs.examples.reserve(per_client_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    for (std::size_t i = 0; i < counts[c]; ++i) {
      cs.examples.push_back(
          {static_cast<std::int32_t>(c), cursor[c] + static_cast<std::uint32_t>(i)});
    }
  }
  fill_labels(cs);
  return cs;
}

void ShardPartitioner::fill_labels(ClientShards& cs) {
  for (const ExampleRef& ref : cs.examples) {
    if (std::find(cs.labels_present.begin(), cs.labels_present.end(), ref.label) ==
        cs.labels_present.end()) {
      cs.labels_present.push_back(ref.label);
    }
  }
  std::sort(cs.labels_present.begin(), cs.labels_present.end());
}

const ClientShards& ShardPartitioner::client(std::size_t k) const {
  SUBFEDAVG_CHECK(!lazy_, "client() needs an eager partitioner; use shards_for()");
  SUBFEDAVG_CHECK(k < clients_.size(), "client " << k << " out of " << clients_.size());
  return clients_[k];
}

ClientShards ShardPartitioner::shards_for(std::size_t k) const {
  SUBFEDAVG_CHECK(k < num_clients_, "client " << k << " out of " << num_clients_);
  if (!lazy_) return clients_[k];
  return kind_ == PartitionKind::kShards ? synthesize_shards(k)
                                         : synthesize_dirichlet(k);
}

}  // namespace subfed
