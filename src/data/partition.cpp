#include "data/partition.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace subfed {

namespace {

/// Gamma(shape, 1) sampler (Marsaglia–Tsang for shape ≥ 1, boost for < 1) —
/// enough for Dirichlet draws; not exposed publicly.
double sample_gamma(Rng& rng, double shape) {
  if (shape < 1.0) {
    // Gamma(a) = Gamma(a+1) · U^{1/a}
    const double u = std::max(rng.uniform(), 1e-12);
    return sample_gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace

ShardPartitioner::ShardPartitioner(const DatasetSpec& spec, PartitionConfig config,
                                   Rng rng) {
  SUBFEDAVG_CHECK(config.num_clients > 0 && config.shards_per_client > 0,
                  "bad partition config");
  shard_size_ = config.shard_size == 0 ? spec.shard_size : config.shard_size;
  SUBFEDAVG_CHECK(shard_size_ > 0, "shard size must be positive");

  clients_.resize(config.num_clients);
  switch (config.kind) {
    case PartitionKind::kShards:
      build_shards(spec, config, rng);
      break;
    case PartitionKind::kDirichlet:
      build_dirichlet(spec, config, rng);
      break;
  }
  finalize_labels();
}

void ShardPartitioner::build_shards(const DatasetSpec& spec, const PartitionConfig& config,
                                    Rng& rng) {
  const std::size_t total_shards = config.num_clients * config.shards_per_client;
  const std::size_t total_examples = total_shards * shard_size_;
  // Balanced pool: every class contributes ⌈total/num_classes⌉ examples; the
  // label-sorted sequence is then cut into equal shards.
  pool_per_class_ = (total_examples + spec.num_classes - 1) / spec.num_classes;

  std::vector<ExampleRef> pool;
  pool.reserve(pool_per_class_ * spec.num_classes);
  for (std::size_t label = 0; label < spec.num_classes; ++label) {
    for (std::size_t i = 0; i < pool_per_class_; ++i) {
      pool.push_back({static_cast<std::int32_t>(label), static_cast<std::uint32_t>(i)});
    }
  }
  // pool is label-sorted by construction. Cut into shards and deal randomly.
  std::vector<std::size_t> shard_order(total_shards);
  for (std::size_t s = 0; s < total_shards; ++s) shard_order[s] = s;
  Rng shard_rng = rng.split("shard-deal");
  shard_rng.shuffle(shard_order);

  for (std::size_t k = 0; k < config.num_clients; ++k) {
    ClientShards& cs = clients_[k];
    for (std::size_t j = 0; j < config.shards_per_client; ++j) {
      const std::size_t shard = shard_order[k * config.shards_per_client + j];
      const std::size_t begin = shard * shard_size_;
      for (std::size_t i = 0; i < shard_size_; ++i) {
        SUBFEDAVG_CHECK(begin + i < pool.size(), "shard overruns pool");
        cs.examples.push_back(pool[begin + i]);
      }
    }
  }
}

void ShardPartitioner::build_dirichlet(const DatasetSpec& spec,
                                       const PartitionConfig& config, Rng& rng) {
  SUBFEDAVG_CHECK(config.dirichlet_alpha > 0.0,
                  "dirichlet alpha " << config.dirichlet_alpha);
  // Same per-client example budget as the shard split.
  const std::size_t per_client = config.shards_per_client * shard_size_;

  // Per-class generator cursors: each class hands out fresh pool indices, so
  // no example is assigned twice across the federation.
  std::vector<std::uint32_t> cursor(spec.num_classes, 0);
  std::size_t max_index = 0;

  for (std::size_t k = 0; k < config.num_clients; ++k) {
    Rng client_rng = rng.split("dirichlet", k);
    // Mixture over classes ~ Dir(α·1).
    std::vector<double> weights(spec.num_classes);
    double total = 0.0;
    for (double& w : weights) {
      w = sample_gamma(client_rng, config.dirichlet_alpha);
      total += w;
    }
    SUBFEDAVG_CHECK(total > 0.0, "degenerate Dirichlet draw");

    // Largest-remainder apportionment of the client's budget.
    std::vector<std::size_t> counts(spec.num_classes, 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::size_t assigned = 0;
    for (std::size_t c = 0; c < spec.num_classes; ++c) {
      const double share = per_client * weights[c] / total;
      counts[c] = static_cast<std::size_t>(std::floor(share));
      assigned += counts[c];
      remainders.emplace_back(share - std::floor(share), c);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (std::size_t i = 0; assigned < per_client; ++i, ++assigned) {
      ++counts[remainders[i % remainders.size()].second];
    }

    ClientShards& cs = clients_[k];
    for (std::size_t c = 0; c < spec.num_classes; ++c) {
      for (std::size_t i = 0; i < counts[c]; ++i) {
        cs.examples.push_back({static_cast<std::int32_t>(c), cursor[c]});
        max_index = std::max<std::size_t>(max_index, cursor[c]);
        ++cursor[c];
      }
    }
  }
  pool_per_class_ = max_index + 1;
}

void ShardPartitioner::finalize_labels() {
  for (ClientShards& cs : clients_) {
    for (const ExampleRef& ref : cs.examples) {
      if (std::find(cs.labels_present.begin(), cs.labels_present.end(), ref.label) ==
          cs.labels_present.end()) {
        cs.labels_present.push_back(ref.label);
      }
    }
    std::sort(cs.labels_present.begin(), cs.labels_present.end());
  }
}

const ClientShards& ShardPartitioner::client(std::size_t k) const {
  SUBFEDAVG_CHECK(k < clients_.size(), "client " << k << " out of " << clients_.size());
  return clients_[k];
}

}  // namespace subfed
