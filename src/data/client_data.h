// Materialized per-client datasets: local train/validation split plus the
// label-filtered test set ("evaluation data for each client is all the test
// set for the training dataset labels they have", §4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "tensor/tensor.h"

namespace subfed {

/// One client's local data, materialized as batch-ready tensors.
struct ClientData {
  Tensor train_images;                  ///< [n_train, C, H, W]
  std::vector<std::int32_t> train_labels;
  Tensor val_images;                    ///< carved from local train (paper's D^val_k)
  std::vector<std::int32_t> val_labels;
  Tensor test_images;                   ///< global test pool filtered to client labels
  std::vector<std::int32_t> test_labels;
  std::vector<std::int32_t> labels_present;
};

struct FederatedDataConfig {
  PartitionConfig partition;
  std::size_t test_per_class = 40;   ///< test pool size per class
  double val_fraction = 0.1;         ///< of local train, min 1 example
  std::uint64_t seed = 1;
};

/// Builds the full federation's data: shard partition + per-client tensors.
class FederatedData {
 public:
  FederatedData(DatasetSpec spec, FederatedDataConfig config);

  const DatasetSpec& spec() const noexcept { return spec_; }
  std::size_t num_clients() const noexcept { return clients_.size(); }
  const ClientData& client(std::size_t k) const;
  const ShardPartitioner& partition() const noexcept { return partitioner_; }

 private:
  DatasetSpec spec_;
  FederatedDataConfig config_;
  SyntheticImageGenerator generator_;
  ShardPartitioner partitioner_;
  std::vector<ClientData> clients_;
};

}  // namespace subfed
