// Per-client datasets: local train/validation split plus the label-filtered
// test set ("evaluation data for each client is all the test set for the
// training dataset labels they have", §4.1).
//
// Two residency modes. Eager (client_cache == 0, the historical default)
// materializes every client up front and `client(k)` hands out references.
// Lazy (client_cache > 0) synthesizes a client's tensors from
// (seed, client_id) at first touch and keeps at most `client_cache` clients
// resident behind an LRU — population size stops being a memory cost, so a
// 10^6-client federation holds O(cache) tensors. Both modes produce
// bit-identical tensors for the same (spec, config): every image is a pure
// function of (seed, label, index).
//
// The per-label test pool is shared: clients reference immutable TestSlice
// objects (one per label) instead of each holding a private copy of the
// label-filtered global test set.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "tensor/tensor.h"

namespace subfed {

/// The global test pool for one label: [test_per_class, C, H, W], shared
/// immutably by every client whose shards contain that label.
struct TestSlice {
  std::int32_t label = 0;
  Tensor images;
};

/// One client's local data, materialized as batch-ready tensors.
struct ClientData {
  Tensor train_images;                  ///< [n_train, C, H, W]
  std::vector<std::int32_t> train_labels;
  Tensor val_images;                    ///< carved from local train (paper's D^val_k)
  std::vector<std::int32_t> val_labels;
  /// Per-label test slices in labels_present order — the client's test set is
  /// their virtual concatenation (label-major, ascending).
  std::vector<std::shared_ptr<const TestSlice>> test;
  std::vector<std::int32_t> labels_present;

  /// Total test examples across the slices.
  std::size_t test_size() const noexcept {
    std::size_t n = 0;
    for (const auto& slice : test) n += static_cast<std::size_t>(slice->images.shape()[0]);
    return n;
  }
};

/// Handle to one client's data. In eager mode it aliases the resident table;
/// in lazy mode it pins the client against LRU eviction while held.
using ClientDataPtr = std::shared_ptr<const ClientData>;

struct FederatedDataConfig {
  PartitionConfig partition;
  std::size_t test_per_class = 40;   ///< test pool size per class
  double val_fraction = 0.1;         ///< of local train, min 1 example
  std::uint64_t seed = 1;
  /// 0 → eager (all clients resident, the historical behavior).
  /// > 0 → lazy: at most this many clients materialized at once.
  std::size_t client_cache = 0;
};

/// The federation's data: shard partition + per-client tensors (eager or
/// lazily synthesized — see the file comment). Thread-safe: `client_ptr` may
/// be called concurrently from parallel_for evaluation paths.
class FederatedData {
 public:
  FederatedData(DatasetSpec spec, FederatedDataConfig config);

  const DatasetSpec& spec() const noexcept { return spec_; }
  std::size_t num_clients() const noexcept { return partitioner_.num_clients(); }
  bool lazy() const noexcept { return config_.client_cache > 0; }

  /// Eager mode only: a reference into the resident table.
  const ClientData& client(std::size_t k) const;
  /// Both modes. The returned handle keeps the client's tensors alive even if
  /// the LRU evicts the cache entry concurrently.
  ClientDataPtr client_ptr(std::size_t k) const;

  /// The shared per-label test pool (built on first request).
  std::shared_ptr<const TestSlice> test_slice(std::int32_t label) const;

  const ShardPartitioner& partition() const noexcept { return partitioner_; }

  /// Lazy-mode cache telemetry (0 in eager mode).
  std::uint64_t cache_hits() const noexcept { return hits_; }
  std::uint64_t cache_misses() const noexcept { return misses_; }
  std::uint64_t cache_evictions() const noexcept { return evictions_; }

 private:
  /// Builds one client from scratch — a pure function of (config, k).
  ClientData build_client(std::size_t k) const;

  DatasetSpec spec_;
  FederatedDataConfig config_;
  SyntheticImageGenerator generator_;
  ShardPartitioner partitioner_;

  std::vector<ClientData> clients_;  ///< eager mode only

  // Shared per-label test slices (both modes).
  mutable std::mutex test_mutex_;
  mutable std::unordered_map<std::int32_t, std::shared_ptr<const TestSlice>> test_slices_;

  // Lazy-mode LRU. A cell is inserted under the lock but materialized outside
  // it (call_once), so a slow build never serializes unrelated clients.
  struct Cell {
    std::once_flag once;
    ClientDataPtr data;
  };
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::size_t, std::shared_ptr<Cell>> cells_;
  mutable std::list<std::size_t> lru_;  ///< front = most recently used
  mutable std::unordered_map<std::size_t, std::list<std::size_t>::iterator> lru_it_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  mutable std::uint64_t evictions_ = 0;
};

}  // namespace subfed
