// Deterministic synthetic image datasets.
//
// Real MNIST / EMNIST / CIFAR files are not available offline, so this module
// generates class-conditional surrogates with the same tensor shapes and
// class counts. Each class owns a few smooth random "prototype" fields
// (low-frequency cosine mixtures plus Gaussian blobs); an example is a
// prototype under brightness jitter, a small integer translation, and pixel
// noise. This keeps the task learnable-but-not-trivial for LeNet-scale CNNs,
// which is all the paper's phenomena need: its non-IID effects come from
// *label* partitioning, not pixel statistics (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace subfed {

/// Identity of a benchmark dataset (shapes + class count + paper shard size).
struct DatasetSpec {
  std::string name;
  std::size_t num_classes = 10;
  std::size_t channels = 1;
  std::size_t hw = 28;              ///< square images
  std::size_t shard_size = 250;     ///< paper §4.1 (125 for CIFAR-100)
  /// Generator difficulty: pixel noise stddev. Higher → lower attainable
  /// accuracy; tuned so relative algorithm ordering matches the paper.
  float noise = 0.35f;

  static DatasetSpec mnist();     ///< 10 classes, 1×28×28
  static DatasetSpec emnist();    ///< 47 classes (balanced split), 1×28×28
  static DatasetSpec cifar10();   ///< 10 classes, 3×32×32
  static DatasetSpec cifar100();  ///< 100 classes, 3×32×32

  /// Look up by name ("mnist" | "emnist" | "cifar10" | "cifar100").
  static DatasetSpec by_name(const std::string& name);
};

/// Stateless, deterministic generator: image(class, index) depends only on
/// (seed, class, index), so any subset of the virtual dataset can be
/// materialized independently (per client) with no global storage.
class SyntheticImageGenerator {
 public:
  SyntheticImageGenerator(DatasetSpec spec, std::uint64_t seed);

  const DatasetSpec& spec() const noexcept { return spec_; }

  /// Deterministic train-pool image for (label, index).
  Tensor train_image(std::size_t label, std::size_t index) const;
  /// Deterministic test-pool image (independent stream from train).
  Tensor test_image(std::size_t label, std::size_t index) const;

  /// Per-class prototype (no jitter/noise) — used by tests to verify class
  /// separation.
  Tensor prototype(std::size_t label, std::size_t which) const;

  std::size_t prototypes_per_class() const noexcept { return kPrototypes; }

 private:
  static constexpr std::size_t kPrototypes = 3;

  Tensor render(std::size_t label, std::uint64_t stream_tag, std::size_t index) const;

  DatasetSpec spec_;
  std::uint64_t seed_;
};

}  // namespace subfed
