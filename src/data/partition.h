// The paper's pathological non-IID partition (§4.1):
// "we partition all the training dataset into shards of 250 examples (125
//  for CIFAR-100) and randomly assign two shards to each client."
//
// The training pool is sorted by label, cut into fixed-size shards, and each
// client receives `shards_per_client` random shards — so a client typically
// holds only 1–2 distinct labels. This is the standard McMahan-style
// pathological split and is what makes FedAvg underperform Standalone here.
#pragma once

#include <cstdint>
#include <vector>

#include "data/synthetic.h"
#include "util/rng.h"

namespace subfed {

/// A (label, pool index) reference into the virtual synthetic dataset.
struct ExampleRef {
  std::int32_t label = 0;
  std::uint32_t index = 0;  ///< index within that label's train pool
};

/// How client data is split. kShards is the paper's pathological split;
/// kDirichlet draws per-client class mixtures from Dir(α) — the standard
/// tunable-heterogeneity alternative (α → 0 approaches pathological, α → ∞
/// approaches IID).
enum class PartitionKind { kShards, kDirichlet };

struct PartitionConfig {
  std::size_t num_clients = 100;
  std::size_t shards_per_client = 2;
  /// Shard size; 0 → use the dataset's paper value (250 / 125).
  std::size_t shard_size = 0;
  PartitionKind kind = PartitionKind::kShards;
  /// Dirichlet concentration (kDirichlet only).
  double dirichlet_alpha = 0.5;
};

/// The shard assignment for one client.
struct ClientShards {
  std::vector<ExampleRef> examples;        ///< union of the client's shards
  std::vector<std::int32_t> labels_present; ///< distinct labels, ascending
};

/// Sorted-by-label shard partition over a synthetic pool with exactly enough
/// examples to fill num_clients × shards_per_client shards (balanced across
/// classes, remainder spread over the first classes). When
/// config.kind == kDirichlet, the same per-client example budget is instead
/// allocated by per-client class mixtures drawn from Dir(α).
///
/// Two residency modes. Eager (default) materializes every client's shard
/// list up front and `client(k)` hands out references — the historical
/// behavior. Lazy keeps only O(population / stride) bookkeeping (the shuffled
/// shard deal, or strided Dirichlet cursor snapshots) and `shards_for(k)`
/// synthesizes a client's assignment on demand, bit-identical to what the
/// eager build would have produced for the same (rng, config).
class ShardPartitioner {
 public:
  ShardPartitioner(const DatasetSpec& spec, PartitionConfig config, Rng rng,
                   bool lazy = false);

  std::size_t num_clients() const noexcept { return num_clients_; }
  /// Eager mode only: a reference into the materialized table.
  const ClientShards& client(std::size_t k) const;
  /// Both modes: the client's shard assignment by value.
  ClientShards shards_for(std::size_t k) const;
  /// Examples per label in the virtual train pool.
  std::size_t pool_per_class() const noexcept { return pool_per_class_; }
  std::size_t shard_size() const noexcept { return shard_size_; }
  bool lazy() const noexcept { return lazy_; }

 private:
  void build_shard_order(Rng& rng);
  void build_dirichlet(Rng& rng);
  /// One client's Dir(α) class histogram — a pure function of (rng, k).
  std::vector<std::size_t> dirichlet_counts(std::size_t k) const;
  ClientShards synthesize_shards(std::size_t k) const;
  ClientShards synthesize_dirichlet(std::size_t k) const;
  static void fill_labels(ClientShards& cs);

  PartitionKind kind_ = PartitionKind::kShards;
  bool lazy_ = false;
  std::size_t num_clients_ = 0;
  std::size_t shards_per_client_ = 0;
  std::size_t num_classes_ = 0;
  std::size_t per_client_ = 0;  ///< example budget per client (kDirichlet)
  double dirichlet_alpha_ = 0.5;
  Rng base_rng_;  ///< copy of the partition stream; split() never advances it

  std::vector<ClientShards> clients_;  ///< eager mode only
  /// kShards: the shuffled deal — client k holds shards
  /// shard_order_[k·spc .. k·spc+spc-1]. Kept in both modes (O(shards)).
  std::vector<std::uint32_t> shard_order_;
  /// kDirichlet lazy mode: per-class cursor snapshot every kCursorStride
  /// clients, so shards_for(k) replays at most a stride of histograms.
  static constexpr std::size_t kCursorStride = 64;
  std::vector<std::vector<std::uint32_t>> cursor_snapshots_;

  std::size_t pool_per_class_ = 0;
  std::size_t shard_size_ = 0;
};

}  // namespace subfed
