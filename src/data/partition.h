// The paper's pathological non-IID partition (§4.1):
// "we partition all the training dataset into shards of 250 examples (125
//  for CIFAR-100) and randomly assign two shards to each client."
//
// The training pool is sorted by label, cut into fixed-size shards, and each
// client receives `shards_per_client` random shards — so a client typically
// holds only 1–2 distinct labels. This is the standard McMahan-style
// pathological split and is what makes FedAvg underperform Standalone here.
#pragma once

#include <cstdint>
#include <vector>

#include "data/synthetic.h"
#include "util/rng.h"

namespace subfed {

/// A (label, pool index) reference into the virtual synthetic dataset.
struct ExampleRef {
  std::int32_t label = 0;
  std::uint32_t index = 0;  ///< index within that label's train pool
};

/// How client data is split. kShards is the paper's pathological split;
/// kDirichlet draws per-client class mixtures from Dir(α) — the standard
/// tunable-heterogeneity alternative (α → 0 approaches pathological, α → ∞
/// approaches IID).
enum class PartitionKind { kShards, kDirichlet };

struct PartitionConfig {
  std::size_t num_clients = 100;
  std::size_t shards_per_client = 2;
  /// Shard size; 0 → use the dataset's paper value (250 / 125).
  std::size_t shard_size = 0;
  PartitionKind kind = PartitionKind::kShards;
  /// Dirichlet concentration (kDirichlet only).
  double dirichlet_alpha = 0.5;
};

/// The shard assignment for one client.
struct ClientShards {
  std::vector<ExampleRef> examples;        ///< union of the client's shards
  std::vector<std::int32_t> labels_present; ///< distinct labels, ascending
};

/// Sorted-by-label shard partition over a synthetic pool with exactly enough
/// examples to fill num_clients × shards_per_client shards (balanced across
/// classes, remainder spread over the first classes). When
/// config.kind == kDirichlet, the same per-client example budget is instead
/// allocated by per-client class mixtures drawn from Dir(α).
class ShardPartitioner {
 public:
  ShardPartitioner(const DatasetSpec& spec, PartitionConfig config, Rng rng);

  std::size_t num_clients() const noexcept { return clients_.size(); }
  const ClientShards& client(std::size_t k) const;
  /// Examples per label in the virtual train pool.
  std::size_t pool_per_class() const noexcept { return pool_per_class_; }
  std::size_t shard_size() const noexcept { return shard_size_; }

 private:
  void build_shards(const DatasetSpec& spec, const PartitionConfig& config, Rng& rng);
  void build_dirichlet(const DatasetSpec& spec, const PartitionConfig& config, Rng& rng);
  void finalize_labels();

  std::vector<ClientShards> clients_;
  std::size_t pool_per_class_ = 0;
  std::size_t shard_size_ = 0;
};

}  // namespace subfed
