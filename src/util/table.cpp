#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace subfed {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  SUBFEDAVG_CHECK(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  SUBFEDAVG_CHECK(row.size() == header_.size(),
                  "row arity " << row.size() << " != header arity " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
    return os.str();
  };

  std::ostringstream os;
  os << render_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) os << render_row(row);
  return os.str();
}

std::string TablePrinter::to_csv() const {
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (const char c : field) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TablePrinter::to_markdown() const {
  auto escape = [](const std::string& field) {
    std::string out;
    for (const char c : field) {
      if (c == '|') out += "\\|";
      else out += c;
    }
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (const std::string& field : row) os << ' ' << escape(field) << " |";
    os << '\n';
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_float(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[unit]);
  return buf;
}

std::string format_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace subfed
