// Lightweight runtime contract checks used across the library.
//
// SUBFEDAVG_CHECK is active in all build types: the simulator is a research
// artifact, and silent invariant violations cost far more debugging time than
// the branch costs at runtime. Hot inner loops (GEMM, im2col) avoid per-element
// checks by validating shapes once at entry.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace subfed {

/// Thrown on any violated precondition or invariant detected by SUBFEDAVG_CHECK.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace subfed

/// Abort-with-exception precondition check. `msg` is streamed, so
/// `SUBFEDAVG_CHECK(a == b, "a=" << a << " b=" << b)` works.
#define SUBFEDAVG_CHECK(expr, msg)                                            \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream subfed_check_os_;                                    \
      subfed_check_os_ << msg; /* NOLINT */                                   \
      ::subfed::detail::check_failed(#expr, __FILE__, __LINE__,               \
                                     subfed_check_os_.str());                 \
    }                                                                         \
  } while (false)

/// Shorthand for checks with no extra message.
#define SUBFEDAVG_CHECK0(expr) SUBFEDAVG_CHECK(expr, "")
