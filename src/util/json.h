// Minimal JSON reader for the sweep aggregation layer.
//
// The repo writes run results as JSON (fl/experiment.h) and the sweep
// aggregator reads them back to build paper tables; this parser covers the
// full JSON grammar those files use (objects, arrays, strings with escapes,
// numbers, booleans, null) with no external dependency. Object member order
// is preserved so tables render in emission order.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace subfed {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup that throws CheckError when absent.
  const JsonValue& at(const std::string& key) const;

  /// The member's number/string when present and of that kind, else fallback.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws CheckError with the byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace subfed
