// Strict string ↔ number conversions shared by the experiment/config layer.
//
// Parsers reject trailing garbage and out-of-range values with a CheckError
// naming the offending key; the formatter emits the shortest representation
// that parses back to the exact same double, so serialized configs round-trip
// bit-for-bit.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/check.h"

namespace subfed {

inline double parse_double_strict(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  SUBFEDAVG_CHECK(end != value.c_str() && *end == '\0',
                  "'" << key << "': not a number: '" << value << "'");
  return parsed;
}

/// Full-range 64-bit parse (no round-trip through double).
inline std::uint64_t parse_uint64_strict(const std::string& key, const std::string& value) {
  std::uint64_t parsed = 0;
  const char* begin = value.c_str();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  SUBFEDAVG_CHECK(ec == std::errc() && ptr == end && !value.empty(),
                  "'" << key << "': not a non-negative integer: '" << value << "'");
  return parsed;
}

inline std::string format_double_shortest(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  SUBFEDAVG_CHECK(ec == std::errc(), "cannot format " << value);
  return std::string(buf, end);
}

}  // namespace subfed
