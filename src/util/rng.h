// Deterministic, splittable random number generation.
//
// Every stochastic decision in the simulator (dataset synthesis, shard
// assignment, weight init, batching, client sampling) derives from a single
// root seed through *named streams*. This makes runs reproducible bit-for-bit
// regardless of thread scheduling: each client / dataset / round gets its own
// independent stream keyed by (seed, name, index) instead of sharing one
// global engine.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace subfed {

/// splitmix64 step — used both as a standalone mixer and to seed xoshiro.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable 64-bit hash of a string (FNV-1a folded through splitmix).
std::uint64_t hash_name(std::string_view name) noexcept;

/// xoshiro256** engine. Small, fast, and good enough statistical quality for
/// simulation workloads (not cryptographic).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Derive an independent child stream. Children with distinct
  /// (name, index) pairs are statistically independent of the parent and of
  /// each other.
  [[nodiscard]] Rng split(std::string_view name, std::uint64_t index = 0) const noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal() noexcept;
  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept;
  /// Bernoulli draw.
  bool bernoulli(double p) noexcept;

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                    std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace subfed
