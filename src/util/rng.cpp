#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <unordered_map>

#include "util/check.h"

namespace subfed {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) noexcept {
  // FNV-1a over the bytes, then one splitmix round to spread low-entropy names.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& word : s_) word = splitmix64(seed);
  // xoshiro must not start in the all-zero state; splitmix of any seed cannot
  // produce four zero words, but guard anyway for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::string_view name, std::uint64_t index) const noexcept {
  // Mix the current state (not advanced) with the stream key. Copy state so a
  // parent can hand out many children without perturbing its own sequence.
  std::uint64_t key = hash_name(name) ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
  std::uint64_t seed = mix ^ key;
  return Rng(splitmix64(seed));
}

double Rng::uniform() noexcept {
  // 53 random bits into the mantissa: uniform over [0,1) with full precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x = (*this)();
  while (x >= limit) x = (*this)();
  return x % n;
}

double Rng::normal() noexcept {
  // Box–Muller; regenerate u1 until nonzero so log() is finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  SUBFEDAVG_CHECK(k <= n, "cannot sample " << k << " from " << n);
  // Partial Fisher–Yates over a *virtual* identity array: only displaced
  // entries are stored, so memory is O(k) instead of O(n) — sampling 100
  // participants from a 10^6-client population costs a 100-entry map, not an
  // 8 MB scratch vector per round. Draw sequence and results are identical
  // to the dense version.
  std::unordered_map<std::size_t, std::size_t> displaced;
  displaced.reserve(2 * k);
  const auto value_at = [&](std::size_t pos) {
    const auto it = displaced.find(pos);
    return it == displaced.end() ? pos : it->second;
  };
  std::vector<std::size_t> out(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    out[i] = value_at(j);
    displaced[j] = value_at(i);
  }
  return out;
}

}  // namespace subfed
