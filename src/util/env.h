// Environment-variable configuration knobs.
//
// Benches default to scaled-down configs that finish in CI time; the
// SUBFEDAVG_* env vars restore paper scale without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace subfed {

/// Integer env var with default; accepts decimal. Returns `fallback` when
/// unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback) noexcept;

/// Floating env var with default.
double env_double(const char* name, double fallback) noexcept;

/// String env var with default.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace subfed
