// Environment-variable configuration knobs.
//
// Every `SUBFEDAVG_*` variable the library or its benches read is declared in
// the registered-knob table in env.cpp. The typed accessors below refuse
// unregistered names (so a new knob cannot be added without registering it),
// and list_env_knobs() exposes the table so the README "Environment knobs"
// section is asserted against it in tests instead of drifting.
//
// Benches default to scaled-down configs that finish in CI time; the
// SUBFEDAVG_* env vars restore paper scale without recompiling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace subfed {

/// One registered environment knob. `fallback` is the human-readable default
/// exactly as the README renders it ("blocked", "hardware", "none", …).
/// `documented` is false only for test-only knobs kept out of the README.
struct EnvKnob {
  const char* name;
  const char* type;  ///< "int" | "double" | "string"
  const char* fallback;
  const char* doc;
  bool documented = true;
};

/// The full registered-knob table, in registration order.
const std::vector<EnvKnob>& list_env_knobs();

/// Integer env var with default; accepts decimal. Returns `fallback` when
/// unset or unparsable. Throws CheckError when `name` is not registered.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Floating env var with default. Throws CheckError when `name` is not
/// registered.
double env_double(const char* name, double fallback);

/// String env var with default. Throws CheckError when `name` is not
/// registered.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace subfed
