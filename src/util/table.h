// ASCII table and CSV rendering for bench output.
//
// Every bench prints the same rows the paper's tables/figures report;
// TablePrinter keeps that output aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace subfed {

/// Column-aligned ASCII table with a header row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column padding, `|` separators and a rule under the header.
  [[nodiscard]] std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Renders as a GitHub-flavored markdown table (`|` in cells is escaped).
  [[nodiscard]] std::string to_markdown() const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting helpers used by benches.
std::string format_float(double value, int digits = 2);
/// Formats a byte count as B / KB / MB / GB with two decimals (SI-1024).
std::string format_bytes(double bytes);
/// Formats `value` as a percentage string, e.g. 0.314 -> "31.40%".
std::string format_percent(double fraction, int digits = 2);

}  // namespace subfed
