#include "util/env.h"

#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace subfed {

namespace {

// The single source of truth for every environment knob. tests/test_device.cpp
// asserts the README "Environment knobs" table against this list (documented
// entries only), in both directions.
const std::vector<EnvKnob>& knob_table() {
  static const std::vector<EnvKnob> knobs = {
      {"SUBFEDAVG_LOG", "string", "`info`",
       "process log level: `error` | `warn` | `info` | `debug`"},
      {"SUBFEDAVG_TELEMETRY", "string", "`off`",
       "process telemetry level: `off` | `counters` | `trace` (spec field `telemetry=` "
       "overrides)"},
      {"SUBFEDAVG_BACKEND", "string", "`blocked`",
       "process-default compute device: `naive` | `blocked` | `sparse`"},
      {"SUBFEDAVG_COMPUTE", "string", "`fp32`",
       "process-default compute dtype: `fp32` | `fp16` (spec field `compute=` overrides)"},
      {"SUBFEDAVG_FUSED", "int", "`1`",
       "fuse conv\xE2\x86\x92""bn\xE2\x86\x92relu epilogues into eval-mode GEMMs (0 disables)"},
      {"SUBFEDAVG_MATH_THREADS", "int", "hardware",
       "row-panel thread cap for the blocked kernels (bit-identical at any value)"},
      {"SUBFEDAVG_SPARSE_DENSITY", "double", "`0.25`",
       "density below which the sparse device packs CSR"},
      {"SUBFEDAVG_THREADS", "int", "hardware", "global thread-pool size"},
      {"SUBFEDAVG_BENCH_CLIENTS", "int", "`20`", "bench population (paper: 100)"},
      {"SUBFEDAVG_BENCH_SHARD", "int", "`50`", "bench shard size (paper: 250/125)"},
      {"SUBFEDAVG_BENCH_ROUNDS", "int", "per-bench",
       "communication rounds (paper: 300\xE2\x80\x93""500)"},
      {"SUBFEDAVG_BENCH_SAMPLE", "double", "`0.3`", "client sampling rate (paper: 0.1)"},
      {"SUBFEDAVG_BENCH_EPOCHS", "int", "`5`", "local epochs"},
      {"SUBFEDAVG_BENCH_TPC", "int", "`16`", "test images per class"},
      {"SUBFEDAVG_BENCH_SEED", "int", "`1`", "master seed"},
      {"SUBFEDAVG_BENCH_SEEDS", "int", "`1`",
       "seeds per configuration (>1 reports mean\xC2\xB1std)"},
      {"SUBFEDAVG_BENCH_JOBS", "int", "hardware", "sweep worker threads inside benches"},
      {"SUBFEDAVG_BENCH_OUT", "string", "none", "per-run JSON directory"},
      {"SUBFEDAVG_BENCH_PRUNE_STEP", "double", "`0` (= spec default)",
       "pruning step override for the benches"},
      {"SUBFEDAVG_BENCH_LINK_SPREADS", "string", "`1,4,8`",
       "straggler-severity grid for `bench_async`"},
      {"SUBFEDAVG_BENCH_BUFFER_K", "int", "3/5 of sampled",
       "buffered close count for `bench_async`"},
      {"SUBFEDAVG_BENCH_COMM_JSON", "string", "none",
       "write `bench_comm_time`'s grid as `BENCH_comm.json`"},
      {"SUBFEDAVG_BENCH_ASYNC_JSON", "string", "none",
       "write `bench_async`'s grid as `BENCH_async.json`"},
      {"SUBFEDAVG_BENCH_SCALE_JSON", "string", "none",
       "write `bench_scale`'s cells as `BENCH_scale.json`"},
      {"SUBFEDAVG_BENCH_TELEMETRY_JSON", "string", "none",
       "write `bench_telemetry`'s result as `BENCH_telemetry.json`"},
      {"SUBFEDAVG_BENCH_TELEMETRY_REPS", "int", "`3`",
       "repetitions per mode in `bench_telemetry` (min is reported)"},
      {"SUBFEDAVG_SCALE_CLIENTS", "int", "`100000`", "`bench_scale`'s largest population"},
      {"SUBFEDAVG_SCALE_ROUNDS", "int", "`3`", "timed rounds per `bench_scale` cell"},
      {"SUBFEDAVG_SCALE_CACHE", "int", "`64`",
       "`client_cache` for `bench_scale`'s lazy cells"},
      {"SUBFEDAVG_SCALE_COHORT", "int", "`8`",
       "sampled clients per round in `bench_scale`"},
      // Test-only scratch name exercised by tests/test_util.cpp; never read by
      // library code and deliberately absent from the README.
      {"SUBFEDAVG_TEST_ENV", "string", "none", "test-only scratch knob",
       /*documented=*/false},
  };
  return knobs;
}

/// A raw getenv gated on registration: new knobs must be added to the table
/// above (and, unless test-only, to the README) before they can be read.
const char* knob_value(const char* name) {
  bool registered = false;
  for (const EnvKnob& knob : knob_table()) {
    if (std::strcmp(knob.name, name) == 0) {
      registered = true;
      break;
    }
  }
  SUBFEDAVG_CHECK(registered, "env var '" << name
                                          << "' is not in util/env.cpp's knob table");
  return std::getenv(name);
}

}  // namespace

const std::vector<EnvKnob>& list_env_knobs() { return knob_table(); }

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = knob_value(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* value = knob_value(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = knob_value(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

}  // namespace subfed
