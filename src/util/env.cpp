#include "util/env.h"

#include <cstdlib>

namespace subfed {

std::int64_t env_int(const char* name, std::int64_t fallback) noexcept {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_double(const char* name, double fallback) noexcept {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

}  // namespace subfed
