// Fixed-size thread pool with a deterministic parallel_for.
//
// The FL simulator trains the sampled clients of each round concurrently
// ("for each client k ∈ S_j in parallel", Algorithm 1/2). Determinism is
// preserved because each client draws from its own named RNG stream and
// results are written to per-index slots — thread scheduling cannot change
// any computed value, only wall-clock time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace subfed {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, n). Blocks until all iterations complete.
  /// Exceptions from tasks are captured and the first one is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized from SUBFEDAVG_THREADS (default: hardware).
  static ThreadPool& global();

  /// True on threads owned by any ThreadPool. Nested fan-out from inside a
  /// pool task would only queue work the saturated pool cannot pick up (the
  /// caller drains it all anyway), so nested users — e.g. the GEMM row-panel
  /// split — check this and stay sequential.
  static bool current_thread_in_pool() noexcept;

  /// Must be called first thing in a fork()ed child that will keep using the
  /// library (the subprocess transport does). A pool's worker threads do not
  /// exist in the child, so every parallel_for afterwards runs inline on the
  /// calling thread — same results (kernels are thread-count independent),
  /// and no lock inherited mid-operation is ever touched.
  static void enter_forked_child() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace subfed
