// Minimal leveled logger.
//
// The simulator logs round-level progress at Info and per-client detail at
// Debug. Level is controlled by SUBFEDAVG_LOG (error|warn|info|debug),
// default info. Output goes to stderr so bench stdout stays machine-readable.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace subfed {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current process-wide log level (read once from SUBFEDAVG_LOG).
LogLevel log_level() noexcept;

/// Override the level programmatically (tests silence Info noise).
void set_log_level(LogLevel level) noexcept;

namespace detail {

/// Serialized write of one formatted log line to stderr.
void log_line(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct NullMessage {
  template <typename T>
  NullMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail
}  // namespace subfed

#define SUBFEDAVG_LOG(level)                                           \
  if (::subfed::LogLevel::level > ::subfed::log_level()) {             \
  } else                                                               \
    ::subfed::detail::LogMessage(::subfed::LogLevel::level)
