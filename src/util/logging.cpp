#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/env.h"

namespace subfed {

namespace {

LogLevel parse_level(const std::string& name) {
  if (name == "error") return LogLevel::kError;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "debug") return LogLevel::kDebug;
  return LogLevel::kInfo;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{
      static_cast<int>(parse_level(env_string("SUBFEDAVG_LOG", "info")))};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) noexcept { level_storage().store(static_cast<int>(level)); }

namespace detail {

void log_line(LogLevel level, const std::string& message) {
  static std::mutex mu;
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch()) .count() % 100000000;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %8lld] %s\n", level_tag(level),
               static_cast<long long>(ms), message.c_str());
}

}  // namespace detail
}  // namespace subfed
