#include "util/json.h"

#include <cctype>
#include <cstdlib>

#include "util/check.h"

namespace subfed {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue document() {
    JsonValue value = parse_value();
    skip_ws();
    SUBFEDAVG_CHECK(pos_ == text_.size(), "trailing JSON content at offset " << pos_);
    return value;
  }

 private:
  char peek() {
    skip_ws();
    SUBFEDAVG_CHECK(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    SUBFEDAVG_CHECK(peek() == c, "expected '" << c << "' at JSON offset " << pos_
                                              << ", got '" << text_[pos_] << "'");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      SUBFEDAVG_CHECK(pos_ < text_.size() && text_[pos_] == *p,
                      "bad JSON literal at offset " << pos_);
      ++pos_;
    }
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        return value;
      case 't':
        literal("true");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        literal("false");
        value.kind = JsonValue::Kind::kBool;
        return value;
      case 'n':
        literal("null");
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    expect('{');
    if (consume('}')) return value;
    do {
      std::string key = parse_string();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
    } while (consume(','));
    expect('}');
    return value;
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    expect('[');
    if (consume(']')) return value;
    do {
      value.array.push_back(parse_value());
    } while (consume(','));
    expect(']');
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      SUBFEDAVG_CHECK(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      SUBFEDAVG_CHECK(pos_ < text_.size(), "unterminated JSON escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          SUBFEDAVG_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            SUBFEDAVG_CHECK(std::isxdigit(static_cast<unsigned char>(h)),
                            "bad \\u escape at offset " << pos_);
            code = code * 16 +
                   static_cast<unsigned>(h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          // The writer only emits \u00xx control escapes; encode as UTF-8 for
          // anything else so round-trips stay lossless enough for labels.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          SUBFEDAVG_CHECK(false, "unknown JSON escape '\\" << esc << "'");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double parsed = std::strtod(begin, &end);
    SUBFEDAVG_CHECK(end != begin, "expected a JSON value at offset " << pos_);
    pos_ += static_cast<std::size_t>(end - begin);
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = parsed;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* found = find(key);
  SUBFEDAVG_CHECK(found != nullptr, "JSON object has no member '" << key << "'");
  return *found;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* found = find(key);
  return (found != nullptr && found->is_number()) ? found->number : fallback;
}

std::string JsonValue::string_or(const std::string& key, const std::string& fallback) const {
  const JsonValue* found = find(key);
  return (found != nullptr && found->is_string()) ? found->string : fallback;
}

JsonValue parse_json(const std::string& text) { return Parser(text).document(); }

}  // namespace subfed
