#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "util/env.h"

namespace subfed {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

namespace {
thread_local bool t_pool_worker = false;
std::atomic<bool> g_forked_child{false};
}  // namespace

bool ThreadPool::current_thread_in_pool() noexcept { return t_pool_worker; }

void ThreadPool::enter_forked_child() noexcept {
  g_forked_child.store(true, std::memory_order_relaxed);
}

void ThreadPool::worker_loop() {
  t_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

// Shared between the caller and every worker task. Heap-allocated and
// reference-counted: a worker can still be draining the index counter after
// the caller has already observed completion and returned, so this state must
// outlive the parallel_for call frame.
struct ParallelState {
  explicit ParallelState(std::size_t total, std::function<void(std::size_t)> body)
      : n(total), fn(std::move(body)) {}

  const std::size_t n;
  const std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  std::mutex error_mu;
  std::exception_ptr first_error;

  std::mutex done_mu;
  std::condition_variable done_cv;

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || g_forked_child.load(std::memory_order_relaxed)) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ParallelState>(n, fn);

  // One queued task per worker; each drains indices from the shared counter.
  // Tasks hold a shared_ptr so the state survives stragglers.
  const std::size_t tasks = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t t = 0; t < tasks; ++t) {
      tasks_.push([state] { state->drain(); });
    }
  }
  cv_.notify_all();

  // The calling thread participates too, so parallel_for called from inside
  // a pool task cannot deadlock even when all workers are busy.
  state->drain();

  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) >= n;
    });
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(static_cast<std::size_t>(
      env_int("SUBFEDAVG_THREADS", 0)));
  return pool;
}

}  // namespace subfed
