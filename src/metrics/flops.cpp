#include "metrics/flops.h"

#include "nn/conv2d.h"
#include "util/check.h"

namespace subfed {

namespace {

std::size_t conv_layer_flops(const Conv2d& conv, std::size_t kept_in, std::size_t kept_out,
                             std::size_t out_h, std::size_t out_w) {
  // 2 FLOPs per MAC; cost = out_spatial × kept_out × kept_in × k².
  return 2 * out_h * out_w * kept_out * kept_in * conv.kernel() * conv.kernel();
}

}  // namespace

std::size_t dense_conv_flops(const Model& model) {
  const ModelTopology& topo = model.topology();
  SUBFEDAVG_CHECK(topo.conv_blocks.size() == topo.conv_out_hw.size(),
                  "topology conv_out_hw not filled");
  std::size_t total = 0;
  for (std::size_t b = 0; b < topo.conv_blocks.size(); ++b) {
    const Conv2d& conv = *topo.conv_blocks[b].conv;
    const auto [oh, ow] = topo.conv_out_hw[b];
    total += conv_layer_flops(conv, conv.in_channels(), conv.out_channels(), oh, ow);
  }
  return total;
}

std::size_t pruned_conv_flops(const Model& model, const ChannelMask& mask) {
  const ModelTopology& topo = model.topology();
  SUBFEDAVG_CHECK(mask.num_blocks() == topo.conv_blocks.size(), "mask/model mismatch");
  std::size_t total = 0;
  std::size_t prev_kept = topo.conv_blocks.empty()
                              ? 0
                              : topo.conv_blocks.front().conv->in_channels();
  for (std::size_t b = 0; b < topo.conv_blocks.size(); ++b) {
    const Conv2d& conv = *topo.conv_blocks[b].conv;
    std::size_t kept_out = 0;
    for (const std::uint8_t k : mask.block(b)) kept_out += (k != 0);
    const auto [oh, ow] = topo.conv_out_hw[b];
    total += conv_layer_flops(conv, prev_kept, kept_out, oh, ow);
    prev_kept = kept_out;
  }
  return total;
}

std::size_t dense_parameter_count(const Model& model) { return model.num_parameters(); }

std::size_t kept_parameter_count(Model& model, const ModelMask& mask) {
  std::size_t kept = 0;
  for (Parameter* p : model.parameters()) {
    if (const Tensor* m = mask.find(p->name)) {
      for (std::size_t i = 0; i < m->numel(); ++i) kept += ((*m)[i] != 0.0f);
    } else {
      kept += p->value.numel();
    }
  }
  return kept;
}

ReductionReport reduction_report(Model& model, const ChannelMask* channel_mask,
                                 const ModelMask* weight_mask) {
  ReductionReport report;

  const double dense_flops = static_cast<double>(dense_conv_flops(model));
  double pruned_flops = dense_flops;
  if (channel_mask != nullptr) {
    pruned_flops = static_cast<double>(pruned_conv_flops(model, *channel_mask));
  }
  report.flop_reduction = dense_flops > 0 ? 1.0 - pruned_flops / dense_flops : 0.0;
  report.flop_speedup = pruned_flops > 0 ? dense_flops / pruned_flops : 1.0;

  ModelMask combined;
  if (channel_mask != nullptr) combined = channel_mask->to_model_mask(model);
  if (weight_mask != nullptr) combined = combined.intersected(*weight_mask);
  const double dense_params = static_cast<double>(dense_parameter_count(model));
  const double kept = static_cast<double>(kept_parameter_count(model, combined));
  report.param_reduction = dense_params > 0 ? 1.0 - kept / dense_params : 0.0;
  return report;
}

}  // namespace subfed
