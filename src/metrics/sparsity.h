// Per-layer sparsity breakdown of a masked model.
//
// Aggregate pruned fractions hide where a subnetwork lives; the per-layer
// view shows e.g. that hybrid pruning concentrates in FC layers while the
// channel mask thins the convs — the structure behind Table 2's numbers.
#pragma once

#include <string>
#include <vector>

#include "nn/model.h"
#include "pruning/mask.h"

namespace subfed {

struct LayerSparsity {
  std::string name;        ///< parameter name, e.g. "fc1.weight"
  std::size_t total = 0;   ///< scalar count
  std::size_t kept = 0;    ///< mask==1 count (== total when uncovered)
  bool covered = false;    ///< whether the mask covers this parameter

  double pruned_fraction() const noexcept {
    return total == 0 ? 0.0 : 1.0 - static_cast<double>(kept) / static_cast<double>(total);
  }
};

/// One row per learnable parameter of `model`, in registration order.
std::vector<LayerSparsity> layer_sparsity(Model& model, const ModelMask& mask);

/// Renders the breakdown as an aligned table (name, kept/total, pruned %).
std::string sparsity_report(Model& model, const ModelMask& mask);

}  // namespace subfed
