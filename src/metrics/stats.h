// Small summary-statistics helpers for experiment reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace subfed {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Mean / sample-stddev / min / max of a sequence (zeros when empty).
Summary summarize(std::span<const double> values);

/// Per-round series of a scalar metric (e.g. average client accuracy).
class Series {
 public:
  void push(double value) { values_.push_back(value); }
  std::size_t size() const noexcept { return values_.size(); }
  double back() const;
  double at(std::size_t i) const;
  std::span<const double> values() const noexcept { return values_; }

  /// First index where the series reaches `threshold` (rounds-to-target in
  /// Fig. 3); returns size() when never reached.
  std::size_t first_reaching(double threshold) const noexcept;

 private:
  std::vector<double> values_;
};

}  // namespace subfed
