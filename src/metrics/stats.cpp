#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace subfed {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = s.max = values[0];
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double acc = 0.0;
    for (const double v : values) acc += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(values.size() - 1));
  }
  return s;
}

double Series::back() const {
  SUBFEDAVG_CHECK(!values_.empty(), "empty series");
  return values_.back();
}

double Series::at(std::size_t i) const {
  SUBFEDAVG_CHECK(i < values_.size(), "series index " << i);
  return values_[i];
}

std::size_t Series::first_reaching(double threshold) const noexcept {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] >= threshold) return i;
  }
  return values_.size();
}

}  // namespace subfed
