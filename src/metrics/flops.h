// FLOP and parameter accounting.
//
// Following the paper (§4.2.3) and Liu et al. 2017, speedup analysis counts
// convolution operations only — BN/pooling/activation costs are ignored, and
// FC layers are reported separately via parameter counts. A pruned channel
// removes its filter's output plane AND its contribution to downstream
// layers, which is what produces the paper's 2.4× conv-FLOP cut at ~50%
// channels pruned.
#pragma once

#include <cstddef>

#include "nn/model.h"
#include "pruning/mask.h"
#include "pruning/structured.h"

namespace subfed {

/// Multiply-accumulates ×2 of all conv layers at the model's nominal input
/// resolution, with every channel kept.
std::size_t dense_conv_flops(const Model& model);

/// Conv FLOPs with the channel mask applied: layer cost scales with kept
/// output channels × kept input channels.
std::size_t pruned_conv_flops(const Model& model, const ChannelMask& mask);

/// Total learnable parameters (dense).
std::size_t dense_parameter_count(const Model& model);

/// Parameters kept under `mask` (parameters not covered by the mask count as
/// kept). Combine structured+unstructured masks with intersected() first.
std::size_t kept_parameter_count(Model& model, const ModelMask& mask);

/// Convenience ratios for Table 2 rows.
struct ReductionReport {
  double flop_reduction = 0.0;    ///< 1 − pruned/dense conv FLOPs
  double param_reduction = 0.0;   ///< 1 − kept/dense parameters
  double flop_speedup = 1.0;      ///< dense/pruned conv FLOPs
};

ReductionReport reduction_report(Model& model, const ChannelMask* channel_mask,
                                 const ModelMask* weight_mask);

}  // namespace subfed
