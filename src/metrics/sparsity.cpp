#include "metrics/sparsity.h"

#include "util/table.h"

namespace subfed {

std::vector<LayerSparsity> layer_sparsity(Model& model, const ModelMask& mask) {
  std::vector<LayerSparsity> rows;
  for (Parameter* p : model.parameters()) {
    LayerSparsity row;
    row.name = p->name;
    row.total = p->value.numel();
    if (const Tensor* m = mask.find(p->name)) {
      row.covered = true;
      for (std::size_t i = 0; i < m->numel(); ++i) row.kept += ((*m)[i] != 0.0f);
    } else {
      row.kept = row.total;
    }
    rows.push_back(row);
  }
  return rows;
}

std::string sparsity_report(Model& model, const ModelMask& mask) {
  TablePrinter table({"parameter", "kept/total", "pruned %", "covered"});
  for (const LayerSparsity& row : layer_sparsity(model, mask)) {
    table.add_row({row.name, std::to_string(row.kept) + "/" + std::to_string(row.total),
                   format_percent(row.pruned_fraction(), 1), row.covered ? "yes" : "no"});
  }
  return table.to_string();
}

}  // namespace subfed
