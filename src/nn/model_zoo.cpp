#include "nn/model_zoo.h"

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {

namespace {

// Spatial size after a valid (pad-0, stride-1) KxK conv followed by 2x2 pool.
std::size_t conv_pool_out(std::size_t in, std::size_t kernel) {
  return (in - kernel + 1) / 2;
}

Model build_cnn5(const ModelSpec& spec) {
  Model m;
  auto* conv1 = m.add(std::make_unique<Conv2d>("conv1", spec.in_channels, 10, 5));
  auto* bn1 = m.add(std::make_unique<BatchNorm2d>("bn1", 10));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>(2));
  auto* conv2 = m.add(std::make_unique<Conv2d>("conv2", 10, 20, 5));
  auto* bn2 = m.add(std::make_unique<BatchNorm2d>("bn2", 20));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>(2));
  m.add(std::make_unique<Flatten>());

  const std::size_t s1 = conv_pool_out(spec.input_hw, 5);   // 28 -> 12
  const std::size_t s2 = conv_pool_out(s1, 5);              // 12 -> 4
  const std::size_t flat = 20 * s2 * s2;
  auto* fc1 = m.add(std::make_unique<Linear>("fc1", flat, 50));
  m.add(std::make_unique<ReLU>());
  auto* fc2 = m.add(std::make_unique<Linear>("fc2", 50, spec.num_classes));

  auto& topo = m.topology();
  topo.conv_blocks.push_back({conv1, bn1, conv2, nullptr, 0});
  topo.conv_blocks.push_back({conv2, bn2, nullptr, fc1, s2 * s2});
  topo.fc_layers = {fc1, fc2};
  const std::size_t c1 = spec.input_hw - 5 + 1;
  topo.conv_out_hw = {{c1, c1}, {s1 - 5 + 1, s1 - 5 + 1}};
  return m;
}

Model build_lenet5(const ModelSpec& spec) {
  Model m;
  auto* conv1 = m.add(std::make_unique<Conv2d>("conv1", spec.in_channels, 6, 5));
  auto* bn1 = m.add(std::make_unique<BatchNorm2d>("bn1", 6));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>(2));
  auto* conv2 = m.add(std::make_unique<Conv2d>("conv2", 6, 16, 5));
  auto* bn2 = m.add(std::make_unique<BatchNorm2d>("bn2", 16));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>(2));
  m.add(std::make_unique<Flatten>());

  const std::size_t s1 = conv_pool_out(spec.input_hw, 5);   // 32 -> 14
  const std::size_t s2 = conv_pool_out(s1, 5);              // 14 -> 5
  const std::size_t flat = 16 * s2 * s2;                    // 400
  auto* fc1 = m.add(std::make_unique<Linear>("fc1", flat, 120));
  m.add(std::make_unique<ReLU>());
  auto* fc2 = m.add(std::make_unique<Linear>("fc2", 120, 84));
  m.add(std::make_unique<ReLU>());
  auto* fc3 = m.add(std::make_unique<Linear>("fc3", 84, spec.num_classes));

  auto& topo = m.topology();
  topo.conv_blocks.push_back({conv1, bn1, conv2, nullptr, 0});
  topo.conv_blocks.push_back({conv2, bn2, nullptr, fc1, s2 * s2});
  topo.fc_layers = {fc1, fc2, fc3};
  const std::size_t c1 = spec.input_hw - 5 + 1;
  topo.conv_out_hw = {{c1, c1}, {s1 - 5 + 1, s1 - 5 + 1}};
  return m;
}

Model build_cnn_deep(const ModelSpec& spec) {
  // VGG-style: [conv16, conv16, pool] [conv32, conv32, pool] fc64 fc-head.
  // All 3×3 pad-1 convs keep spatial size, so 32 → 16 → 8 through the pools.
  Model m;
  auto* conv1 = m.add(std::make_unique<Conv2d>("conv1", spec.in_channels, 16, 3, 1, 1));
  auto* bn1 = m.add(std::make_unique<BatchNorm2d>("bn1", 16));
  m.add(std::make_unique<ReLU>());
  auto* conv2 = m.add(std::make_unique<Conv2d>("conv2", 16, 16, 3, 1, 1));
  auto* bn2 = m.add(std::make_unique<BatchNorm2d>("bn2", 16));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>(2));
  auto* conv3 = m.add(std::make_unique<Conv2d>("conv3", 16, 32, 3, 1, 1));
  auto* bn3 = m.add(std::make_unique<BatchNorm2d>("bn3", 32));
  m.add(std::make_unique<ReLU>());
  auto* conv4 = m.add(std::make_unique<Conv2d>("conv4", 32, 32, 3, 1, 1));
  auto* bn4 = m.add(std::make_unique<BatchNorm2d>("bn4", 32));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>(2));
  m.add(std::make_unique<Flatten>());

  const std::size_t s = spec.input_hw / 4;  // two 2x2 pools
  const std::size_t flat = 32 * s * s;
  auto* fc1 = m.add(std::make_unique<Linear>("fc1", flat, 64));
  m.add(std::make_unique<ReLU>());
  auto* fc2 = m.add(std::make_unique<Linear>("fc2", 64, spec.num_classes));

  auto& topo = m.topology();
  topo.conv_blocks.push_back({conv1, bn1, conv2, nullptr, 0});
  topo.conv_blocks.push_back({conv2, bn2, conv3, nullptr, 0});
  topo.conv_blocks.push_back({conv3, bn3, conv4, nullptr, 0});
  topo.conv_blocks.push_back({conv4, bn4, nullptr, fc1, s * s});
  topo.fc_layers = {fc1, fc2};
  const std::size_t hw = spec.input_hw, half = hw / 2;
  topo.conv_out_hw = {{hw, hw}, {hw, hw}, {half, half}, {half, half}};
  return m;
}

}  // namespace

Model ModelSpec::build() const {
  Model m;
  switch (arch) {
    case Arch::kCnn5: m = build_cnn5(*this); break;
    case Arch::kLeNet5: m = build_lenet5(*this); break;
    case Arch::kCnnDeep: m = build_cnn_deep(*this); break;
    default: SUBFEDAVG_CHECK(false, "unknown arch");
  }
  if (backend != "auto" || compute != "auto") {
    const std::string name = backend == "auto" ? default_device().backend_name() : backend;
    const ComputeDType dtype =
        compute == "auto" ? default_device().compute() : parse_compute_dtype(compute);
    m.set_device(&get_device(name, dtype));
  }
  return m;
}

Model ModelSpec::build_init(Rng& rng) const {
  Model m = build();
  for (std::size_t i = 0; i < m.num_layers(); ++i) {
    Layer& layer = m.layer(i);
    if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      Rng layer_rng = rng.split("init.conv", i);
      conv->init(layer_rng);
    } else if (auto* fc = dynamic_cast<Linear*>(&layer)) {
      Rng layer_rng = rng.split("init.fc", i);
      fc->init(layer_rng);
    }
  }
  return m;
}

ModelSpec ModelSpec::cnn5(std::size_t num_classes) {
  return ModelSpec{Arch::kCnn5, 1, 28, num_classes};
}

ModelSpec ModelSpec::lenet5(std::size_t num_classes) {
  return ModelSpec{Arch::kLeNet5, 3, 32, num_classes};
}

ModelSpec ModelSpec::cnn_deep(std::size_t num_classes) {
  return ModelSpec{Arch::kCnnDeep, 3, 32, num_classes};
}

}  // namespace subfed
