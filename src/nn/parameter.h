// Named parameters and flat model state.
//
// Parameters carry their gradient and a `prunable` flag: unstructured pruning
// acts only on weight matrices/filters (not biases or BatchNorm affine terms),
// matching the paper's reference implementation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace subfed {

/// Process-unique parameter id (never 0). Device plan caches key cached
/// sparse-vs-dense decisions on (uid, mask_epoch) instead of data pointers,
/// which a freed-and-reallocated tensor could alias.
inline std::uint64_t next_parameter_uid() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// A learnable tensor with its gradient buffer.
struct Parameter {
  std::string name;   ///< unique within a model, e.g. "conv1.weight"
  Tensor value;
  Tensor grad;        ///< same shape as value; zeroed by the optimizer step
  bool prunable = false;  ///< participates in unstructured magnitude pruning
  /// Identity for Device plan caches. `uid` is unique per live Parameter;
  /// `mask_epoch` advances whenever the value's sparsity pattern may have
  /// changed (pruning-mask application, state loads), invalidating cached
  /// density decisions without any per-call rescanning.
  std::uint64_t uid = next_parameter_uid();
  std::uint64_t mask_epoch = 0;

  Parameter() = default;
  Parameter(std::string n, Tensor v, bool is_prunable)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()), prunable(is_prunable) {}

  /// Copies take a fresh uid (a distinct tensor, even if bitwise equal);
  /// assignment keeps this parameter's identity but bumps the epoch, since
  /// the incoming values may carry a different sparsity pattern.
  Parameter(const Parameter& other)
      : name(other.name), value(other.value), grad(other.grad), prunable(other.prunable) {}
  Parameter& operator=(const Parameter& other) {
    if (this != &other) {
      name = other.name;
      value = other.value;
      grad = other.grad;
      prunable = other.prunable;
      ++mask_epoch;
    }
    return *this;
  }
  Parameter(Parameter&&) = default;
  Parameter& operator=(Parameter&&) = default;
};

/// Ordered (name → tensor) snapshot of a model: learnable parameters plus
/// persistent buffers (BatchNorm running stats). Order is the model's
/// registration order, which is identical across clients sharing an
/// architecture — aggregation iterates positionally.
class StateDict {
 public:
  void add(std::string name, Tensor value) {
    entries_.emplace_back(std::move(name), std::move(value));
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  const std::pair<std::string, Tensor>& operator[](std::size_t i) const {
    return entries_[i];
  }
  std::pair<std::string, Tensor>& operator[](std::size_t i) { return entries_[i]; }

  /// Linear search by name; returns nullptr when absent.
  const Tensor* find(const std::string& name) const {
    for (const auto& [n, t] : entries_) {
      if (n == name) return &t;
    }
    return nullptr;
  }
  Tensor* find(const std::string& name) {
    for (auto& [n, t] : entries_) {
      if (n == name) return &t;
    }
    return nullptr;
  }

  /// Total scalar count across all entries.
  std::size_t numel() const noexcept {
    std::size_t n = 0;
    for (const auto& [name, t] : entries_) n += t.numel();
    return n;
  }

  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Tensor>> entries_;
};

}  // namespace subfed
