// Named parameters and flat model state.
//
// Parameters carry their gradient and a `prunable` flag: unstructured pruning
// acts only on weight matrices/filters (not biases or BatchNorm affine terms),
// matching the paper's reference implementation.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace subfed {

/// A learnable tensor with its gradient buffer.
struct Parameter {
  std::string name;   ///< unique within a model, e.g. "conv1.weight"
  Tensor value;
  Tensor grad;        ///< same shape as value; zeroed by the optimizer step
  bool prunable = false;  ///< participates in unstructured magnitude pruning

  Parameter() = default;
  Parameter(std::string n, Tensor v, bool is_prunable)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()), prunable(is_prunable) {}
};

/// Ordered (name → tensor) snapshot of a model: learnable parameters plus
/// persistent buffers (BatchNorm running stats). Order is the model's
/// registration order, which is identical across clients sharing an
/// architecture — aggregation iterates positionally.
class StateDict {
 public:
  void add(std::string name, Tensor value) {
    entries_.emplace_back(std::move(name), std::move(value));
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  const std::pair<std::string, Tensor>& operator[](std::size_t i) const {
    return entries_[i];
  }
  std::pair<std::string, Tensor>& operator[](std::size_t i) { return entries_[i]; }

  /// Linear search by name; returns nullptr when absent.
  const Tensor* find(const std::string& name) const {
    for (const auto& [n, t] : entries_) {
      if (n == name) return &t;
    }
    return nullptr;
  }
  Tensor* find(const std::string& name) {
    for (auto& [n, t] : entries_) {
      if (n == name) return &t;
    }
    return nullptr;
  }

  /// Total scalar count across all entries.
  std::size_t numel() const noexcept {
    std::size_t n = 0;
    for (const auto& [name, t] : entries_) n += t.numel();
    return n;
  }

  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Tensor>> entries_;
};

}  // namespace subfed
