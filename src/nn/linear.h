// Fully-connected layer: y = x·Wᵀ + b.
#pragma once

#include "nn/layer.h"

namespace subfed {

class Rng;

class Linear final : public Layer {
 public:
  /// Weight shape [out_features, in_features]; bias [out_features].
  Linear(std::string name, std::size_t in_features, std::size_t out_features);

  /// Kaiming-normal weight init, zero bias.
  void init(Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string kind() const override { return "Linear"; }

  std::size_t in_features() const noexcept { return in_features_; }
  std::size_t out_features() const noexcept { return out_features_; }
  Parameter& weight() noexcept { return weight_; }
  Parameter& bias() noexcept { return bias_; }

 private:
  std::size_t in_features_, out_features_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;  // [N, in]
};

}  // namespace subfed
