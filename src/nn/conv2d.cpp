#include "nn/conv2d.h"

#include <cmath>
#include <cstring>

#include "tensor/device.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {

Conv2d::Conv2d(std::string name, std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(name + ".weight", Tensor({out_channels, in_channels, kernel, kernel}),
              /*is_prunable=*/true),
      bias_(name + ".bias", Tensor({out_channels}), /*is_prunable=*/false) {
  SUBFEDAVG_CHECK(kernel > 0 && stride > 0, "bad conv geometry");
}

void Conv2d::init(Rng& rng) {
  const double fan_in = static_cast<double>(in_channels_ * kernel_ * kernel_);
  weight_.value.fill_normal(rng, 0.0f, static_cast<float>(std::sqrt(2.0 / fan_in)));
  bias_.value.zero();
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  return forward_impl(input, train, nullptr);
}

Tensor Conv2d::forward_fused(const Tensor& input, GemmEpilogue epilogue) {
  epilogue.bias = bias_.value.data();
  return forward_impl(input, /*train=*/false, &epilogue);
}

Tensor Conv2d::forward_impl(const Tensor& input, bool train, const GemmEpilogue* epilogue) {
  SUBFEDAVG_CHECK(input.shape().rank() == 4, "conv input must be NCHW, got "
                                                 << input.shape().to_string());
  const std::size_t batch = input.shape()[0];
  SUBFEDAVG_CHECK(input.shape()[1] == in_channels_,
                  "conv in_channels " << in_channels_ << " vs input " << input.shape()[1]);
  const ConvGeometry g{in_channels_, input.shape()[2], input.shape()[3],
                       kernel_,      stride_,          pad_};
  const std::size_t oh = g.out_h(), ow = g.out_w(), spatial = oh * ow;

  // The cached input exists only for backward; inference skips the deep copy
  // and clears any stale cache so backward-after-eval fails loudly.
  cached_input_ = train ? input : Tensor();
  Tensor output({batch, out_channels_, oh, ow});

  const Device& dev = device();
  const std::size_t cols = batch * spatial;  // one column per output pixel of the batch
  const std::size_t in_plane = in_channels_ * g.in_h * g.in_w;
  if (columns_.size() < g.patch_size() * cols) {
    columns_.reset();
    columns_ = dev.lease(g.patch_size() * cols);
  }
  WorkspaceLease gemm_out = dev.lease(out_channels_ * cols);

  // Unroll every sample into one wide patch matrix, then convolve the whole
  // batch with a single GEMM: out[oc, n·spatial] = W[oc, ckk] · cols[ckk, n·spatial].
  // With an epilogue, bias/bn/activation are applied per element at GEMM
  // store-back (row = output channel), so the regroup below is a pure copy.
  for (std::size_t n = 0; n < batch; ++n) {
    dev.im2col(input.data() + n * in_plane, g, columns_.data(), cols, n * spatial);
  }
  dev.gemm(GemmOp::kNN, weight_.value.data(), columns_.data(), gemm_out.data(),
           out_channels_, g.patch_size(), cols, /*accumulate=*/false, WeightSide::kA,
           weight_.uid, weight_.mask_epoch, epilogue);

  // Regroup [oc, N·spatial] → [N, oc, spatial] and (unfused only) add the bias.
  for (std::size_t n = 0; n < batch; ++n) {
    float* out_n = output.data() + n * out_channels_ * spatial;
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float* src = gemm_out.data() + oc * cols + n * spatial;
      float* dst = out_n + oc * spatial;
      const float b = epilogue == nullptr ? bias_.value[oc] : 0.0f;
      if (b == 0.0f) {
        std::memcpy(dst, src, spatial * sizeof(float));
      } else {
        for (std::size_t s = 0; s < spatial; ++s) dst[s] = src[s] + b;
      }
    }
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  SUBFEDAVG_CHECK(!cached_input_.empty(), "backward before forward");
  const Tensor& input = cached_input_;
  const std::size_t batch = input.shape()[0];
  const ConvGeometry g{in_channels_, input.shape()[2], input.shape()[3],
                       kernel_,      stride_,          pad_};
  const std::size_t oh = g.out_h(), ow = g.out_w(), spatial = oh * ow;
  SUBFEDAVG_CHECK(grad_output.shape() == Shape({batch, out_channels_, oh, ow}),
                  "grad_output shape " << grad_output.shape().to_string());

  Tensor grad_input(input.shape());
  const Device& dev = device();
  const std::size_t cols = batch * spatial;
  const std::size_t in_plane = in_channels_ * g.in_h * g.in_w;
  WorkspaceLease grad_columns = dev.lease(g.patch_size() * cols);
  WorkspaceLease grad_packed = dev.lease(out_channels_ * cols);

  // Regroup dY [N, oc, spatial] → [oc, N·spatial] so both weight and input
  // gradients are single whole-batch GEMMs. columns_ still holds this
  // batch's patches: only the train-mode forward that set cached_input_
  // fills them, and eval forwards clear cached_input_ (failing the check
  // above), so backward never needs to re-unroll.
  for (std::size_t n = 0; n < batch; ++n) {
    const float* go_n = grad_output.data() + n * out_channels_ * spatial;
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      std::memcpy(grad_packed.data() + oc * cols + n * spatial, go_n + oc * spatial,
                  spatial * sizeof(float));
    }
  }

  // dW[oc, ckk] += dY[oc, N·spatial] · colsᵀ — accumulated straight into the
  // gradient, no per-sample temporary. Neither operand is a weight.
  dev.gemm(GemmOp::kNT, grad_packed.data(), columns_.data(), weight_.grad.data(),
           out_channels_, cols, g.patch_size(), /*accumulate=*/true);

  // db[oc] += sum over the batch's spatial positions of dY.
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    float acc = 0.0f;
    const float* row = grad_packed.data() + oc * cols;
    for (std::size_t s = 0; s < cols; ++s) acc += row[s];
    bias_.grad[oc] += acc;
  }

  // dCols[ckk, N·spatial] = Wᵀ[ckk, oc] · dY[oc, N·spatial]; scatter per sample.
  dev.gemm(GemmOp::kTN, weight_.value.data(), grad_packed.data(), grad_columns.data(),
           g.patch_size(), out_channels_, cols, /*accumulate=*/false, WeightSide::kA,
           weight_.uid, weight_.mask_epoch);
  for (std::size_t n = 0; n < batch; ++n) {
    dev.col2im(grad_columns.data(), g, grad_input.data() + n * in_plane, cols, n * spatial);
  }
  return grad_input;
}

}  // namespace subfed
