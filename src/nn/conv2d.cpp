#include "nn/conv2d.h"

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace subfed {

Conv2d::Conv2d(std::string name, std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(name + ".weight", Tensor({out_channels, in_channels, kernel, kernel}),
              /*is_prunable=*/true),
      bias_(name + ".bias", Tensor({out_channels}), /*is_prunable=*/false) {
  SUBFEDAVG_CHECK(kernel > 0 && stride > 0, "bad conv geometry");
}

void Conv2d::init(Rng& rng) {
  const double fan_in = static_cast<double>(in_channels_ * kernel_ * kernel_);
  weight_.value.fill_normal(rng, 0.0f, static_cast<float>(std::sqrt(2.0 / fan_in)));
  bias_.value.zero();
}

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  SUBFEDAVG_CHECK(input.shape().rank() == 4, "conv input must be NCHW, got "
                                                 << input.shape().to_string());
  const std::size_t batch = input.shape()[0];
  SUBFEDAVG_CHECK(input.shape()[1] == in_channels_,
                  "conv in_channels " << in_channels_ << " vs input " << input.shape()[1]);
  const ConvGeometry g{in_channels_, input.shape()[2], input.shape()[3],
                       kernel_,      stride_,          pad_};
  const std::size_t oh = g.out_h(), ow = g.out_w(), spatial = oh * ow;

  cached_input_ = input;
  Tensor output({batch, out_channels_, oh, ow});

  std::vector<float> columns(g.patch_size() * spatial);
  const std::size_t in_plane = in_channels_ * g.in_h * g.in_w;
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(input.data() + n * in_plane, g, columns.data());
    // out[oc, ohw] = W[oc, ckk] · cols[ckk, ohw]
    gemm(weight_.value.data(), columns.data(), output.data() + n * out_channels_ * spatial,
         out_channels_, g.patch_size(), spatial);
    float* out_n = output.data() + n * out_channels_ * spatial;
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float b = bias_.value[oc];
      if (b == 0.0f) continue;
      float* plane = out_n + oc * spatial;
      for (std::size_t s = 0; s < spatial; ++s) plane[s] += b;
    }
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  SUBFEDAVG_CHECK(!cached_input_.empty(), "backward before forward");
  const Tensor& input = cached_input_;
  const std::size_t batch = input.shape()[0];
  const ConvGeometry g{in_channels_, input.shape()[2], input.shape()[3],
                       kernel_,      stride_,          pad_};
  const std::size_t oh = g.out_h(), ow = g.out_w(), spatial = oh * ow;
  SUBFEDAVG_CHECK(grad_output.shape() == Shape({batch, out_channels_, oh, ow}),
                  "grad_output shape " << grad_output.shape().to_string());

  Tensor grad_input(input.shape());
  std::vector<float> columns(g.patch_size() * spatial);
  std::vector<float> grad_columns(g.patch_size() * spatial);
  const std::size_t in_plane = in_channels_ * g.in_h * g.in_w;

  for (std::size_t n = 0; n < batch; ++n) {
    // Recompute the unrolled patches (cheaper than caching them per sample).
    im2col(input.data() + n * in_plane, g, columns.data());
    const float* go = grad_output.data() + n * out_channels_ * spatial;

    // dW[oc, ckk] += dOut[oc, ohw] · colsᵀ[ohw, ckk]
    gemm_a_bt(go, columns.data(), grad_columns.data(), out_channels_, spatial,
              g.patch_size());
    for (std::size_t i = 0; i < out_channels_ * g.patch_size(); ++i) {
      weight_.grad[i] += grad_columns[i];
    }

    // db[oc] += sum over spatial of dOut
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      float acc = 0.0f;
      const float* plane = go + oc * spatial;
      for (std::size_t s = 0; s < spatial; ++s) acc += plane[s];
      bias_.grad[oc] += acc;
    }

    // dCols[ckk, ohw] = Wᵀ[ckk, oc] · dOut[oc, ohw]; then scatter back.
    gemm_at_b(weight_.value.data(), go, grad_columns.data(), g.patch_size(), out_channels_,
              spatial);
    col2im(grad_columns.data(), g, grad_input.data() + n * in_plane);
  }
  return grad_input;
}

}  // namespace subfed
