#include "nn/linear.h"

#include <cmath>

#include "tensor/device.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {

Linear::Linear(std::string name, std::size_t in_features, std::size_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(name + ".weight", Tensor({out_features, in_features}), /*is_prunable=*/true),
      bias_(name + ".bias", Tensor({out_features}), /*is_prunable=*/false) {}

void Linear::init(Rng& rng) {
  weight_.value.fill_normal(rng, 0.0f,
                            static_cast<float>(std::sqrt(2.0 / static_cast<double>(in_features_))));
  bias_.value.zero();
}

Tensor Linear::forward(const Tensor& input, bool train) {
  SUBFEDAVG_CHECK(input.shape().rank() == 2 && input.shape()[1] == in_features_,
                  "linear input " << input.shape().to_string() << " expected (N, "
                                  << in_features_ << ")");
  const std::size_t batch = input.shape()[0];
  // The cached input exists only for backward; inference skips the deep copy
  // and clears any stale cache so backward-after-eval fails loudly.
  cached_input_ = train ? input : Tensor();

  Tensor output({batch, out_features_});
  // y[N, out] = x[N, in] · Wᵀ
  device().gemm(GemmOp::kNT, input.data(), weight_.value.data(), output.data(), batch,
                in_features_, out_features_, /*accumulate=*/false, WeightSide::kB,
                weight_.uid, weight_.mask_epoch);
  for (std::size_t n = 0; n < batch; ++n) {
    float* row = output.data() + n * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) row[o] += bias_.value[o];
  }
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  SUBFEDAVG_CHECK(!cached_input_.empty(), "backward before forward");
  const std::size_t batch = cached_input_.shape()[0];
  SUBFEDAVG_CHECK(grad_output.shape() == Shape({batch, out_features_}),
                  "grad_output shape " << grad_output.shape().to_string());

  // dW[out, in] += dYᵀ[out, N] · x[N, in], accumulated straight into the
  // gradient — no per-batch dw temporary. Neither operand is a weight.
  device().gemm(GemmOp::kTN, grad_output.data(), cached_input_.data(), weight_.grad.data(),
                out_features_, batch, in_features_, /*accumulate=*/true);

  // db[out] += column sums of dY
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = grad_output.data() + n * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) bias_.grad[o] += row[o];
  }

  // dX[N, in] = dY[N, out] · W[out, in]
  Tensor grad_input({batch, in_features_});
  device().gemm(GemmOp::kNN, grad_output.data(), weight_.value.data(), grad_input.data(),
                batch, out_features_, in_features_, /*accumulate=*/false, WeightSide::kB,
                weight_.uid, weight_.mask_epoch);
  return grad_input;
}

}  // namespace subfed
