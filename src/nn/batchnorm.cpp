#include "nn/batchnorm.h"

#include <cmath>

#include "util/check.h"

namespace subfed {

BatchNorm2d::BatchNorm2d(std::string name, std::size_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(name + ".gamma", Tensor({channels}, 1.0f), /*is_prunable=*/false),
      beta_(name + ".beta", Tensor({channels}), /*is_prunable=*/false),
      running_mean_(name + ".running_mean", Tensor({channels}), /*is_prunable=*/false),
      running_var_(name + ".running_var", Tensor({channels}, 1.0f), /*is_prunable=*/false) {}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  SUBFEDAVG_CHECK(input.shape().rank() == 4 && input.shape()[1] == channels_,
                  "bn input " << input.shape().to_string() << " channels " << channels_);
  const std::size_t batch = input.shape()[0], h = input.shape()[2], w = input.shape()[3];
  const std::size_t spatial = h * w;
  const std::size_t per_channel = batch * spatial;

  cached_train_ = train;
  Tensor output(input.shape());

  Tensor mean({channels_}), var({channels_});
  if (train) {
    // Batch statistics per channel over (N, H, W).
    for (std::size_t c = 0; c < channels_; ++c) {
      double acc = 0.0;
      for (std::size_t n = 0; n < batch; ++n) {
        const float* plane = input.data() + (n * channels_ + c) * spatial;
        for (std::size_t s = 0; s < spatial; ++s) acc += plane[s];
      }
      mean[c] = static_cast<float>(acc / per_channel);
    }
    for (std::size_t c = 0; c < channels_; ++c) {
      double acc = 0.0;
      const float m = mean[c];
      for (std::size_t n = 0; n < batch; ++n) {
        const float* plane = input.data() + (n * channels_ + c) * spatial;
        for (std::size_t s = 0; s < spatial; ++s) {
          const double d = plane[s] - m;
          acc += d * d;
        }
      }
      var[c] = static_cast<float>(acc / per_channel);  // biased, as in PyTorch forward
    }
    // Update running stats with the unbiased variance.
    const double bessel = per_channel > 1
                              ? static_cast<double>(per_channel) / (per_channel - 1)
                              : 1.0;
    for (std::size_t c = 0; c < channels_; ++c) {
      running_mean_.value[c] =
          (1.0f - momentum_) * running_mean_.value[c] + momentum_ * mean[c];
      running_var_.value[c] = (1.0f - momentum_) * running_var_.value[c] +
                              momentum_ * static_cast<float>(var[c] * bessel);
    }
    cached_input_ = input;
    batch_mean_ = mean;
    batch_var_ = var;
  } else {
    mean = running_mean_.value;
    var = running_var_.value;
  }

  for (std::size_t c = 0; c < channels_; ++c) {
    const float inv_std = 1.0f / std::sqrt(var[c] + eps_);
    const float g = gamma_.value[c], b = beta_.value[c], m = mean[c];
    for (std::size_t n = 0; n < batch; ++n) {
      const float* in_plane = input.data() + (n * channels_ + c) * spatial;
      float* out_plane = output.data() + (n * channels_ + c) * spatial;
      for (std::size_t s = 0; s < spatial; ++s) {
        out_plane[s] = g * (in_plane[s] - m) * inv_std + b;
      }
    }
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  SUBFEDAVG_CHECK(cached_train_ && !cached_input_.empty(),
                  "BatchNorm backward requires a training-mode forward");
  const Tensor& input = cached_input_;
  const std::size_t batch = input.shape()[0], h = input.shape()[2], w = input.shape()[3];
  const std::size_t spatial = h * w;
  const std::size_t per_channel = batch * spatial;
  SUBFEDAVG_CHECK(grad_output.shape() == input.shape(), "bn grad shape");

  Tensor grad_input(input.shape());
  for (std::size_t c = 0; c < channels_; ++c) {
    const float m = batch_mean_[c];
    const float inv_std = 1.0f / std::sqrt(batch_var_[c] + eps_);
    const float g = gamma_.value[c];

    // Reductions: Σ dy, Σ dy·x̂.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* in_plane = input.data() + (n * channels_ + c) * spatial;
      const float* go_plane = grad_output.data() + (n * channels_ + c) * spatial;
      for (std::size_t s = 0; s < spatial; ++s) {
        const float xhat = (in_plane[s] - m) * inv_std;
        sum_dy += go_plane[s];
        sum_dy_xhat += static_cast<double>(go_plane[s]) * xhat;
      }
    }

    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);
    if (l1_gamma_ > 0.0f) {
      // Network-slimming sparsity subgradient on γ.
      const float gv = gamma_.value[c];
      gamma_.grad[c] += l1_gamma_ * (gv > 0.0f ? 1.0f : (gv < 0.0f ? -1.0f : 0.0f));
    }

    // dx = γ·inv_std/N · (N·dy − Σdy − x̂·Σ(dy·x̂))
    const float k = g * inv_std / static_cast<float>(per_channel);
    for (std::size_t n = 0; n < batch; ++n) {
      const float* in_plane = input.data() + (n * channels_ + c) * spatial;
      const float* go_plane = grad_output.data() + (n * channels_ + c) * spatial;
      float* gi_plane = grad_input.data() + (n * channels_ + c) * spatial;
      for (std::size_t s = 0; s < spatial; ++s) {
        const float xhat = (in_plane[s] - m) * inv_std;
        gi_plane[s] = k * (static_cast<float>(per_channel) * go_plane[s] -
                           static_cast<float>(sum_dy) - xhat * static_cast<float>(sum_dy_xhat));
      }
    }
  }
  return grad_input;
}

}  // namespace subfed
