// Elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace subfed {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "ReLU"; }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// Reshapes NCHW activations to (N, C·H·W) for the FC head.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

}  // namespace subfed
