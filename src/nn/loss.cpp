#include "nn/loss.h"

#include <cmath>

#include "util/check.h"

namespace subfed {

Tensor softmax(const Tensor& logits) {
  SUBFEDAVG_CHECK(logits.shape().rank() == 2, "softmax expects (N, C)");
  const std::size_t batch = logits.shape()[0], classes = logits.shape()[1];
  Tensor probs(logits.shape());
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    float* out = probs.data() + n * classes;
    float max_logit = row[0];
    for (std::size_t c = 1; c < classes; ++c) max_logit = std::max(max_logit, row[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      out[c] = std::exp(row[c] - max_logit);
      denom += out[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t c = 0; c < classes; ++c) out[c] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  SUBFEDAVG_CHECK(logits.shape().rank() == 2, "loss expects (N, C)");
  const std::size_t batch = logits.shape()[0], classes = logits.shape()[1];
  SUBFEDAVG_CHECK(labels.size() == batch, "labels size " << labels.size() << " != batch "
                                                         << batch);

  LossResult result;
  result.grad_logits = softmax(logits);
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    const std::int32_t label = labels[n];
    SUBFEDAVG_CHECK(label >= 0 && static_cast<std::size_t>(label) < classes,
                    "label " << label << " out of " << classes);
    float* row = result.grad_logits.data() + n * classes;
    const float p = std::max(row[static_cast<std::size_t>(label)], 1e-12f);
    total -= std::log(p);
    if (argmax({row, classes}) == static_cast<std::size_t>(label)) ++result.correct;
    // d/dlogits of mean NLL: (softmax − onehot) / N
    row[static_cast<std::size_t>(label)] -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) row[c] *= inv_batch;
  }
  result.loss = total / static_cast<double>(batch);
  return result;
}

}  // namespace subfed
