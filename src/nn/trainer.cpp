#include "nn/trainer.h"

#include <cstring>
#include <numeric>
#include <vector>

#include "nn/loss.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {

Tensor gather_rows(const Tensor& images, std::span<const std::size_t> indices) {
  SUBFEDAVG_CHECK(images.shape().rank() >= 2, "gather_rows needs a batch dim");
  const std::size_t n = images.shape()[0];
  const std::size_t row = images.numel() / n;
  std::vector<std::size_t> dims = images.shape().dims();
  dims[0] = indices.size();
  Tensor out{Shape(dims)};
  for (std::size_t i = 0; i < indices.size(); ++i) {
    SUBFEDAVG_CHECK(indices[i] < n, "row " << indices[i] << " out of " << n);
    std::memcpy(out.data() + i * row, images.data() + indices[i] * row, row * sizeof(float));
  }
  return out;
}

TrainStats train_local(Model& model, Sgd& optimizer, const Tensor& images,
                       std::span<const std::int32_t> labels, const TrainConfig& config,
                       Rng& rng, const EpochCallback& on_epoch_end,
                       const GradHook& grad_hook) {
  const std::size_t n = images.shape()[0];
  SUBFEDAVG_CHECK(labels.size() == n, "labels/images size mismatch");
  SUBFEDAVG_CHECK(n > 0, "empty training set");
  const std::size_t batch = std::min(config.batch_size, n);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  TrainStats stats;
  for (std::size_t epoch = 1; epoch <= config.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t epoch_correct = 0, epoch_seen = 0, epoch_batches = 0;

    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t count = std::min(batch, n - start);
      std::span<const std::size_t> idx(order.data() + start, count);
      Tensor batch_images = gather_rows(images, idx);
      std::vector<std::int32_t> batch_labels(count);
      for (std::size_t i = 0; i < count; ++i) batch_labels[i] = labels[idx[i]];

      Tensor logits = model.forward(batch_images, /*train=*/true);
      LossResult loss = softmax_cross_entropy(logits, batch_labels);
      model.backward(loss.grad_logits);
      if (grad_hook) grad_hook(model);
      optimizer.step();

      epoch_loss += loss.loss;
      epoch_correct += loss.correct;
      epoch_seen += count;
      ++epoch_batches;
      ++stats.steps;
    }

    stats.last_epoch_loss = epoch_batches > 0 ? epoch_loss / epoch_batches : 0.0;
    stats.last_epoch_accuracy =
        epoch_seen > 0 ? static_cast<double>(epoch_correct) / epoch_seen : 0.0;
    if (on_epoch_end) on_epoch_end(epoch);
  }
  return stats;
}

EvalStats evaluate(Model& model, const Tensor& images,
                   std::span<const std::int32_t> labels, std::size_t batch_size) {
  const std::size_t n = images.shape()[0];
  SUBFEDAVG_CHECK(labels.size() == n, "labels/images size mismatch");
  EvalStats stats;
  stats.examples = n;
  if (n == 0) return stats;

  double total_loss = 0.0;
  std::size_t correct = 0, batches = 0;
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    idx.resize(count);
    std::iota(idx.begin(), idx.end(), start);
    Tensor batch_images = gather_rows(images, idx);
    std::vector<std::int32_t> batch_labels(labels.begin() + start,
                                           labels.begin() + start + count);
    Tensor logits = model.forward(batch_images, /*train=*/false);
    LossResult loss = softmax_cross_entropy(logits, batch_labels);
    total_loss += loss.loss;
    correct += loss.correct;
    ++batches;
  }
  stats.loss = total_loss / batches;
  stats.accuracy = static_cast<double>(correct) / n;
  return stats;
}

}  // namespace subfed
