// The two architectures evaluated in the paper (§4.1).
//
//  * Cnn5  — "5-layer CNN" for MNIST / EMNIST: two 5×5 conv layers
//            (10, 20 channels), each followed by BatchNorm and 2×2 max-pool,
//            then FC-50 and an FC classifier head.
//  * LeNet5 — for CIFAR-10 / CIFAR-100, with BatchNorm added after each conv
//             layer as the paper specifies: conv6-pool-conv16-pool,
//             FC-120, FC-84, FC head.
//  * CnnDeep — a VGG-style 4-conv-block network (16-16-32-32 channels, 3×3
//              kernels). Not part of the paper's evaluation; included because
//              §3.3 argues channel pruning pays off "when the neural network
//              is sufficiently deep" — tests and ablations exercise the mask
//              propagation across conv→conv→conv chains with it.
#pragma once

#include <cstdint>

#include "nn/model.h"

namespace subfed {

class Rng;

/// Immutable description of a model architecture; clients and server build
/// identical models from the same spec (weights initialized from `rng`).
struct ModelSpec {
  enum class Arch { kCnn5, kLeNet5, kCnnDeep };
  Arch arch = Arch::kCnn5;
  std::size_t in_channels = 1;
  std::size_t input_hw = 28;   ///< square inputs
  std::size_t num_classes = 10;
  /// Device every built model's layers run on: "auto" (the process default,
  /// see tensor/device.h) or a registered backend name. Carried in the spec
  /// so every client/server model of a federation uses the same kernels, and
  /// sweeps can put `backend` on an axis.
  std::string backend = "auto";
  /// Compute dtype for the device: "auto" (the process default) | "fp32" |
  /// "fp16". fp16 stages GEMM operands through half precision with fp32
  /// accumulation — results match fp32 within a looser tolerance.
  std::string compute = "auto";

  /// Builds the architecture with zeroed/default parameters.
  Model build() const;
  /// Builds and initializes weights from `rng` (Kaiming normal).
  Model build_init(Rng& rng) const;

  static ModelSpec cnn5(std::size_t num_classes);     ///< 1×28×28 input
  static ModelSpec lenet5(std::size_t num_classes);   ///< 3×32×32 input
  static ModelSpec cnn_deep(std::size_t num_classes); ///< 3×32×32 input, 4 conv blocks
};

}  // namespace subfed
