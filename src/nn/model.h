// Sequential model container with named state and pruning-relevant topology.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/parameter.h"

namespace subfed {

class Conv2d;
class BatchNorm2d;
class Linear;

/// One conv "block" as seen by structured pruning: the conv layer, its
/// BatchNorm partner, and how its output channels feed the next stage.
struct ConvBlock {
  Conv2d* conv = nullptr;
  BatchNorm2d* bn = nullptr;
  /// Next consumer of this block's output channels: either another conv
  /// (next_conv) or the first FC layer (next_fc with spatial_per_channel
  /// input columns per channel).
  Conv2d* next_conv = nullptr;
  Linear* next_fc = nullptr;
  std::size_t spatial_per_channel = 0;  ///< H·W entering the flatten, if next_fc
};

/// Pruning-relevant wiring of a sequential CNN.
struct ModelTopology {
  std::vector<ConvBlock> conv_blocks;
  std::vector<Linear*> fc_layers;  ///< in order; unstructured pruning in hybrid mode
  /// Spatial output sizes (H, W) of each conv layer at the model's nominal
  /// input resolution — used by the FLOP counter.
  std::vector<std::pair<std::size_t, std::size_t>> conv_out_hw;
};

/// A feed-forward stack of layers with flat named state.
///
/// Models are created by the factories in model_zoo.h; all clients plus the
/// server construct the identical architecture so StateDicts align
/// positionally.
class Model {
 public:
  Model() = default;

  Model(const Model&) = delete;            // layers own cached activations;
  Model& operator=(const Model&) = delete; // copy via state() / load_state()
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Appends a layer; returns a typed pointer for topology wiring.
  template <typename L>
  L* add(std::unique_ptr<L> layer) {
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  Tensor forward(const Tensor& input, bool train);
  /// Backpropagates dLoss/dLogits through every layer (reverse order).
  void backward(const Tensor& grad_logits);

  std::vector<Parameter*> parameters();
  std::vector<Parameter*> buffers();
  /// Parameters followed by buffers — the full communicated/aggregated state.
  std::vector<Parameter*> state_entries();

  /// Deep-copies current values (params + buffers) into a StateDict.
  StateDict state() const;
  /// Loads values by position; names and shapes must match exactly.
  void load_state(const StateDict& state);

  void zero_grad();

  /// Total learnable parameter scalars (excludes buffers).
  std::size_t num_parameters() const;

  std::size_t num_layers() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  ModelTopology& topology() noexcept { return topology_; }
  const ModelTopology& topology() const noexcept { return topology_; }

  /// Sets the slimming L1 strength on every BatchNorm layer.
  void set_bn_l1(float strength);

  /// Routes every layer's GEMM/im2col calls through `device` (nullptr
  /// restores the process default). See tensor/device.h.
  void set_device(const Device* device) noexcept;

  /// Deprecated alias onto the Device registry: routes layers through the
  /// fp32 device wrapping `backend`. Prefer set_device().
  void set_backend(const MathBackend* backend);

  /// Enables/disables fused conv→bn→activation epilogues in eval-mode
  /// forwards (training always runs unfused — train BN needs batch
  /// statistics). Defaults to fused_epilogues_default() (SUBFEDAVG_FUSED).
  /// Fused and unfused eval forwards are bit-identical by construction.
  void set_fusion(bool fused) noexcept { fused_ = fused; }
  bool fusion() const noexcept { return fused_; }

 private:
  /// Per-layer fused-eval chain plan: for a Conv2d whose output feeds
  /// BatchNorm2d (optionally then ReLU), how many following layers the fused
  /// forward consumes. Computed lazily from the layer list (which is fixed
  /// after construction).
  struct FusePlan {
    BatchNorm2d* bn = nullptr;
    std::size_t skip = 0;  ///< extra layers consumed after the conv (1 or 2)
    bool relu = false;
  };
  const std::vector<FusePlan>& fuse_plans();

  std::vector<LayerPtr> layers_;
  ModelTopology topology_;
  bool fused_ = fused_epilogues_default();
  std::vector<FusePlan> fuse_plans_;  // lazily sized to layers_.size()
};

/// Builds a new model of the same architecture as `reference` would be built
/// by its factory; used indirectly via ModelFactory in model_zoo.h.
using ModelFactory = std::function<Model()>;

}  // namespace subfed
