// Local SGD training loop and evaluation.
//
// Two extension seams make the FL algorithms composable without subclassing:
//  * `on_epoch_end` — Sub-FedAvg derives pruning masks at the end of the
//    FIRST and LAST local epoch (Algorithms 1 & 2).
//  * `grad_hook` — runs after backward, before the optimizer step. FedProx
//    adds its proximal term here; pruned-weight gradient freezing also lives
//    here so masked weights stay exactly zero through momentum updates.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "nn/model.h"
#include "nn/sgd.h"
#include "tensor/tensor.h"

namespace subfed {

class Rng;

struct TrainConfig {
  std::size_t epochs = 5;      ///< paper: local epochs 5
  std::size_t batch_size = 10; ///< paper: local batch size 10
};

struct TrainStats {
  double last_epoch_loss = 0.0;
  double last_epoch_accuracy = 0.0;
  std::size_t steps = 0;
};

struct EvalStats {
  double loss = 0.0;
  double accuracy = 0.0;
  std::size_t examples = 0;
};

/// Called at the end of each local epoch with the 1-based epoch number.
using EpochCallback = std::function<void(std::size_t epoch)>;
/// Called after backward, before each optimizer step.
using GradHook = std::function<void(Model&)>;

/// Trains `model` for config.epochs over (images, labels) with shuffled
/// mini-batches drawn from `rng`. Returns stats of the final epoch.
TrainStats train_local(Model& model, Sgd& optimizer, const Tensor& images,
                       std::span<const std::int32_t> labels, const TrainConfig& config,
                       Rng& rng, const EpochCallback& on_epoch_end = {},
                       const GradHook& grad_hook = {});

/// Full-dataset evaluation in inference mode (BatchNorm running stats).
EvalStats evaluate(Model& model, const Tensor& images,
                   std::span<const std::int32_t> labels, std::size_t batch_size = 64);

/// Copies rows `indices` of a [N, ...] tensor into a new batch tensor.
Tensor gather_rows(const Tensor& images, std::span<const std::size_t> indices);

}  // namespace subfed
