#include "nn/pooling.h"

#include "util/check.h"

namespace subfed {

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  SUBFEDAVG_CHECK(window > 0, "pool window must be positive");
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*train*/) {
  SUBFEDAVG_CHECK(input.shape().rank() == 4, "pool input must be NCHW");
  const std::size_t batch = input.shape()[0], channels = input.shape()[1];
  const std::size_t h = input.shape()[2], w = input.shape()[3];
  const std::size_t oh = h / window_, ow = w / window_;
  SUBFEDAVG_CHECK(oh > 0 && ow > 0, "pool window larger than input");

  input_shape_ = input.shape();
  Tensor output({batch, channels, oh, ow});
  argmax_.assign(output.numel(), 0);

  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const std::size_t y0 = oy * window_, x0 = ox * window_;
          std::size_t best = y0 * w + x0;
          float best_val = plane[best];
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const std::size_t idx = (y0 + dy) * w + (x0 + dx);
              if (plane[idx] > best_val) {
                best_val = plane[idx];
                best = idx;
              }
            }
          }
          output[out_idx] = best_val;
          argmax_[out_idx] = (n * channels + c) * h * w + best;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  SUBFEDAVG_CHECK(grad_output.numel() == argmax_.size(), "pool backward before forward");
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

}  // namespace subfed
