// Softmax cross-entropy with integer class labels.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace subfed {

struct LossResult {
  double loss = 0.0;       ///< mean negative log-likelihood over the batch
  Tensor grad_logits;      ///< dLoss/dLogits, shape (N, C)
  std::size_t correct = 0; ///< argmax hits, for accuracy accounting
};

/// Numerically-stable softmax cross-entropy. `logits` is (N, C); `labels`
/// holds N class indices in [0, C).
LossResult softmax_cross_entropy(const Tensor& logits, std::span<const std::int32_t> labels);

/// Softmax probabilities (N, C) — used by tests and calibration tooling.
Tensor softmax(const Tensor& logits);

}  // namespace subfed
