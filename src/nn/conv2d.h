// 2-D convolution (square kernel) via batched im2col + GEMM: the whole batch
// is unrolled into one [C·K·K, N·outH·outW] patch matrix so each pass is a
// single large GEMM on the layer's Device instead of a per-sample loop.
#pragma once

#include <vector>

#include "nn/layer.h"
#include "tensor/device.h"
#include "tensor/gemm.h"

namespace subfed {

class Rng;

class Conv2d final : public Layer {
 public:
  /// Weight shape [out_channels, in_channels, kernel, kernel]; bias [out_channels].
  Conv2d(std::string name, std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride = 1, std::size_t pad = 0);

  /// Kaiming-normal weight init, zero bias.
  void init(Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  /// Eval-only fused conv→bn→activation forward: the epilogue's per-channel
  /// terms are applied inside the GEMM store-back (this layer's bias is added
  /// automatically). Driven by Model's fused eval forward; never caches the
  /// input, so a subsequent backward fails loudly like any eval forward.
  Tensor forward_fused(const Tensor& input, GemmEpilogue epilogue);
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string kind() const override { return "Conv2d"; }

  std::size_t in_channels() const noexcept { return in_channels_; }
  std::size_t out_channels() const noexcept { return out_channels_; }
  std::size_t kernel() const noexcept { return kernel_; }
  std::size_t stride() const noexcept { return stride_; }
  std::size_t pad() const noexcept { return pad_; }

  Parameter& weight() noexcept { return weight_; }
  Parameter& bias() noexcept { return bias_; }

 private:
  Tensor forward_impl(const Tensor& input, bool train, const GemmEpilogue* epilogue);

  std::size_t in_channels_, out_channels_, kernel_, stride_, pad_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;  // [N, C, H, W] saved by forward for backward
  /// im2col patches [patch × N·spatial], leased from the layer's device and
  /// held across calls. Invariant: whenever cached_input_ is non-empty (only
  /// train-mode forwards set it, and eval forwards clear it), `columns_`
  /// holds exactly that input's patches — so backward never recomputes the
  /// im2col. Other scratch (forward GEMM output, backward column/packed
  /// grads) is leased per call and returned to the device pool on scope exit.
  WorkspaceLease columns_;
};

}  // namespace subfed
