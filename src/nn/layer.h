// Layer interface: explicit forward / backward with cached activations.
//
// The library uses per-layer analytic backward passes instead of a taped
// autograd: the paper's models are straight-line Sequential CNNs, and explicit
// backward keeps the hot path allocation-light and easy to verify against
// finite differences (see tests/test_nn_gradcheck.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/backend.h"
#include "tensor/tensor.h"

namespace subfed {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Selects the kernel set this layer's forward/backward run on; nullptr
  /// restores the process default. Only GEMM-backed layers (Conv2d, Linear)
  /// consult it, but it lives on the base so Model::set_backend is uniform.
  void set_backend(const MathBackend* backend) noexcept { backend_ = backend; }
  /// The active backend: the explicit one, else default_math_backend().
  const MathBackend& math() const {
    return backend_ != nullptr ? *backend_ : default_math_backend();
  }

  /// Computes the layer output. `train` toggles training-time behaviour
  /// (BatchNorm batch statistics). Implementations cache what backward needs.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after forward with matching shapes.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers). Pointers remain valid
  /// for the life of the layer.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Persistent non-learnable buffers (BatchNorm running stats).
  virtual std::vector<Parameter*> buffers() { return {}; }

  /// Human-readable kind, e.g. "Conv2d".
  virtual std::string kind() const = 0;

 private:
  const MathBackend* backend_ = nullptr;  ///< nullptr → default_math_backend()
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace subfed
