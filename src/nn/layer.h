// Layer interface: explicit forward / backward with cached activations.
//
// The library uses per-layer analytic backward passes instead of a taped
// autograd: the paper's models are straight-line Sequential CNNs, and explicit
// backward keeps the hot path allocation-light and easy to verify against
// finite differences (see tests/test_nn_gradcheck.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/backend.h"
#include "tensor/device.h"
#include "tensor/tensor.h"

namespace subfed {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Selects the device this layer's forward/backward run on; nullptr
  /// restores the process default. Only GEMM-backed layers (Conv2d, Linear)
  /// consult it, but it lives on the base so Model::set_device is uniform.
  void set_device(const Device* device) noexcept { device_ = device; }
  /// The active device: the explicit one, else default_device().
  const Device& device() const {
    return device_ != nullptr ? *device_ : default_device();
  }

  /// Deprecated MathBackend seam, aliased onto the Device registry: resolves
  /// the fp32 device wrapping `backend`. Prefer set_device().
  void set_backend(const MathBackend* backend) {
    device_ = backend != nullptr ? &device_for(*backend) : nullptr;
  }
  /// Deprecated: the active device's raw kernel set. Prefer device().
  const MathBackend& math() const { return device().kernels(); }

  /// Computes the layer output. `train` toggles training-time behaviour
  /// (BatchNorm batch statistics). Implementations cache what backward needs.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after forward with matching shapes.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers). Pointers remain valid
  /// for the life of the layer.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Persistent non-learnable buffers (BatchNorm running stats).
  virtual std::vector<Parameter*> buffers() { return {}; }

  /// Human-readable kind, e.g. "Conv2d".
  virtual std::string kind() const = 0;

 private:
  const Device* device_ = nullptr;  ///< nullptr → default_device()
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace subfed
