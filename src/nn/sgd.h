// SGD with momentum — the optimizer the paper uses everywhere
// (lr = 0.01, momentum = 0.5, §4.1).
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace subfed {

struct SgdConfig {
  float lr = 0.01f;
  float momentum = 0.5f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdConfig config);

  /// v ← momentum·v + grad (+ wd·w);  w ← w − lr·v;  grads are then zeroed.
  void step();

  /// Drops momentum state (used when a client re-seeds from the global model).
  void reset_momentum();

  const SgdConfig& config() const noexcept { return config_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

}  // namespace subfed
