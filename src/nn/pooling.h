// Max pooling (square window, stride = window, no padding) — the only pooling
// variant the paper's models use (2×2).
#pragma once

#include <vector>

#include "nn/layer.h"

namespace subfed {

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "MaxPool2d"; }

 private:
  std::size_t window_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each output element
};

}  // namespace subfed
