#include "nn/sgd.h"

#include "util/check.h"

namespace subfed {

Sgd::Sgd(std::vector<Parameter*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  SUBFEDAVG_CHECK(!params_.empty(), "optimizer needs parameters");
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    const float wd = config_.weight_decay;
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      float g = p.grad[j];
      if (wd != 0.0f) g += wd * p.value[j];
      v[j] = config_.momentum * v[j] + g;
      p.value[j] -= config_.lr * v[j];
    }
    p.grad.zero();
  }
}

void Sgd::reset_momentum() {
  for (auto& v : velocity_) v.zero();
}

}  // namespace subfed
