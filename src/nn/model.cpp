#include "nn/model.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "util/check.h"

namespace subfed {

Tensor Model::forward(const Tensor& input, bool train) {
  SUBFEDAVG_CHECK(!layers_.empty(), "empty model");
  if (!train && fused_) {
    // Fused eval forward: each Conv2d→BatchNorm2d(→ReLU) chain collapses into
    // one GEMM whose epilogue applies bias/bn/activation at store-back.
    // Bit-identical to the unfused loop below (tests/test_device.cpp pins it).
    const std::vector<FusePlan>& plans = fuse_plans();
    const Tensor* cur = &input;
    Tensor x;
    std::size_t i = 0;
    while (i < layers_.size()) {
      const FusePlan& plan = plans[i];
      if (plan.bn != nullptr) {
        auto* conv = static_cast<Conv2d*>(layers_[i].get());
        GemmEpilogue ep;
        ep.mean = plan.bn->running_mean().value.data();
        ep.var = plan.bn->running_var().value.data();
        ep.gamma = plan.bn->gamma().value.data();
        ep.beta = plan.bn->beta().value.data();
        ep.eps = plan.bn->eps();
        ep.relu = plan.relu;
        x = conv->forward_fused(*cur, ep);
        i += 1 + plan.skip;
      } else {
        x = layers_[i]->forward(*cur, /*train=*/false);
        ++i;
      }
      cur = &x;
    }
    return x;
  }
  Tensor x = layers_.front()->forward(input, train);
  for (std::size_t i = 1; i < layers_.size(); ++i) x = layers_[i]->forward(x, train);
  return x;
}

const std::vector<Model::FusePlan>& Model::fuse_plans() {
  if (fuse_plans_.size() == layers_.size()) return fuse_plans_;
  fuse_plans_.assign(layers_.size(), FusePlan{});
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    auto* conv = dynamic_cast<Conv2d*>(layers_[i].get());
    if (conv == nullptr || i + 1 >= layers_.size()) continue;
    auto* bn = dynamic_cast<BatchNorm2d*>(layers_[i + 1].get());
    if (bn == nullptr || bn->channels() != conv->out_channels()) continue;
    FusePlan& plan = fuse_plans_[i];
    plan.bn = bn;
    plan.skip = 1;
    if (i + 2 < layers_.size() && dynamic_cast<ReLU*>(layers_[i + 2].get()) != nullptr) {
      plan.relu = true;
      plan.skip = 2;
    }
  }
  return fuse_plans_;
}

void Model::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
}

std::vector<Parameter*> Model::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Parameter*> Model::buffers() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* b : layer->buffers()) out.push_back(b);
  }
  return out;
}

std::vector<Parameter*> Model::state_entries() {
  std::vector<Parameter*> out = parameters();
  for (Parameter* b : buffers()) out.push_back(b);
  return out;
}

StateDict Model::state() const {
  StateDict dict;
  // state_entries() is non-const only because Parameter pointers are mutable;
  // values are copied out, so const_cast here does not mutate the model.
  auto* self = const_cast<Model*>(this);
  for (Parameter* p : self->state_entries()) dict.add(p->name, p->value);
  return dict;
}

void Model::load_state(const StateDict& state) {
  auto entries = state_entries();
  SUBFEDAVG_CHECK(entries.size() == state.size(),
                  "state size " << state.size() << " != model entries " << entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& [name, tensor] = state[i];
    SUBFEDAVG_CHECK(name == entries[i]->name,
                    "state entry " << i << " name '" << name << "' != '"
                                   << entries[i]->name << "'");
    SUBFEDAVG_CHECK(tensor.shape() == entries[i]->value.shape(),
                    "state entry '" << name << "' shape mismatch");
    entries[i]->value = tensor;
    // Loaded values may carry a different sparsity pattern (e.g. a pruned
    // global model) — invalidate any cached density decisions.
    ++entries[i]->mask_epoch;
  }
}

void Model::zero_grad() {
  for (Parameter* p : parameters()) p->grad.zero();
}

std::size_t Model::num_parameters() const {
  std::size_t n = 0;
  auto* self = const_cast<Model*>(this);
  for (Parameter* p : self->parameters()) n += p->value.numel();
  return n;
}

void Model::set_bn_l1(float strength) {
  for (auto& layer : layers_) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(layer.get())) bn->set_l1_gamma(strength);
  }
}

void Model::set_device(const Device* device) noexcept {
  for (auto& layer : layers_) layer->set_device(device);
}

void Model::set_backend(const MathBackend* backend) {
  for (auto& layer : layers_) layer->set_backend(backend);
}

}  // namespace subfed
