#include "nn/model.h"

#include "nn/batchnorm.h"
#include "util/check.h"

namespace subfed {

Tensor Model::forward(const Tensor& input, bool train) {
  SUBFEDAVG_CHECK(!layers_.empty(), "empty model");
  Tensor x = layers_.front()->forward(input, train);
  for (std::size_t i = 1; i < layers_.size(); ++i) x = layers_[i]->forward(x, train);
  return x;
}

void Model::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
}

std::vector<Parameter*> Model::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Parameter*> Model::buffers() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* b : layer->buffers()) out.push_back(b);
  }
  return out;
}

std::vector<Parameter*> Model::state_entries() {
  std::vector<Parameter*> out = parameters();
  for (Parameter* b : buffers()) out.push_back(b);
  return out;
}

StateDict Model::state() const {
  StateDict dict;
  // state_entries() is non-const only because Parameter pointers are mutable;
  // values are copied out, so const_cast here does not mutate the model.
  auto* self = const_cast<Model*>(this);
  for (Parameter* p : self->state_entries()) dict.add(p->name, p->value);
  return dict;
}

void Model::load_state(const StateDict& state) {
  auto entries = state_entries();
  SUBFEDAVG_CHECK(entries.size() == state.size(),
                  "state size " << state.size() << " != model entries " << entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& [name, tensor] = state[i];
    SUBFEDAVG_CHECK(name == entries[i]->name,
                    "state entry " << i << " name '" << name << "' != '"
                                   << entries[i]->name << "'");
    SUBFEDAVG_CHECK(tensor.shape() == entries[i]->value.shape(),
                    "state entry '" << name << "' shape mismatch");
    entries[i]->value = tensor;
  }
}

void Model::zero_grad() {
  for (Parameter* p : parameters()) p->grad.zero();
}

std::size_t Model::num_parameters() const {
  std::size_t n = 0;
  auto* self = const_cast<Model*>(this);
  for (Parameter* p : self->parameters()) n += p->value.numel();
  return n;
}

void Model::set_bn_l1(float strength) {
  for (auto& layer : layers_) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(layer.get())) bn->set_l1_gamma(strength);
  }
}

void Model::set_backend(const MathBackend* backend) noexcept {
  for (auto& layer : layers_) layer->set_backend(backend);
}

}  // namespace subfed
