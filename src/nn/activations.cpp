#include "nn/activations.h"

#include "util/check.h"

namespace subfed {

Tensor ReLU::forward(const Tensor& input, bool /*train*/) {
  Tensor output = input;
  mask_ = Tensor(input.shape());
  for (std::size_t i = 0; i < output.numel(); ++i) {
    if (output[i] > 0.0f) {
      mask_[i] = 1.0f;
    } else {
      output[i] = 0.0f;
    }
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  SUBFEDAVG_CHECK(grad_output.numel() == mask_.numel(), "relu backward before forward");
  Tensor grad_input = grad_output;
  grad_input.mul_(mask_);
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input, bool /*train*/) {
  SUBFEDAVG_CHECK(input.shape().rank() >= 2, "flatten needs a batch dim");
  input_shape_ = input.shape();
  const std::size_t batch = input.shape()[0];
  Tensor output = input;
  output.reshape({batch, input.numel() / batch});
  return output;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  Tensor grad_input = grad_output;
  grad_input.reshape(input_shape_);
  return grad_input;
}

}  // namespace subfed
