// BatchNorm2d.
//
// The scaling factor γ doubles as the channel-importance indicator for
// structured pruning (network slimming, Liu et al. 2017 — adopted by the
// paper §3.5). Training can add an L1 subgradient on γ (`l1_gamma`) to push
// unimportant channels toward zero, exactly as slimming prescribes.
#pragma once

#include "nn/layer.h"

namespace subfed {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::string name, std::size_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<Parameter*> buffers() override { return {&running_mean_, &running_var_}; }
  std::string kind() const override { return "BatchNorm2d"; }

  std::size_t channels() const noexcept { return channels_; }
  Parameter& gamma() noexcept { return gamma_; }
  Parameter& beta() noexcept { return beta_; }
  float eps() const noexcept { return eps_; }
  /// Running statistics, exposed for the fused eval epilogue (model.cpp).
  const Parameter& running_mean() const noexcept { return running_mean_; }
  const Parameter& running_var() const noexcept { return running_var_; }

  /// L1 sparsity penalty applied to γ gradients during backward (0 = off).
  void set_l1_gamma(float strength) noexcept { l1_gamma_ = strength; }
  float l1_gamma() const noexcept { return l1_gamma_; }

 private:
  std::size_t channels_;
  float momentum_, eps_;
  float l1_gamma_ = 0.0f;
  Parameter gamma_, beta_;
  Parameter running_mean_, running_var_;

  // Forward cache (training mode) for backward.
  Tensor cached_input_;
  Tensor batch_mean_, batch_var_;  // [C]
  bool cached_train_ = false;
};

}  // namespace subfed
