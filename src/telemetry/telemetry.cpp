#include "telemetry/telemetry.h"

#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/check.h"
#include "util/env.h"

namespace subfed::telemetry {

namespace {

int initial_level() {
  const std::string name = env_string("SUBFEDAVG_TELEMETRY", "off");
  if (name == "counters") return static_cast<int>(Level::kCounters);
  if (name == "trace") return static_cast<int>(Level::kTrace);
  return static_cast<int>(Level::kOff);  // unknown env values stay silent-off
}

std::atomic<int>& level_cell() noexcept {
  static std::atomic<int> cell{initial_level()};
  return cell;
}

/// One registry per instrument kind: name → heap-allocated instrument that is
/// never destroyed while the map lives, so references handed out stay stable.
template <typename T>
class Registry {
 public:
  T& get(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<T>& slot = entries_[name];
    if (!slot) slot = std::make_unique<T>();
    return *slot;
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, instrument] : entries_) fn(name, *instrument);
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<T>> entries_;
};

Registry<Counter>& counters() {
  static Registry<Counter> r;
  return r;
}
Registry<Gauge>& gauges() {
  static Registry<Gauge> r;
  return r;
}
Registry<Histogram>& histograms() {
  static Registry<Histogram> r;
  return r;
}
Registry<Timer>& timers() {
  static Registry<Timer> r;
  return r;
}

void append_json_name(std::ostringstream& os, const std::string& name) {
  os << '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

Level level() noexcept {
  return static_cast<Level>(level_cell().load(std::memory_order_relaxed));
}

void set_level(Level level) noexcept {
  level_cell().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool enabled(Level at_least) noexcept {
  return level_cell().load(std::memory_order_relaxed) >= static_cast<int>(at_least);
}

Level parse_level(const std::string& name) {
  if (name == "off") return Level::kOff;
  if (name == "counters") return Level::kCounters;
  if (name == "trace") return Level::kTrace;
  SUBFEDAVG_CHECK(false, "unknown telemetry level '" << name << "' (off | counters | trace)");
  return Level::kOff;
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kOff: return "off";
    case Level::kCounters: return "counters";
    case Level::kTrace: return "trace";
  }
  return "off";
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) { return counters().get(name); }
Gauge& gauge(const std::string& name) { return gauges().get(name); }
Histogram& histogram(const std::string& name) { return histograms().get(name); }
Timer& timer(const std::string& name) { return timers().get(name); }

std::string metrics_json() {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"telemetry_level\": \"" << level_name(level()) << "\"";
  counters().for_each([&](const std::string& name, Counter& c) {
    os << ",\n  ";
    append_json_name(os, name);
    os << ": " << c.value();
  });
  gauges().for_each([&](const std::string& name, Gauge& g) {
    os << ",\n  ";
    append_json_name(os, name);
    os << ": " << g.value();
  });
  timers().for_each([&](const std::string& name, Timer& t) {
    os << ",\n  ";
    append_json_name(os, name);
    os << ": {\"seconds\": " << t.total_seconds() << ", \"count\": " << t.count() << "}";
  });
  histograms().for_each([&](const std::string& name, Histogram& h) {
    os << ",\n  ";
    append_json_name(os, name);
    os << ": {\"count\": " << h.count() << ", \"sum\": " << h.sum() << ", \"buckets\": {";
    bool first = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h.bucket(b);
      if (n == 0) continue;
      os << (first ? "" : ", ") << "\"2^" << b << "\": " << n;
      first = false;
    }
    os << "}}";
  });
  os << "\n}\n";
  return os.str();
}

void reset_all() {
  counters().for_each([](const std::string&, Counter& c) { c.reset(); });
  gauges().for_each([](const std::string&, Gauge& g) { g.reset(); });
  histograms().for_each([](const std::string&, Histogram& h) { h.reset(); });
  timers().for_each([](const std::string&, Timer& t) { t.reset(); });
}

}  // namespace subfed::telemetry
