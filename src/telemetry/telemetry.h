// Process-wide telemetry: a registry of named counters, gauges, log2-bucketed
// histograms, and timers with cheap atomic updates and a no-op fast path.
//
// The subsystem has three cost tiers, selected by the global Level:
//
//   off      — every instrument is a single relaxed atomic load and a branch;
//              nothing is recorded. The disabled path changes no RNG stream,
//              no payload byte, and no output file, so every bit-identity
//              suite holds with telemetry compiled in.
//   counters — instruments record (one relaxed fetch_add per event); phase
//              stopwatches in the channel/session run. Overhead is pinned by
//              bench_telemetry + bench/baselines/BENCH_telemetry.json.
//   trace    — counters plus per-thread span buffers (telemetry/trace.h) for
//              the Chrome trace_event exporter.
//
// The level comes from the SUBFEDAVG_TELEMETRY env var (off | counters |
// trace) and can be overridden by the spec's `telemetry=` field or raised by
// serve's --telemetry-log/--telemetry-trace flags. Call sites hold static
// references (`static Counter& c = telemetry::counter("net.frames_sent")`) so
// the name lookup happens once per call site, not per event.
//
// Instruments returned by the registry live for the process lifetime;
// references never dangle. All operations are thread-safe.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>

namespace subfed::telemetry {

enum class Level : int { kOff = 0, kCounters = 1, kTrace = 2 };

/// Current process-wide level (relaxed read — safe from any thread).
Level level() noexcept;
void set_level(Level level) noexcept;
/// Parses "off" | "counters" | "trace" (throws CheckError otherwise).
Level parse_level(const std::string& name);
const char* level_name(Level level) noexcept;

/// True when the current level is at least `at_least` — the one-load fast
/// path every instrument gates on.
bool enabled(Level at_least) noexcept;

// ---------------------------------------------------------------------------
// Instruments

/// Monotone event count. add() is a no-op below kCounters.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (enabled(Level::kCounters)) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins level (queue depths, connected workers, resident bytes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (enabled(Level::kCounters)) value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (enabled(Level::kCounters)) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed magnitude distribution: sample n lands in bucket
/// floor(log2(n)) (0 in bucket 0), so 64 buckets cover the full u64 range —
/// the right shape for byte sizes and payload counts.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t sample) noexcept {
    if (!enabled(Level::kCounters)) return;
    const int bucket = sample == 0 ? 0 : 64 - std::countl_zero(sample) - 1;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Accumulated duration (nanosecond ticks) + event count.
class Timer {
 public:
  void add_seconds(double seconds) noexcept {
    if (!enabled(Level::kCounters) || seconds <= 0.0) return;
    total_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  double total_seconds() const noexcept {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  void reset() noexcept {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Reads the monotonic clock only when telemetry is on: seconds() is exactly
/// 0.0 at kOff, so a disabled stopwatch costs one relaxed load and no clock
/// syscalls. Phase accounting throughout the stack uses this.
class StopWatch {
 public:
  StopWatch() : armed_(enabled(Level::kCounters)) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  bool armed() const noexcept { return armed_; }
  std::chrono::steady_clock::time_point start() const noexcept { return start_; }
  double seconds() const noexcept {
    if (!armed_) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_{};
};

// ---------------------------------------------------------------------------
// Registry

/// Looks up (creating on first use) the named instrument. References stay
/// valid for the process lifetime; hold them in function-local statics.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);
Timer& timer(const std::string& name);

/// Snapshot of every registered instrument as one JSON object — counters and
/// gauges as numbers, timers as {seconds, count}, histograms as {count, sum,
/// buckets: {"2^k": n, ...}} — parseable by util/json.h. The kMetrics request
/// serves exactly this.
std::string metrics_json();

/// Zeroes every registered instrument (tests and benches; the registry keeps
/// its entries, so held references stay valid).
void reset_all();

}  // namespace subfed::telemetry
