#include "telemetry/trace.h"

#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/check.h"

namespace subfed::telemetry {

namespace {

std::chrono::steady_clock::time_point trace_epoch() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t to_us(std::chrono::steady_clock::time_point t) noexcept {
  const auto d = std::chrono::duration_cast<std::chrono::microseconds>(t - trace_epoch());
  return d.count() > 0 ? static_cast<std::uint64_t>(d.count()) : 0;
}

/// Per-thread span buffer. The producing thread appends under the buffer's
/// own (uncontended) mutex; drain_spans steals the contents from any thread.
struct SpanBuffer {
  std::mutex mutex;
  std::vector<Span> spans;
};

std::mutex& buffers_mutex() {
  static std::mutex m;
  return m;
}

/// shared_ptr ownership: the registry keeps a buffer alive after its thread
/// exited, so late drains still see every span.
std::vector<std::shared_ptr<SpanBuffer>>& buffers() {
  static std::vector<std::shared_ptr<SpanBuffer>> b;
  return b;
}

std::uint64_t this_thread_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SpanBuffer& this_thread_buffer() {
  thread_local std::shared_ptr<SpanBuffer> buffer = [] {
    auto b = std::make_shared<SpanBuffer>();
    std::lock_guard<std::mutex> lock(buffers_mutex());
    buffers().push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

std::uint64_t trace_now_us() noexcept { return to_us(std::chrono::steady_clock::now()); }

void record_span(const char* name, std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  if (!enabled(Level::kTrace)) return;
  Span span;
  span.name = name;
  span.start_us = to_us(start);
  const std::uint64_t end_us = to_us(end);
  span.dur_us = end_us > span.start_us ? end_us - span.start_us : 0;
  span.tid = this_thread_id();
  SpanBuffer& buffer = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.spans.push_back(std::move(span));
}

void record_span(const char* name, const StopWatch& watch) {
  if (!watch.armed() || !enabled(Level::kTrace)) return;
  record_span(name, watch.start(), std::chrono::steady_clock::now());
}

ScopedSpan::~ScopedSpan() {
  if (start_ == std::chrono::steady_clock::time_point{}) return;
  const auto end = std::chrono::steady_clock::now();
  if (timer_ != nullptr) {
    timer_->add_seconds(std::chrono::duration<double>(end - start_).count());
  }
  if (enabled(Level::kTrace)) record_span(name_, start_, end);
}

std::vector<Span> drain_spans() {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(buffers_mutex());
  for (const std::shared_ptr<SpanBuffer>& buffer : buffers()) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), std::make_move_iterator(buffer->spans.begin()),
               std::make_move_iterator(buffer->spans.end()));
    buffer->spans.clear();
  }
  return out;
}

std::string chrome_trace_json(const std::vector<Span>& spans) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const Span& span : spans) {
    os << (first ? "" : ",") << "\n  {\"name\": \"";
    for (const char c : span.name) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\", \"ph\": \"X\", \"ts\": " << span.start_us << ", \"dur\": " << span.dur_us
       << ", \"pid\": 1, \"tid\": " << span.tid << "}";
    first = false;
  }
  os << (spans.empty() ? "]" : "\n]") << "}\n";
  return os.str();
}

void write_chrome_trace(const std::string& path, const std::vector<Span>& spans) {
  std::ofstream out(path, std::ios::trunc);
  SUBFEDAVG_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << chrome_trace_json(spans);
  out.flush();
  SUBFEDAVG_CHECK(out.good(), "failed writing '" << path << "'");
}

}  // namespace subfed::telemetry
