// Scoped trace spans on the monotonic clock, buffered per thread.
//
// At Level::kTrace, record_span / ScopedSpan append {name, start, dur, tid}
// records to a thread-local buffer; the owner (ServerLoop, a bench, a test)
// drains every thread's buffer with drain_spans() and exports the timeline as
// Chrome trace_event JSON — open chrome://tracing (or https://ui.perfetto.dev)
// and load the file to see a round's phase breakdown:
//
//   sample → broadcast_encode → transport_exchange → collect → aggregate → eval
//
// plus codec, framed-I/O, client-store, and checkpoint spans. Below kTrace
// everything here is a no-op; spans never touch RNG streams or payload bytes,
// so enabling them cannot change any federation result.
//
// Buffers are owned jointly by the thread and the global registry, so a
// worker thread that exits before the drain loses nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace subfed::telemetry {

/// One completed span. Times are microseconds on the process-local monotonic
/// epoch (first telemetry use) — exactly what trace_event's "ts"/"dur" want.
struct Span {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t tid = 0;
};

/// Microseconds since the process-local monotonic epoch.
std::uint64_t trace_now_us() noexcept;

/// Records a completed span (no-op below kTrace).
void record_span(const char* name, std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end);
/// Convenience: records [watch.start(), now] when the watch was armed and the
/// level is kTrace. Pairs with the StopWatch phase accounting — one clock
/// read serves both the Timer and the span.
void record_span(const char* name, const StopWatch& watch);

/// RAII span: times construction → destruction. When `timer` is non-null the
/// duration also accumulates there at kCounters and above.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Timer* timer = nullptr)
      : name_(name), timer_(timer) {
    if (enabled(Level::kCounters)) start_ = std::chrono::steady_clock::now();
    else start_ = {};
  }
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Timer* timer_;
  std::chrono::steady_clock::time_point start_{};
};

/// Collects and clears every thread's span buffer (any thread may call).
std::vector<Span> drain_spans();

/// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds) for
/// chrome://tracing or Perfetto.
std::string chrome_trace_json(const std::vector<Span>& spans);
/// Writes chrome_trace_json to `path` (overwrites). Throws CheckError on I/O
/// failure.
void write_chrome_trace(const std::string& path, const std::vector<Span>& spans);

}  // namespace subfed::telemetry
