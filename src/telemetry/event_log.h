// Append-only JSONL event log with size-based rotation and durable cursors.
//
// The ServerLoop appends one JSON record per line each round; readers page
// through the stream with logical byte offsets via tail() — the same cursor a
// kMetricsTail client passes over the wire. Offsets are *logical*: cursor N
// means "N bytes ever appended to this log", independent of rotation, so a
// client that saved a cursor keeps its place across server restarts and log
// rotations.
//
// Rotation keeps exactly two files: `path` (current) and `path.1` (previous).
// Every file opens with a header record `{"event":"log_open","base":N}`
// recording the logical offset of its first byte; reopening an existing log
// (kill-9 restart) recovers the logical position from that header plus the
// file size, so no sidecar state is needed.
//
// Single-owner by design: EventLog is NOT thread-safe. The ServerLoop owns it
// and appends from its own thread only; tail() is called from the same
// request-servicing thread.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace subfed::telemetry {

class EventLog {
 public:
  /// Opens (or reopens) the log at `path`. Rotates to `path.1` whenever the
  /// current file would exceed `rotate_bytes` after an append.
  EventLog(std::string path, std::uint64_t rotate_bytes);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one JSON record as a line (a trailing '\n' is added) and flushes.
  /// `line` must be a single line of valid JSON without embedded newlines.
  void append(const std::string& line);

  /// Logical offset one past the last appended byte — the cursor a reader
  /// that is fully caught up would hold.
  std::uint64_t end_cursor() const noexcept { return base_ + size_; }

  /// Reads up to `max_bytes` starting at logical offset `cursor`, trimmed to
  /// whole lines, and stores the cursor for the next call in `*next`. A
  /// cursor pointing at rotated-away data is clamped forward to the oldest
  /// retained byte. Returns an empty string (with *next == cursor clamped)
  /// when the reader is caught up.
  std::string tail(std::uint64_t cursor, std::size_t max_bytes, std::uint64_t* next) const;

  const std::string& path() const noexcept { return path_; }
  /// Path of the rotated-out predecessor file ("<path>.1").
  std::string rotated_path() const { return path_ + ".1"; }

 private:
  void open_fresh(std::uint64_t base);
  void rotate();

  std::string path_;
  std::uint64_t rotate_bytes_ = 0;
  std::FILE* file_ = nullptr;
  std::uint64_t base_ = 0;  // logical offset of current file's first byte
  std::uint64_t size_ = 0;  // bytes in the current file
};

}  // namespace subfed::telemetry
