#include "telemetry/event_log.h"

#include <sys/stat.h>

#include <cstring>
#include <vector>

#include "util/check.h"
#include "util/json.h"

namespace subfed::telemetry {

namespace {

/// File size in bytes, or -1 when the file does not exist.
long long file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<long long>(st.st_size);
}

/// Reads the first line of `path` and returns the "base" field of its
/// log_open header, or -1 when the file is missing/empty/not a log.
long long read_header_base(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::string line;
  int c;
  while ((c = std::fgetc(f)) != EOF && c != '\n') line.push_back(static_cast<char>(c));
  std::fclose(f);
  if (line.empty()) return -1;
  try {
    const JsonValue header = parse_json(line);
    if (header.string_or("event", "") != "log_open") return -1;
    const JsonValue* base = header.find("base");
    if (base == nullptr || !base->is_number() || base->number < 0) return -1;
    return static_cast<long long>(base->number);
  } catch (const CheckError&) {
    return -1;
  }
}

/// Reads up to `max_bytes` from `path` starting at byte `offset`.
std::string read_chunk(const std::string& path, std::uint64_t offset, std::size_t max_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
    out.resize(max_bytes);
    const std::size_t got = std::fread(out.data(), 1, max_bytes, f);
    out.resize(got);
  }
  std::fclose(f);
  return out;
}

/// Trims `chunk` to end on a line boundary so readers always receive whole
/// JSONL records. A chunk with no newline at all is returned as-is — the
/// record is longer than the page, and returning nothing would stall the
/// cursor forever.
void trim_to_lines(std::string* chunk) {
  const std::size_t last = chunk->rfind('\n');
  if (last != std::string::npos) chunk->resize(last + 1);
}

}  // namespace

EventLog::EventLog(std::string path, std::uint64_t rotate_bytes)
    : path_(std::move(path)), rotate_bytes_(rotate_bytes) {
  SUBFEDAVG_CHECK(!path_.empty(), "event log path must be non-empty");
  SUBFEDAVG_CHECK(rotate_bytes_ >= 512, "rotate_bytes too small: " << rotate_bytes_);
  const long long existing_base = read_header_base(path_);
  const long long existing_size = file_size(path_);
  if (existing_base >= 0 && existing_size > 0) {
    // Reopen after a restart (possibly kill-9): the header gives the logical
    // offset of the file's first byte, the size gives everything since.
    base_ = static_cast<std::uint64_t>(existing_base);
    size_ = static_cast<std::uint64_t>(existing_size);
    file_ = std::fopen(path_.c_str(), "ab");
    SUBFEDAVG_CHECK(file_ != nullptr, "cannot open event log '" << path_ << "'");
  } else {
    open_fresh(0);
  }
}

EventLog::~EventLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void EventLog::open_fresh(std::uint64_t base) {
  base_ = base;
  size_ = 0;
  file_ = std::fopen(path_.c_str(), "wb");
  SUBFEDAVG_CHECK(file_ != nullptr, "cannot open event log '" << path_ << "'");
  std::string header = "{\"event\": \"log_open\", \"base\": ";
  header += std::to_string(base_);
  header += "}\n";
  const std::size_t wrote = std::fwrite(header.data(), 1, header.size(), file_);
  SUBFEDAVG_CHECK(wrote == header.size(), "short write to event log '" << path_ << "'");
  std::fflush(file_);
  size_ += header.size();
}

void EventLog::rotate() {
  std::fclose(file_);
  file_ = nullptr;
  // Overwrites any older path.1 — the log keeps exactly two generations.
  SUBFEDAVG_CHECK(std::rename(path_.c_str(), rotated_path().c_str()) == 0,
                  "cannot rotate '" << path_ << "' to '" << rotated_path() << "'");
  open_fresh(base_ + size_);
}

void EventLog::append(const std::string& line) {
  SUBFEDAVG_CHECK(line.find('\n') == std::string::npos,
                  "event log records must be single lines");
  if (size_ + line.size() + 1 > rotate_bytes_) rotate();
  const std::size_t wrote = std::fwrite(line.data(), 1, line.size(), file_);
  SUBFEDAVG_CHECK(wrote == line.size(), "short write to event log '" << path_ << "'");
  SUBFEDAVG_CHECK(std::fputc('\n', file_) == '\n',
                  "short write to event log '" << path_ << "'");
  std::fflush(file_);
  size_ += line.size() + 1;
}

std::string EventLog::tail(std::uint64_t cursor, std::size_t max_bytes,
                           std::uint64_t* next) const {
  SUBFEDAVG_CHECK(next != nullptr, "tail needs a next-cursor out parameter");
  SUBFEDAVG_CHECK(max_bytes > 0, "tail page size must be positive");
  // Oldest retained logical byte: the rotated predecessor when it is still
  // part of this log's logical stream, else the current file's base.
  std::uint64_t oldest = base_;
  std::uint64_t prev_base = 0;
  bool have_prev = false;
  if (base_ > 0) {
    const long long pb = read_header_base(rotated_path());
    if (pb >= 0) {
      const long long psize = file_size(rotated_path());
      if (psize > 0 && static_cast<std::uint64_t>(pb) + static_cast<std::uint64_t>(psize) == base_) {
        prev_base = static_cast<std::uint64_t>(pb);
        have_prev = true;
        oldest = prev_base;
      }
    }
  }
  if (cursor < oldest) cursor = oldest;          // data rotated away under the reader
  const std::uint64_t end = end_cursor();
  if (cursor >= end) {                            // caught up (or stale over-run cursor)
    *next = end;
    return {};
  }
  std::string chunk;
  if (have_prev && cursor < base_) {
    chunk = read_chunk(rotated_path(), cursor - prev_base, max_bytes);
  } else {
    chunk = read_chunk(path_, cursor - base_, max_bytes);
    if (chunk.size() > end - cursor) chunk.resize(end - cursor);
  }
  trim_to_lines(&chunk);
  *next = cursor + chunk.size();
  return chunk;
}

}  // namespace subfed::telemetry
