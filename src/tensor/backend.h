// Pluggable math backend: the stateless kernel sets every GEMM/im2col/col2im
// in the hot path used to go through directly. Since the Device redesign
// (tensor/device.h) these remain as (a) the raw kernel dispatch each Device
// executes through, and (b) the backward-compatible `math_backend()` lookup —
// layers now route through a storage-owning Device that adds an execution-plan
// cache, workspace leases, fused epilogues, and an fp16 compute mode on top.
//
// Three backends ship with the library:
//  * "naive"   — the original ikj triple loops (tensor/gemm.h), kept as the
//                correctness oracle every other backend is tested against.
//  * "blocked" — cache-blocked, register-tiled kernels (4×16 micro-tiles),
//                parallelized over row panels on util/thread_pool when the
//                problem is large enough. The process default.
//  * "sparse"  — inspects the weight-side operand per call; when its density
//                drops below a threshold (pruning masks zero weights exactly)
//                it packs the operand into CSR and runs a sparsity-aware
//                kernel, otherwise it falls back to the blocked kernels. This
//                is what turns Sub-FedAvg's pruned models into real
//                wall-clock speedups instead of theoretical FLOP counts.
//
// Determinism: for a fixed backend, every output element is accumulated in
// ascending-k order regardless of how row panels are distributed over
// threads, so results are bit-identical for any math_threads value. Across
// backends results may differ by floating-point contraction (FMA) — the
// cross-backend test suite compares with a tight tolerance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/gemm.h"

namespace subfed {

/// Abstract kernel set. All matrices are row-major; `accumulate` selects
/// C += ... instead of C = ... . Implementations must be safe to call
/// concurrently from many threads (they are shared singletons).
class MathBackend {
 public:
  virtual ~MathBackend() = default;

  virtual std::string name() const = 0;

  /// C[m×n] (+)= A[m×k] · B[k×n].
  virtual void gemm_nn(const float* a, const float* b, float* c, std::size_t m,
                       std::size_t k, std::size_t n, bool accumulate) const = 0;
  /// C[m×n] (+)= Aᵀ · B where A is stored [k×m].
  virtual void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
                       std::size_t k, std::size_t n, bool accumulate) const = 0;
  /// C[m×n] (+)= A · Bᵀ where B is stored [n×k].
  virtual void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
                       std::size_t k, std::size_t n, bool accumulate) const = 0;

  /// Patch unrolling / scattering. The defaults delegate to the reference
  /// kernels in tensor/gemm.h; backends may override (e.g. fused variants).
  virtual void im2col(const float* image, const ConvGeometry& g, float* columns,
                      std::size_t col_stride, std::size_t col_offset) const;
  virtual void col2im(const float* columns, const ConvGeometry& g, float* image,
                      std::size_t col_stride, std::size_t col_offset) const;
};

/// Looks up a backend by name ("naive" | "blocked" | "sparse"). The returned
/// reference is a process-lifetime singleton. Throws CheckError (listing the
/// known names) on an unknown name.
/// Deprecated: new code should resolve a Device via get_device() in
/// tensor/device.h — backend names alias onto the Device registry there.
const MathBackend& math_backend(const std::string& name);

/// True when `name` resolves to a registered backend.
bool has_math_backend(const std::string& name);

/// Sorted names of every registered backend.
std::vector<std::string> list_math_backends();

/// The process-wide default used by layers with no explicit backend:
/// SUBFEDAVG_BACKEND when set, otherwise "blocked". An unknown env value
/// throws CheckError on first resolution (ExperimentSpec::make_context
/// resolves eagerly, so misspellings fail before training starts).
const MathBackend& default_math_backend();

/// Caps the number of row panels a single GEMM fans out to on the global
/// thread pool. 0 (the default) means "pool size". Values only affect
/// wall-clock time, never results — kernels accumulate each output element in
/// a thread-count-independent order. Initialized from SUBFEDAVG_MATH_THREADS.
void set_math_threads(std::size_t n) noexcept;
std::size_t math_threads() noexcept;

/// Fraction of nonzero entries below which the sparse backend packs the
/// weight operand into CSR (default 0.25, env SUBFEDAVG_SPARSE_DENSITY).
double sparse_density_threshold() noexcept;

}  // namespace subfed
