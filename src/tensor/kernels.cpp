#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "tensor/backend.h"
#include "util/env.h"

namespace subfed {

// --- process-wide kernel knobs (declared in kernels.h) -----------------------

namespace {
std::atomic<std::size_t> g_math_threads{static_cast<std::size_t>(
    std::max<std::int64_t>(0, env_int("SUBFEDAVG_MATH_THREADS", 0)))};
}  // namespace

void set_math_threads(std::size_t n) noexcept {
  g_math_threads.store(n, std::memory_order_relaxed);
}

std::size_t math_threads() noexcept {
  return g_math_threads.load(std::memory_order_relaxed);
}

double sparse_density_threshold() noexcept {
  static const double threshold = env_double("SUBFEDAVG_SPARSE_DENSITY", 0.25);
  return threshold;
}

namespace kern {

bool handle_trivial(float* c, std::size_t m, std::size_t k, std::size_t n,
                    bool accumulate) noexcept {
  if (m == 0 || n == 0) return true;
  if (k == 0) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    return true;
  }
  return false;
}

std::size_t plan_chunks(std::size_t m, std::size_t flops) noexcept {
  if (flops < kMinParallelFlops) return 1;
  std::size_t threads = g_math_threads.load(std::memory_order_relaxed);
  const std::size_t pool = ThreadPool::global().size();
  if (threads == 0 || threads > pool) threads = pool;
  const std::size_t panels = (m + kMr - 1) / kMr;
  return std::max<std::size_t>(1, std::min(threads, panels));
}

// --- blocked kernels ---------------------------------------------------------
// Register-tiled kMr×kNr micro-kernel: the C tile lives in registers across
// the whole k loop (the naive kernel re-streams the C row from cache for
// every k step), and the j dimension vectorizes over unit-stride B rows.
//
// The baseline x86-64 ISA (SSE2) has too few/too narrow registers for the
// tile, so every panel entry point is compiled twice — a portable build and
// an AVX2+FMA build — and dispatched once per call on a cached cpuid check.
// The hot loops must live inside those entry points (marked always-inline),
// not behind a std::function boundary, so each build vectorizes end to end.
//
// Determinism: each output element is accumulated in ascending-k order no
// matter how panels are split, so any math_threads value produces
// bit-identical results.

#if defined(__GNUC__) || defined(__clang__)
#define SUBFED_ALWAYS_INLINE inline __attribute__((always_inline))
#define SUBFED_NOINLINE __attribute__((noinline))
#else
#define SUBFED_ALWAYS_INLINE inline
#define SUBFED_NOINLINE
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SUBFED_X86_DISPATCH 1
#define SUBFED_AVX2_TARGET __attribute__((target("avx2,fma")))
namespace {
bool cpu_has_avx2_fma() noexcept {
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
}
}  // namespace
#else
#define SUBFED_AVX2_TARGET
#endif

namespace {

/// The one compiled instance of the epilogue arithmetic. Deliberately
/// noinline and outside any target-attributed region: FMA contraction inside
/// the AVX2 clones would otherwise change the epilogue's rounding relative to
/// the unfused BatchNorm2d/ReLU passes (plain SSE2 code), breaking the
/// fused ≡ unfused bit-identity contract. One pinned instance makes the
/// fused store-back, the sparse/naive post-pass, and the unfused layer chain
/// all round identically.
///
/// Applies the epilogue to `count` elements of output row `row`:
///   y = accumulate ? dst[j] + src[j] : src[j]; then bias/bn/relu (see
///   GemmEpilogue). src may alias dst (in-place post-pass).
SUBFED_NOINLINE void epilogue_store(const float* src, float* dst, std::size_t count,
                                    std::size_t row, const GemmEpilogue& ep,
                                    bool accumulate) noexcept {
  float bias = 0.0f;
  if (ep.bias != nullptr) bias = ep.bias[row];
  const bool has_bn = ep.mean != nullptr;
  // Same expression (and float ops) as BatchNorm2d's eval forward.
  const float inv_std = has_bn ? 1.0f / std::sqrt(ep.var[row] + ep.eps) : 0.0f;
  const float g = has_bn ? ep.gamma[row] : 0.0f;
  const float b = has_bn ? ep.beta[row] : 0.0f;
  const float m = has_bn ? ep.mean[row] : 0.0f;
  for (std::size_t j = 0; j < count; ++j) {
    float y = accumulate ? dst[j] + src[j] : src[j];
    // Conv2d adds its bias only when nonzero (the zero case is a memcpy), so
    // the fused path must skip the add too: y + 0.0f would turn -0.0 into
    // +0.0 and break bit-identity.
    if (bias != 0.0f) y += bias;
    if (has_bn) y = g * (y - m) * inv_std + b;
    if (ep.relu && !(y > 0.0f)) y = 0.0f;
    dst[j] = y;
  }
}

// GCC/Clang generic vector extensions: the autovectorizer does not keep the
// register tile live across the k loop on its own, so the accumulators are
// explicit 8-wide vectors. The default clone lowers them to SSE pairs; other
// compilers get the scalar tile (correct, slower).
#if defined(__GNUC__) || defined(__clang__)
#define SUBFED_VECTOR_TILE 1
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"  // load8/store8 are always inlined
typedef float v8sf __attribute__((vector_size(32)));
SUBFED_ALWAYS_INLINE v8sf load8(const float* p) noexcept {
  v8sf v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
SUBFED_ALWAYS_INLINE void store8(float* p, v8sf v) noexcept {
  std::memcpy(p, &v, sizeof(v));
}
#endif

/// One MR×kNr register tile: rows i..i+MR of A against a kNr-wide B panel
/// (`bpanel`, row stride ldb — either b + j inside the full matrix, or a
/// packed zero-padded [k×kNr] buffer). Writes back the first `nr` columns to
/// cpanel (= c + j). Every output element accumulates in ascending-k order.
/// With kFused the accumulators route through epilogue_store instead of the
/// raw store, so the epilogue reads them straight out of registers without a
/// second pass over the output tensor.
template <std::size_t MR, bool kTransposedA, bool kFused>
SUBFED_ALWAYS_INLINE void micro_tile(const float* a, std::size_t i, std::size_t lda,
                                     const float* bpanel, std::size_t ldb, float* cpanel,
                                     std::size_t ldc, std::size_t k, std::size_t nr,
                                     bool accumulate, const GemmEpilogue* ep) noexcept {
#if SUBFED_VECTOR_TILE
  static_assert(kNr == 16, "tile uses two 8-wide vectors per row");
  v8sf acc0[MR] = {}, acc1[MR] = {};
  for (std::size_t p = 0; p < k; ++p) {
    const float* brow = bpanel + p * ldb;
    const v8sf b0 = load8(brow), b1 = load8(brow + 8);
    for (std::size_t r = 0; r < MR; ++r) {
      // A stored [k×m] keeps the panel's row values contiguous.
      const float value = kTransposedA ? a[p * lda + i + r] : a[(i + r) * lda + p];
      const v8sf av = v8sf{} + value;  // broadcast
      acc0[r] += av * b0;
      acc1[r] += av * b1;
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    float* crow = cpanel + (i + r) * ldc;
    if constexpr (kFused) {
      float tile[kNr];
      store8(tile, acc0[r]);
      store8(tile + 8, acc1[r]);
      epilogue_store(tile, crow, nr, i + r, *ep, accumulate);
    } else if (nr == kNr) {
      if (accumulate) {
        store8(crow, load8(crow) + acc0[r]);
        store8(crow + 8, load8(crow + 8) + acc1[r]);
      } else {
        store8(crow, acc0[r]);
        store8(crow + 8, acc1[r]);
      }
    } else {
      float tile[kNr];
      store8(tile, acc0[r]);
      store8(tile + 8, acc1[r]);
      for (std::size_t jj = 0; jj < nr; ++jj) {
        crow[jj] = accumulate ? crow[jj] + tile[jj] : tile[jj];
      }
    }
  }
#else
  float acc[MR][kNr] = {};
  for (std::size_t p = 0; p < k; ++p) {
    const float* brow = bpanel + p * ldb;
    for (std::size_t r = 0; r < MR; ++r) {
      const float av = kTransposedA ? a[p * lda + i + r] : a[(i + r) * lda + p];
      for (std::size_t jj = 0; jj < kNr; ++jj) acc[r][jj] += av * brow[jj];
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    float* crow = cpanel + (i + r) * ldc;
    if constexpr (kFused) {
      epilogue_store(acc[r], crow, nr, i + r, *ep, accumulate);
    } else {
      for (std::size_t jj = 0; jj < nr; ++jj) {
        crow[jj] = accumulate ? crow[jj] + acc[r][jj] : acc[r][jj];
      }
    }
  }
#endif
}

#if SUBFED_VECTOR_TILE
#pragma GCC diagnostic pop
#endif

/// Per-thread packing scratch for partial/transposed B panels, grown on
/// demand and reused across calls so the tail path does no steady-state
/// allocation (matching the conv workspace's no-per-call-allocation goal).
std::vector<float>& packing_scratch(std::size_t size) {
  thread_local std::vector<float> scratch;
  if (scratch.size() < size) scratch.resize(size);
  return scratch;
}

/// Rows [i0, i1) of C against one B panel: full kMr tiles plus single-row
/// tiles for the tail. Which rows take the tail path depends only on i1
/// (always the matrix edge or a kMr-aligned chunk boundary), and both tile
/// widths accumulate identically, so threading cannot change results.
template <bool kTransposedA, bool kFused>
SUBFED_ALWAYS_INLINE void tile_rows(const float* a, std::size_t lda, const float* bpanel,
                                    std::size_t ldb, float* cpanel, std::size_t ldc,
                                    std::size_t i0, std::size_t i1, std::size_t k,
                                    std::size_t nr, bool accumulate,
                                    const GemmEpilogue* ep) noexcept {
  std::size_t i = i0;
  for (; i + kMr <= i1; i += kMr) {
    micro_tile<kMr, kTransposedA, kFused>(a, i, lda, bpanel, ldb, cpanel, ldc, k, nr,
                                          accumulate, ep);
  }
  for (; i < i1; ++i) {
    micro_tile<1, kTransposedA, kFused>(a, i, lda, bpanel, ldb, cpanel, ldc, k, nr,
                                        accumulate, ep);
  }
}

/// nn/tn panel body: B is row-major [k×n]; full kNr column panels run
/// against B in place, the column tail is packed zero-padded so the same
/// micro-tile applies. Always-inline so the multiversioned wrappers below
/// compile the whole loop nest per ISA (target_clones cannot attach to
/// templates directly).
template <bool kTransposedA, bool kFused>
SUBFED_ALWAYS_INLINE void gemm_panel(const float* a, const float* b, float* c,
                                     std::size_t lda, std::size_t k, std::size_t n,
                                     std::size_t i0, std::size_t i1, bool accumulate,
                                     const GemmEpilogue* ep) {
  const std::size_t tail = n % kNr;
  const std::size_t j_end = n - tail;
  for (std::size_t j = 0; j < j_end; j += kNr) {
    tile_rows<kTransposedA, kFused>(a, lda, b + j, n, c + j, n, i0, i1, k, kNr,
                                    accumulate, ep);
  }
  if (tail != 0) {
    std::vector<float>& packed = packing_scratch(k * kNr);
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t jj = 0; jj < tail; ++jj) {
        packed[p * kNr + jj] = b[p * n + j_end + jj];
      }
      for (std::size_t jj = tail; jj < kNr; ++jj) packed[p * kNr + jj] = 0.0f;
    }
    tile_rows<kTransposedA, kFused>(a, lda, packed.data(), kNr, c + j_end, n, i0, i1, k,
                                    tail, accumulate, ep);
  }
}

/// nt panel body: B is stored [n×k], so every kNr-column panel is packed
/// transposed (zero-padded) into [k×kNr]; packing costs k·n per chunk and
/// amortizes over the chunk's rows.
SUBFED_ALWAYS_INLINE void gemm_panel_nt_body(const float* a, const float* b, float* c,
                                             std::size_t k, std::size_t n, std::size_t i0,
                                             std::size_t i1, bool accumulate) {
  std::vector<float>& packed = packing_scratch(k * kNr);
  for (std::size_t j = 0; j < n; j += kNr) {
    const std::size_t nr = std::min(kNr, n - j);
    if (nr < kNr) std::fill_n(packed.begin(), k * kNr, 0.0f);
    for (std::size_t jj = 0; jj < nr; ++jj) {
      const float* brow = b + (j + jj) * k;
      for (std::size_t p = 0; p < k; ++p) packed[p * kNr + jj] = brow[p];
    }
    tile_rows<false, false>(a, k, packed.data(), kNr, c + j, n, i0, i1, k, nr, accumulate,
                            nullptr);
  }
}

// Dispatched entry points: the AVX2+FMA variants recompile the same inlined
// loop nests with wider registers and fused multiply-adds; the plain variants
// are the portable fallback (and the only build on non-x86 targets).
#if SUBFED_X86_DISPATCH
SUBFED_AVX2_TARGET void gemm_panel_nn_avx2(const float* a, const float* b, float* c,
                                           std::size_t lda, std::size_t k, std::size_t n,
                                           std::size_t i0, std::size_t i1,
                                           bool accumulate) {
  gemm_panel<false, false>(a, b, c, lda, k, n, i0, i1, accumulate, nullptr);
}
SUBFED_AVX2_TARGET void gemm_panel_tn_avx2(const float* a, const float* b, float* c,
                                           std::size_t lda, std::size_t k, std::size_t n,
                                           std::size_t i0, std::size_t i1,
                                           bool accumulate) {
  gemm_panel<true, false>(a, b, c, lda, k, n, i0, i1, accumulate, nullptr);
}
SUBFED_AVX2_TARGET void gemm_panel_nt_avx2(const float* a, const float* b, float* c,
                                           std::size_t k, std::size_t n, std::size_t i0,
                                           std::size_t i1, bool accumulate) {
  gemm_panel_nt_body(a, b, c, k, n, i0, i1, accumulate);
}
SUBFED_AVX2_TARGET void gemm_panel_nn_fused_avx2(const float* a, const float* b, float* c,
                                                 std::size_t lda, std::size_t k,
                                                 std::size_t n, std::size_t i0,
                                                 std::size_t i1, bool accumulate,
                                                 const GemmEpilogue& ep) {
  gemm_panel<false, true>(a, b, c, lda, k, n, i0, i1, accumulate, &ep);
}
#endif

}  // namespace

void gemm_panel_nn(const float* a, const float* b, float* c, std::size_t lda,
                   std::size_t k, std::size_t n, std::size_t i0, std::size_t i1,
                   bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    gemm_panel_nn_avx2(a, b, c, lda, k, n, i0, i1, accumulate);
    return;
  }
#endif
  gemm_panel<false, false>(a, b, c, lda, k, n, i0, i1, accumulate, nullptr);
}

void gemm_panel_tn(const float* a, const float* b, float* c, std::size_t lda,
                   std::size_t k, std::size_t n, std::size_t i0, std::size_t i1,
                   bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    gemm_panel_tn_avx2(a, b, c, lda, k, n, i0, i1, accumulate);
    return;
  }
#endif
  gemm_panel<true, false>(a, b, c, lda, k, n, i0, i1, accumulate, nullptr);
}

void gemm_panel_nt(const float* a, const float* b, float* c, std::size_t k, std::size_t n,
                   std::size_t i0, std::size_t i1, bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    gemm_panel_nt_avx2(a, b, c, k, n, i0, i1, accumulate);
    return;
  }
#endif
  gemm_panel_nt_body(a, b, c, k, n, i0, i1, accumulate);
}

void gemm_panel_nn_fused(const float* a, const float* b, float* c, std::size_t lda,
                         std::size_t k, std::size_t n, std::size_t i0, std::size_t i1,
                         bool accumulate, const GemmEpilogue& ep) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    gemm_panel_nn_fused_avx2(a, b, c, lda, k, n, i0, i1, accumulate, ep);
    return;
  }
#endif
  gemm_panel<false, true>(a, b, c, lda, k, n, i0, i1, accumulate, &ep);
}

void apply_epilogue_rows(float* c, std::size_t n, std::size_t i0, std::size_t i1,
                         const GemmEpilogue& ep) noexcept {
  for (std::size_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    epilogue_store(crow, crow, n, i, ep, /*accumulate=*/false);
  }
}

// --- sparse kernels ----------------------------------------------------------
// Pruning masks zero weights exactly; when the weight-side operand's density
// drops below the threshold it is packed into CSR (ascending k within each
// row, matching the dense accumulation order) and the kernel only touches
// nonzeros.

double density(const float* data, std::size_t size) noexcept {
  if (size == 0) return 1.0;
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < size; ++i) nonzero += data[i] != 0.0f ? 1 : 0;
  return static_cast<double>(nonzero) / static_cast<double>(size);
}

Csr Csr::pack(const float* data, std::size_t rows, std::size_t cols) {
  Csr csr;
  csr.row_begin.resize(rows + 1, 0);
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < rows * cols; ++i) nnz += data[i] != 0.0f ? 1 : 0;
  csr.col.reserve(nnz);
  csr.val.reserve(nnz);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      if (row[c] != 0.0f) {
        csr.col.push_back(static_cast<std::uint32_t>(c));
        csr.val.push_back(row[c]);
      }
    }
    csr.row_begin[r + 1] = static_cast<std::uint32_t>(csr.col.size());
  }
  return csr;
}

Csr Csr::pack_transposed(const float* data, std::size_t rows, std::size_t cols) {
  Csr csr;
  csr.row_begin.assign(cols + 1, 0);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    if (data[i] != 0.0f) ++csr.row_begin[i % cols + 1];
  }
  for (std::size_t c = 0; c < cols; ++c) csr.row_begin[c + 1] += csr.row_begin[c];
  csr.col.resize(csr.row_begin[cols]);
  csr.val.resize(csr.row_begin[cols]);
  std::vector<std::uint32_t> cursor(csr.row_begin.begin(), csr.row_begin.end() - 1);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      if (row[c] != 0.0f) {
        const std::uint32_t slot = cursor[c]++;
        csr.col[slot] = static_cast<std::uint32_t>(r);
        csr.val[slot] = row[c];
      }
    }
  }
  return csr;
}

namespace {

SUBFED_ALWAYS_INLINE void sparse_axpy_body(const std::uint32_t* row_begin,
                                           const std::uint32_t* col, const float* val,
                                           const float* b, float* c, std::size_t n,
                                           std::size_t i0, std::size_t i1,
                                           bool accumulate) {
  for (std::size_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    if (!accumulate) std::memset(crow, 0, n * sizeof(float));
    for (std::uint32_t e = row_begin[i]; e < row_begin[i + 1]; ++e) {
      const float av = val[e];
      const float* brow = b + col[e] * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

SUBFED_ALWAYS_INLINE void sparse_dot_body(const std::uint32_t* row_begin,
                                          const std::uint32_t* col, const float* val,
                                          const float* a, float* c, std::size_t k,
                                          std::size_t n, std::size_t i0, std::size_t i1,
                                          bool accumulate) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::uint32_t e = row_begin[j]; e < row_begin[j + 1]; ++e) {
        acc += arow[col[e]] * val[e];
      }
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

#if SUBFED_X86_DISPATCH
SUBFED_AVX2_TARGET void sparse_axpy_panel_avx2(const std::uint32_t* row_begin,
                                               const std::uint32_t* col, const float* val,
                                               const float* b, float* c, std::size_t n,
                                               std::size_t i0, std::size_t i1,
                                               bool accumulate) {
  sparse_axpy_body(row_begin, col, val, b, c, n, i0, i1, accumulate);
}
SUBFED_AVX2_TARGET void sparse_dot_panel_avx2(const std::uint32_t* row_begin,
                                              const std::uint32_t* col, const float* val,
                                              const float* a, float* c, std::size_t k,
                                              std::size_t n, std::size_t i0,
                                              std::size_t i1, bool accumulate) {
  sparse_dot_body(row_begin, col, val, a, c, k, n, i0, i1, accumulate);
}
#endif

}  // namespace

void sparse_axpy_panel(const std::uint32_t* row_begin, const std::uint32_t* col,
                       const float* val, const float* b, float* c, std::size_t n,
                       std::size_t i0, std::size_t i1, bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    sparse_axpy_panel_avx2(row_begin, col, val, b, c, n, i0, i1, accumulate);
    return;
  }
#endif
  sparse_axpy_body(row_begin, col, val, b, c, n, i0, i1, accumulate);
}

void sparse_dot_panel(const std::uint32_t* row_begin, const std::uint32_t* col,
                      const float* val, const float* a, float* c, std::size_t k,
                      std::size_t n, std::size_t i0, std::size_t i1, bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    sparse_dot_panel_avx2(row_begin, col, val, a, c, k, n, i0, i1, accumulate);
    return;
  }
#endif
  sparse_dot_body(row_begin, col, val, a, c, k, n, i0, i1, accumulate);
}

}  // namespace kern
}  // namespace subfed
