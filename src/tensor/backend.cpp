#include "tensor/backend.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>

#include "util/check.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace subfed {

void MathBackend::im2col(const float* image, const ConvGeometry& g, float* columns,
                         std::size_t col_stride, std::size_t col_offset) const {
  im2col_strided(image, g, columns, col_stride, col_offset);
}

void MathBackend::col2im(const float* columns, const ConvGeometry& g, float* image,
                         std::size_t col_stride, std::size_t col_offset) const {
  col2im_strided(columns, g, image, col_stride, col_offset);
}

namespace {

// -- shared helpers ----------------------------------------------------------

/// Degenerate shapes every kernel handles up front: an empty output needs no
/// work; k == 0 means C is zeroed (or untouched when accumulating).
bool handle_trivial(float* c, std::size_t m, std::size_t k, std::size_t n,
                    bool accumulate) noexcept {
  if (m == 0 || n == 0) return true;
  if (k == 0) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    return true;
  }
  return false;
}

// -- naive backend -----------------------------------------------------------
// The seed kernels (tensor/gemm.cpp) plus the accumulate variants the layer
// refactor needs. Kept verbatim in spirit: ikj loops, zero-skip on the left
// operand. This backend is the correctness oracle for the other two.

class NaiveBackend final : public MathBackend {
 public:
  std::string name() const override { return "naive"; }

  void gemm_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (accumulate) {
      gemm_accumulate(a, b, c, m, k, n);
    } else {
      gemm(a, b, c, m, k, n);
    }
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (!accumulate) {
      gemm_at_b(a, b, c, m, k, n);
      return;
    }
    for (std::size_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (!accumulate) {
      gemm_a_bt(a, b, c, m, k, n);
      return;
    }
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
  }
};

// -- blocked backend ---------------------------------------------------------
// Register-tiled kMr×kNr micro-kernel: the C tile lives in registers across
// the whole k loop (the naive kernel re-streams the C row from cache for
// every k step), and the j dimension vectorizes over unit-stride B rows.
// Row panels are distributed over the global thread pool for large problems.
//
// The baseline x86-64 ISA (SSE2) has too few/too narrow registers for the
// tile, so every panel entry point is compiled twice — a portable build and
// an AVX2+FMA build — and dispatched once per call on a cached cpuid check.
// The hot loops must live inside those entry points (marked always-inline),
// not behind a std::function boundary, so each build vectorizes end to end.
//
// Determinism: each output element is accumulated in ascending-k order no
// matter how panels are split, so any math_threads value produces
// bit-identical results.

#if defined(__GNUC__) || defined(__clang__)
#define SUBFED_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define SUBFED_ALWAYS_INLINE inline
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SUBFED_X86_DISPATCH 1
#define SUBFED_AVX2_TARGET __attribute__((target("avx2,fma")))
bool cpu_has_avx2_fma() noexcept {
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
}
#else
#define SUBFED_AVX2_TARGET
#endif

constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 16;
/// Below this many FLOPs (2·m·k·n) a GEMM runs on the calling thread; pool
/// dispatch would cost more than it saves on LeNet-scale tiles.
constexpr std::size_t kMinParallelFlops = std::size_t{1} << 21;

std::atomic<std::size_t> g_math_threads{
    static_cast<std::size_t>(std::max<std::int64_t>(0, env_int("SUBFEDAVG_MATH_THREADS", 0)))};

/// Row panels a GEMM of `flops` total work over `m` rows may fan out to.
std::size_t plan_chunks(std::size_t m, std::size_t flops) noexcept {
  if (flops < kMinParallelFlops) return 1;
  // Inside a pool task (client training fans over the same global pool) the
  // pool is saturated: queued panels would only be drained by this thread
  // anyway, so skip the dispatch overhead and run sequentially.
  if (ThreadPool::current_thread_in_pool()) return 1;
  std::size_t threads = g_math_threads.load(std::memory_order_relaxed);
  const std::size_t pool = ThreadPool::global().size();
  if (threads == 0 || threads > pool) threads = pool;
  const std::size_t panels = (m + kMr - 1) / kMr;
  return std::max<std::size_t>(1, std::min(threads, panels));
}

/// Runs fn(i_begin, i_end) over [0, m) split into kMr-aligned chunks. The
/// alignment keeps the micro-kernel/edge-kernel boundary independent of the
/// chunk layout (see determinism note above).
template <typename Fn>
void for_row_chunks(std::size_t m, std::size_t flops, const Fn& fn) {
  const std::size_t chunks = plan_chunks(m, flops);
  if (chunks <= 1) {
    fn(0, m);
    return;
  }
  const std::size_t panels = (m + kMr - 1) / kMr;
  const std::size_t panels_per_chunk = (panels + chunks - 1) / chunks;
  ThreadPool::global().parallel_for(chunks, [&](std::size_t chunk) {
    const std::size_t i0 = chunk * panels_per_chunk * kMr;
    const std::size_t i1 = std::min(m, i0 + panels_per_chunk * kMr);
    if (i0 < m) fn(i0, i1);
  });
}

// GCC/Clang generic vector extensions: the autovectorizer does not keep the
// register tile live across the k loop on its own, so the accumulators are
// explicit 8-wide vectors. The default clone lowers them to SSE pairs; other
// compilers get the scalar tile (correct, slower).
#if defined(__GNUC__) || defined(__clang__)
#define SUBFED_VECTOR_TILE 1
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"  // load8/store8 are always inlined
typedef float v8sf __attribute__((vector_size(32)));
SUBFED_ALWAYS_INLINE v8sf load8(const float* p) noexcept {
  v8sf v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
SUBFED_ALWAYS_INLINE void store8(float* p, v8sf v) noexcept {
  std::memcpy(p, &v, sizeof(v));
}
#endif

/// One MR×kNr register tile: rows i..i+MR of A against a kNr-wide B panel
/// (`bpanel`, row stride ldb — either b + j inside the full matrix, or a
/// packed zero-padded [k×kNr] buffer). Writes back the first `nr` columns to
/// cpanel (= c + j). Every output element accumulates in ascending-k order.
template <std::size_t MR, bool kTransposedA>
SUBFED_ALWAYS_INLINE void micro_tile(const float* a, std::size_t i, std::size_t lda,
                                     const float* bpanel, std::size_t ldb, float* cpanel,
                                     std::size_t ldc, std::size_t k, std::size_t nr,
                                     bool accumulate) noexcept {
#if SUBFED_VECTOR_TILE
  static_assert(kNr == 16, "tile uses two 8-wide vectors per row");
  v8sf acc0[MR] = {}, acc1[MR] = {};
  for (std::size_t p = 0; p < k; ++p) {
    const float* brow = bpanel + p * ldb;
    const v8sf b0 = load8(brow), b1 = load8(brow + 8);
    for (std::size_t r = 0; r < MR; ++r) {
      // A stored [k×m] keeps the panel's row values contiguous.
      const float value = kTransposedA ? a[p * lda + i + r] : a[(i + r) * lda + p];
      const v8sf av = v8sf{} + value;  // broadcast
      acc0[r] += av * b0;
      acc1[r] += av * b1;
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    float* crow = cpanel + (i + r) * ldc;
    if (nr == kNr) {
      if (accumulate) {
        store8(crow, load8(crow) + acc0[r]);
        store8(crow + 8, load8(crow + 8) + acc1[r]);
      } else {
        store8(crow, acc0[r]);
        store8(crow + 8, acc1[r]);
      }
    } else {
      float tile[kNr];
      store8(tile, acc0[r]);
      store8(tile + 8, acc1[r]);
      for (std::size_t jj = 0; jj < nr; ++jj) {
        crow[jj] = accumulate ? crow[jj] + tile[jj] : tile[jj];
      }
    }
  }
#else
  float acc[MR][kNr] = {};
  for (std::size_t p = 0; p < k; ++p) {
    const float* brow = bpanel + p * ldb;
    for (std::size_t r = 0; r < MR; ++r) {
      const float av = kTransposedA ? a[p * lda + i + r] : a[(i + r) * lda + p];
      for (std::size_t jj = 0; jj < kNr; ++jj) acc[r][jj] += av * brow[jj];
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    float* crow = cpanel + (i + r) * ldc;
    for (std::size_t jj = 0; jj < nr; ++jj) {
      crow[jj] = accumulate ? crow[jj] + acc[r][jj] : acc[r][jj];
    }
  }
#endif
}

#if SUBFED_VECTOR_TILE
#pragma GCC diagnostic pop
#endif

/// Per-thread packing scratch for partial/transposed B panels, grown on
/// demand and reused across calls so the tail path does no steady-state
/// allocation (matching the conv workspace's no-per-call-allocation goal).
std::vector<float>& packing_scratch(std::size_t size) {
  thread_local std::vector<float> scratch;
  if (scratch.size() < size) scratch.resize(size);
  return scratch;
}

/// Rows [i0, i1) of C against one B panel: full kMr tiles plus single-row
/// tiles for the tail. Which rows take the tail path depends only on i1
/// (always the matrix edge or a kMr-aligned chunk boundary), and both tile
/// widths accumulate identically, so threading cannot change results.
template <bool kTransposedA>
SUBFED_ALWAYS_INLINE void tile_rows(const float* a, std::size_t lda, const float* bpanel,
                                    std::size_t ldb, float* cpanel, std::size_t ldc,
                                    std::size_t i0, std::size_t i1, std::size_t k,
                                    std::size_t nr, bool accumulate) noexcept {
  std::size_t i = i0;
  for (; i + kMr <= i1; i += kMr) {
    micro_tile<kMr, kTransposedA>(a, i, lda, bpanel, ldb, cpanel, ldc, k, nr, accumulate);
  }
  for (; i < i1; ++i) {
    micro_tile<1, kTransposedA>(a, i, lda, bpanel, ldb, cpanel, ldc, k, nr, accumulate);
  }
}

/// nn/tn panel body: B is row-major [k×n]; full kNr column panels run
/// against B in place, the column tail is packed zero-padded so the same
/// micro-tile applies. Always-inline so the multiversioned wrappers below
/// compile the whole loop nest per ISA (target_clones cannot attach to
/// templates directly).
template <bool kTransposedA>
SUBFED_ALWAYS_INLINE void gemm_panel(const float* a, const float* b, float* c,
                                     std::size_t lda, std::size_t k, std::size_t n,
                                     std::size_t i0, std::size_t i1, bool accumulate) {
  const std::size_t tail = n % kNr;
  const std::size_t j_end = n - tail;
  for (std::size_t j = 0; j < j_end; j += kNr) {
    tile_rows<kTransposedA>(a, lda, b + j, n, c + j, n, i0, i1, k, kNr, accumulate);
  }
  if (tail != 0) {
    std::vector<float>& packed = packing_scratch(k * kNr);
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t jj = 0; jj < tail; ++jj) {
        packed[p * kNr + jj] = b[p * n + j_end + jj];
      }
      for (std::size_t jj = tail; jj < kNr; ++jj) packed[p * kNr + jj] = 0.0f;
    }
    tile_rows<kTransposedA>(a, lda, packed.data(), kNr, c + j_end, n, i0, i1, k, tail,
                            accumulate);
  }
}

/// nt panel body: B is stored [n×k], so every kNr-column panel is packed
/// transposed (zero-padded) into [k×kNr]; packing costs k·n per chunk and
/// amortizes over the chunk's rows.
SUBFED_ALWAYS_INLINE void gemm_panel_nt_body(const float* a, const float* b, float* c,
                                             std::size_t k, std::size_t n, std::size_t i0,
                                             std::size_t i1, bool accumulate) {
  std::vector<float>& packed = packing_scratch(k * kNr);
  for (std::size_t j = 0; j < n; j += kNr) {
    const std::size_t nr = std::min(kNr, n - j);
    if (nr < kNr) std::fill_n(packed.begin(), k * kNr, 0.0f);
    for (std::size_t jj = 0; jj < nr; ++jj) {
      const float* brow = b + (j + jj) * k;
      for (std::size_t p = 0; p < k; ++p) packed[p * kNr + jj] = brow[p];
    }
    tile_rows<false>(a, k, packed.data(), kNr, c + j, n, i0, i1, k, nr, accumulate);
  }
}

// Dispatched entry points: the AVX2+FMA variants recompile the same inlined
// loop nests with wider registers and fused multiply-adds; the plain variants
// are the portable fallback (and the only build on non-x86 targets).
#if SUBFED_X86_DISPATCH
SUBFED_AVX2_TARGET void gemm_panel_nn_avx2(const float* a, const float* b, float* c,
                                           std::size_t lda, std::size_t k, std::size_t n,
                                           std::size_t i0, std::size_t i1,
                                           bool accumulate) {
  gemm_panel<false>(a, b, c, lda, k, n, i0, i1, accumulate);
}
SUBFED_AVX2_TARGET void gemm_panel_tn_avx2(const float* a, const float* b, float* c,
                                           std::size_t lda, std::size_t k, std::size_t n,
                                           std::size_t i0, std::size_t i1,
                                           bool accumulate) {
  gemm_panel<true>(a, b, c, lda, k, n, i0, i1, accumulate);
}
SUBFED_AVX2_TARGET void gemm_panel_nt_avx2(const float* a, const float* b, float* c,
                                           std::size_t k, std::size_t n, std::size_t i0,
                                           std::size_t i1, bool accumulate) {
  gemm_panel_nt_body(a, b, c, k, n, i0, i1, accumulate);
}
#endif

void gemm_panel_nn(const float* a, const float* b, float* c, std::size_t lda,
                   std::size_t k, std::size_t n, std::size_t i0, std::size_t i1,
                   bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    gemm_panel_nn_avx2(a, b, c, lda, k, n, i0, i1, accumulate);
    return;
  }
#endif
  gemm_panel<false>(a, b, c, lda, k, n, i0, i1, accumulate);
}

void gemm_panel_tn(const float* a, const float* b, float* c, std::size_t lda,
                   std::size_t k, std::size_t n, std::size_t i0, std::size_t i1,
                   bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    gemm_panel_tn_avx2(a, b, c, lda, k, n, i0, i1, accumulate);
    return;
  }
#endif
  gemm_panel<true>(a, b, c, lda, k, n, i0, i1, accumulate);
}

void gemm_panel_nt(const float* a, const float* b, float* c, std::size_t k, std::size_t n,
                   std::size_t i0, std::size_t i1, bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    gemm_panel_nt_avx2(a, b, c, k, n, i0, i1, accumulate);
    return;
  }
#endif
  gemm_panel_nt_body(a, b, c, k, n, i0, i1, accumulate);
}

class BlockedBackend final : public MathBackend {
 public:
  std::string name() const override { return "blocked"; }

  void gemm_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      gemm_panel_nn(a, b, c, /*lda=*/k, k, n, i0, i1, accumulate);
    });
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      gemm_panel_tn(a, b, c, /*lda=*/m, k, n, i0, i1, accumulate);
    });
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      gemm_panel_nt(a, b, c, k, n, i0, i1, accumulate);
    });
  }
};

// -- sparse backend ----------------------------------------------------------
// Pruning masks zero weights exactly; when the weight-side operand's density
// drops below the threshold it is packed into CSR (ascending k within each
// row, matching the dense accumulation order) and the kernel only touches
// nonzeros. Dense-ish operands fall back to the blocked kernels, so this
// backend is always at least as correct and never much slower.

double density(const float* data, std::size_t size) noexcept {
  if (size == 0) return 1.0;
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < size; ++i) nonzero += data[i] != 0.0f ? 1 : 0;
  return static_cast<double>(nonzero) / static_cast<double>(size);
}

/// CSR of a row-major [rows×cols] matrix; entries keep ascending column order.
struct Csr {
  std::vector<std::uint32_t> row_begin;  // rows+1 offsets
  std::vector<std::uint32_t> col;
  std::vector<float> val;

  static Csr pack(const float* data, std::size_t rows, std::size_t cols) {
    Csr csr;
    csr.row_begin.resize(rows + 1, 0);
    std::size_t nnz = 0;
    for (std::size_t i = 0; i < rows * cols; ++i) nnz += data[i] != 0.0f ? 1 : 0;
    csr.col.reserve(nnz);
    csr.val.reserve(nnz);
    for (std::size_t r = 0; r < rows; ++r) {
      const float* row = data + r * cols;
      for (std::size_t c = 0; c < cols; ++c) {
        if (row[c] != 0.0f) {
          csr.col.push_back(static_cast<std::uint32_t>(c));
          csr.val.push_back(row[c]);
        }
      }
      csr.row_begin[r + 1] = static_cast<std::uint32_t>(csr.col.size());
    }
    return csr;
  }

  /// CSR of the TRANSPOSE of a row-major [rows×cols] matrix (i.e. CSC):
  /// entry lists per column, ascending row order.
  static Csr pack_transposed(const float* data, std::size_t rows, std::size_t cols) {
    Csr csr;
    csr.row_begin.assign(cols + 1, 0);
    for (std::size_t i = 0; i < rows * cols; ++i) {
      if (data[i] != 0.0f) ++csr.row_begin[i % cols + 1];
    }
    for (std::size_t c = 0; c < cols; ++c) csr.row_begin[c + 1] += csr.row_begin[c];
    csr.col.resize(csr.row_begin[cols]);
    csr.val.resize(csr.row_begin[cols]);
    std::vector<std::uint32_t> cursor(csr.row_begin.begin(), csr.row_begin.end() - 1);
    for (std::size_t r = 0; r < rows; ++r) {
      const float* row = data + r * cols;
      for (std::size_t c = 0; c < cols; ++c) {
        if (row[c] != 0.0f) {
          const std::uint32_t slot = cursor[c]++;
          csr.col[slot] = static_cast<std::uint32_t>(r);
          csr.val[slot] = row[c];
        }
      }
    }
    return csr;
  }
};

/// c[i,:] (+)= Σ_nonzeros(i) val · b[col,:] for rows [i0, i1) — the shared
/// nn/tn inner loop once the sparse operand is in "per output row" CSR form.
SUBFED_ALWAYS_INLINE void sparse_axpy_body(const std::uint32_t* row_begin,
                                           const std::uint32_t* col, const float* val,
                                           const float* b, float* c, std::size_t n,
                                           std::size_t i0, std::size_t i1,
                                           bool accumulate) {
  for (std::size_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    if (!accumulate) std::memset(crow, 0, n * sizeof(float));
    for (std::uint32_t e = row_begin[i]; e < row_begin[i + 1]; ++e) {
      const float av = val[e];
      const float* brow = b + col[e] * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// c[i,j] (+)= sparse dot of dense A row i with CSR row j of B (stored [n×k]).
SUBFED_ALWAYS_INLINE void sparse_dot_body(const std::uint32_t* row_begin,
                                          const std::uint32_t* col, const float* val,
                                          const float* a, float* c, std::size_t k,
                                          std::size_t n, std::size_t i0, std::size_t i1,
                                          bool accumulate) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::uint32_t e = row_begin[j]; e < row_begin[j + 1]; ++e) {
        acc += arow[col[e]] * val[e];
      }
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

#if SUBFED_X86_DISPATCH
SUBFED_AVX2_TARGET void sparse_axpy_panel_avx2(const std::uint32_t* row_begin,
                                               const std::uint32_t* col, const float* val,
                                               const float* b, float* c, std::size_t n,
                                               std::size_t i0, std::size_t i1,
                                               bool accumulate) {
  sparse_axpy_body(row_begin, col, val, b, c, n, i0, i1, accumulate);
}
SUBFED_AVX2_TARGET void sparse_dot_panel_avx2(const std::uint32_t* row_begin,
                                              const std::uint32_t* col, const float* val,
                                              const float* a, float* c, std::size_t k,
                                              std::size_t n, std::size_t i0,
                                              std::size_t i1, bool accumulate) {
  sparse_dot_body(row_begin, col, val, a, c, k, n, i0, i1, accumulate);
}
#endif

void sparse_axpy_panel(const std::uint32_t* row_begin, const std::uint32_t* col,
                       const float* val, const float* b, float* c, std::size_t n,
                       std::size_t i0, std::size_t i1, bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    sparse_axpy_panel_avx2(row_begin, col, val, b, c, n, i0, i1, accumulate);
    return;
  }
#endif
  sparse_axpy_body(row_begin, col, val, b, c, n, i0, i1, accumulate);
}

void sparse_dot_panel(const std::uint32_t* row_begin, const std::uint32_t* col,
                      const float* val, const float* a, float* c, std::size_t k,
                      std::size_t n, std::size_t i0, std::size_t i1, bool accumulate) {
#if SUBFED_X86_DISPATCH
  if (cpu_has_avx2_fma()) {
    sparse_dot_panel_avx2(row_begin, col, val, a, c, k, n, i0, i1, accumulate);
    return;
  }
#endif
  sparse_dot_body(row_begin, col, val, a, c, k, n, i0, i1, accumulate);
}

class SparseBackend final : public MathBackend {
 public:
  explicit SparseBackend(const MathBackend& dense) : dense_(dense) {}

  std::string name() const override { return "sparse"; }

  /// Largest B-side operand worth density-scanning: covers every weight
  /// matrix in the model zoo (cnn_deep's fc1 is 2048×64 = 2^17) while
  /// excluding the biggest im2col activation matrices; mid-sized activation
  /// operands pay an O(k·n) scan, a few percent of their GEMM, only in this
  /// opt-in backend.
  static constexpr std::size_t kMaxWeightOperand = std::size_t{1} << 18;

  void gemm_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (density(a, m * k) <= sparse_density_threshold()) {
      const Csr csr = Csr::pack(a, m, k);
      row_axpy(csr, b, c, m, k, n, accumulate);
      return;
    }
    // The pruned weight can also sit on the B side (Linear::backward's
    // dX = dY·W); per column of B, nonzeros ascend in k like everywhere else.
    // Gated on weight-matrix-sized operands: im2col activation matrices run
    // to megabytes, and scanning (let alone packing) those per call would
    // cost a measurable fraction of the GEMM itself.
    if (k * n <= kMaxWeightOperand && density(b, k * n) <= sparse_density_threshold()) {
      const Csr csr = Csr::pack_transposed(b, k, n);
      for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
        sparse_dot_panel(csr.row_begin.data(), csr.col.data(), csr.val.data(), a, c, k, n,
                         i0, i1, accumulate);
      });
      return;
    }
    dense_.gemm_nn(a, b, c, m, k, n, accumulate);
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (density(a, k * m) > sparse_density_threshold()) {
      dense_.gemm_tn(a, b, c, m, k, n, accumulate);
      return;
    }
    // A stored [k×m]; output row i consumes column i of A.
    const Csr csr = Csr::pack_transposed(a, k, m);
    row_axpy(csr, b, c, m, k, n, accumulate);
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    // Same weight-operand size gate as gemm_nn: conv backward's dW puts the
    // im2col activation matrix on the B side, which must not be scanned or
    // packed per call.
    if (n * k > kMaxWeightOperand || density(b, n * k) > sparse_density_threshold()) {
      dense_.gemm_nt(a, b, c, m, k, n, accumulate);
      return;
    }
    const Csr csr = Csr::pack(b, n, k);
    for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      sparse_dot_panel(csr.row_begin.data(), csr.col.data(), csr.val.data(), a, c, k, n,
                       i0, i1, accumulate);
    });
  }

 private:
  static void row_axpy(const Csr& csr, const float* b, float* c, std::size_t m,
                       std::size_t k, std::size_t n, bool accumulate) {
    for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      sparse_axpy_panel(csr.row_begin.data(), csr.col.data(), csr.val.data(), b, c, n, i0,
                        i1, accumulate);
    });
  }

  const MathBackend& dense_;
};

const NaiveBackend g_naive;
const BlockedBackend g_blocked;
const SparseBackend g_sparse(g_blocked);

/// The single name→instance table resolution, validation, and listing share.
constexpr std::pair<const char*, const MathBackend*> kBackendTable[] = {
    {"blocked", &g_blocked}, {"naive", &g_naive}, {"sparse", &g_sparse}};

const MathBackend* find_math_backend(const std::string& name) noexcept {
  for (const auto& [known, backend] : kBackendTable) {
    if (name == known) return backend;
  }
  return nullptr;
}

}  // namespace

const MathBackend& math_backend(const std::string& name) {
  const MathBackend* backend = find_math_backend(name);
  SUBFEDAVG_CHECK(backend != nullptr, "unknown math backend '"
                                          << name << "' (naive | blocked | sparse)");
  return *backend;
}

bool has_math_backend(const std::string& name) {
  return find_math_backend(name) != nullptr;
}

std::vector<std::string> list_math_backends() {
  std::vector<std::string> names;
  for (const auto& [name, backend] : kBackendTable) names.emplace_back(name);
  return names;
}

const MathBackend& default_math_backend() {
  static const MathBackend& backend = math_backend(env_string("SUBFEDAVG_BACKEND", "blocked"));
  return backend;
}

void set_math_threads(std::size_t n) noexcept {
  g_math_threads.store(n, std::memory_order_relaxed);
}

std::size_t math_threads() noexcept {
  return g_math_threads.load(std::memory_order_relaxed);
}

double sparse_density_threshold() noexcept {
  static const double threshold = env_double("SUBFEDAVG_SPARSE_DENSITY", 0.25);
  return threshold;
}

}  // namespace subfed
