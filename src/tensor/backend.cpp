#include "tensor/backend.h"

#include "tensor/kernels.h"
#include "util/check.h"
#include "util/env.h"

namespace subfed {

void MathBackend::im2col(const float* image, const ConvGeometry& g, float* columns,
                         std::size_t col_stride, std::size_t col_offset) const {
  im2col_strided(image, g, columns, col_stride, col_offset);
}

void MathBackend::col2im(const float* columns, const ConvGeometry& g, float* image,
                         std::size_t col_stride, std::size_t col_offset) const {
  col2im_strided(columns, g, image, col_stride, col_offset);
}

namespace {

using kern::handle_trivial;

// -- naive backend -----------------------------------------------------------
// The seed kernels (tensor/gemm.cpp) plus the accumulate variants the layer
// refactor needs. Kept verbatim in spirit: ikj loops, zero-skip on the left
// operand. This backend is the correctness oracle for the other two.

class NaiveBackend final : public MathBackend {
 public:
  std::string name() const override { return "naive"; }

  void gemm_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (accumulate) {
      gemm_accumulate(a, b, c, m, k, n);
    } else {
      gemm(a, b, c, m, k, n);
    }
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (!accumulate) {
      gemm_at_b(a, b, c, m, k, n);
      return;
    }
    for (std::size_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (!accumulate) {
      gemm_a_bt(a, b, c, m, k, n);
      return;
    }
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
  }
};

// -- blocked backend ---------------------------------------------------------
// Thin dispatch over the register-tiled panels in tensor/kernels.cpp; row
// panels are distributed over the global thread pool for large problems.

class BlockedBackend final : public MathBackend {
 public:
  std::string name() const override { return "blocked"; }

  void gemm_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    kern::for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      kern::gemm_panel_nn(a, b, c, /*lda=*/k, k, n, i0, i1, accumulate);
    });
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    kern::for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      kern::gemm_panel_tn(a, b, c, /*lda=*/m, k, n, i0, i1, accumulate);
    });
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    kern::for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      kern::gemm_panel_nt(a, b, c, k, n, i0, i1, accumulate);
    });
  }
};

// -- sparse backend ----------------------------------------------------------
// Per-call density inspection of the weight-side operand; the Device plan
// cache (tensor/device.h) layers cached decisions keyed by parameter identity
// and mask epoch on top of these same kernels, so this class stays the
// stateless reference behaviour.

class SparseBackend final : public MathBackend {
 public:
  explicit SparseBackend(const MathBackend& dense) : dense_(dense) {}

  std::string name() const override { return "sparse"; }

  /// Largest B-side operand worth density-scanning: covers every weight
  /// matrix in the model zoo (cnn_deep's fc1 is 2048×64 = 2^17) while
  /// excluding the biggest im2col activation matrices; mid-sized activation
  /// operands pay an O(k·n) scan, a few percent of their GEMM, only in this
  /// opt-in backend.
  static constexpr std::size_t kMaxWeightOperand = std::size_t{1} << 18;

  void gemm_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (kern::density(a, m * k) <= sparse_density_threshold()) {
      const kern::Csr csr = kern::Csr::pack(a, m, k);
      row_axpy(csr, b, c, m, k, n, accumulate);
      return;
    }
    // The pruned weight can also sit on the B side (Linear::backward's
    // dX = dY·W); per column of B, nonzeros ascend in k like everywhere else.
    // Gated on weight-matrix-sized operands: im2col activation matrices run
    // to megabytes, and scanning (let alone packing) those per call would
    // cost a measurable fraction of the GEMM itself.
    if (k * n <= kMaxWeightOperand &&
        kern::density(b, k * n) <= sparse_density_threshold()) {
      const kern::Csr csr = kern::Csr::pack_transposed(b, k, n);
      kern::for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
        kern::sparse_dot_panel(csr.row_begin.data(), csr.col.data(), csr.val.data(), a, c,
                               k, n, i0, i1, accumulate);
      });
      return;
    }
    dense_.gemm_nn(a, b, c, m, k, n, accumulate);
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    if (kern::density(a, k * m) > sparse_density_threshold()) {
      dense_.gemm_tn(a, b, c, m, k, n, accumulate);
      return;
    }
    // A stored [k×m]; output row i consumes column i of A.
    const kern::Csr csr = kern::Csr::pack_transposed(a, k, m);
    row_axpy(csr, b, c, m, k, n, accumulate);
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) const override {
    if (handle_trivial(c, m, k, n, accumulate)) return;
    // Same weight-operand size gate as gemm_nn: conv backward's dW puts the
    // im2col activation matrix on the B side, which must not be scanned or
    // packed per call.
    if (n * k > kMaxWeightOperand ||
        kern::density(b, n * k) > sparse_density_threshold()) {
      dense_.gemm_nt(a, b, c, m, k, n, accumulate);
      return;
    }
    const kern::Csr csr = kern::Csr::pack(b, n, k);
    kern::for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      kern::sparse_dot_panel(csr.row_begin.data(), csr.col.data(), csr.val.data(), a, c,
                             k, n, i0, i1, accumulate);
    });
  }

 private:
  static void row_axpy(const kern::Csr& csr, const float* b, float* c, std::size_t m,
                       std::size_t k, std::size_t n, bool accumulate) {
    kern::for_row_chunks(m, 2 * m * k * n, [&](std::size_t i0, std::size_t i1) {
      kern::sparse_axpy_panel(csr.row_begin.data(), csr.col.data(), csr.val.data(), b, c,
                              n, i0, i1, accumulate);
    });
  }

  const MathBackend& dense_;
};

const NaiveBackend g_naive;
const BlockedBackend g_blocked;
const SparseBackend g_sparse(g_blocked);

/// The single name→instance table resolution, validation, and listing share.
constexpr std::pair<const char*, const MathBackend*> kBackendTable[] = {
    {"blocked", &g_blocked}, {"naive", &g_naive}, {"sparse", &g_sparse}};

const MathBackend* find_math_backend(const std::string& name) noexcept {
  for (const auto& [known, backend] : kBackendTable) {
    if (name == known) return backend;
  }
  return nullptr;
}

}  // namespace

const MathBackend& math_backend(const std::string& name) {
  const MathBackend* backend = find_math_backend(name);
  SUBFEDAVG_CHECK(backend != nullptr, "unknown math backend '"
                                          << name << "' (naive | blocked | sparse)");
  return *backend;
}

bool has_math_backend(const std::string& name) {
  return find_math_backend(name) != nullptr;
}

std::vector<std::string> list_math_backends() {
  std::vector<std::string> names;
  for (const auto& [name, backend] : kBackendTable) names.emplace_back(name);
  return names;
}

const MathBackend& default_math_backend() {
  static const MathBackend& backend = math_backend(env_string("SUBFEDAVG_BACKEND", "blocked"));
  return backend;
}

}  // namespace subfed
