#include "tensor/gemm.h"

#include <cstring>

namespace subfed {

namespace {

// Accumulating micro-kernel: C[m×n] += A[m×k]·B[k×n], ikj order so the inner
// loop streams B and C rows (unit stride, auto-vectorizable).
void gemm_ikj(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
              std::size_t n) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // masked weights are exact zeros; skip the row
      const float* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n) noexcept {
  std::memset(c, 0, m * n * sizeof(float));
  gemm_ikj(a, b, c, m, k, n);
}

void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) noexcept {
  gemm_ikj(a, b, c, m, k, n);
}

void gemm_at_b(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) noexcept {
  std::memset(c, 0, m * n * sizeof(float));
  // C[i,j] = sum_p A[p,i] * B[p,j] — stream rows of A and B together.
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) noexcept {
  // C[i,j] = dot(A row i, B row j); both rows are unit-stride.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

void im2col(const float* image, const ConvGeometry& g, float* columns) noexcept {
  im2col_strided(image, g, columns, g.out_h() * g.out_w(), 0);
}

void col2im(const float* columns, const ConvGeometry& g, float* image) noexcept {
  col2im_strided(columns, g, image, g.out_h() * g.out_w(), 0);
}

void im2col_strided(const float* image, const ConvGeometry& g, float* columns,
                    std::size_t col_stride, std::size_t col_offset) noexcept {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out = columns + row * col_stride + col_offset;
        for (std::size_t y = 0; y < oh; ++y) {
          // Input row for this output row; may fall in the padded halo.
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + ky) - static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) {
            std::memset(out + y * ow, 0, ow * sizeof(float));
            continue;
          }
          const float* src = plane + static_cast<std::size_t>(iy) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(x * g.stride + kx) -
                                      static_cast<std::ptrdiff_t>(g.pad);
            out[y * ow + x] = (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w))
                                  ? 0.0f
                                  : src[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im_strided(const float* columns, const ConvGeometry& g, float* image,
                    std::size_t col_stride, std::size_t col_offset) noexcept {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::memset(image, 0, g.in_channels * g.in_h * g.in_w * sizeof(float));
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in = columns + row * col_stride + col_offset;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + ky) - static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          float* dst = plane + static_cast<std::size_t>(iy) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(x * g.stride + kx) -
                                      static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            dst[static_cast<std::size_t>(ix)] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace subfed
