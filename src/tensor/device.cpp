#include "tensor/device.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <unordered_map>
#include <utility>

#include "comm/quantize.h"  // scalar fp16 casts double as the compute staging path
#include "tensor/backend.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/env.h"

namespace subfed {
namespace {

// -- fp16 staging -------------------------------------------------------------
// Round each operand element through the wire half-precision format before the
// fp32 kernels consume it. Elementwise and scalar, so the result is identical
// regardless of chunking or ISA — fp16 devices keep the bit-determinism
// contract, and (since the casts preserve ±0) pruned zeros stay exactly zero,
// leaving density decisions unchanged.
void stage_fp16(const float* src, float* dst, std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) dst[i] = fp16_to_fp32(fp32_to_fp16(src[i]));
}

enum class Kind : std::uint8_t { kNaive, kBlocked, kSparse };

Kind kind_of(const MathBackend& kernels) {
  const std::string name = kernels.name();
  if (name == "naive") return Kind::kNaive;
  if (name == "sparse") return Kind::kSparse;
  return Kind::kBlocked;  // "blocked" and any future dense kernel set
}

struct PlanKey {
  GemmOp op;
  WeightSide side;
  std::size_t m, k, n;

  bool operator==(const PlanKey& o) const noexcept {
    return op == o.op && side == o.side && m == o.m && k == o.k && n == o.n;
  }
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const noexcept {
    std::size_t h = static_cast<std::size_t>(key.op) * 3u + static_cast<std::size_t>(key.side);
    for (std::size_t v : {key.m, key.k, key.n}) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Cached sparse-vs-dense choice for one weight tensor at one mask epoch.
struct WeightDecision {
  std::uint64_t uid = 0;
  std::uint64_t epoch = 0;
  bool use_sparse = false;
};

struct PlanEntry {
  std::size_t chunks = 1;
  /// math_threads()/pool size the chunk count was planned for; a runtime
  /// change of the cap replans (counted as a miss) instead of going stale.
  std::size_t threads_seen = ~std::size_t{0};
  /// MRU list, newest first, capped — one shape is shared by at most a
  /// handful of live weights (e.g. the conv layers of concurrent clients).
  std::vector<WeightDecision> decisions;
};

constexpr std::size_t kMaxDecisionsPerShape = 8;

/// What Device::gemm resolved for one call.
struct Plan {
  std::size_t chunks = 1;
  bool use_sparse = false;
};

constexpr std::size_t kMinLeaseFloats = 256;

std::size_t lease_class(std::size_t floats) noexcept {
  std::size_t c = kMinLeaseFloats;
  while (c < floats) c <<= 1;
  return c;
}

}  // namespace

// -- Impl ---------------------------------------------------------------------

struct Device::Impl {
  mutable std::mutex plan_mu;
  std::unordered_map<PlanKey, PlanEntry, PlanKeyHash> plans;

  mutable std::mutex pool_mu;
  std::unordered_map<std::size_t, std::vector<float*>> pool;  // size class → free buffers

  std::atomic<std::uint64_t> plan_hits{0};
  std::atomic<std::uint64_t> plan_misses{0};
  std::atomic<std::uint64_t> density_scans{0};
  std::atomic<std::uint64_t> workspace_leases{0};
  std::atomic<std::uint64_t> workspace_reuses{0};
  std::atomic<std::uint64_t> bytes_allocated{0};

  Kind kind = Kind::kBlocked;
};

const char* compute_dtype_name(ComputeDType dtype) noexcept {
  return dtype == ComputeDType::kFp16 ? "fp16" : "fp32";
}

ComputeDType parse_compute_dtype(const std::string& name) {
  if (name == "fp32") return ComputeDType::kFp32;
  if (name == "fp16") return ComputeDType::kFp16;
  SUBFEDAVG_CHECK(false, "unknown compute dtype '" << name << "' (fp32 | fp16)");
  return ComputeDType::kFp32;  // unreachable
}

// -- WorkspaceLease -----------------------------------------------------------

WorkspaceLease::WorkspaceLease(WorkspaceLease&& other) noexcept
    : device_(other.device_), data_(other.data_), size_(other.size_) {
  other.device_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

WorkspaceLease& WorkspaceLease::operator=(WorkspaceLease&& other) noexcept {
  if (this != &other) {
    reset();
    device_ = other.device_;
    data_ = other.data_;
    size_ = other.size_;
    other.device_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

WorkspaceLease::~WorkspaceLease() { reset(); }

void WorkspaceLease::reset() noexcept {
  if (data_ != nullptr) device_->release(data_, size_);
  device_ = nullptr;
  data_ = nullptr;
  size_ = 0;
}

// -- Device -------------------------------------------------------------------

Device::Device(const MathBackend& kernels, ComputeDType compute)
    : kernels_(kernels),
      compute_(compute),
      backend_name_(kernels.name()),
      name_(compute == ComputeDType::kFp16 ? backend_name_ + "+fp16" : backend_name_),
      impl_(new Impl) {
  impl_->kind = kind_of(kernels);
}

Device::~Device() {
  std::lock_guard<std::mutex> lock(impl_->pool_mu);
  for (auto& [size_class, buffers] : impl_->pool) {
    for (float* data : buffers) {
      ::operator delete(data, std::align_val_t{64});
    }
  }
}

float* Device::allocate(std::size_t floats) const {
  if (floats == 0) floats = 1;
  impl_->bytes_allocated.fetch_add(floats * sizeof(float), std::memory_order_relaxed);
  return static_cast<float*>(::operator new(floats * sizeof(float), std::align_val_t{64}));
}

void Device::deallocate(float* data, std::size_t /*floats*/) const noexcept {
  if (data != nullptr) ::operator delete(data, std::align_val_t{64});
}

WorkspaceLease Device::lease(std::size_t floats) const {
  const std::size_t size_class = lease_class(floats);
  impl_->workspace_leases.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->pool_mu);
    auto it = impl_->pool.find(size_class);
    if (it != impl_->pool.end() && !it->second.empty()) {
      float* data = it->second.back();
      it->second.pop_back();
      impl_->workspace_reuses.fetch_add(1, std::memory_order_relaxed);
      return WorkspaceLease(this, data, size_class);
    }
  }
  return WorkspaceLease(this, allocate(size_class), size_class);
}

void Device::release(float* data, std::size_t floats) const noexcept {
  std::lock_guard<std::mutex> lock(impl_->pool_mu);
  impl_->pool[floats].push_back(data);
}

DeviceStats Device::stats() const noexcept {
  DeviceStats s;
  s.plan_hits = impl_->plan_hits.load(std::memory_order_relaxed);
  s.plan_misses = impl_->plan_misses.load(std::memory_order_relaxed);
  s.density_scans = impl_->density_scans.load(std::memory_order_relaxed);
  s.workspace_leases = impl_->workspace_leases.load(std::memory_order_relaxed);
  s.workspace_reuses = impl_->workspace_reuses.load(std::memory_order_relaxed);
  s.bytes_allocated = impl_->bytes_allocated.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->plan_mu);
    s.plan_entries = impl_->plans.size();
  }
  return s;
}

void Device::im2col(const float* image, const ConvGeometry& g, float* columns,
                    std::size_t col_stride, std::size_t col_offset) const {
  kernels_.im2col(image, g, columns, col_stride, col_offset);
}

void Device::col2im(const float* columns, const ConvGeometry& g, float* image,
                    std::size_t col_stride, std::size_t col_offset) const {
  kernels_.col2im(columns, g, image, col_stride, col_offset);
}

namespace {

/// Row-major element count of the weight-side operand, and its pointer.
std::pair<const float*, std::size_t> weight_operand(GemmOp op, WeightSide side,
                                                    const float* a, const float* b,
                                                    std::size_t m, std::size_t k,
                                                    std::size_t n) noexcept {
  if (side == WeightSide::kA) return {a, op == GemmOp::kTN ? k * m : m * k};
  if (side == WeightSide::kB) return {b, op == GemmOp::kNT ? n * k : k * n};
  return {nullptr, 0};
}

}  // namespace

void Device::gemm(GemmOp op, const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, bool accumulate, WeightSide weight_side,
                  std::uint64_t weight_uid, std::uint64_t weight_epoch,
                  const GemmEpilogue* epilogue) const {
  static telemetry::Counter& plan_hit_c = telemetry::counter("device.plan_hit");
  static telemetry::Counter& plan_miss_c = telemetry::counter("device.plan_miss");
  static telemetry::Counter& density_scan_c = telemetry::counter("device.density_scan");

  if (kern::handle_trivial(c, m, k, n, accumulate)) {
    if (epilogue != nullptr && m > 0 && n > 0) kern::apply_epilogue_rows(c, n, 0, m, *epilogue);
    return;
  }

  // fp16 compute: stage both operands through the half round-trip, then run
  // the fp32 kernels (fp32 accumulation) on the staged panels.
  const float* ea = a;
  const float* eb = b;
  WorkspaceLease a16, b16;
  if (compute_ == ComputeDType::kFp16) {
    const std::size_t a_size = op == GemmOp::kTN ? k * m : m * k;
    const std::size_t b_size = op == GemmOp::kNT ? n * k : k * n;
    a16 = lease(a_size);
    b16 = lease(b_size);
    stage_fp16(a, a16.data(), a_size);
    stage_fp16(b, b16.data(), b_size);
    ea = a16.data();
    eb = b16.data();
  }

  // Resolve the execution plan: chunk fan-out always; sparse-vs-dense only on
  // the sparse kernel set. Density is computed on the staged (fp16) operand so
  // the decision matches what the kernels will actually see; the half
  // round-trip preserves zeros, so in practice it equals the fp32 decision.
  const auto [weight_ptr, weight_size] =
      weight_operand(op, weight_side, ea, eb, m, k, n);
  const bool want_sparse_decision = impl_->kind == Kind::kSparse && weight_ptr != nullptr;

  Plan plan;
  bool hit = true;
  bool need_scan = false;
  const PlanKey key{op, weight_side, m, k, n};
  const std::size_t threads_now = math_threads();
  const std::size_t flops = 2 * m * k * n;
  {
    std::lock_guard<std::mutex> lock(impl_->plan_mu);
    PlanEntry& entry = impl_->plans[key];
    if (entry.threads_seen != threads_now) {
      entry.chunks = kern::plan_chunks(m, flops);
      entry.threads_seen = threads_now;
      hit = false;
    }
    plan.chunks = entry.chunks;
    if (want_sparse_decision) {
      if (weight_uid == 0) {
        need_scan = true;  // anonymous operand: legacy per-call behaviour
        hit = false;
      } else {
        auto it = std::find_if(entry.decisions.begin(), entry.decisions.end(),
                               [&](const WeightDecision& d) { return d.uid == weight_uid; });
        if (it != entry.decisions.end() && it->epoch == weight_epoch) {
          plan.use_sparse = it->use_sparse;
          if (it != entry.decisions.begin()) std::rotate(entry.decisions.begin(), it, it + 1);
        } else {
          need_scan = true;
          hit = false;
        }
      }
    }
  }
  if (need_scan) {
    // O(weight) scan outside the lock; concurrent first-callers may scan the
    // same weight once each, then all insert the identical decision.
    impl_->density_scans.fetch_add(1, std::memory_order_relaxed);
    density_scan_c.add();
    plan.use_sparse = kern::density(weight_ptr, weight_size) <= sparse_density_threshold();
    if (weight_uid != 0) {
      std::lock_guard<std::mutex> lock(impl_->plan_mu);
      PlanEntry& entry = impl_->plans[key];
      auto it = std::find_if(entry.decisions.begin(), entry.decisions.end(),
                             [&](const WeightDecision& d) { return d.uid == weight_uid; });
      if (it != entry.decisions.end()) entry.decisions.erase(it);
      entry.decisions.insert(entry.decisions.begin(),
                             WeightDecision{weight_uid, weight_epoch, plan.use_sparse});
      if (entry.decisions.size() > kMaxDecisionsPerShape) entry.decisions.pop_back();
    }
  }
  if (hit) {
    impl_->plan_hits.fetch_add(1, std::memory_order_relaxed);
    plan_hit_c.add();
  } else {
    impl_->plan_misses.fetch_add(1, std::memory_order_relaxed);
    plan_miss_c.add();
  }

  execute(op, weight_side, ea, eb, c, m, k, n, accumulate, plan.chunks, plan.use_sparse,
          want_sparse_decision, epilogue);
}

void Device::execute(GemmOp op, WeightSide side, const float* a, const float* b, float* c,
                     std::size_t m, std::size_t k, std::size_t n, bool accumulate,
                     std::size_t chunks, bool use_sparse, bool sparse_decided,
                     const GemmEpilogue* ep) const {
  // Sparse kernel set without a weight-side hint (e.g. raw math_backend()
  // callers routed through device_for): keep SparseBackend's stateless
  // per-call inspection behaviour.
  if (impl_->kind == Kind::kSparse && !sparse_decided) {
    switch (op) {
      case GemmOp::kNN: kernels_.gemm_nn(a, b, c, m, k, n, accumulate); break;
      case GemmOp::kTN: kernels_.gemm_tn(a, b, c, m, k, n, accumulate); break;
      case GemmOp::kNT: kernels_.gemm_nt(a, b, c, m, k, n, accumulate); break;
    }
    if (ep != nullptr) kern::apply_epilogue_rows(c, n, 0, m, *ep);
    return;
  }

  if (impl_->kind == Kind::kSparse && use_sparse) {
    // Planned sparse execution: the decision is cached, so only pack + run
    // here. "Weight on A, un/transposed" becomes per-output-row CSR + axpy;
    // "weight on B" becomes per-output-column CSR + dot. Epilogues apply as a
    // post-pass — same scalar expressions, same bits as the fused store-back.
    kern::Csr csr;
    bool axpy = false;
    if (side == WeightSide::kA && op == GemmOp::kNN) {
      csr = kern::Csr::pack(a, m, k);
      axpy = true;
    } else if (side == WeightSide::kA && op == GemmOp::kTN) {
      csr = kern::Csr::pack_transposed(a, k, m);
      axpy = true;
    } else if (side == WeightSide::kB && op == GemmOp::kNN) {
      csr = kern::Csr::pack_transposed(b, k, n);
    } else if (side == WeightSide::kB && op == GemmOp::kNT) {
      csr = kern::Csr::pack(b, n, k);
    } else {
      // Weight placements the CSR kernels have no fast path for (kTN weight
      // on B, kNT weight on A) never arise from the layers; run dense.
      use_sparse = false;
    }
    if (use_sparse) {
      if (axpy) {
        kern::run_row_chunks(m, chunks, [&](std::size_t i0, std::size_t i1) {
          kern::sparse_axpy_panel(csr.row_begin.data(), csr.col.data(), csr.val.data(), b, c,
                                  n, i0, i1, accumulate);
        });
      } else {
        kern::run_row_chunks(m, chunks, [&](std::size_t i0, std::size_t i1) {
          kern::sparse_dot_panel(csr.row_begin.data(), csr.col.data(), csr.val.data(), a, c,
                                 k, n, i0, i1, accumulate);
        });
      }
      if (ep != nullptr) kern::apply_epilogue_rows(c, n, 0, m, *ep);
      return;
    }
  }

  // Dense execution with the cached fan-out (naive runs unchunked).
  if (impl_->kind == Kind::kNaive) {
    switch (op) {
      case GemmOp::kNN: kernels_.gemm_nn(a, b, c, m, k, n, accumulate); break;
      case GemmOp::kTN: kernels_.gemm_tn(a, b, c, m, k, n, accumulate); break;
      case GemmOp::kNT: kernels_.gemm_nt(a, b, c, m, k, n, accumulate); break;
    }
    if (ep != nullptr) kern::apply_epilogue_rows(c, n, 0, m, *ep);
    return;
  }

  switch (op) {
    case GemmOp::kNN:
      if (ep != nullptr) {
        kern::run_row_chunks(m, chunks, [&](std::size_t i0, std::size_t i1) {
          kern::gemm_panel_nn_fused(a, b, c, /*lda=*/k, k, n, i0, i1, accumulate, *ep);
        });
        return;
      }
      kern::run_row_chunks(m, chunks, [&](std::size_t i0, std::size_t i1) {
        kern::gemm_panel_nn(a, b, c, /*lda=*/k, k, n, i0, i1, accumulate);
      });
      return;
    case GemmOp::kTN:
      kern::run_row_chunks(m, chunks, [&](std::size_t i0, std::size_t i1) {
        kern::gemm_panel_tn(a, b, c, /*lda=*/m, k, n, i0, i1, accumulate);
      });
      break;
    case GemmOp::kNT:
      kern::run_row_chunks(m, chunks, [&](std::size_t i0, std::size_t i1) {
        kern::gemm_panel_nt(a, b, c, k, n, i0, i1, accumulate);
      });
      break;
  }
  if (ep != nullptr) kern::apply_epilogue_rows(c, n, 0, m, *ep);
}

// -- registry -----------------------------------------------------------------

namespace {

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::pair<std::string, int>, Device*>& registry() {
  // Heap-allocated and never destroyed — not a plain static — so the devices
  // stay *reachable* through it at exit: LSan would otherwise report every
  // device (and its pooled workspaces) once the map's nodes were freed.
  static auto* reg = new std::map<std::pair<std::string, int>, Device*>;
  return *reg;
}

}  // namespace

const Device& get_device(const std::string& backend, ComputeDType dtype) {
  SUBFEDAVG_CHECK(has_math_backend(backend),
                  "unknown device '" << backend
                                     << "' (naive | blocked | sparse; compute fp32 | fp16)");
  const MathBackend& kernels = math_backend(backend);
  std::lock_guard<std::mutex> lock(registry_mutex());
  Device*& slot = registry()[{backend, static_cast<int>(dtype)}];
  // Intentionally never destroyed: leases held by static-lifetime objects may
  // drain back into the pool during any phase of shutdown.
  if (slot == nullptr) slot = new Device(kernels, dtype);
  return *slot;
}

const Device& get_device(const std::string& backend, const std::string& compute) {
  return get_device(backend, parse_compute_dtype(compute));
}

bool has_device(const std::string& backend) { return has_math_backend(backend); }

std::vector<std::string> list_devices() {
  std::vector<std::string> names;
  for (const std::string& backend : list_math_backends()) {
    names.push_back(backend);
    names.push_back(backend + "+fp16");
  }
  std::sort(names.begin(), names.end());
  return names;
}

const Device& default_device() {
  static const Device& device = get_device(env_string("SUBFEDAVG_BACKEND", "blocked"),
                                           env_string("SUBFEDAVG_COMPUTE", "fp32"));
  return device;
}

const Device& device_for(const MathBackend& kernels) {
  return get_device(kernels.name(), ComputeDType::kFp32);
}

bool fused_epilogues_default() noexcept {
  static const bool fused = env_int("SUBFEDAVG_FUSED", 1) != 0;
  return fused;
}

}  // namespace subfed
