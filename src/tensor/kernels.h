// Internal kernel layer shared by the MathBackend singletons (backend.cpp)
// and the Device execution engine (device.cpp).
//
// Everything here used to live in backend.cpp's anonymous namespace; the
// Device redesign splits the stack into three layers:
//
//   tensor/kernels.h  — raw panel/sparse kernels + the row-chunk runner
//                       (this header; no state beyond the math-thread cap)
//   tensor/backend.h  — the stateless MathBackend kernel sets (kept as the
//                       oracle/dispatch seam and for backward compatibility)
//   tensor/device.h   — storage-owning devices: plan cache, workspace pool,
//                       compute dtype, fused epilogues
//
// Determinism contract (inherited by every caller): each output element is
// accumulated in ascending-k order regardless of how row panels are chunked,
// so results are bit-identical for any math_threads value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/gemm.h"
#include "util/thread_pool.h"

namespace subfed {

/// Fused post-GEMM epilogue, applied to each output element C[row, j] in the
/// register tile right before store-back (blocked kernels) or as a row-wise
/// post-pass (naive/sparse kernels — same scalar expressions, same bits):
///
///   y = C[row, j]
///   if bias   && bias[row] != 0:  y += bias[row]
///   if mean:                      y = gamma[row]·(y − mean[row])·rsqrt + beta[row]
///                                 with rsqrt = 1/sqrt(var[row] + eps)
///   if relu   && !(y > 0):        y = 0
///
/// These are exactly the scalar operations (and order) the unfused
/// Conv2d → BatchNorm2d(eval) → ReLU chain performs, so fused and unfused
/// eval forwards are bit-identical — tests/test_device.cpp pins this.
struct GemmEpilogue {
  const float* bias = nullptr;   ///< [m] conv bias, or nullptr
  const float* mean = nullptr;   ///< [m] bn running mean (all four or none)
  const float* var = nullptr;    ///< [m] bn running variance
  const float* gamma = nullptr;  ///< [m] bn scale
  const float* beta = nullptr;   ///< [m] bn shift
  float eps = 0.0f;
  bool relu = false;
};

namespace kern {

// Register-tile geometry of the blocked kernels (see kernels.cpp).
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 16;
/// Below this many FLOPs (2·m·k·n) a GEMM runs on the calling thread; pool
/// dispatch would cost more than it saves on LeNet-scale tiles.
constexpr std::size_t kMinParallelFlops = std::size_t{1} << 21;

/// Degenerate shapes every kernel handles up front: an empty output needs no
/// work; k == 0 means C is zeroed (or untouched when accumulating).
bool handle_trivial(float* c, std::size_t m, std::size_t k, std::size_t n,
                    bool accumulate) noexcept;

/// Row panels a GEMM of `flops` total work over `m` rows may fan out to,
/// given the current math-thread cap and pool size. Pure with respect to the
/// call site (no calling-thread inspection), so Device plans may cache it;
/// run_row_chunks re-checks the in-pool condition at execution time.
std::size_t plan_chunks(std::size_t m, std::size_t flops) noexcept;

/// Runs fn(i_begin, i_end) over [0, m) split into `chunks` kMr-aligned
/// chunks. The alignment keeps the micro-kernel/edge-kernel boundary
/// independent of the chunk layout (see determinism note above). Inside a
/// pool task (client training fans over the same global pool) the pool is
/// saturated: queued panels would only be drained by this thread anyway, so
/// the fan-out collapses to sequential regardless of `chunks`.
template <typename Fn>
void run_row_chunks(std::size_t m, std::size_t chunks, const Fn& fn) {
  if (chunks <= 1 || ThreadPool::current_thread_in_pool()) {
    fn(0, m);
    return;
  }
  const std::size_t panels = (m + kMr - 1) / kMr;
  const std::size_t panels_per_chunk = (panels + chunks - 1) / chunks;
  ThreadPool::global().parallel_for(chunks, [&](std::size_t chunk) {
    const std::size_t i0 = chunk * panels_per_chunk * kMr;
    const std::size_t i1 = std::min(m, i0 + panels_per_chunk * kMr);
    if (i0 < m) fn(i0, i1);
  });
}

/// plan_chunks + run_row_chunks in one step, for callers with no plan cache.
template <typename Fn>
void for_row_chunks(std::size_t m, std::size_t flops, const Fn& fn) {
  run_row_chunks(m, plan_chunks(m, flops), fn);
}

// --- dense panels (AVX2+FMA dispatched internally) --------------------------
// Rows [i0, i1) of C. nn/tn read B row-major [k×n]; nt reads B stored [n×k].
// A is row-major [m×k] for nn/nt and stored [k×m] for tn (lda = row stride).

void gemm_panel_nn(const float* a, const float* b, float* c, std::size_t lda,
                   std::size_t k, std::size_t n, std::size_t i0, std::size_t i1,
                   bool accumulate);
void gemm_panel_tn(const float* a, const float* b, float* c, std::size_t lda,
                   std::size_t k, std::size_t n, std::size_t i0, std::size_t i1,
                   bool accumulate);
void gemm_panel_nt(const float* a, const float* b, float* c, std::size_t k, std::size_t n,
                   std::size_t i0, std::size_t i1, bool accumulate);

/// gemm_panel_nn with the epilogue applied inside the register tiles at
/// store-back — the fused conv→bn→activation path.
void gemm_panel_nn_fused(const float* a, const float* b, float* c, std::size_t lda,
                         std::size_t k, std::size_t n, std::size_t i0, std::size_t i1,
                         bool accumulate, const GemmEpilogue& ep);

/// Elementwise epilogue post-pass over rows [i0, i1) of C [m×n] — the same
/// per-element expressions as the fused store-back, for kernels that cannot
/// fuse (naive, sparse). Bit-identical to the fused path.
void apply_epilogue_rows(float* c, std::size_t n, std::size_t i0, std::size_t i1,
                         const GemmEpilogue& ep) noexcept;

// --- sparse kernels ----------------------------------------------------------

/// Fraction of nonzero entries in `data` (1.0 for empty inputs).
double density(const float* data, std::size_t size) noexcept;

/// CSR of a row-major [rows×cols] matrix; entries keep ascending column order.
struct Csr {
  std::vector<std::uint32_t> row_begin;  // rows+1 offsets
  std::vector<std::uint32_t> col;
  std::vector<float> val;

  static Csr pack(const float* data, std::size_t rows, std::size_t cols);
  /// CSR of the TRANSPOSE of a row-major [rows×cols] matrix (i.e. CSC):
  /// entry lists per column, ascending row order.
  static Csr pack_transposed(const float* data, std::size_t rows, std::size_t cols);
};

/// c[i,:] (+)= Σ_nonzeros(i) val · b[col,:] for rows [i0, i1) — the shared
/// nn/tn inner loop once the sparse operand is in "per output row" CSR form.
void sparse_axpy_panel(const std::uint32_t* row_begin, const std::uint32_t* col,
                       const float* val, const float* b, float* c, std::size_t n,
                       std::size_t i0, std::size_t i1, bool accumulate);

/// c[i,j] (+)= sparse dot of dense A row i with CSR row j of B (stored [n×k]).
void sparse_dot_panel(const std::uint32_t* row_begin, const std::uint32_t* col,
                      const float* val, const float* a, float* c, std::size_t k,
                      std::size_t n, std::size_t i0, std::size_t i1, bool accumulate);

}  // namespace kern
}  // namespace subfed
