// Small blocked GEMM and im2col/col2im used by Conv2d and Linear.
//
// All matrices are row-major. Sizes in this project are LeNet-scale
// (K ≤ ~500), so a register-blocked ikj kernel is within ~2-3× of a tuned
// BLAS and keeps the repo dependency-free.
#pragma once

#include <cstddef>

namespace subfed {

/// C[m×n] = A[m×k] · B[k×n]  (C is overwritten).
void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n) noexcept;

/// C[m×n] += A[m×k] · B[k×n].
void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) noexcept;

/// C[m×n] = Aᵀ[m×k] · B[k×n] where A is stored [k×m].
void gemm_at_b(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) noexcept;

/// C[m×n] = A[m×k] · Bᵀ[k×n] where B is stored [n×k].
void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) noexcept;

/// Geometry of one conv layer application, shared by im2col and col2im.
struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;  // square kernels only (all paper models use 5x5/2x2)
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const noexcept { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const noexcept { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the unrolled patch matrix: C·K·K.
  std::size_t patch_size() const noexcept { return in_channels * kernel * kernel; }
};

/// Unrolls one image [C,H,W] into columns [C·K·K, outH·outW].
void im2col(const float* image, const ConvGeometry& g, float* columns) noexcept;

/// Scatters columns [C·K·K, outH·outW] back into an image [C,H,W],
/// accumulating overlapping patches (the adjoint of im2col).
void col2im(const float* columns, const ConvGeometry& g, float* image) noexcept;

/// im2col into a wider matrix: row r of the patch lands at
/// columns + r*col_stride + col_offset. Batched conv packs every sample of a
/// batch into one [C·K·K, N·outH·outW] matrix this way (sample n at offset
/// n·outH·outW with stride N·outH·outW), so the whole batch is a single GEMM.
void im2col_strided(const float* image, const ConvGeometry& g, float* columns,
                    std::size_t col_stride, std::size_t col_offset) noexcept;

/// Adjoint of im2col_strided: reads row r at columns + r*col_stride +
/// col_offset and scatter-accumulates into the [C,H,W] image (zeroed first).
void col2im_strided(const float* columns, const ConvGeometry& g, float* image,
                    std::size_t col_stride, std::size_t col_offset) noexcept;

}  // namespace subfed
