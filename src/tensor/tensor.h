// Dense row-major float tensor.
//
// Deliberately minimal: the CNNs in this paper (LeNet-5, 5-layer CNN) need
// contiguous storage, shape bookkeeping, elementwise math and GEMM — not a
// general strided/broadcast engine. Value semantics throughout: Tensor copies
// are deep, moves are cheap.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace subfed {

class Rng;

/// Tensor shape: up to a handful of dims (N,C,H,W for activations; arbitrary
/// rank for parameters). Stored as a small vector of extents.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  std::size_t rank() const noexcept { return dims_.size(); }
  std::size_t operator[](std::size_t i) const;
  std::size_t numel() const noexcept;
  const std::vector<std::size_t>& dims() const noexcept { return dims_; }

  bool operator==(const Shape& other) const noexcept = default;

  /// "(2, 3, 5)" — for error messages.
  std::string to_string() const;

 private:
  std::vector<std::size_t> dims_;
};

/// Contiguous float32 tensor.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  /// Tensor filled with `value`.
  Tensor(Shape shape, float value);
  /// Takes ownership of existing data (size must match shape.numel()).
  Tensor(Shape shape, std::vector<float> data);

  const Shape& shape() const noexcept { return shape_; }
  std::size_t numel() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> span() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> span() const noexcept { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i);
  float operator[](std::size_t i) const;

  /// 2-D indexed access (checked): tensor must have rank 2.
  float& at2(std::size_t i, std::size_t j);
  float at2(std::size_t i, std::size_t j) const;
  /// 4-D indexed access (checked): tensor must have rank 4.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Re-interpret as a different shape with identical numel. Returns *this.
  Tensor& reshape(Shape shape);

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// In-place elementwise: this += other (shapes must match).
  Tensor& add_(const Tensor& other);
  /// this -= other.
  Tensor& sub_(const Tensor& other);
  /// this *= other (Hadamard).
  Tensor& mul_(const Tensor& other);
  /// this *= scalar.
  Tensor& scale_(float scalar) noexcept;
  /// this += scalar * other (axpy).
  Tensor& axpy_(float scalar, const Tensor& other);

  /// Sum of elements.
  double sum() const noexcept;
  /// Mean of elements (0 for empty tensors).
  double mean() const noexcept;
  /// Max |x|.
  float abs_max() const noexcept;
  /// Sum of squares.
  double squared_norm() const noexcept;
  /// Count of exactly-zero entries.
  std::size_t count_zero() const noexcept;

  /// Fills with N(mean, stddev) draws from `rng`.
  void fill_normal(Rng& rng, float mean, float stddev);
  /// Fills with U[lo, hi) draws from `rng`.
  void fill_uniform(Rng& rng, float lo, float hi);

  bool operator==(const Tensor& other) const noexcept = default;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// out = a + b (new tensor).
Tensor add(const Tensor& a, const Tensor& b);
/// out = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// out = a ⊙ b.
Tensor mul(const Tensor& a, const Tensor& b);

/// Max element index (ties → lowest index). Tensor must be non-empty.
std::size_t argmax(std::span<const float> values);

}  // namespace subfed
