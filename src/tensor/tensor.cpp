#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"

namespace subfed {

std::size_t Shape::operator[](std::size_t i) const {
  SUBFEDAVG_CHECK(i < dims_.size(), "dim " << i << " out of rank " << dims_.size());
  return dims_[i];
}

std::size_t Shape::numel() const noexcept {
  std::size_t n = 1;
  for (const std::size_t d : dims_) n *= d;
  return dims_.empty() ? 0 : n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << ", ";
    os << dims_[i];
  }
  os << ')';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}

Tensor::Tensor(Shape shape, float value) : shape_(std::move(shape)), data_(shape_.numel(), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  SUBFEDAVG_CHECK(data_.size() == shape_.numel(),
                  "data size " << data_.size() << " != shape numel " << shape_.numel());
}

float& Tensor::operator[](std::size_t i) {
  SUBFEDAVG_CHECK(i < data_.size(), "index " << i << " out of " << data_.size());
  return data_[i];
}

float Tensor::operator[](std::size_t i) const {
  SUBFEDAVG_CHECK(i < data_.size(), "index " << i << " out of " << data_.size());
  return data_[i];
}

float& Tensor::at2(std::size_t i, std::size_t j) {
  SUBFEDAVG_CHECK(shape_.rank() == 2, "at2 on shape " << shape_.to_string());
  SUBFEDAVG_CHECK(i < shape_[0] && j < shape_[1], "at2(" << i << "," << j << ")");
  return data_[i * shape_[1] + j];
}

float Tensor::at2(std::size_t i, std::size_t j) const {
  return const_cast<Tensor*>(this)->at2(i, j);
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  SUBFEDAVG_CHECK(shape_.rank() == 4, "at4 on shape " << shape_.to_string());
  const std::size_t C = shape_[1], H = shape_[2], W = shape_[3];
  SUBFEDAVG_CHECK(n < shape_[0] && c < C && h < H && w < W,
                  "at4(" << n << "," << c << "," << h << "," << w << ")");
  return data_[((n * C + c) * H + h) * W + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

Tensor& Tensor::reshape(Shape shape) {
  SUBFEDAVG_CHECK(shape.numel() == data_.size(),
                  "reshape " << shape_.to_string() << " -> " << shape.to_string());
  shape_ = std::move(shape);
  return *this;
}

void Tensor::fill(float value) noexcept {
  for (auto& x : data_) x = value;
}

Tensor& Tensor::add_(const Tensor& other) {
  SUBFEDAVG_CHECK(numel() == other.numel(), "add_ size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  SUBFEDAVG_CHECK(numel() == other.numel(), "sub_ size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  SUBFEDAVG_CHECK(numel() == other.numel(), "mul_ size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float scalar) noexcept {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Tensor& Tensor::axpy_(float scalar, const Tensor& other) {
  SUBFEDAVG_CHECK(numel() == other.numel(), "axpy_ size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scalar * other.data_[i];
  return *this;
}

double Tensor::sum() const noexcept {
  double s = 0.0;
  for (const float x : data_) s += x;
  return s;
}

double Tensor::mean() const noexcept { return data_.empty() ? 0.0 : sum() / data_.size(); }

float Tensor::abs_max() const noexcept {
  float m = 0.0f;
  for (const float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Tensor::squared_norm() const noexcept {
  double s = 0.0;
  for (const float x : data_) s += static_cast<double>(x) * x;
  return s;
}

std::size_t Tensor::count_zero() const noexcept {
  std::size_t n = 0;
  for (const float x : data_) n += (x == 0.0f);
  return n;
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (auto& x : data_) x = static_cast<float>(rng.normal(mean, stddev));
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.sub_(b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.mul_(b);
  return out;
}

std::size_t argmax(std::span<const float> values) {
  SUBFEDAVG_CHECK(!values.empty(), "argmax of empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

}  // namespace subfed
