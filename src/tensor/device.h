// Storage-owning compute devices.
//
// PR 3's MathBackend multiplies but never owns memory: every Conv2d
// hand-manages workspace vectors, the sparse backend re-inspects weight
// density on every call, and nothing remembers how a shape was executed last
// time. Device promotes that seam to an interface that owns staging buffers
// and execution state (the poplibs ConvPlan shape — plan once, reuse across
// calls — rather than darknet's layer-holds-device-buffers shape):
//
//   * workspace leases — layers lease scratch from a per-device pooled
//     allocator (RAII WorkspaceLease) instead of owning grow-only vectors;
//   * an execution-plan cache keyed on (op, m/k/n, weight side) per device
//     (dtype is per-device) that picks the thread fan-out once and caches the
//     sparse-vs-dense decision per weight (parameter uid + mask epoch, so a
//     pruning pass invalidates it) instead of rescanning density per call;
//   * fused conv→batchnorm→activation epilogues applied in the blocked
//     GEMM's register tiles (see tensor/kernels.h, GemmEpilogue);
//   * an fp16 compute mode that stages A/B panels through the wire-format
//     round-to-nearest casts (comm/quantize.h) with fp32 accumulation.
//
// Devices are process-lifetime singletons, safe to share across threads.
// Determinism: per device, results are bit-identical for any math_threads
// value (plans only choose fan-out and kernels accumulate in ascending-k
// order); fp16 staging is elementwise and deterministic. Across devices the
// equivalence suite compares within tolerance — documented looser for fp16.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/kernels.h"

namespace subfed {

class MathBackend;

enum class ComputeDType : std::uint8_t { kFp32 = 0, kFp16 = 1 };

const char* compute_dtype_name(ComputeDType dtype) noexcept;
/// Parses "fp32" | "fp16" (throws CheckError listing the names otherwise).
ComputeDType parse_compute_dtype(const std::string& name);

/// GEMM orientation, matching MathBackend's three entry points:
/// kNN: C = A[m×k]·B[k×n]; kTN: A stored [k×m]; kNT: B stored [n×k].
enum class GemmOp : std::uint8_t { kNN, kTN, kNT };

/// Which GEMM operand is a layer weight with a pruning-stable sparsity
/// pattern — the operand whose sparse-vs-dense decision the plan cache may
/// remember under (weight_uid, weight_epoch).
enum class WeightSide : std::uint8_t { kNone, kA, kB };

class Device;

/// RAII lease of device-owned scratch. The granted capacity (`size()`, in
/// floats, ≥ the request) comes from a pooled size-class allocator; returning
/// the lease (destructor or reset()) recycles the buffer without freeing it,
/// so steady-state training does no per-call allocation. Contents are
/// uninitialized. Movable, not copyable; may outlive arbitrary other leases
/// but not the device (devices live for the process).
class WorkspaceLease {
 public:
  WorkspaceLease() = default;
  WorkspaceLease(WorkspaceLease&& other) noexcept;
  WorkspaceLease& operator=(WorkspaceLease&& other) noexcept;
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;
  ~WorkspaceLease();

  /// Returns the buffer to the device pool now (idempotent).
  void reset() noexcept;

  float* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  explicit operator bool() const noexcept { return data_ != nullptr; }

 private:
  friend class Device;
  WorkspaceLease(const Device* device, float* data, std::size_t size) noexcept
      : device_(device), data_(data), size_(size) {}

  const Device* device_ = nullptr;
  float* data_ = nullptr;
  std::size_t size_ = 0;  ///< granted capacity in floats
};

/// Always-on (relaxed-atomic) device counters, independent of the telemetry
/// level — tests assert plan-cache and pool behaviour through these. The
/// telemetry registry mirrors plan hits/misses and density scans under
/// "device.*" when telemetry is enabled.
struct DeviceStats {
  std::uint64_t plan_hits = 0;        ///< gemm calls fully served by the plan cache
  std::uint64_t plan_misses = 0;      ///< calls that (re)planned fan-out or density
  std::uint64_t density_scans = 0;    ///< O(weight) density inspections performed
  std::uint64_t workspace_leases = 0; ///< lease() calls
  std::uint64_t workspace_reuses = 0; ///< leases served from the pool
  std::uint64_t bytes_allocated = 0;  ///< cumulative raw buffer allocations
  std::uint64_t plan_entries = 0;     ///< current plan-cache size
};

/// A compute device: a MathBackend kernel set + compute dtype + the owned
/// state described above. All methods are const and thread-safe; the mutable
/// plan/pool state is internally synchronized.
class Device {
 public:
  Device(const MathBackend& kernels, ComputeDType compute);
  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// "blocked", "sparse+fp16", … — backend name plus a dtype suffix.
  const std::string& name() const noexcept { return name_; }
  const std::string& backend_name() const noexcept { return backend_name_; }
  ComputeDType compute() const noexcept { return compute_; }
  /// The raw kernel set this device executes through.
  const MathBackend& kernels() const noexcept { return kernels_; }

  // --- storage ---------------------------------------------------------------

  /// Raw 64-byte-aligned buffer of `floats` elements (uninitialized). Pair
  /// with deallocate. Most callers want lease() instead.
  float* allocate(std::size_t floats) const;
  void deallocate(float* data, std::size_t floats) const noexcept;

  /// Leases pooled scratch of at least `floats` elements (see WorkspaceLease).
  WorkspaceLease lease(std::size_t floats) const;

  // --- compute ---------------------------------------------------------------

  /// Planned GEMM: C[m×n] (+)= op(A)·op(B). Consults/updates the plan cache;
  /// when `weight_side` names a weight operand, pass the owning Parameter's
  /// `uid`/`mask_epoch` so the sparse-vs-dense decision is cached until the
  /// next pruning pass instead of rescanned per call (uid 0 = unknown, scan
  /// per call). `epilogue` fuses a conv→bn→activation tail into the store-back
  /// (bit-identical to the unfused layer chain, any device kind).
  void gemm(GemmOp op, const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n, bool accumulate,
            WeightSide weight_side = WeightSide::kNone, std::uint64_t weight_uid = 0,
            std::uint64_t weight_epoch = 0, const GemmEpilogue* epilogue = nullptr) const;

  void im2col(const float* image, const ConvGeometry& g, float* columns,
              std::size_t col_stride, std::size_t col_offset) const;
  void col2im(const float* columns, const ConvGeometry& g, float* image,
              std::size_t col_stride, std::size_t col_offset) const;

  DeviceStats stats() const noexcept;

 private:
  friend class WorkspaceLease;
  struct Impl;

  void release(float* data, std::size_t floats) const noexcept;
  void execute(GemmOp op, WeightSide side, const float* a, const float* b, float* c,
               std::size_t m, std::size_t k, std::size_t n, bool accumulate,
               std::size_t chunks, bool use_sparse, bool sparse_decided,
               const GemmEpilogue* epilogue) const;

  const MathBackend& kernels_;
  ComputeDType compute_;
  std::string backend_name_;
  std::string name_;
  std::unique_ptr<Impl> impl_;
};

/// Device registry: backend names ("naive" | "blocked" | "sparse") × compute
/// dtypes resolve to process-lifetime singletons. Throws CheckError listing
/// the valid combinations on an unknown backend name.
const Device& get_device(const std::string& backend,
                         ComputeDType dtype = ComputeDType::kFp32);
/// Convenience overload parsing `compute` ("fp32" | "fp16").
const Device& get_device(const std::string& backend, const std::string& compute);

/// True when `backend` names a registered kernel set.
bool has_device(const std::string& backend);

/// Every device name the registry resolves: backend names plus their "+fp16"
/// variants, sorted.
std::vector<std::string> list_devices();

/// The process-wide default device: SUBFEDAVG_BACKEND (default "blocked") at
/// SUBFEDAVG_COMPUTE (default "fp32"). Resolved once; a bad env value throws
/// on first use (ExperimentSpec::make_context resolves eagerly).
const Device& default_device();

/// The fp32 device wrapping `kernels` — the shim Layer::set_backend uses to
/// keep the deprecated MathBackend pointer API working.
const Device& device_for(const MathBackend& kernels);

/// Process default for fusing conv→bn→activation epilogues into eval-mode
/// GEMMs: SUBFEDAVG_FUSED (default on). Model::set_fusion overrides per model.
bool fused_epilogues_default() noexcept;

}  // namespace subfed
