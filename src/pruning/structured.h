// Structured (channel-level) pruning via BatchNorm scaling factors
// (network slimming, Liu et al. 2017 — the method the paper adopts, §3.5).
//
// Channel importance = |γ| of the BN layer that follows each conv. Pruning
// removes whole output channels: the conv filter, its BN affine terms, and
// every downstream consumer of that channel (next conv's input planes, or
// the first FC layer's input columns when the conv feeds the flatten).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "pruning/mask.h"

namespace subfed {

/// Per-conv-block channel keep flags. Blocks follow Model::topology() order.
class ChannelMask {
 public:
  ChannelMask() = default;

  /// All-channels-kept mask matching `model`'s conv blocks.
  static ChannelMask ones_like(const Model& model);

  std::size_t num_blocks() const noexcept { return keep_.size(); }
  const std::vector<std::uint8_t>& block(std::size_t b) const;
  std::vector<std::uint8_t>& block(std::size_t b);

  std::size_t total_channels() const noexcept;
  std::size_t kept_channels() const noexcept;
  double pruned_fraction() const noexcept;

  /// Fraction of differing channel bits (the structured Δ of Algorithm 2).
  static double hamming_distance(const ChannelMask& a, const ChannelMask& b);

  /// Expands the channel mask into per-parameter {0,1} tensors covering the
  /// conv weights/biases, BN affine terms... — everything a pruned channel
  /// silences, including the next layer's view of that channel. The result
  /// composes with unstructured masks via ModelMask::intersected.
  ModelMask to_model_mask(Model& model) const;

 private:
  std::vector<std::vector<std::uint8_t>> keep_;
};

/// Derives the next channel mask by pruning the smallest-|γ| kept channels
/// (global percentile across all BN layers) until `target_fraction` of ALL
/// channels are pruned. Monotone w.r.t. `current`; always keeps ≥1 channel
/// per block.
ChannelMask derive_channel_mask(Model& model, const ChannelMask& current,
                                double target_fraction);

/// Zeroes the masked-out weights in place (conv filters, BN γ/β, downstream
/// planes/columns). Equivalent to to_model_mask().apply_to_weights(model).
void apply_channel_mask(Model& model, const ChannelMask& mask);

}  // namespace subfed
