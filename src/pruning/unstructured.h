// Unstructured (parameter-level) magnitude pruning.
//
// Lottery-ticket-style iterative pruning: each call prunes the
// lowest-magnitude *currently kept* weights of every covered tensor until
// the tensor's pruned fraction reaches `target_fraction`. Per-layer
// percentiles (not a global pool) match the paper's reference code.
#pragma once

#include "pruning/mask.h"

namespace subfed {

/// Returns a new mask whose every covered tensor has `target_fraction` of its
/// entries pruned (monotonically extends `current`: a pruned weight never
/// revives). At least one weight per tensor is always kept.
///
/// Magnitudes are read from the model's CURRENT weights, so call this at the
/// end of an epoch (Algorithms 1 & 2 derive masks at the end of the first and
/// last local epoch).
ModelMask derive_magnitude_mask(Model& model, const ModelMask& current,
                                double target_fraction);

/// The paper's per-round schedule: advance the pruned fraction by pruning
/// `rate` of the REMAINING weights, clamped to `target`:
///   next = min(target, pruned + rate·(1 − pruned)).
double next_pruned_fraction(double current_pruned, double rate, double target);

}  // namespace subfed
