#include "pruning/unstructured.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace subfed {

double next_pruned_fraction(double current_pruned, double rate, double target) {
  SUBFEDAVG_CHECK(current_pruned >= 0.0 && current_pruned <= 1.0, "bad pruned fraction");
  const double next = current_pruned + rate * (1.0 - current_pruned);
  return std::min(next, target);
}

ModelMask derive_magnitude_mask(Model& model, const ModelMask& current,
                                double target_fraction) {
  SUBFEDAVG_CHECK(target_fraction >= 0.0 && target_fraction < 1.0,
                  "target fraction " << target_fraction);
  ModelMask next = current;

  for (Parameter* p : model.parameters()) {
    Tensor* mask = next.find(p->name);
    if (mask == nullptr) continue;

    const std::size_t n = p->value.numel();
    const std::size_t want_pruned = static_cast<std::size_t>(
        std::floor(target_fraction * static_cast<double>(n)));

    // Already-pruned positions stay pruned; count how many more to cut.
    std::size_t already_pruned = 0;
    for (std::size_t i = 0; i < n; ++i) already_pruned += ((*mask)[i] == 0.0f);
    if (want_pruned <= already_pruned) continue;
    std::size_t to_prune = want_pruned - already_pruned;

    // Never empty a tensor completely.
    const std::size_t kept_now = n - already_pruned;
    if (to_prune >= kept_now) to_prune = kept_now - 1;
    if (to_prune == 0) continue;

    // nth_element over the currently-kept magnitudes.
    std::vector<std::pair<float, std::size_t>> kept;
    kept.reserve(kept_now);
    for (std::size_t i = 0; i < n; ++i) {
      if ((*mask)[i] != 0.0f) kept.emplace_back(std::fabs(p->value[i]), i);
    }
    std::nth_element(kept.begin(), kept.begin() + static_cast<std::ptrdiff_t>(to_prune - 1),
                     kept.end(),
                     [](const auto& a, const auto& b) {
                       // Tie-break on index for full determinism.
                       return a.first != b.first ? a.first < b.first : a.second < b.second;
                     });
    for (std::size_t i = 0; i < to_prune; ++i) (*mask)[kept[i].second] = 0.0f;
  }
  return next;
}

}  // namespace subfed
