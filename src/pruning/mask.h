// Binary masks over model parameters.
//
// A ModelMask stores one {0,1} tensor per *covered* parameter (by name).
// Parameters outside the coverage are implicitly fully kept. Masks are the
// unit of exchange in Sub-FedAvg: clients upload (masked weights, mask) and
// the server averages each entry over the clients that retained it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/model.h"
#include "tensor/tensor.h"

namespace subfed {

/// Which parameters a mask (and a pruner) covers.
enum class MaskScope {
  kAllPrunable,  ///< every prunable weight tensor (Algorithm 1)
  kFcOnly,       ///< only fully-connected weights (Algorithm 2's unstructured half)
};

class ModelMask {
 public:
  ModelMask() = default;

  /// All-ones mask over the scope's prunable parameters of `model`.
  static ModelMask ones_like(Model& model, MaskScope scope);

  std::size_t num_entries() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  const Tensor* find(const std::string& name) const;
  Tensor* find(const std::string& name);

  /// Adds/replaces the mask for one parameter (values must be 0 or 1).
  void set(const std::string& name, Tensor mask);

  /// weights ← weights ⊙ mask, for covered parameters.
  void apply_to_weights(Model& model) const;
  /// grads ← grads ⊙ mask; keeps pruned weights frozen at zero across
  /// momentum updates.
  void apply_to_grads(Model& model) const;

  /// Covered scalar count and kept (mask==1) count.
  std::size_t covered() const noexcept;
  std::size_t kept() const noexcept;
  /// 1 − kept/covered (0 when nothing is covered).
  double pruned_fraction() const noexcept;

  /// Fraction of covered positions whose bits differ. Masks must cover the
  /// same names/shapes. This is the paper's normalized "mask distance" Δ.
  static double hamming_distance(const ModelMask& a, const ModelMask& b);

  /// Positionwise AND across the union of coverage: entries covered by only
  /// one operand adopt that operand's bits.
  ModelMask intersected(const ModelMask& other) const;

  /// Fraction of positions kept by BOTH masks among positions kept by
  /// EITHER (Jaccard) — used to quantify subnetwork similarity between
  /// clients (the paper's "partner" observation).
  static double jaccard_overlap(const ModelMask& a, const ModelMask& b);

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  // Sorted-by-insertion list of (parameter name, {0,1} tensor).
  std::vector<std::pair<std::string, Tensor>> entries_;
};

}  // namespace subfed
