#include "pruning/structured.h"

#include <algorithm>
#include <cmath>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "util/check.h"

namespace subfed {

ChannelMask ChannelMask::ones_like(const Model& model) {
  ChannelMask mask;
  for (const ConvBlock& block : model.topology().conv_blocks) {
    mask.keep_.emplace_back(block.conv->out_channels(), std::uint8_t{1});
  }
  return mask;
}

const std::vector<std::uint8_t>& ChannelMask::block(std::size_t b) const {
  SUBFEDAVG_CHECK(b < keep_.size(), "block " << b << " out of " << keep_.size());
  return keep_[b];
}

std::vector<std::uint8_t>& ChannelMask::block(std::size_t b) {
  SUBFEDAVG_CHECK(b < keep_.size(), "block " << b << " out of " << keep_.size());
  return keep_[b];
}

std::size_t ChannelMask::total_channels() const noexcept {
  std::size_t n = 0;
  for (const auto& block : keep_) n += block.size();
  return n;
}

std::size_t ChannelMask::kept_channels() const noexcept {
  std::size_t n = 0;
  for (const auto& block : keep_) {
    for (const std::uint8_t k : block) n += (k != 0);
  }
  return n;
}

double ChannelMask::pruned_fraction() const noexcept {
  const std::size_t total = total_channels();
  return total == 0 ? 0.0
                    : 1.0 - static_cast<double>(kept_channels()) / static_cast<double>(total);
}

double ChannelMask::hamming_distance(const ChannelMask& a, const ChannelMask& b) {
  SUBFEDAVG_CHECK(a.keep_.size() == b.keep_.size(), "channel mask block count differs");
  std::size_t total = 0, differ = 0;
  for (std::size_t blk = 0; blk < a.keep_.size(); ++blk) {
    SUBFEDAVG_CHECK(a.keep_[blk].size() == b.keep_[blk].size(), "block size differs");
    total += a.keep_[blk].size();
    for (std::size_t c = 0; c < a.keep_[blk].size(); ++c) {
      differ += (a.keep_[blk][c] != b.keep_[blk][c]);
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(differ) / static_cast<double>(total);
}

ModelMask ChannelMask::to_model_mask(Model& model) const {
  const ModelTopology& topo = model.topology();
  SUBFEDAVG_CHECK(topo.conv_blocks.size() == keep_.size(), "mask/model block mismatch");

  ModelMask out;
  // Start from all-ones over every tensor a channel can touch, then zero.
  auto ensure = [&out](Parameter& p) -> Tensor* {
    if (Tensor* existing = out.find(p.name)) return existing;
    out.set(p.name, Tensor(p.value.shape(), 1.0f));
    return out.find(p.name);
  };

  for (std::size_t b = 0; b < keep_.size(); ++b) {
    const ConvBlock& block = topo.conv_blocks[b];
    Conv2d& conv = *block.conv;
    const std::size_t oc_count = conv.out_channels();
    SUBFEDAVG_CHECK(keep_[b].size() == oc_count, "block " << b << " channel count");

    Tensor* w = ensure(conv.weight());
    Tensor* bias = ensure(conv.bias());
    Tensor* gamma = block.bn != nullptr ? ensure(block.bn->gamma()) : nullptr;
    Tensor* beta = block.bn != nullptr ? ensure(block.bn->beta()) : nullptr;

    const std::size_t filter = conv.in_channels() * conv.kernel() * conv.kernel();
    for (std::size_t oc = 0; oc < oc_count; ++oc) {
      if (keep_[b][oc]) continue;
      for (std::size_t i = 0; i < filter; ++i) (*w)[oc * filter + i] = 0.0f;
      (*bias)[oc] = 0.0f;
      if (gamma != nullptr) (*gamma)[oc] = 0.0f;
      if (beta != nullptr) (*beta)[oc] = 0.0f;
    }

    if (block.next_conv != nullptr) {
      Conv2d& next = *block.next_conv;
      SUBFEDAVG_CHECK(next.in_channels() == oc_count, "next conv in_channels");
      Tensor* nw = ensure(next.weight());
      const std::size_t k2 = next.kernel() * next.kernel();
      const std::size_t in_stride = next.in_channels() * k2;
      for (std::size_t oc = 0; oc < oc_count; ++oc) {
        if (keep_[b][oc]) continue;
        for (std::size_t f = 0; f < next.out_channels(); ++f) {
          for (std::size_t i = 0; i < k2; ++i) {
            (*nw)[f * in_stride + oc * k2 + i] = 0.0f;
          }
        }
      }
    }
    if (block.next_fc != nullptr) {
      Linear& fc = *block.next_fc;
      const std::size_t spatial = block.spatial_per_channel;
      SUBFEDAVG_CHECK(fc.in_features() == oc_count * spatial, "fc in_features");
      Tensor* fw = ensure(fc.weight());
      for (std::size_t oc = 0; oc < oc_count; ++oc) {
        if (keep_[b][oc]) continue;
        for (std::size_t row = 0; row < fc.out_features(); ++row) {
          for (std::size_t s = 0; s < spatial; ++s) {
            (*fw)[row * fc.in_features() + oc * spatial + s] = 0.0f;
          }
        }
      }
    }
  }
  return out;
}

ChannelMask derive_channel_mask(Model& model, const ChannelMask& current,
                                double target_fraction) {
  SUBFEDAVG_CHECK(target_fraction >= 0.0 && target_fraction < 1.0,
                  "target fraction " << target_fraction);
  const ModelTopology& topo = model.topology();
  ChannelMask next = current;

  const std::size_t total = next.total_channels();
  const std::size_t want_pruned =
      static_cast<std::size_t>(std::floor(target_fraction * static_cast<double>(total)));
  const std::size_t already = total - next.kept_channels();
  if (want_pruned <= already) return next;
  std::size_t to_prune = want_pruned - already;

  // Candidate pool: (|γ|, block, channel) for kept channels; blocks down to a
  // single kept channel are excluded to preserve a connected network.
  struct Candidate {
    float importance;
    std::size_t block, channel;
  };
  std::vector<Candidate> pool;
  for (std::size_t b = 0; b < topo.conv_blocks.size(); ++b) {
    const BatchNorm2d* bn = topo.conv_blocks[b].bn;
    SUBFEDAVG_CHECK(bn != nullptr, "structured pruning requires BN after conv");
    const Tensor& gamma = const_cast<BatchNorm2d*>(bn)->gamma().value;
    for (std::size_t c = 0; c < next.block(b).size(); ++c) {
      if (next.block(b)[c]) pool.push_back({std::fabs(gamma[c]), b, c});
    }
  }
  std::sort(pool.begin(), pool.end(), [](const Candidate& a, const Candidate& b) {
    if (a.importance != b.importance) return a.importance < b.importance;
    if (a.block != b.block) return a.block < b.block;
    return a.channel < b.channel;
  });

  std::vector<std::size_t> kept_per_block(topo.conv_blocks.size());
  for (std::size_t b = 0; b < topo.conv_blocks.size(); ++b) {
    for (const std::uint8_t k : next.block(b)) kept_per_block[b] += (k != 0);
  }

  for (const Candidate& cand : pool) {
    if (to_prune == 0) break;
    if (kept_per_block[cand.block] <= 1) continue;  // keep blocks alive
    next.block(cand.block)[cand.channel] = 0;
    --kept_per_block[cand.block];
    --to_prune;
  }
  return next;
}

void apply_channel_mask(Model& model, const ChannelMask& mask) {
  mask.to_model_mask(model).apply_to_weights(model);
}

}  // namespace subfed
