// The paper's pruning gate (ClientUpdate in Algorithms 1 & 2).
//
// A client commits a newly derived mask only when ALL of:
//   1. local validation accuracy ≥ Accth,
//   2. the target pruning rate has not been reached yet,
//   3. the Hamming distance between the first-epoch and last-epoch masks
//      is at least ε.
// In hybrid mode the structured and unstructured gates are evaluated
// independently ("when one does satisfy the constraints it applies the mask
// regardless of if the other one satisfies", §3.5).
#pragma once

namespace subfed {

struct PruneGateConfig {
  double acc_threshold = 0.5;  ///< Accth on local validation accuracy
  double target_rate = 0.5;    ///< target pruned fraction p
  double epsilon = 1e-4;       ///< minimum mask distance Δ
  double step_rate = 0.1;      ///< r: fraction of remaining pruned per round
};

struct PruneGateInputs {
  double val_accuracy = 0.0;
  double current_pruned = 0.0;
  double mask_distance = 0.0;  ///< Δ(m_fe, m_le)
};

/// True iff the triple condition holds and the mask should be applied.
constexpr bool prune_gate_open(const PruneGateConfig& config, const PruneGateInputs& in) {
  // Compare against the target with a small slack: floor() quantization of
  // per-tensor counts can leave the achieved fraction a hair under target.
  constexpr double kSlack = 1e-9;
  return in.val_accuracy >= config.acc_threshold &&
         in.current_pruned + kSlack < config.target_rate &&
         in.mask_distance >= config.epsilon;
}

}  // namespace subfed
