#include "pruning/mask.h"

#include <algorithm>

#include "nn/linear.h"
#include "util/check.h"

namespace subfed {

namespace {

bool in_scope(const Parameter& p, MaskScope scope, const std::vector<std::string>& fc_names) {
  if (!p.prunable) return false;
  if (scope == MaskScope::kAllPrunable) return true;
  return std::find(fc_names.begin(), fc_names.end(), p.name) != fc_names.end();
}

}  // namespace

ModelMask ModelMask::ones_like(Model& model, MaskScope scope) {
  std::vector<std::string> fc_names;
  for (const Linear* fc : model.topology().fc_layers) {
    fc_names.push_back(const_cast<Linear*>(fc)->weight().name);
  }
  ModelMask mask;
  for (Parameter* p : model.parameters()) {
    if (in_scope(*p, scope, fc_names)) {
      mask.entries_.emplace_back(p->name, Tensor(p->value.shape(), 1.0f));
    }
  }
  return mask;
}

const Tensor* ModelMask::find(const std::string& name) const {
  for (const auto& [n, t] : entries_) {
    if (n == name) return &t;
  }
  return nullptr;
}

Tensor* ModelMask::find(const std::string& name) {
  for (auto& [n, t] : entries_) {
    if (n == name) return &t;
  }
  return nullptr;
}

void ModelMask::set(const std::string& name, Tensor mask) {
  for (auto& [n, t] : entries_) {
    if (n == name) {
      t = std::move(mask);
      return;
    }
  }
  entries_.emplace_back(name, std::move(mask));
}

void ModelMask::apply_to_weights(Model& model) const {
  for (Parameter* p : model.parameters()) {
    if (const Tensor* m = find(p->name)) {
      SUBFEDAVG_CHECK(m->shape() == p->value.shape(), "mask shape for " << p->name);
      p->value.mul_(*m);
      // The sparsity pattern just changed: advance the epoch so Device plan
      // caches drop their sparse-vs-dense decision for this parameter.
      ++p->mask_epoch;
    }
  }
}

void ModelMask::apply_to_grads(Model& model) const {
  for (Parameter* p : model.parameters()) {
    if (const Tensor* m = find(p->name)) p->grad.mul_(*m);
  }
}

std::size_t ModelMask::covered() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, t] : entries_) n += t.numel();
  return n;
}

std::size_t ModelMask::kept() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, t] : entries_) {
    for (std::size_t i = 0; i < t.numel(); ++i) n += (t[i] != 0.0f);
  }
  return n;
}

double ModelMask::pruned_fraction() const noexcept {
  const std::size_t c = covered();
  return c == 0 ? 0.0 : 1.0 - static_cast<double>(kept()) / static_cast<double>(c);
}

double ModelMask::hamming_distance(const ModelMask& a, const ModelMask& b) {
  SUBFEDAVG_CHECK(a.entries_.size() == b.entries_.size(), "mask coverage differs");
  std::size_t total = 0, differ = 0;
  for (std::size_t e = 0; e < a.entries_.size(); ++e) {
    const auto& [an, at] = a.entries_[e];
    const auto& [bn, bt] = b.entries_[e];
    SUBFEDAVG_CHECK(an == bn && at.shape() == bt.shape(), "mask entry mismatch: " << an);
    total += at.numel();
    for (std::size_t i = 0; i < at.numel(); ++i) differ += (at[i] != bt[i]);
  }
  return total == 0 ? 0.0 : static_cast<double>(differ) / static_cast<double>(total);
}

ModelMask ModelMask::intersected(const ModelMask& other) const {
  ModelMask out = *this;
  for (const auto& [name, t] : other.entries_) {
    if (Tensor* mine = out.find(name)) {
      SUBFEDAVG_CHECK(mine->shape() == t.shape(), "intersect shape for " << name);
      mine->mul_(t);
    } else {
      out.entries_.emplace_back(name, t);
    }
  }
  return out;
}

double ModelMask::jaccard_overlap(const ModelMask& a, const ModelMask& b) {
  SUBFEDAVG_CHECK(a.entries_.size() == b.entries_.size(), "mask coverage differs");
  std::size_t both = 0, either = 0;
  for (std::size_t e = 0; e < a.entries_.size(); ++e) {
    const auto& at = a.entries_[e].second;
    const auto& bt = b.entries_[e].second;
    SUBFEDAVG_CHECK(at.shape() == bt.shape(), "jaccard entry mismatch");
    for (std::size_t i = 0; i < at.numel(); ++i) {
      const bool ka = at[i] != 0.0f, kb = bt[i] != 0.0f;
      both += (ka && kb);
      either += (ka || kb);
    }
  }
  return either == 0 ? 1.0 : static_cast<double>(both) / static_cast<double>(either);
}

}  // namespace subfed
