// Wire format round-trips, payload accounting, ledger, closed-form model.
#include <gtest/gtest.h>

#include "comm/ledger.h"
#include "comm/serialize.h"
#include "nn/model_zoo.h"
#include "pruning/unstructured.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

StateDict sample_state() {
  Rng rng(1);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  return m.state();
}

TEST(Serialize, DenseRoundTrip) {
  const StateDict state = sample_state();
  const std::vector<std::uint8_t> bytes = encode_update(state, nullptr);
  const StateDict decoded = decode_update(bytes);
  ASSERT_EQ(decoded.size(), state.size());
  for (std::size_t e = 0; e < state.size(); ++e) {
    EXPECT_EQ(decoded[e].first, state[e].first);
    EXPECT_EQ(decoded[e].second, state[e].second);
  }
}

TEST(Serialize, MaskedRoundTripZeroesPruned) {
  Rng rng(2);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  mask = derive_magnitude_mask(m, mask, 0.5);
  mask.apply_to_weights(m);
  const StateDict state = m.state();

  const std::vector<std::uint8_t> bytes = encode_update(state, &mask);
  const StateDict decoded = decode_update(bytes);
  for (std::size_t e = 0; e < state.size(); ++e) {
    EXPECT_EQ(decoded[e].second, state[e].second) << state[e].first;
  }
}

TEST(Serialize, MaskedSmallerThanDense) {
  Rng rng(3);
  Model m = ModelSpec::lenet5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  mask = derive_magnitude_mask(m, mask, 0.7);
  const StateDict state = m.state();

  const std::size_t dense = encode_update(state, nullptr).size();
  const std::size_t sparse = encode_update(state, &mask).size();
  EXPECT_LT(sparse, dense);
  // 70% of covered weights drop to 1 bit from 32 bits; expect a big cut.
  EXPECT_LT(static_cast<double>(sparse), 0.55 * static_cast<double>(dense));
}

TEST(Serialize, PayloadBytesMatchesFormula) {
  Rng rng(4);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict state = m.state();

  // Dense: 4 bytes per scalar.
  EXPECT_EQ(payload_bytes(state, nullptr), state.numel() * 4);

  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  mask = derive_magnitude_mask(m, mask, 0.5);
  std::size_t expected = 0;
  for (const auto& [name, tensor] : state) {
    if (const Tensor* mt = mask.find(name)) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < mt->numel(); ++i) kept += ((*mt)[i] != 0.0f);
      expected += kept * 4 + (tensor.numel() + 7) / 8;
    } else {
      expected += tensor.numel() * 4;
    }
  }
  EXPECT_EQ(payload_bytes(state, &mask), expected);
}

TEST(Serialize, EncodedSizeTracksPayloadPlusSmallHeader) {
  const StateDict state = sample_state();
  const std::size_t payload = payload_bytes(state, nullptr);
  const std::size_t encoded = encode_update(state, nullptr).size();
  EXPECT_GE(encoded, payload);
  EXPECT_LT(encoded - payload, 1024u);  // names + shapes only
}

TEST(Serialize, PayloadBytesEqualsEncodedSizeMinusHeaderEverywhere) {
  // The ledger charges payload_bytes while the channel materializes
  // encode_update — this exact identity is what keeps the two from
  // diverging, including on the degenerate shapes.
  Rng rng(11);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  mask = derive_magnitude_mask(m, mask, 0.5);

  auto expect_identity = [](const StateDict& state, const ModelMask* mask_ptr) {
    EXPECT_EQ(encode_update(state, mask_ptr).size(),
              payload_bytes(state, mask_ptr) + encoded_header_bytes(state));
  };

  const StateDict state = m.state();
  expect_identity(state, nullptr);
  expect_identity(state, &mask);

  // Empty mask object: every entry is uncovered (dense).
  const ModelMask empty_mask;
  expect_identity(state, &empty_mask);

  // Empty state: header only.
  const StateDict empty_state;
  expect_identity(empty_state, nullptr);
  EXPECT_EQ(payload_bytes(empty_state, nullptr), 0u);

  // Zero-dim tensors: a [0]-shaped entry and a mask covering it.
  StateDict degenerate;
  degenerate.add("empty", Tensor(Shape{0}));
  degenerate.add("tiny", Tensor(Shape{3}, 1.5f));
  ModelMask degenerate_mask;
  degenerate_mask.set("empty", Tensor(Shape{0}));
  expect_identity(degenerate, nullptr);
  expect_identity(degenerate, &degenerate_mask);

  // Fully-pruned entry: bitmap transmitted, zero values.
  StateDict pruned_state;
  pruned_state.add("w", Tensor(Shape{9}, 2.0f));
  ModelMask pruned_mask;
  pruned_mask.set("w", Tensor(Shape{9}));  // all zeros
  expect_identity(pruned_state, &pruned_mask);
  EXPECT_EQ(payload_bytes(pruned_state, &pruned_mask), 2u);  // ⌈9/8⌉ bitmap only

  // And the degenerate payloads still round-trip through decode.
  const StateDict decoded = decode_update(encode_update(pruned_state, &pruned_mask));
  ASSERT_EQ(decoded.size(), 1u);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(decoded[0].second[i], 0.0f);
}

TEST(Serialize, RejectsCorruptBuffers) {
  const StateDict state = sample_state();
  std::vector<std::uint8_t> bytes = encode_update(state, nullptr);
  bytes[0] ^= 0xFF;  // break magic
  EXPECT_THROW(decode_update(bytes), CheckError);

  std::vector<std::uint8_t> truncated = encode_update(state, nullptr);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(decode_update(truncated), CheckError);

  std::vector<std::uint8_t> padded = encode_update(state, nullptr);
  padded.push_back(0);
  EXPECT_THROW(decode_update(padded), CheckError);
}

TEST(Ledger, AccumulatesPerRoundAndTotals) {
  CommLedger ledger;
  ledger.record(0, 100, 200);
  ledger.record(0, 50, 25);
  ledger.record(2, 1, 1);
  EXPECT_EQ(ledger.rounds(), 3u);
  EXPECT_EQ(ledger.round_up(0), 150u);
  EXPECT_EQ(ledger.round_down(0), 225u);
  EXPECT_EQ(ledger.round_up(1), 0u);
  EXPECT_EQ(ledger.total_up(), 151u);
  EXPECT_EQ(ledger.total_down(), 226u);
  EXPECT_EQ(ledger.total(), 377u);
  EXPECT_THROW(ledger.round_up(5), CheckError);
}

TEST(ClosedForm, MatchesPaperFormula) {
  // FedAvg MNIST-style: R rounds × 10 clients × |W|·32bit × 2.
  const std::uint64_t cost = closed_form_cost_bytes(300, 10, 21900);
  EXPECT_EQ(cost, 300ull * 10 * 21900 * 4 * 2);
  // With masks, each direction adds ⌈bits/8⌉.
  const std::uint64_t masked = closed_form_cost_bytes(1, 1, 100, 64);
  EXPECT_EQ(masked, (100ull * 4 + 8) * 2);
}

TEST(LinkModel, AsymmetricTransferTime) {
  LinkModel link;  // 1 MB/s up, 8 MB/s down
  const double t = link.transfer_seconds(2 * 1024 * 1024, 8 * 1024 * 1024);
  EXPECT_NEAR(t, 2.0 + 1.0, 1e-9);
  // Uplink dominates for symmetric payloads — the paper's bottleneck claim.
  const double sym = link.transfer_seconds(1024 * 1024, 1024 * 1024);
  EXPECT_GT(1.0, 0.125);
  EXPECT_NEAR(sym, 1.0 + 0.125, 1e-9);
}

}  // namespace
}  // namespace subfed
