// src/net/: framing adversity (partial reads, short writes, hostile length
// prefixes), deadlines, and the listener/connection wrappers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/io.h"
#include "net/socket.h"
#include "util/check.h"

namespace subfed::net {
namespace {

/// A connected localhost socket pair: client dialed, server accepted.
struct SocketPair {
  TcpListener listener{parse_host_port("127.0.0.1:0")};
  TcpConn client;
  TcpConn server;

  SocketPair() {
    client = TcpConn::connect({"127.0.0.1", listener.port()}, Deadline::after_ms(5000));
    server = listener.accept(Deadline::after_ms(5000));
  }
};

/// The wire image of one frame, built independently of send_frame so the
/// tests can corrupt any byte of it.
std::vector<std::uint8_t> wire_bytes(FrameKind kind, std::uint64_t tag,
                                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  const std::uint32_t magic = 0x53464E54;  // "SFNT"
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(magic >> (8 * i)));
  bytes.push_back(static_cast<std::uint8_t>(kind));
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(tag >> (8 * i)));
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

void write_raw(int fd, const std::vector<std::uint8_t>& bytes) {
  ASSERT_TRUE(write_exact(fd, bytes.data(), bytes.size()));
}

// ---------------------------------------------------------------------------
// Addresses and deadlines

TEST(HostPort, ParsesAndRejects) {
  const HostPort a = parse_host_port("127.0.0.1:9000");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 9000);
  EXPECT_EQ(parse_host_port("0.0.0.0:0").port, 0);

  EXPECT_THROW(parse_host_port("nohost"), CheckError);
  EXPECT_THROW(parse_host_port(":9000"), CheckError);
  EXPECT_THROW(parse_host_port("host:"), CheckError);
  EXPECT_THROW(parse_host_port("host:99999"), CheckError);
  EXPECT_THROW(parse_host_port("host:12a"), CheckError);
}

TEST(DeadlineTest, ZeroAndDefaultMeanUnlimited) {
  EXPECT_TRUE(Deadline{}.unlimited());
  EXPECT_TRUE(Deadline::after_ms(0).unlimited());
  EXPECT_FALSE(Deadline{}.expired());
  EXPECT_EQ(Deadline{}.remaining_ms(), -1);
}

TEST(DeadlineTest, ArmsAndExpires) {
  const Deadline d = Deadline::after_ms(40);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GE(d.remaining_ms(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
}

// ---------------------------------------------------------------------------
// Listener / connection

TEST(Listener, ResolvesEphemeralPortInEndpoint) {
  TcpListener listener(parse_host_port("127.0.0.1:0"));
  EXPECT_NE(listener.port(), 0);
  EXPECT_EQ(listener.endpoint(), "127.0.0.1:" + std::to_string(listener.port()));
}

TEST(Listener, AcceptTimesOutWhenNobodyConnects) {
  TcpListener listener(parse_host_port("127.0.0.1:0"));
  EXPECT_FALSE(listener.accept(Deadline::after_ms(50)).valid());
}

TEST(Connect, RefusedPortReturnsInvalidWithinDeadline) {
  // Bind-then-close: the port was just free, so the connect is refused (or at
  // worst times out at the deadline) rather than reaching some other service.
  std::uint16_t dead_port = 0;
  {
    TcpListener probe(parse_host_port("127.0.0.1:0"));
    dead_port = probe.port();
  }
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(TcpConn::connect({"127.0.0.1", dead_port}, Deadline::after_ms(2000)).valid());
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(10));
}

// ---------------------------------------------------------------------------
// Framing

TEST(Framing, RoundTripsEveryKindWithTagAndPayload) {
  SocketPair pair;
  ASSERT_TRUE(pair.client.valid());
  ASSERT_TRUE(pair.server.valid());
  for (const FrameKind kind :
       {FrameKind::kHello, FrameKind::kSetup, FrameKind::kExchange, FrameKind::kReply,
        FrameKind::kRunSpec, FrameKind::kRunResult, FrameKind::kError,
        FrameKind::kShutdown}) {
    const std::uint64_t tag = 0xDEADBEEFCAFE0000ULL + static_cast<std::uint64_t>(kind);
    const std::vector<std::uint8_t> payload = {1, 2, 3, static_cast<std::uint8_t>(kind)};
    ASSERT_TRUE(send_frame(pair.client, kind, tag, payload));
    NetFrame got;
    ASSERT_TRUE(recv_frame(pair.server, &got));
    EXPECT_EQ(got.kind, kind);
    EXPECT_EQ(got.tag, tag);
    EXPECT_EQ(got.payload, payload);
  }
}

TEST(Framing, ReassemblesDribbledDelivery) {
  // A peer (or the network) may deliver a frame one byte at a time; every
  // partial read must resume where it left off.
  SocketPair pair;
  std::vector<std::uint8_t> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  const std::vector<std::uint8_t> bytes = wire_bytes(FrameKind::kReply, 42, payload);
  std::thread dribbler([&] {
    for (std::size_t i = 0; i < bytes.size(); i += 3) {
      const std::size_t n = std::min<std::size_t>(3, bytes.size() - i);
      ASSERT_TRUE(write_exact(pair.client.fd(), bytes.data() + i, n));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  NetFrame got;
  EXPECT_TRUE(recv_frame(pair.server, &got, Deadline::after_ms(30000)));
  EXPECT_EQ(got.kind, FrameKind::kReply);
  EXPECT_EQ(got.tag, 42u);
  EXPECT_EQ(got.payload, payload);
  dribbler.join();
}

TEST(Framing, SurvivesShortWritesOnLargePayloads) {
  // 4 MB dwarfs the socket buffers, so write_exact must loop through partial
  // writes while the reader drains concurrently.
  SocketPair pair;
  std::vector<std::uint8_t> payload(4u << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 8));
  }
  std::thread writer([&] {
    ASSERT_TRUE(send_frame(pair.client, FrameKind::kExchange, 7, payload,
                           Deadline::after_ms(30000)));
  });
  NetFrame got;
  ASSERT_TRUE(recv_frame(pair.server, &got, Deadline::after_ms(30000)));
  writer.join();
  EXPECT_EQ(got.tag, 7u);
  EXPECT_EQ(got.payload, payload);
}

TEST(Framing, OversizedLengthPrefixFailsBeforeAllocation) {
  SocketPair pair;
  // Header claims a 1 GiB + 1 payload; only the 17 prefix bytes ever arrive.
  // recv_frame must fail on the prefix alone — if it tried to allocate or
  // read the claimed payload it would hang until the deadline instead.
  std::vector<std::uint8_t> bytes = wire_bytes(FrameKind::kReply, 1, {});
  const std::uint32_t huge = (1u << 30) + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[13 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  write_raw(pair.client.fd(), bytes);
  NetFrame got;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(recv_frame(pair.server, &got, Deadline::after_ms(30000)));
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
}

TEST(Framing, CallerCapRejectsFramesItNeverWanted) {
  SocketPair pair;
  const std::vector<std::uint8_t> payload(100, 0xAB);
  ASSERT_TRUE(send_frame(pair.client, FrameKind::kReply, 1, payload));
  NetFrame got;
  EXPECT_FALSE(recv_frame(pair.server, &got, {}, /*max_payload=*/16));
}

TEST(Framing, TruncatedPayloadFails) {
  SocketPair pair;
  std::vector<std::uint8_t> bytes = wire_bytes(FrameKind::kReply, 9,
                                               std::vector<std::uint8_t>(100, 1));
  bytes.resize(bytes.size() - 60);  // peer dies 60 bytes short
  write_raw(pair.client.fd(), bytes);
  pair.client.close();
  NetFrame got;
  EXPECT_FALSE(recv_frame(pair.server, &got));
}

TEST(Framing, BadMagicAndBadKindFail) {
  {
    SocketPair pair;
    std::vector<std::uint8_t> bytes = wire_bytes(FrameKind::kReply, 1, {1, 2});
    bytes[0] ^= 0xFF;
    write_raw(pair.client.fd(), bytes);
    NetFrame got;
    EXPECT_FALSE(recv_frame(pair.server, &got));
  }
  {
    SocketPair pair;
    std::vector<std::uint8_t> bytes = wire_bytes(FrameKind::kReply, 1, {1, 2});
    bytes[4] = 200;  // no such FrameKind
    write_raw(pair.client.fd(), bytes);
    NetFrame got;
    EXPECT_FALSE(recv_frame(pair.server, &got));
  }
}

TEST(Framing, SilentPeerHonorsDeadline) {
  SocketPair pair;
  NetFrame got;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(recv_frame(pair.server, &got, Deadline::after_ms(100)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(90));
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(Framing, DeadPeerFailsSendEventually) {
  SocketPair pair;
  pair.server.close();
  // The first send may land in the kernel buffer; keep pushing until the RST
  // surfaces. Bounded by count, not time.
  const std::vector<std::uint8_t> payload(1u << 16, 3);
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !send_frame(pair.client, FrameKind::kExchange, 1, payload,
                         Deadline::after_ms(2000));
  }
  EXPECT_TRUE(failed);
}

// ---------------------------------------------------------------------------
// Readiness

TEST(WaitReadable, ReportsOnlyTheReadyFd) {
  SocketPair quiet;
  SocketPair chatty;
  ASSERT_TRUE(send_frame(chatty.client, FrameKind::kHello, 0, {}));
  const int fds[] = {quiet.server.fd(), chatty.server.fd()};
  const std::vector<std::size_t> ready = wait_readable(fds, /*timeout_ms=*/5000);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 1u);
}

TEST(WaitReadable, TimesOutEmpty) {
  SocketPair quiet;
  const int fds[] = {quiet.server.fd()};
  EXPECT_TRUE(wait_readable(fds, /*timeout_ms=*/30).empty());
}

TEST(WaitReadable, HangupCountsAsReadable) {
  SocketPair pair;
  pair.client.close();
  const int fds[] = {pair.server.fd()};
  const std::vector<std::size_t> ready = wait_readable(fds, /*timeout_ms=*/5000);
  ASSERT_EQ(ready.size(), 1u);  // read now and observe the EOF
  NetFrame got;
  EXPECT_FALSE(recv_frame(pair.server, &got));
}

}  // namespace
}  // namespace subfed::net
