// ModelMask semantics: coverage, application, distance, composition.
#include <gtest/gtest.h>

#include "nn/model_zoo.h"
#include "pruning/mask.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

Model make_model(std::uint64_t seed = 1) {
  Rng rng(seed);
  return ModelSpec::cnn5(10).build_init(rng);
}

TEST(ModelMask, AllPrunableCoversWeightsOnly) {
  Model m = make_model();
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  EXPECT_NE(mask.find("conv1.weight"), nullptr);
  EXPECT_NE(mask.find("fc1.weight"), nullptr);
  EXPECT_EQ(mask.find("conv1.bias"), nullptr);
  EXPECT_EQ(mask.find("bn1.gamma"), nullptr);
  // Covered = conv1.w + conv2.w + fc1.w + fc2.w.
  EXPECT_EQ(mask.covered(), 250u + 5000u + 16000u + 500u);
  EXPECT_EQ(mask.kept(), mask.covered());
  EXPECT_EQ(mask.pruned_fraction(), 0.0);
}

TEST(ModelMask, FcOnlyScope) {
  Model m = make_model();
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kFcOnly);
  EXPECT_EQ(mask.find("conv1.weight"), nullptr);
  EXPECT_NE(mask.find("fc1.weight"), nullptr);
  EXPECT_NE(mask.find("fc2.weight"), nullptr);
  EXPECT_EQ(mask.covered(), 16000u + 500u);
}

TEST(ModelMask, ApplyToWeightsZeroesMasked) {
  Model m = make_model();
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  Tensor* fc1 = mask.find("fc1.weight");
  for (std::size_t i = 0; i < 100; ++i) (*fc1)[i] = 0.0f;
  mask.apply_to_weights(m);

  for (Parameter* p : m.parameters()) {
    if (p->name == "fc1.weight") {
      for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(p->value[i], 0.0f);
      // Position 100 untouched (nonzero with overwhelming probability).
      EXPECT_NE(p->value[100], 0.0f);
    }
  }
}

TEST(ModelMask, ApplyToGradsFreezesMasked) {
  Model m = make_model();
  for (Parameter* p : m.parameters()) p->grad.fill(1.0f);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  (*mask.find("conv1.weight"))[0] = 0.0f;
  mask.apply_to_grads(m);
  for (Parameter* p : m.parameters()) {
    if (p->name == "conv1.weight") {
      EXPECT_EQ(p->grad[0], 0.0f);
      EXPECT_EQ(p->grad[1], 1.0f);
    }
    if (p->name == "conv1.bias") EXPECT_EQ(p->grad[0], 1.0f);  // uncovered
  }
}

TEST(ModelMask, PrunedFractionCountsZeros) {
  Model m = make_model();
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kFcOnly);
  Tensor* fc2 = mask.find("fc2.weight");
  for (std::size_t i = 0; i < 250; ++i) (*fc2)[i] = 0.0f;
  EXPECT_EQ(mask.kept(), 16500u - 250u);
  EXPECT_NEAR(mask.pruned_fraction(), 250.0 / 16500.0, 1e-12);
}

TEST(ModelMask, HammingDistance) {
  Model m = make_model();
  ModelMask a = ModelMask::ones_like(m, MaskScope::kFcOnly);
  ModelMask b = a;
  EXPECT_EQ(ModelMask::hamming_distance(a, b), 0.0);
  (*b.find("fc1.weight"))[0] = 0.0f;
  (*b.find("fc1.weight"))[1] = 0.0f;
  EXPECT_NEAR(ModelMask::hamming_distance(a, b), 2.0 / 16500.0, 1e-12);
}

TEST(ModelMask, HammingDistanceRequiresSameCoverage) {
  Model m = make_model();
  ModelMask a = ModelMask::ones_like(m, MaskScope::kFcOnly);
  ModelMask b = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  EXPECT_THROW(ModelMask::hamming_distance(a, b), CheckError);
}

TEST(ModelMask, IntersectionAndsBitsAndUnionsCoverage) {
  Model m = make_model();
  ModelMask fc = ModelMask::ones_like(m, MaskScope::kFcOnly);
  (*fc.find("fc1.weight"))[0] = 0.0f;

  ModelMask conv;
  conv.set("conv1.weight", Tensor({10, 1, 5, 5}, 1.0f));
  (*conv.find("conv1.weight"))[3] = 0.0f;

  ModelMask both = fc.intersected(conv);
  EXPECT_NE(both.find("fc1.weight"), nullptr);
  EXPECT_NE(both.find("conv1.weight"), nullptr);
  EXPECT_EQ((*both.find("fc1.weight"))[0], 0.0f);
  EXPECT_EQ((*both.find("conv1.weight"))[3], 0.0f);
  EXPECT_EQ((*both.find("conv1.weight"))[4], 1.0f);

  // Overlapping coverage ANDs.
  ModelMask fc2 = ModelMask::ones_like(m, MaskScope::kFcOnly);
  (*fc2.find("fc1.weight"))[1] = 0.0f;
  ModelMask anded = fc.intersected(fc2);
  EXPECT_EQ((*anded.find("fc1.weight"))[0], 0.0f);
  EXPECT_EQ((*anded.find("fc1.weight"))[1], 0.0f);
  EXPECT_EQ((*anded.find("fc1.weight"))[2], 1.0f);
}

TEST(ModelMask, JaccardOverlap) {
  Model m = make_model();
  ModelMask a = ModelMask::ones_like(m, MaskScope::kFcOnly);
  ModelMask b = a;
  EXPECT_EQ(ModelMask::jaccard_overlap(a, b), 1.0);
  // Disjoint kept sets in a tiny window.
  Tensor* ta = a.find("fc2.weight");
  Tensor* tb = b.find("fc2.weight");
  ta->zero();
  tb->zero();
  (*ta)[0] = 1.0f;
  (*tb)[1] = 1.0f;
  const double expected = 16000.0 / (16000.0 + 2.0);  // fc1 fully shared
  EXPECT_NEAR(ModelMask::jaccard_overlap(a, b), expected, 1e-9);
}

TEST(ModelMask, SetReplacesExisting) {
  ModelMask mask;
  mask.set("w", Tensor({4}, 1.0f));
  mask.set("w", Tensor({4}, 0.0f));
  EXPECT_EQ(mask.num_entries(), 1u);
  EXPECT_EQ(mask.kept(), 0u);
}

TEST(ModelMask, ApplyShapeMismatchThrows) {
  Model m = make_model();
  ModelMask mask;
  mask.set("conv1.weight", Tensor({3}, 1.0f));
  EXPECT_THROW(mask.apply_to_weights(m), CheckError);
}

}  // namespace
}  // namespace subfed
