// Second property-sweep suite: quantization error laws, driver scheduling
// invariants, and aggregation algebra under mixed sparsity.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/quantize.h"
#include "core/aggregate.h"
#include "fl/driver.h"
#include "fl/standalone.h"
#include "nn/model_zoo.h"
#include "pruning/unstructured.h"
#include "util/logging.h"
#include "util/rng.h"

namespace subfed {
namespace {

// ---------- Quantization error scales with value magnitude -------------------

class QuantScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantScaleSweep, Int8ErrorProportionalToRange) {
  const double scale = GetParam();
  Rng rng(static_cast<std::uint64_t>(scale * 100) + 1);
  StateDict state;
  Tensor t({1024});
  t.fill_normal(rng, 0.0f, static_cast<float>(scale));
  state.add("w", t);

  const StateDict back = dequantize_state(quantize_state(state, QuantKind::kInt8));
  const float bound = t.abs_max() / 127.0f * 0.51f + 1e-7f;
  double max_err = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::fabs(back[0].second[i] - t[i])));
  }
  EXPECT_LE(max_err, bound);
  // Error really does grow with the range (not a constant-precision codec).
  EXPECT_GE(bound, scale / 127.0 * 0.3);
}

TEST_P(QuantScaleSweep, Fp16RelativeErrorScaleFree) {
  const double scale = GetParam();
  Rng rng(static_cast<std::uint64_t>(scale * 100) + 2);
  StateDict state;
  Tensor t({1024});
  t.fill_normal(rng, 0.0f, static_cast<float>(scale));
  state.add("w", t);

  const StateDict back = dequantize_state(quantize_state(state, QuantKind::kFp16));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const float v = t[i];
    // Half precision: ~2^-11 relative error, plus a subnormal floor.
    EXPECT_NEAR(back[0].second[i], v, std::max(6.2e-5f, std::fabs(v) * 1.0e-3f));
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, QuantScaleSweep, ::testing::Values(0.01, 0.1, 1.0, 10.0));

// ---------- Driver scheduling invariants -------------------------------------

class DriverSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DriverSweep, CheckpointCountAndFinalEvalAlwaysPresent) {
  set_log_level(LogLevel::kWarn);
  const auto [rounds, sample_rate] = GetParam();

  static FederatedData data(DatasetSpec::mnist(), [] {
    FederatedDataConfig config;
    config.partition = {5, 2, 10};
    config.test_per_class = 3;
    config.seed = 91;
    return config;
  }());
  FlContext ctx;
  ctx.data = &data;
  ctx.spec = ModelSpec::cnn5(10);
  ctx.train = {1, 10};
  ctx.seed = 91;

  Standalone alg(ctx);
  DriverConfig driver;
  driver.rounds = static_cast<std::size_t>(rounds);
  driver.sample_rate = sample_rate;
  driver.eval_every = 2;
  driver.seed = 91;
  const RunResult result = run_federation(alg, driver);

  // Checkpoints at every 2nd round plus always the final round.
  ASSERT_FALSE(result.curve.empty());
  EXPECT_EQ(result.curve.back().round, static_cast<std::size_t>(rounds));
  const std::size_t expected =
      static_cast<std::size_t>(rounds) / 2 + (rounds % 2 == 0 ? 0 : 1);
  EXPECT_EQ(result.curve.size(), expected);
  // Per-client accuracies populated and bounded.
  EXPECT_EQ(result.final_per_client.size(), 5u);
  for (const double a : result.final_per_client) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, DriverSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(0.2, 0.6, 1.0)));

// ---------- Aggregation algebra under mixed sparsity -------------------------

class MixedSparsityAggregate : public ::testing::TestWithParam<std::tuple<double, double>> {
};

TEST_P(MixedSparsityAggregate, IdenticalUpdatesAreFixedPoint) {
  // Aggregating N copies of the same masked update must return exactly that
  // update on kept entries and the previous global elsewhere — for any
  // sparsity mix.
  const auto [sparsity_a, sparsity_b] = GetParam();
  Rng rng(static_cast<std::uint64_t>(sparsity_a * 100 + sparsity_b * 10) + 5);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict prev = m.state();

  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  mask = derive_magnitude_mask(m, mask, sparsity_a);
  mask.apply_to_weights(m);
  ClientUpdate update{m.state(), mask, 50};

  std::vector<ClientUpdate> updates(3, update);
  const StateDict merged = sub_fedavg_aggregate(updates, prev);
  for (std::size_t e = 0; e < merged.size(); ++e) {
    const auto& [name, tensor] = merged[e];
    const Tensor* mt = mask.find(name);
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      if (mt != nullptr && (*mt)[i] == 0.0f) {
        EXPECT_EQ(tensor[i], prev[e].second[i]) << name;
      } else {
        EXPECT_NEAR(tensor[i], update.state[e].second[i], 1e-6f) << name;
      }
    }
  }
}

TEST_P(MixedSparsityAggregate, CountingEqualsStrictWhenMasksAgree) {
  const auto [sparsity_a, sparsity_b] = GetParam();
  (void)sparsity_b;
  Rng rng(static_cast<std::uint64_t>(sparsity_a * 1000) + 9);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict prev = m.state();

  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  mask = derive_magnitude_mask(m, mask, sparsity_a);

  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 3; ++k) {
    Rng crng = rng.split("client", k);
    Model cm = ModelSpec::cnn5(10).build_init(crng);
    mask.apply_to_weights(cm);
    updates.push_back({cm.state(), mask, 10});
  }
  const StateDict counting = sub_fedavg_aggregate(updates, prev);
  const StateDict strict = sub_fedavg_aggregate_strict(updates, prev);
  for (std::size_t e = 0; e < counting.size(); ++e) {
    EXPECT_EQ(counting[e].second, strict[e].second) << counting[e].first;
  }
}

INSTANTIATE_TEST_SUITE_P(Mixes, MixedSparsityAggregate,
                         ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                                            ::testing::Values(0.3, 0.7)));

}  // namespace
}  // namespace subfed
