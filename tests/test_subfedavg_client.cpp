// SubFedAvgClient round behaviour: personalization, gating, mask evolution.
#include <gtest/gtest.h>

#include "core/subfedavg_client.h"
#include "data/client_data.h"
#include "util/rng.h"

namespace subfed {
namespace {

// Shared fixture: a small MNIST-surrogate federation.
class SubFedAvgClientTest : public ::testing::Test {
 protected:
  static const FederatedData& data() {
    static FederatedData instance(DatasetSpec::mnist(), [] {
      FederatedDataConfig config;
      config.partition = {4, 2, 40};
      config.test_per_class = 8;
      config.seed = 21;
      return config;
    }());
    return instance;
  }

  static ModelSpec spec() { return ModelSpec::cnn5(10); }

  static StateDict initial_global() {
    Rng rng(99);
    Model m = spec().build_init(rng);
    return m.state();
  }

  static SubFedAvgConfig un_config() {
    SubFedAvgConfig config;
    config.unstructured = {/*acc=*/0.0, /*target=*/0.5, /*eps=*/0.0, /*rate=*/0.2};
    config.train = {/*epochs=*/2, /*batch=*/10};
    return config;
  }

  static SubFedAvgConfig hy_config() {
    SubFedAvgConfig config = un_config();
    config.hybrid = true;
    config.structured = {/*acc=*/0.0, /*target=*/0.5, /*eps=*/0.0, /*rate=*/0.25};
    return config;
  }
};

TEST_F(SubFedAvgClientTest, RoundPrunesWhenGateAlwaysOpen) {
  SubFedAvgClient client(0, spec(), un_config(), &data().client(0), Rng(1));
  client.seed_personal(initial_global());

  ClientRoundReport report;
  ClientUpdate update = client.run_round(initial_global(), 0, &report);
  // ε=0, Accth=0 → the gate is open whenever distance ≥ 0, so round 0 prunes
  // 20% of remaining.
  EXPECT_TRUE(report.pruned_us);
  EXPECT_NEAR(client.unstructured_pruned(), 0.2, 0.01);
  EXPECT_EQ(update.num_examples, data().client(0).train_labels.size());
  // Upload state has the mask applied: pruned positions are exact zeros.
  for (const auto& [name, mask] : update.mask) {
    const Tensor& value = *update.state.find(name);
    for (std::size_t i = 0; i < mask.numel(); ++i) {
      if (mask[i] == 0.0f) EXPECT_EQ(value[i], 0.0f) << name;
    }
  }
}

TEST_F(SubFedAvgClientTest, SuccessiveRoundsApproachTarget) {
  SubFedAvgClient client(0, spec(), un_config(), &data().client(0), Rng(2));
  client.seed_personal(initial_global());
  StateDict global = initial_global();
  double prev = -1.0;
  for (std::size_t round = 0; round < 12; ++round) {
    client.run_round(global, round);
    EXPECT_GE(client.unstructured_pruned(), prev);  // monotone
    prev = client.unstructured_pruned();
  }
  EXPECT_NEAR(client.unstructured_pruned(), 0.5, 0.02);
}

TEST_F(SubFedAvgClientTest, AccuracyThresholdBlocksPruning) {
  SubFedAvgConfig config = un_config();
  config.unstructured.acc_threshold = 1.01;  // unreachable
  SubFedAvgClient client(0, spec(), config, &data().client(0), Rng(3));
  client.seed_personal(initial_global());
  ClientRoundReport report;
  client.run_round(initial_global(), 0, &report);
  EXPECT_FALSE(report.pruned_us);
  EXPECT_EQ(client.unstructured_pruned(), 0.0);
}

TEST_F(SubFedAvgClientTest, EpsilonBlocksPruningWhenMasksStable) {
  SubFedAvgConfig config = un_config();
  config.unstructured.epsilon = 1.1;  // no mask pair can differ that much
  SubFedAvgClient client(0, spec(), config, &data().client(0), Rng(4));
  client.seed_personal(initial_global());
  ClientRoundReport report;
  client.run_round(initial_global(), 0, &report);
  EXPECT_FALSE(report.pruned_us);
}

TEST_F(SubFedAvgClientTest, PrunedWeightsStayZeroThroughTraining) {
  SubFedAvgClient client(1, spec(), un_config(), &data().client(1), Rng(5));
  client.seed_personal(initial_global());
  StateDict global = initial_global();
  client.run_round(global, 0);
  const ModelMask mask_after_r0 = client.weight_mask();

  // Run another round from a fresh global; previously pruned entries must
  // remain zero in the new upload even though the global is dense.
  ClientUpdate update = client.run_round(global, 1);
  for (const auto& [name, mask] : mask_after_r0) {
    const Tensor& value = *update.state.find(name);
    for (std::size_t i = 0; i < mask.numel(); ++i) {
      if (mask[i] == 0.0f) EXPECT_EQ(value[i], 0.0f) << name << "[" << i << "]";
    }
  }
}

TEST_F(SubFedAvgClientTest, HybridPrunesChannelsAndFcIndependently) {
  SubFedAvgClient client(2, spec(), hy_config(), &data().client(2), Rng(6));
  client.seed_personal(initial_global());
  ClientRoundReport report;
  client.run_round(initial_global(), 0, &report);
  EXPECT_TRUE(report.pruned_us);
  EXPECT_TRUE(report.pruned_s);
  EXPECT_GT(client.structured_pruned(), 0.0);
  EXPECT_GT(client.unstructured_pruned(), 0.0);
  // Hybrid unstructured mask covers FC only.
  EXPECT_EQ(client.weight_mask().find("conv1.weight"), nullptr);
  EXPECT_NE(client.weight_mask().find("fc1.weight"), nullptr);
}

TEST_F(SubFedAvgClientTest, HybridGatesAreIndependent) {
  SubFedAvgConfig config = hy_config();
  config.structured.epsilon = 1.1;  // block structured only
  SubFedAvgClient client(2, spec(), config, &data().client(2), Rng(7));
  client.seed_personal(initial_global());
  ClientRoundReport report;
  client.run_round(initial_global(), 0, &report);
  EXPECT_TRUE(report.pruned_us);    // unstructured gate still opens
  EXPECT_FALSE(report.pruned_s);
  EXPECT_EQ(client.structured_pruned(), 0.0);
}

TEST_F(SubFedAvgClientTest, CombinedMaskComposesChannelAndWeightMasks) {
  SubFedAvgClient client(3, spec(), hy_config(), &data().client(3), Rng(8));
  client.seed_personal(initial_global());
  client.run_round(initial_global(), 0);
  ModelMask combined = client.combined_mask();
  // Channel expansion adds conv coverage; FC mask bits are ANDed in.
  EXPECT_NE(combined.find("conv1.weight"), nullptr);
  EXPECT_NE(combined.find("fc1.weight"), nullptr);
  EXPECT_GT(combined.pruned_fraction(), 0.0);
}

TEST_F(SubFedAvgClientTest, EvaluateUsesPersonalState) {
  SubFedAvgClient client(0, spec(), un_config(), &data().client(0), Rng(9));
  client.seed_personal(initial_global());
  const double before = client.evaluate_test().accuracy;
  StateDict global = initial_global();
  for (std::size_t round = 0; round < 4; ++round) client.run_round(global, round);
  const double after = client.evaluate_test().accuracy;
  // Trained-on-own-labels model must beat the untrained initial model.
  EXPECT_GT(after, before + 0.2);
}

TEST_F(SubFedAvgClientTest, DeterministicAcrossIdenticalRuns) {
  auto run = [&](std::uint64_t seed) {
    SubFedAvgClient client(0, spec(), un_config(), &data().client(0), Rng(seed));
    client.seed_personal(initial_global());
    ClientUpdate u = client.run_round(initial_global(), 0);
    return u;
  };
  const ClientUpdate a = run(11), b = run(11);
  for (std::size_t e = 0; e < a.state.size(); ++e) {
    EXPECT_EQ(a.state[e].second, b.state[e].second);
  }
  EXPECT_EQ(ModelMask::hamming_distance(a.mask, b.mask), 0.0);
}

TEST_F(SubFedAvgClientTest, SeedPersonalFixesNeverSampledEval) {
  SubFedAvgClient client(0, spec(), un_config(), &data().client(0), Rng(12));
  // Without seeding, the template has zero weights → ~chance accuracy.
  client.seed_personal(initial_global());
  const EvalStats eval = client.evaluate_test();
  EXPECT_EQ(eval.examples, data().client(0).test_size());
}

}  // namespace
}  // namespace subfed
