// FedAvg+FT baseline and corrupted-update handling.
#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "fl/driver.h"
#include "fl/experiment.h"
#include "fl/fedavg.h"
#include "fl/fedavg_ft.h"
#include "fl/robust.h"
#include "util/check.h"
#include "util/logging.h"

namespace subfed {
namespace {

const FederatedData& data() {
  static FederatedData instance(DatasetSpec::mnist(), [] {
    FederatedDataConfig config;
    config.partition = {6, 2, 25};
    config.test_per_class = 8;
    config.seed = 41;
    return config;
  }());
  return instance;
}

FlContext ctx() {
  set_log_level(LogLevel::kWarn);
  FlContext c;
  c.data = &data();
  c.spec = ModelSpec::cnn5(10);
  c.train = {2, 10};
  c.seed = 41;
  return c;
}

TEST(FedAvgFinetune, BeatsPlainFedAvgOnPersonalizedEval) {
  DriverConfig driver{/*rounds=*/5, /*sample_rate=*/1.0, 0, 41};

  FedAvg plain(ctx());
  const double plain_acc = run_federation(plain, driver).final_avg_accuracy;

  FedAvgFinetune ft(ctx(), /*finetune_epochs=*/2);
  const double ft_acc = run_federation(ft, driver).final_avg_accuracy;

  // Fine-tuning on local data recovers personalization the global model
  // lacks under non-IID splits.
  EXPECT_GT(ft_acc, plain_acc + 0.1);
  EXPECT_GT(ft.extra_finetune_steps(), 0u);
}

TEST(FedAvgFinetune, ZeroEpochsEqualsPlainFedAvg) {
  DriverConfig driver{3, 1.0, 0, 41};
  FedAvg plain(ctx());
  const double plain_acc = run_federation(plain, driver).final_avg_accuracy;
  FedAvgFinetune ft(ctx(), 0);
  const double ft_acc = run_federation(ft, driver).final_avg_accuracy;
  EXPECT_EQ(plain_acc, ft_acc);
  EXPECT_EQ(ft.extra_finetune_steps(), 0u);
}

TEST(FedAvgFinetune, TracksOverheadSteps) {
  FedAvgFinetune ft(ctx(), 2);
  DriverConfig driver{2, 1.0, 0, 41};
  run_federation(ft, driver);
  // Each of the 6 clients fine-tunes 2 epochs over 45 examples at batch 10
  // (= 5 steps/epoch) at final evaluation; intermediate evals add more.
  EXPECT_GE(ft.extra_finetune_steps(), 6u * 2 * 5);
}

TEST(CorruptUpdate, ReplacesPayloadKeepsMetadata) {
  Rng rng(1);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ClientUpdate update;
  update.state = m.state();
  update.num_examples = 123;
  const StateDict original = update.state;

  CorruptionConfig config{1.0, 2.0f};
  corrupt_update(update, config, rng);
  EXPECT_EQ(update.num_examples, 123u);
  bool changed = false;
  for (std::size_t e = 0; e < original.size(); ++e) {
    changed |= !(update.state[e].second == original[e].second);
  }
  EXPECT_TRUE(changed);
}

TEST(UpdateDistance, ZeroForIdenticalAndPositiveOtherwise) {
  Rng rng(2);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ClientUpdate update;
  update.state = m.state();
  EXPECT_DOUBLE_EQ(update_distance(update, m.state()), 0.0);

  StateDict shifted = m.state();
  (*shifted.find("fc1.weight"))[0] += 3.0f;
  EXPECT_NEAR(update_distance(update, shifted), 3.0, 1e-5);
}

TEST(NormFilter, DropsObviousOutliers) {
  Rng rng(3);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict global = m.state();

  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 5; ++k) {
    ClientUpdate u;
    u.state = global;
    // Honest clients drift slightly.
    (*u.state.find("fc1.weight"))[static_cast<std::size_t>(k)] += 0.01f;
    updates.push_back(std::move(u));
  }
  // One corrupted update far away.
  CorruptionConfig config{1.0, 5.0f};
  Rng crng(4);
  corrupt_update(updates[2], config, crng);

  const auto passed = filter_updates_by_norm(updates, global, /*filter_factor=*/3.0);
  EXPECT_EQ(passed.size(), 4u);
  for (const std::size_t i : passed) EXPECT_NE(i, 2u);
}

TEST(NormFilter, SmallCohortsPassThrough) {
  Rng rng(5);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  std::vector<ClientUpdate> updates(2);
  updates[0].state = m.state();
  updates[1].state = m.state();
  const auto passed = filter_updates_by_norm(updates, m.state(), 3.0);
  EXPECT_EQ(passed.size(), 2u);
}

TEST(NormFilter, DegenerateMedianKeepsEveryone) {
  Rng rng(6);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  // All updates identical to the global → all distances zero → median zero.
  std::vector<ClientUpdate> updates(4);
  for (auto& u : updates) u.state = m.state();
  const auto passed = filter_updates_by_norm(updates, m.state(), 3.0);
  EXPECT_EQ(passed.size(), 4u);
}

TEST(RobustSpec, CorruptionAndFilterAreSpecReachable) {
  // End-to-end through ExperimentSpec (the sweep CLI path): heavy corruption
  // wrecks plain FedAvg; the norm filter screens the corrupted uploads out
  // and recovers most of the clean accuracy.
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 6;
  spec.shard = 25;
  spec.test_per_class = 8;
  spec.rounds = 4;
  spec.epochs = 2;
  spec.sample = 1.0;
  spec.algo = "fedavg";
  spec.seed = 41;

  const ExecutedRun clean = execute_experiment(spec);
  EXPECT_EQ(clean.metrics.count("corrupted_updates"), 0u);  // knobs off → no metric

  spec.corrupt_fraction = 0.34;
  spec.corrupt_noise = 5.0;
  const ExecutedRun corrupted = execute_experiment(spec);
  ASSERT_EQ(corrupted.metrics.count("corrupted_updates"), 1u);
  EXPECT_GT(corrupted.metrics.at("corrupted_updates"), 0.0);
  EXPECT_DOUBLE_EQ(corrupted.metrics.at("filtered_updates"), 0.0);

  spec.robust_filter = 3.0;
  const ExecutedRun defended = execute_experiment(spec);
  ASSERT_EQ(defended.metrics.count("filtered_updates"), 1u);
  EXPECT_GT(defended.metrics.at("filtered_updates"), 0.0);

  EXPECT_GT(clean.result.final_avg_accuracy,
            corrupted.result.final_avg_accuracy + 0.1);
  EXPECT_GT(defended.result.final_avg_accuracy,
            corrupted.result.final_avg_accuracy + 0.1);

  // Algorithms outside the FedAvg family and Sub-FedAvg cannot report
  // corruption; running them "under corruption" at clean accuracy would
  // poison robustness tables.
  spec.algo = "standalone";
  EXPECT_THROW(execute_experiment(spec), CheckError);
}

TEST(RobustSpec, SubFedAvgHonorsCorruptionAndMaskAwareFilter) {
  // The ROADMAP's open robustness item: the same knobs on the masked
  // Sub-FedAvg aggregation path. Corruption rides the channel (post-decode,
  // so it composes with codecs); the defense filters on mask-aware distance.
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 6;
  spec.shard = 25;
  spec.test_per_class = 8;
  spec.rounds = 4;
  spec.epochs = 2;
  spec.sample = 1.0;
  spec.algo = "subfedavg_un";
  spec.seed = 41;
  spec.transport = "loopback";  // corruption must compose with real encoding

  const ExecutedRun clean = execute_experiment(spec);
  EXPECT_EQ(clean.metrics.count("corrupted_updates"), 0u);

  spec.corrupt_fraction = 0.34;
  spec.corrupt_noise = 5.0;
  const ExecutedRun corrupted = execute_experiment(spec);
  ASSERT_EQ(corrupted.metrics.count("corrupted_updates"), 1u);
  EXPECT_GT(corrupted.metrics.at("corrupted_updates"), 0.0);
  EXPECT_DOUBLE_EQ(corrupted.metrics.at("filtered_updates"), 0.0);

  spec.robust_filter = 3.0;
  const ExecutedRun defended = execute_experiment(spec);
  ASSERT_EQ(defended.metrics.count("filtered_updates"), 1u);
  EXPECT_GT(defended.metrics.at("filtered_updates"), 0.0);

  // Personalized evaluation blunts the damage relative to plain FedAvg (each
  // client retrains its masked model locally), so the margins are smaller —
  // but corruption must cost accuracy and the filter must claw most back.
  EXPECT_GT(clean.result.final_avg_accuracy,
            corrupted.result.final_avg_accuracy + 0.03);
  EXPECT_GT(defended.result.final_avg_accuracy,
            corrupted.result.final_avg_accuracy + 0.03);
}

TEST(UpdateDistance, MaskAwareCountsOnlyUploadedEntries) {
  Rng rng(9);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict reference = m.state();

  ClientUpdate update;
  update.state = reference;
  // The client "uploads" only the first row of fc1.weight; everything it
  // pruned decodes as zero — a huge dense distance, but zero mask-aware.
  Tensor* fc1 = update.state.find("fc1.weight");
  ASSERT_NE(fc1, nullptr);
  Tensor bits{fc1->shape()};
  for (std::size_t i = 0; i < 8; ++i) bits[i] = 1.0f;
  for (std::size_t i = 8; i < fc1->numel(); ++i) (*fc1)[i] = 0.0f;
  update.mask.set("fc1.weight", std::move(bits));

  EXPECT_DOUBLE_EQ(update_distance(update, reference), 0.0);

  // A genuine drift on an uploaded position still registers.
  (*update.state.find("fc1.weight"))[0] += 2.5f;
  EXPECT_NEAR(update_distance(update, reference), 2.5, 1e-5);
}

TEST(NormFilter, FilteredAggregationSurvivesCorruption) {
  // End-to-end: aggregate honest + corrupted cohorts with and without the
  // filter; the filtered global stays near the honest mean.
  Rng rng(7);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict global = m.state();

  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 6; ++k) {
    ClientUpdate u;
    u.state = global;
    u.num_examples = 10;
    updates.push_back(std::move(u));
  }
  Rng crng(8);
  CorruptionConfig config{1.0, 10.0f};
  corrupt_update(updates[0], config, crng);
  corrupt_update(updates[3], config, crng);

  // Unfiltered FedAvg gets dragged away from the honest value.
  const StateDict dirty = fedavg_aggregate(updates);
  double dirty_drift = 0.0;
  for (std::size_t e = 0; e < global.size(); ++e) {
    Tensor diff = sub(dirty[e].second, global[e].second);
    dirty_drift += diff.squared_norm();
  }

  const auto passed = filter_updates_by_norm(updates, global, 3.0);
  std::vector<ClientUpdate> clean;
  for (const std::size_t i : passed) clean.push_back(updates[i]);
  const StateDict filtered = fedavg_aggregate(clean);
  double clean_drift = 0.0;
  for (std::size_t e = 0; e < global.size(); ++e) {
    Tensor diff = sub(filtered[e].second, global[e].second);
    clean_drift += diff.squared_norm();
  }
  EXPECT_LT(clean_drift, 1e-9);
  EXPECT_GT(dirty_drift, 1.0);
}

}  // namespace
}  // namespace subfed
