// Remote federation over real sockets: tcp rounds bit-identical to loopback
// for every registered algorithm, straggler eviction when a worker dies
// mid-round, worker reconnect limits, fail-fast spec validation, and sweep
// sharding of whole runs across workers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/channel.h"
#include "comm/transport.h"
#include "fl/experiment.h"
#include "fl/registry.h"
#include "fl/sweep.h"
#include "fl/worker.h"
#include "net/socket.h"
#include "util/check.h"
#include "util/logging.h"

namespace subfed {
namespace {

ExperimentSpec small_spec(const std::string& algo) {
  set_log_level(LogLevel::kWarn);
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 6;
  spec.shard = 25;
  spec.test_per_class = 8;
  spec.rounds = 2;
  spec.epochs = 1;
  spec.sample = 0.5;
  spec.eval_every = 1;
  spec.seed = 17;
  spec.algo = algo;
  return spec;
}

void expect_same_learning(const RunResult& a, const RunResult& b, const std::string& label) {
  EXPECT_EQ(a.final_avg_accuracy, b.final_avg_accuracy) << label;
  ASSERT_EQ(a.curve.size(), b.curve.size()) << label;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].round, b.curve[i].round) << label;
    EXPECT_EQ(a.curve[i].avg_accuracy, b.curve[i].avg_accuracy) << label;
  }
  ASSERT_EQ(a.final_per_client.size(), b.final_per_client.size()) << label;
  for (std::size_t k = 0; k < a.final_per_client.size(); ++k) {
    EXPECT_EQ(a.final_per_client[k], b.final_per_client[k]) << label;
  }
}

/// A just-freed localhost port: bound ephemerally, resolved, released.
std::string probe_endpoint() {
  net::TcpListener probe(net::parse_host_port("127.0.0.1:0"));
  return probe.endpoint();
}

struct TcpRun {
  RunResult result;
  std::size_t evicted = 0;
  std::string error;                       ///< coordinator's throw, if any
  std::vector<WorkerStats> stats;          ///< per worker
  std::vector<std::string> worker_errors;  ///< per worker; "" = clean exit
};

/// Runs `spec` as a tcp coordinator with an in-process worker fleet —
/// separate threads, separate FederatedAlgorithm instances, real sockets;
/// the only shared state is the test's address space.
TcpRun run_over_tcp(ExperimentSpec spec, std::size_t workers,
                    std::vector<std::size_t> max_exchanges = {}) {
  spec.transport = "tcp";
  spec.listen = "127.0.0.1:0";
  spec.channel_workers = workers;
  const FederatedData data(spec.dataset_spec(), spec.data_config());
  const FlContext ctx = spec.make_context(data);
  std::unique_ptr<FederatedAlgorithm> algorithm = spec.make_algorithm(ctx);
  const std::string endpoint = algorithm->channel().transport_endpoint();

  TcpRun out;
  out.stats.resize(workers);
  out.worker_errors.resize(workers);
  std::vector<std::thread> fleet;
  fleet.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    fleet.emplace_back([&, w] {
      WorkerOptions options;
      options.connect = endpoint;
      if (w < max_exchanges.size()) options.max_exchanges = max_exchanges[w];
      try {
        out.stats[w] = run_worker(options);
      } catch (const std::exception& e) {
        out.worker_errors[w] = e.what();
      }
    });
  }

  try {
    out.result = run_federation(*algorithm, spec.driver_config());
    out.evicted = algorithm->channel().evicted_updates();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  algorithm.reset();  // transport teardown sends kShutdown to the fleet
  for (std::thread& t : fleet) t.join();
  return out;
}

// ---------------------------------------------------------------------------
// Bit-identity

TEST(RemoteFederation, TcpMatchesLoopbackBitIdenticallyForEveryAlgorithm) {
  for (const std::string& algo : list_algorithms()) {
    if (algo.rfind("test_", 0) == 0) continue;  // this binary's test doubles
    ExperimentSpec loopback_spec = small_spec(algo);
    loopback_spec.transport = "loopback";
    const ExecutedRun loopback = execute_experiment(loopback_spec);

    const TcpRun tcp = run_over_tcp(small_spec(algo), /*workers=*/2);
    ASSERT_TRUE(tcp.error.empty()) << algo << ": " << tcp.error;
    for (const std::string& error : tcp.worker_errors) {
      EXPECT_TRUE(error.empty()) << algo << ": " << error;
    }
    expect_same_learning(loopback.result, tcp.result, algo);
    // Same envelopes → same ledger: traffic and the simulated round clock
    // must agree to the byte/tick, not just the accuracy.
    EXPECT_EQ(tcp.result.up_bytes, loopback.result.up_bytes) << algo;
    EXPECT_EQ(tcp.result.down_bytes, loopback.result.down_bytes) << algo;
    EXPECT_EQ(tcp.result.simulated_seconds, loopback.result.simulated_seconds) << algo;
  }
}

// ---------------------------------------------------------------------------
// Failure handling

TEST(RemoteFederation, BufferedRunEvictsKilledWorkerAndCompletes) {
  ExperimentSpec spec = small_spec("fedavg");
  spec.aggregation = "buffered";
  spec.buffer_k = 2;
  spec.rounds = 3;
  // Worker 0 dies mid-round after serving one exchange: it accepts a second
  // request and drops the connection without replying.
  const TcpRun tcp = run_over_tcp(spec, /*workers=*/2, /*max_exchanges=*/{1});
  ASSERT_TRUE(tcp.error.empty()) << tcp.error;
  EXPECT_EQ(tcp.stats[0].exchanges, 1u);
  EXPECT_TRUE(tcp.worker_errors[0].empty()) << tcp.worker_errors[0];
  EXPECT_TRUE(tcp.worker_errors[1].empty()) << tcp.worker_errors[1];
  EXPECT_GE(tcp.evicted, 1u);            // the dead exchange became a straggler
  EXPECT_EQ(tcp.result.curve.size(), 3u);  // ...and every round still closed
  EXPECT_EQ(tcp.result.skipped_rounds, 0u);
}

TEST(RemoteFederation, SyncRoundFailsFastWhenTheOnlyWorkerDies) {
  ExperimentSpec spec = small_spec("fedavg");
  const TcpRun tcp = run_over_tcp(spec, /*workers=*/1, /*max_exchanges=*/{1});
  ASSERT_FALSE(tcp.error.empty());
  EXPECT_NE(tcp.error.find("died before replying"), std::string::npos) << tcp.error;
  EXPECT_EQ(tcp.stats[0].exchanges, 1u);
}

TEST(RemoteFederation, WorkerGivesUpAfterItsReconnectBudget) {
  WorkerOptions options;
  options.connect = probe_endpoint();  // nobody listens there anymore
  options.reconnect = 1;
  EXPECT_THROW(run_worker(options), CheckError);
}

// ---------------------------------------------------------------------------
// Fail-fast validation

TEST(RemoteFederation, MisconfiguredSpecsFailAtParseTimeWithActionableMessages) {
  ExperimentSpec spec;
  spec.transport = "tcp";
  try {
    spec.validate();
    FAIL() << "tcp without listen must throw";
  } catch (const CheckError& e) {
    // The message must tell the user how to wire up the other side.
    EXPECT_NE(std::string(e.what()).find("worker --connect"), std::string::npos) << e.what();
  }

  spec.listen = "not-an-address";
  EXPECT_THROW(spec.validate(), CheckError);
  spec.listen = "127.0.0.1:0";
  EXPECT_NO_THROW(spec.validate());

  spec.connect = "10.0.0.1:9000";  // the connect role is the worker binary
  EXPECT_THROW(spec.validate(), CheckError);
  spec.connect.clear();

  spec.transport = "loopback";  // listen= without transport=tcp
  EXPECT_THROW(spec.validate(), CheckError);
  spec.listen.clear();
  EXPECT_NO_THROW(spec.validate());

  spec.transport = "carrier-pigeon";
  try {
    spec.validate();
    FAIL() << "unknown transport must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("tcp"), std::string::npos) << e.what();
  }
}

TEST(RemoteFederation, TransportRegistryRejectsTcpWithoutListen) {
  EXPECT_THROW(make_transport("tcp", TransportOptions{}), CheckError);
}

// ---------------------------------------------------------------------------
// Sweep sharding

TEST(RemoteFederation, SweepShardsWholeRunsAcrossWorkersBitIdentically) {
  const std::string endpoint = probe_endpoint();

  SweepDescription description;
  description.base = small_spec("fedavg");
  description.add_axis("algo=fedavg,standalone");
  const std::vector<SweepRun> runs = description.expand();
  ASSERT_EQ(runs.size(), 2u);

  std::vector<std::string> worker_errors(2);
  std::vector<std::thread> fleet;
  for (std::size_t w = 0; w < 2; ++w) {
    fleet.emplace_back([&, w] {
      WorkerOptions options;
      options.connect = endpoint;
      options.reconnect = 20;  // the coordinator binds a beat later than we dial
      try {
        run_worker(options);
      } catch (const std::exception& e) {
        worker_errors[w] = e.what();
      }
    });
  }

  SweepOptions options;
  options.listen = endpoint;
  options.remote_workers = 2;
  options.echo_progress = false;
  options.out_dir.clear();  // results checked in memory
  const SweepSummary summary = run_sweep(runs, options);
  for (std::thread& t : fleet) t.join();

  for (const std::string& error : worker_errors) EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(summary.outcomes.size(), 2u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRunOutcome& outcome = summary.outcomes[i];
    ASSERT_TRUE(outcome.ok) << outcome.run.name << ": " << outcome.error;
    EXPECT_EQ(outcome.run.name, runs[i].name);
    // A remotely executed grid point must reproduce the local run exactly —
    // the JSON round trip uses max_digits10, so doubles survive bit-for-bit.
    const ExecutedRun local = execute_experiment(runs[i].spec);
    EXPECT_EQ(outcome.result.final_avg_accuracy, local.result.final_avg_accuracy)
        << outcome.run.name;
    EXPECT_EQ(outcome.result.up_bytes, local.result.up_bytes) << outcome.run.name;
    EXPECT_EQ(outcome.algorithm_name, local.algorithm_name) << outcome.run.name;
  }
}

}  // namespace
}  // namespace subfed
