// Extension features: Dirichlet partitioning, the deeper CnnDeep model,
// federation checkpointing, quantized updates, client dropout, and per-layer
// sparsity reports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "comm/quantize.h"
#include "data/client_data.h"
#include "fl/checkpoint.h"
#include "nn/batchnorm.h"
#include "fl/driver.h"
#include "fl/standalone.h"
#include "fl/subfedavg.h"
#include "metrics/sparsity.h"
#include "pruning/structured.h"
#include "pruning/unstructured.h"
#include "util/check.h"
#include "util/logging.h"

namespace subfed {
namespace {

// ---------------- Dirichlet partitioner -------------------------------------

TEST(DirichletPartition, BudgetAndCoverage) {
  PartitionConfig config{/*clients=*/10, /*shards=*/2, /*shard_size=*/30,
                         PartitionKind::kDirichlet, /*alpha=*/0.5};
  ShardPartitioner part(DatasetSpec::mnist(), config, Rng(3));
  std::set<std::pair<std::int32_t, std::uint32_t>> seen;
  for (std::size_t k = 0; k < part.num_clients(); ++k) {
    EXPECT_EQ(part.client(k).examples.size(), 60u);  // same budget as shards
    for (const ExampleRef& ref : part.client(k).examples) {
      EXPECT_TRUE(seen.insert({ref.label, ref.index}).second) << "duplicate example";
    }
  }
}

TEST(DirichletPartition, AlphaControlsHeterogeneity) {
  // Small α → few labels per client; large α → near-uniform label mixtures.
  auto mean_labels = [](double alpha) {
    PartitionConfig config{/*clients=*/20, 2, 50, PartitionKind::kDirichlet, alpha};
    ShardPartitioner part(DatasetSpec::mnist(), config, Rng(7));
    double total = 0.0;
    for (std::size_t k = 0; k < part.num_clients(); ++k) {
      total += static_cast<double>(part.client(k).labels_present.size());
    }
    return total / static_cast<double>(part.num_clients());
  };
  const double concentrated = mean_labels(0.05);
  const double spread = mean_labels(100.0);
  EXPECT_LT(concentrated, spread);
  EXPECT_GE(spread, 9.0);  // α=100 ≈ uniform over 10 classes
  EXPECT_LE(concentrated, 4.0);
}

TEST(DirichletPartition, RejectsBadAlpha) {
  PartitionConfig config{5, 2, 10, PartitionKind::kDirichlet, 0.0};
  EXPECT_THROW(ShardPartitioner(DatasetSpec::mnist(), config, Rng(1)), CheckError);
}

TEST(DirichletPartition, WorksEndToEndWithFederatedData) {
  FederatedDataConfig config;
  config.partition = {4, 2, 20, PartitionKind::kDirichlet, 0.3};
  config.test_per_class = 4;
  config.seed = 9;
  FederatedData data(DatasetSpec::mnist(), config);
  for (std::size_t k = 0; k < data.num_clients(); ++k) {
    EXPECT_EQ(data.client(k).train_labels.size() + data.client(k).val_labels.size(), 40u);
    EXPECT_FALSE(data.client(k).labels_present.empty());
  }
}

// ---------------- CnnDeep ----------------------------------------------------

TEST(CnnDeep, TopologyAndForwardShape) {
  Rng rng(1);
  Model m = ModelSpec::cnn_deep(10).build_init(rng);
  EXPECT_EQ(m.topology().conv_blocks.size(), 4u);
  EXPECT_EQ(m.topology().fc_layers.size(), 2u);
  Tensor x({2, 3, 32, 32});
  x.fill_normal(rng, 0.0f, 1.0f);
  EXPECT_EQ(m.forward(x, false).shape(), Shape({2, 10}));
}

TEST(CnnDeep, ChannelMaskPropagatesThroughConvChain) {
  Rng rng(2);
  Model m = ModelSpec::cnn_deep(10).build_init(rng);
  ChannelMask mask = ChannelMask::ones_like(m);
  EXPECT_EQ(mask.total_channels(), 16u + 16 + 32 + 32);

  // Prune a middle block's channel: both its filters and the NEXT conv's
  // input planes must be masked.
  mask.block(1)[3] = 0;
  ModelMask expanded = mask.to_model_mask(m);
  const Tensor& w3 = *expanded.find("conv3.weight");
  const std::size_t k2 = 9, in_stride = 16 * k2;
  for (std::size_t f = 0; f < 32; ++f) {
    for (std::size_t i = 0; i < k2; ++i) EXPECT_EQ(w3[f * in_stride + 3 * k2 + i], 0.0f);
  }
  // Last block's channel feeds fc1 columns.
  mask.block(3)[7] = 0;
  expanded = mask.to_model_mask(m);
  const Tensor& fc1 = *expanded.find("fc1.weight");
  const std::size_t spatial = 8 * 8, in_features = 32 * spatial;
  for (std::size_t s = 0; s < spatial; ++s) {
    EXPECT_EQ(fc1[0 * in_features + 7 * spatial + s], 0.0f);
  }
}

TEST(CnnDeep, PrunedChannelIsDeadFunctionally) {
  Rng rng(3);
  Model m = ModelSpec::cnn_deep(10).build_init(rng);
  ChannelMask mask = ChannelMask::ones_like(m);
  mask.block(0)[0] = 0;
  mask.block(2)[5] = 0;
  apply_channel_mask(m, mask);

  Tensor x({1, 3, 32, 32});
  x.fill_normal(rng, 0.0f, 1.0f);
  const Tensor before = m.forward(x, false);
  // Corrupt running stats of the dead channels; output must not move.
  m.topology().conv_blocks[0].bn->buffers()[0]->value[0] = 99.0f;
  m.topology().conv_blocks[2].bn->buffers()[1]->value[5] = 42.0f;
  const Tensor after = m.forward(x, false);
  for (std::size_t i = 0; i < before.numel(); ++i) EXPECT_FLOAT_EQ(before[i], after[i]);
}

TEST(CnnDeep, StructuredPruningDeeperGivesLargerFlopCut) {
  // §3.3: channel pruning pays off more on deeper nets. At the same 50%
  // channel rate, CnnDeep (conv→conv chains everywhere) loses more FLOPs
  // than LeNet-5 (whose conv1 input is fixed by the image).
  Rng rng(4);
  auto speedup_at_half = [&](ModelSpec spec) {
    Model m = spec.build_init(rng);
    ChannelMask mask = ChannelMask::ones_like(m);
    for (std::size_t b = 0; b < mask.num_blocks(); ++b) {
      for (std::size_t c = 0; c < mask.block(b).size() / 2; ++c) mask.block(b)[c] = 0;
    }
    return static_cast<double>(dense_conv_flops(m)) /
           static_cast<double>(pruned_conv_flops(m, mask));
  };
  const double lenet = speedup_at_half(ModelSpec::lenet5(10));
  const double deep = speedup_at_half(ModelSpec::cnn_deep(10));
  EXPECT_GT(deep, lenet);
  EXPECT_GT(deep, 3.0);  // mostly in-and-out halved ⇒ ~4×
}

// ---------------- Checkpointing ----------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedData& data() {
    static FederatedData instance(DatasetSpec::mnist(), [] {
      FederatedDataConfig config;
      config.partition = {4, 2, 25};
      config.test_per_class = 6;
      config.seed = 77;
      return config;
    }());
    return instance;
  }

  static FlContext ctx() {
    FlContext c;
    c.data = &data();
    c.spec = ModelSpec::cnn5(10);
    c.train = {2, 10};
    c.seed = 77;
    return c;
  }

  static SubFedAvgConfig config() {
    SubFedAvgConfig c;
    c.unstructured = {0.0, 0.5, 0.0, 0.25};
    return c;
  }
};

TEST_F(CheckpointTest, SaveLoadRoundTripsExactly) {
  const std::string path = ::testing::TempDir() + "/subfed_ckpt.bin";

  SubFedAvg original(ctx(), config());
  DriverConfig driver{/*rounds=*/3, /*sample_rate=*/0.75, 0, 77};
  run_federation(original, driver);
  save_subfedavg_checkpoint(original, path);

  SubFedAvg restored(ctx(), config());
  load_subfedavg_checkpoint(restored, path);

  // Server and every client identical.
  for (std::size_t e = 0; e < original.global_state().size(); ++e) {
    EXPECT_EQ(original.global_state()[e].second, restored.global_state()[e].second);
  }
  for (std::size_t k = 0; k < original.num_clients(); ++k) {
    EXPECT_EQ(ModelMask::hamming_distance(original.client(k).weight_mask(),
                                          restored.client(k).weight_mask()),
              0.0);
    EXPECT_DOUBLE_EQ(original.client(k).unstructured_pruned(),
                     restored.client(k).unstructured_pruned());
    EXPECT_EQ(original.client_test_accuracy(k), restored.client_test_accuracy(k));
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, ResumedRunContinuesLikeUninterrupted) {
  const std::string path = ::testing::TempDir() + "/subfed_resume.bin";

  // Uninterrupted: 4 rounds.
  SubFedAvg full(ctx(), config());
  Rng sampler_a = Rng(123).split("s");
  for (std::size_t r = 0; r < 4; ++r) {
    full.run_round(r, sampler_a.sample_without_replacement(4, 3));
  }

  // Interrupted: 2 rounds, checkpoint, reload, 2 more with the same sampler
  // sequence.
  SubFedAvg part1(ctx(), config());
  Rng sampler_b = Rng(123).split("s");
  for (std::size_t r = 0; r < 2; ++r) {
    part1.run_round(r, sampler_b.sample_without_replacement(4, 3));
  }
  save_subfedavg_checkpoint(part1, path);

  SubFedAvg part2(ctx(), config());
  load_subfedavg_checkpoint(part2, path);
  for (std::size_t r = 2; r < 4; ++r) {
    part2.run_round(r, sampler_b.sample_without_replacement(4, 3));
  }

  for (std::size_t e = 0; e < full.global_state().size(); ++e) {
    EXPECT_EQ(full.global_state()[e].second, part2.global_state()[e].second)
        << full.global_state()[e].first;
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RejectsWrongFederationSize) {
  const std::string path = ::testing::TempDir() + "/subfed_badsize.bin";
  SubFedAvg original(ctx(), config());
  save_subfedavg_checkpoint(original, path);

  static FederatedData other(DatasetSpec::mnist(), [] {
    FederatedDataConfig config;
    config.partition = {6, 2, 25};
    config.seed = 78;
    return config;
  }());
  FlContext other_ctx = ctx();
  other_ctx.data = &other;
  SubFedAvg mismatched(other_ctx, config());
  EXPECT_THROW(load_subfedavg_checkpoint(mismatched, path), CheckError);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RejectsMissingAndCorruptFiles) {
  SubFedAvg alg(ctx(), config());
  EXPECT_THROW(load_subfedavg_checkpoint(alg, "/nonexistent/ckpt.bin"), CheckError);

  const std::string path = ::testing::TempDir() + "/subfed_corrupt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_THROW(load_subfedavg_checkpoint(alg, path), CheckError);
  std::remove(path.c_str());
}

// ---------------- Quantization ------------------------------------------------

TEST(Fp16, KnownValuesRoundTrip) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.25f, 65504.0f}) {
    EXPECT_EQ(fp16_to_fp32(fp32_to_fp16(v)), v) << v;
  }
  // Subnormal half.
  const float tiny = 6.1e-5f;
  EXPECT_NEAR(fp16_to_fp32(fp32_to_fp16(tiny)), tiny, 1e-6f);
  // Overflow saturates to inf.
  EXPECT_TRUE(std::isinf(fp16_to_fp32(fp32_to_fp16(1e6f))));
}

TEST(Fp16, RelativeErrorBounded) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 2.0));
    const float back = fp16_to_fp32(fp32_to_fp16(v));
    EXPECT_NEAR(back, v, std::max(1e-3f, std::fabs(v) * 1e-3f));
  }
}

TEST(Quantize, Fp16StateRoundTrip) {
  Rng rng(6);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict state = m.state();
  const StateDict back = dequantize_state(quantize_state(state, QuantKind::kFp16));
  ASSERT_EQ(back.size(), state.size());
  double worst = 0.0;
  for (std::size_t e = 0; e < state.size(); ++e) {
    EXPECT_EQ(back[e].first, state[e].first);
    for (std::size_t i = 0; i < state[e].second.numel(); ++i) {
      worst = std::max(worst, static_cast<double>(std::fabs(back[e].second[i] -
                                                            state[e].second[i])));
    }
  }
  EXPECT_LT(worst, 1e-2);
}

TEST(Quantize, Int8ErrorBoundedByScale) {
  Rng rng(7);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict state = m.state();
  const StateDict back = dequantize_state(quantize_state(state, QuantKind::kInt8));
  for (std::size_t e = 0; e < state.size(); ++e) {
    const float bound = state[e].second.abs_max() / 127.0f * 0.51f + 1e-7f;
    for (std::size_t i = 0; i < state[e].second.numel(); ++i) {
      EXPECT_NEAR(back[e].second[i], state[e].second[i], bound) << state[e].first;
    }
  }
}

TEST(Quantize, PayloadAccounting) {
  Rng rng(8);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict state = m.state();
  const std::size_t n = state.numel();
  EXPECT_EQ(quantized_payload_bytes(state, QuantKind::kFp16), n * 2);
  EXPECT_EQ(quantized_payload_bytes(state, QuantKind::kInt8), n + 4 * state.size());
  // fp16 halves the dense fp32 payload.
  EXPECT_EQ(quantized_payload_bytes(state, QuantKind::kFp16) * 2, n * 4);
}

TEST(Quantize, RejectsCorruptBuffers) {
  Rng rng(9);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  std::vector<std::uint8_t> bytes = quantize_state(m.state(), QuantKind::kFp16);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(dequantize_state(bytes), CheckError);
  std::vector<std::uint8_t> truncated = quantize_state(m.state(), QuantKind::kInt8);
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(dequantize_state(truncated), CheckError);
}

// ---------------- Dropout fault injection --------------------------------------

TEST(Dropout, FederationSurvivesClientFailures) {
  static FederatedData data(DatasetSpec::mnist(), [] {
    FederatedDataConfig config;
    config.partition = {6, 2, 20};
    config.test_per_class = 6;
    config.seed = 13;
    return config;
  }());
  FlContext ctx;
  ctx.data = &data;
  ctx.spec = ModelSpec::cnn5(10);
  ctx.train = {2, 10};
  ctx.seed = 13;

  SubFedAvgConfig config;
  config.unstructured = {0.0, 0.4, 0.0, 0.2};
  SubFedAvg alg(ctx, config);

  DriverConfig driver{/*rounds=*/6, /*sample_rate=*/0.5, 0, 13};
  driver.dropout_prob = 0.5;
  const RunResult result = run_federation(alg, driver);
  EXPECT_GT(result.dropped_clients, 0u);
  // The run still completes and produces sane personalized accuracy.
  EXPECT_GT(result.final_avg_accuracy, 0.3);
}

TEST(Dropout, FullDropoutSkipsRoundsWithoutTraffic) {
  static FederatedData data(DatasetSpec::mnist(), [] {
    FederatedDataConfig config;
    config.partition = {3, 2, 15};
    config.test_per_class = 4;
    config.seed = 14;
    return config;
  }());
  FlContext ctx;
  ctx.data = &data;
  ctx.spec = ModelSpec::cnn5(10);
  ctx.train = {1, 10};
  ctx.seed = 14;

  Standalone alg(ctx);
  DriverConfig driver{/*rounds=*/4, /*sample_rate=*/1.0, 0, 14};
  driver.dropout_prob = 1.0;
  const RunResult result = run_federation(alg, driver);
  EXPECT_EQ(result.skipped_rounds, 4u);
  EXPECT_EQ(result.dropped_clients, 12u);
  EXPECT_EQ(result.total_bytes(), 0u);
}

TEST(Dropout, ZeroProbabilityMatchesBaselineRun) {
  static FederatedData data(DatasetSpec::mnist(), [] {
    FederatedDataConfig config;
    config.partition = {4, 2, 15};
    config.test_per_class = 4;
    config.seed = 15;
    return config;
  }());
  FlContext ctx;
  ctx.data = &data;
  ctx.spec = ModelSpec::cnn5(10);
  ctx.train = {1, 10};
  ctx.seed = 15;

  auto run = [&](double dropout) {
    Standalone alg(ctx);
    DriverConfig driver{3, 1.0, 0, 15};
    driver.dropout_prob = dropout;
    return run_federation(alg, driver).final_avg_accuracy;
  };
  EXPECT_EQ(run(0.0), run(0.0));
}

// ---------------- Sparsity report ----------------------------------------------

TEST(SparsityReport, PerLayerCountsMatchMask) {
  Rng rng(16);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kFcOnly);
  mask = derive_magnitude_mask(m, mask, 0.5);

  const auto rows = layer_sparsity(m, mask);
  ASSERT_EQ(rows.size(), m.parameters().size());
  for (const LayerSparsity& row : rows) {
    if (row.name == "fc1.weight") {
      EXPECT_TRUE(row.covered);
      EXPECT_NEAR(row.pruned_fraction(), 0.5, 0.01);
    }
    if (row.name == "conv1.weight") {
      EXPECT_FALSE(row.covered);
      EXPECT_EQ(row.kept, row.total);
    }
  }
}

TEST(SparsityReport, RendersAllParameters) {
  Rng rng(17);
  Model m = ModelSpec::lenet5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  const std::string report = sparsity_report(m, mask);
  for (const char* name : {"conv1.weight", "conv2.weight", "fc1.weight", "fc3.bias"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace subfed
