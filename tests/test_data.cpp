// Synthetic dataset generation and non-IID shard partitioning.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/client_data.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "util/check.h"

namespace subfed {
namespace {

TEST(DatasetSpec, PaperShapes) {
  const DatasetSpec mnist = DatasetSpec::mnist();
  EXPECT_EQ(mnist.num_classes, 10u);
  EXPECT_EQ(mnist.channels, 1u);
  EXPECT_EQ(mnist.hw, 28u);
  EXPECT_EQ(mnist.shard_size, 250u);

  const DatasetSpec emnist = DatasetSpec::emnist();
  EXPECT_EQ(emnist.num_classes, 47u);

  const DatasetSpec cifar10 = DatasetSpec::cifar10();
  EXPECT_EQ(cifar10.channels, 3u);
  EXPECT_EQ(cifar10.hw, 32u);

  const DatasetSpec cifar100 = DatasetSpec::cifar100();
  EXPECT_EQ(cifar100.num_classes, 100u);
  EXPECT_EQ(cifar100.shard_size, 125u);  // paper: 125-example shards
}

TEST(DatasetSpec, ByNameRoundTrip) {
  for (const char* name : {"mnist", "emnist", "cifar10", "cifar100"}) {
    EXPECT_EQ(DatasetSpec::by_name(name).name, name);
  }
  EXPECT_THROW(DatasetSpec::by_name("imagenet"), CheckError);
}

TEST(SyntheticGenerator, DeterministicImages) {
  SyntheticImageGenerator g1(DatasetSpec::mnist(), 42);
  SyntheticImageGenerator g2(DatasetSpec::mnist(), 42);
  EXPECT_EQ(g1.train_image(3, 7), g2.train_image(3, 7));
  EXPECT_EQ(g1.test_image(3, 7), g2.test_image(3, 7));
}

TEST(SyntheticGenerator, DistinctAcrossIndicesLabelsSeedsAndSplits) {
  SyntheticImageGenerator g(DatasetSpec::mnist(), 42);
  SyntheticImageGenerator other(DatasetSpec::mnist(), 43);
  EXPECT_NE(g.train_image(3, 7), g.train_image(3, 8));
  EXPECT_NE(g.train_image(3, 7), g.train_image(4, 7));
  EXPECT_NE(g.train_image(3, 7), g.test_image(3, 7));
  EXPECT_NE(g.train_image(3, 7), other.train_image(3, 7));
}

TEST(SyntheticGenerator, ImageShape) {
  SyntheticImageGenerator g(DatasetSpec::cifar10(), 1);
  const Tensor img = g.train_image(0, 0);
  EXPECT_EQ(img.shape(), Shape({3, 32, 32}));
}

TEST(SyntheticGenerator, ClassPrototypesAreSeparated) {
  // Same-class examples must be closer to their own prototype mixture than
  // random cross-class pairs on average — the learnability precondition.
  SyntheticImageGenerator g(DatasetSpec::mnist(), 5);
  double intra = 0.0, inter = 0.0;
  int pairs = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      Tensor a = g.train_image(c, i);
      Tensor b = g.train_image(c, i + 10);
      Tensor d = g.train_image((c + 1) % 4, i);
      Tensor ab = sub(a, b), ad = sub(a, d);
      intra += ab.squared_norm();
      inter += ad.squared_norm();
      ++pairs;
    }
  }
  // Same class can still differ (3 prototypes/class), but cross-class should
  // be clearly farther on average.
  EXPECT_LT(intra / pairs, inter / pairs);
}

TEST(ShardPartitioner, ShardArithmetic) {
  const DatasetSpec spec = DatasetSpec::mnist();
  ShardPartitioner part(spec, {/*clients=*/10, /*shards=*/2, /*shard_size=*/50}, Rng(1));
  EXPECT_EQ(part.num_clients(), 10u);
  EXPECT_EQ(part.shard_size(), 50u);
  // 10 clients × 2 shards × 50 = 1000 examples over 10 classes → 100/class.
  EXPECT_EQ(part.pool_per_class(), 100u);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(part.client(k).examples.size(), 100u);
  }
}

TEST(ShardPartitioner, DefaultsToPaperShardSize) {
  const DatasetSpec spec = DatasetSpec::cifar100();
  ShardPartitioner part(spec, {4, 2, 0}, Rng(1));
  EXPECT_EQ(part.shard_size(), 125u);
}

TEST(ShardPartitioner, AtMostTwoLabelsWithAlignedShards) {
  // When shard_size divides pool_per_class, every shard is label-pure, so a
  // 2-shard client sees at most 2 labels — the paper's pathological non-IID.
  const DatasetSpec spec = DatasetSpec::mnist();
  ShardPartitioner part(spec, {20, 2, 100}, Rng(7));
  // pool_per_class = 20·2·100/10 = 400 → divisible by 100.
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_LE(part.client(k).labels_present.size(), 2u);
    EXPECT_GE(part.client(k).labels_present.size(), 1u);
  }
}

TEST(ShardPartitioner, ShardsArePartition) {
  // No example is assigned twice across the federation.
  const DatasetSpec spec = DatasetSpec::mnist();
  ShardPartitioner part(spec, {12, 2, 30}, Rng(3));
  std::set<std::pair<std::int32_t, std::uint32_t>> seen;
  for (std::size_t k = 0; k < part.num_clients(); ++k) {
    for (const ExampleRef& ref : part.client(k).examples) {
      const bool inserted = seen.insert({ref.label, ref.index}).second;
      EXPECT_TRUE(inserted) << "duplicate example (" << ref.label << "," << ref.index << ")";
    }
  }
  EXPECT_EQ(seen.size(), 12u * 2 * 30);
}

TEST(ShardPartitioner, LabelsPresentMatchesExamples) {
  const DatasetSpec spec = DatasetSpec::emnist();
  ShardPartitioner part(spec, {8, 2, 40}, Rng(5));
  for (std::size_t k = 0; k < part.num_clients(); ++k) {
    std::set<std::int32_t> labels;
    for (const ExampleRef& ref : part.client(k).examples) labels.insert(ref.label);
    const auto& present = part.client(k).labels_present;
    EXPECT_EQ(labels.size(), present.size());
    for (const std::int32_t l : present) EXPECT_TRUE(labels.count(l));
    EXPECT_TRUE(std::is_sorted(present.begin(), present.end()));
  }
}

TEST(ShardPartitioner, DeterministicGivenSeed) {
  const DatasetSpec spec = DatasetSpec::mnist();
  ShardPartitioner a(spec, {6, 2, 25}, Rng(11));
  ShardPartitioner b(spec, {6, 2, 25}, Rng(11));
  ShardPartitioner c(spec, {6, 2, 25}, Rng(12));
  EXPECT_EQ(a.client(0).labels_present, b.client(0).labels_present);
  bool any_differ = false;
  for (std::size_t k = 0; k < 6 && !any_differ; ++k) {
    any_differ = a.client(k).labels_present != c.client(k).labels_present;
  }
  EXPECT_TRUE(any_differ);
}

TEST(FederatedData, ClientTensorsSized) {
  FederatedDataConfig config;
  config.partition = {4, 2, 30};
  config.test_per_class = 10;
  config.val_fraction = 0.1;
  config.seed = 2;
  FederatedData data(DatasetSpec::mnist(), config);

  EXPECT_EQ(data.num_clients(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    const ClientData& cd = data.client(k);
    // 60 local examples → 54 train + 6 val.
    EXPECT_EQ(cd.train_images.shape()[0], 54u);
    EXPECT_EQ(cd.train_labels.size(), 54u);
    EXPECT_EQ(cd.val_images.shape()[0], 6u);
    EXPECT_EQ(cd.test_size(), cd.labels_present.size() * 10);
    for (const auto& slice : cd.test) EXPECT_EQ(slice->images.shape()[0], 10u);
    EXPECT_EQ(cd.train_images.shape()[1], 1u);
    EXPECT_EQ(cd.train_images.shape()[2], 28u);
  }
}

TEST(FederatedData, TestSetOnlyClientLabels) {
  FederatedDataConfig config;
  config.partition = {6, 2, 20};
  config.test_per_class = 5;
  config.seed = 3;
  FederatedData data(DatasetSpec::mnist(), config);

  for (std::size_t k = 0; k < data.num_clients(); ++k) {
    const ClientData& cd = data.client(k);
    std::set<std::int32_t> allowed(cd.labels_present.begin(), cd.labels_present.end());
    for (const auto& slice : cd.test) EXPECT_TRUE(allowed.count(slice->label));
    for (const std::int32_t l : cd.train_labels) EXPECT_TRUE(allowed.count(l));
    for (const std::int32_t l : cd.val_labels) EXPECT_TRUE(allowed.count(l));
  }
}

TEST(FederatedData, DeterministicAcrossConstructions) {
  FederatedDataConfig config;
  config.partition = {3, 2, 15};
  config.seed = 9;
  FederatedData a(DatasetSpec::mnist(), config);
  FederatedData b(DatasetSpec::mnist(), config);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(a.client(k).train_images, b.client(k).train_images);
    EXPECT_EQ(a.client(k).train_labels, b.client(k).train_labels);
    ASSERT_EQ(a.client(k).test.size(), b.client(k).test.size());
    for (std::size_t s = 0; s < a.client(k).test.size(); ++s) {
      EXPECT_EQ(a.client(k).test[s]->images, b.client(k).test[s]->images);
    }
  }
}

TEST(FederatedData, SharedTestPoolConsistentAcrossClients) {
  // Clients sharing a label see the *same* test images for it (the global
  // test pool filtered per client, not freshly sampled).
  FederatedDataConfig config;
  config.partition = {8, 2, 25};
  config.test_per_class = 4;
  config.seed = 4;
  FederatedData data(DatasetSpec::mnist(), config);

  std::map<std::int32_t, const TestSlice*> first_seen;
  for (std::size_t k = 0; k < data.num_clients(); ++k) {
    const ClientData& cd = data.client(k);
    for (std::size_t li = 0; li < cd.labels_present.size(); ++li) {
      const TestSlice& slice = *cd.test[li];
      EXPECT_EQ(slice.label, cd.labels_present[li]);
      auto [it, inserted] = first_seen.emplace(slice.label, &slice);
      // Dedup means shared labels point at the SAME immutable slice object.
      if (!inserted) EXPECT_EQ(it->second, &slice) << "label " << slice.label;
    }
  }
}

}  // namespace
}  // namespace subfed
