// Optimizer and training-loop behaviour.
#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/model_zoo.h"
#include "nn/sgd.h"
#include "nn/trainer.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

TEST(Sgd, PlainStepDescends) {
  Parameter p("w", Tensor({2}, std::vector<float>{1.0f, -1.0f}), true);
  p.grad = Tensor({2}, std::vector<float>{0.5f, -0.5f});
  Sgd opt({&p}, {/*lr=*/0.1f, /*momentum=*/0.0f, /*weight_decay=*/0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], -1.0f + 0.1f * 0.5f);
  // Grads zeroed after step.
  EXPECT_EQ(p.grad.squared_norm(), 0.0);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p("w", Tensor({1}, std::vector<float>{0.0f}), true);
  Sgd opt({&p}, {/*lr=*/1.0f, /*momentum=*/0.5f, /*weight_decay=*/0.0f});
  p.grad[0] = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad[0] = 1.0f;
  opt.step();  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
  opt.reset_momentum();
  p.grad[0] = 1.0f;
  opt.step();  // v=1 again
  EXPECT_FLOAT_EQ(p.value[0], -3.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Parameter p("w", Tensor({1}, std::vector<float>{2.0f}), true);
  Sgd opt({&p}, {/*lr=*/0.1f, /*momentum=*/0.0f, /*weight_decay=*/0.5f});
  p.grad[0] = 0.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 2.0f - 0.1f * (0.5f * 2.0f));
}

TEST(Sgd, RequiresParameters) {
  EXPECT_THROW(Sgd({}, {}), CheckError);
}

TEST(GatherRows, SelectsAndValidates) {
  Tensor images({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  std::vector<std::size_t> idx{2, 0};
  Tensor batch = gather_rows(images, idx);
  EXPECT_EQ(batch.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(batch.at2(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(batch.at2(1, 1), 2.0f);
  std::vector<std::size_t> bad{3};
  EXPECT_THROW(gather_rows(images, bad), CheckError);
}

// A linearly separable 2-class problem a linear model must learn.
struct ToyProblem {
  Tensor images;
  std::vector<std::int32_t> labels;

  static ToyProblem make(std::size_t n, Rng& rng) {
    ToyProblem p;
    p.images = Tensor({n, 4});
    p.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t y = static_cast<std::int32_t>(rng.uniform_index(2));
      const float sign = y == 0 ? -1.0f : 1.0f;
      for (std::size_t d = 0; d < 4; ++d) {
        p.images.at2(i, d) = sign * 1.0f + static_cast<float>(rng.normal(0.0, 0.3));
      }
      p.labels[i] = y;
    }
    return p;
  }
};

TEST(TrainLocal, LearnsSeparableProblem) {
  Rng rng(11);
  ToyProblem train = ToyProblem::make(128, rng);
  ToyProblem test = ToyProblem::make(64, rng);

  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 4, 2));
  fc->init(rng);
  Sgd opt(m.parameters(), {0.05f, 0.5f, 0.0f});

  Rng train_rng = rng.split("train");
  const TrainStats stats =
      train_local(m, opt, train.images, train.labels, {/*epochs=*/5, /*batch=*/16}, train_rng);
  EXPECT_GT(stats.last_epoch_accuracy, 0.9);
  EXPECT_EQ(stats.steps, 5 * 128 / 16);

  const EvalStats eval = evaluate(m, test.images, test.labels);
  EXPECT_GT(eval.accuracy, 0.9);
  EXPECT_EQ(eval.examples, 64u);
}

TEST(TrainLocal, EpochCallbackFiresInOrder) {
  Rng rng(12);
  ToyProblem train = ToyProblem::make(32, rng);
  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 4, 2));
  fc->init(rng);
  Sgd opt(m.parameters(), {0.01f, 0.0f, 0.0f});

  std::vector<std::size_t> epochs;
  Rng train_rng = rng.split("train");
  train_local(m, opt, train.images, train.labels, {3, 8}, train_rng,
              [&](std::size_t e) { epochs.push_back(e); });
  EXPECT_EQ(epochs, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(TrainLocal, GradHookRunsEveryStep) {
  Rng rng(13);
  ToyProblem train = ToyProblem::make(32, rng);
  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 4, 2));
  fc->init(rng);
  Sgd opt(m.parameters(), {0.01f, 0.0f, 0.0f});

  std::size_t calls = 0;
  Rng train_rng = rng.split("train");
  const TrainStats stats = train_local(m, opt, train.images, train.labels, {2, 8},
                                       train_rng, {}, [&](Model&) { ++calls; });
  EXPECT_EQ(calls, stats.steps);
}

TEST(TrainLocal, ZeroingGradHookFreezesModel) {
  Rng rng(14);
  ToyProblem train = ToyProblem::make(32, rng);
  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 4, 2));
  fc->init(rng);
  const StateDict before = m.state();

  Sgd opt(m.parameters(), {0.1f, 0.5f, 0.0f});
  Rng train_rng = rng.split("train");
  train_local(m, opt, train.images, train.labels, {2, 8}, train_rng, {},
              [](Model& model) {
                for (Parameter* p : model.parameters()) p->grad.zero();
              });
  const StateDict after = m.state();
  for (std::size_t e = 0; e < before.size(); ++e) {
    EXPECT_EQ(before[e].second, after[e].second) << before[e].first;
  }
}

TEST(TrainLocal, BatchLargerThanDatasetClamps) {
  Rng rng(15);
  ToyProblem train = ToyProblem::make(5, rng);
  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 4, 2));
  fc->init(rng);
  Sgd opt(m.parameters(), {0.01f, 0.0f, 0.0f});
  Rng train_rng = rng.split("train");
  const TrainStats stats =
      train_local(m, opt, train.images, train.labels, {1, 64}, train_rng);
  EXPECT_EQ(stats.steps, 1u);
}

TEST(TrainLocal, DeterministicGivenSameRng) {
  Rng rng(16);
  ToyProblem train = ToyProblem::make(64, rng);

  auto run = [&](std::uint64_t seed) {
    Rng init(17);
    Model m;
    auto* fc = m.add(std::make_unique<Linear>("fc", 4, 2));
    fc->init(init);
    Sgd opt(m.parameters(), {0.05f, 0.5f, 0.0f});
    Rng train_rng(seed);
    train_local(m, opt, train.images, train.labels, {3, 8}, train_rng);
    return m.state();
  };

  const StateDict a = run(100), b = run(100), c = run(101);
  bool identical_ab = true, identical_ac = true;
  for (std::size_t e = 0; e < a.size(); ++e) {
    identical_ab &= (a[e].second == b[e].second);
    identical_ac &= (a[e].second == c[e].second);
  }
  EXPECT_TRUE(identical_ab);
  EXPECT_FALSE(identical_ac);  // different shuffle order ⇒ different floats
}

TEST(Evaluate, EmptySetYieldsZero) {
  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 4, 2));
  (void)fc;
  Tensor empty({0, 4});
  std::vector<std::int32_t> labels;
  const EvalStats stats = evaluate(m, empty, labels);
  EXPECT_EQ(stats.examples, 0u);
  EXPECT_EQ(stats.accuracy, 0.0);
}

}  // namespace
}  // namespace subfed
