// Sub-FedAvg aggregation semantics (the paper's server-side rule).
#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "nn/linear.h"
#include "nn/model_zoo.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

// Tiny single-entry federation helpers.
StateDict state_of(std::vector<float> w) {
  const std::size_t n = w.size();  // read before the move below
  StateDict s;
  s.add("fc.weight", Tensor({1, n}, std::move(w)));
  return s;
}

ModelMask mask_of(std::vector<float> bits) {
  const std::size_t n = bits.size();
  ModelMask m;
  m.set("fc.weight", Tensor({1, n}, std::move(bits)));
  return m;
}

TEST(SubFedAvgAggregate, AveragesOverRetainingClientsOnly) {
  const StateDict prev = state_of({100, 100, 100, 100});
  std::vector<ClientUpdate> updates;
  updates.push_back({state_of({2, 4, 0, 8}), mask_of({1, 1, 0, 1}), 1});
  updates.push_back({state_of({6, 0, 0, 4}), mask_of({1, 0, 0, 1}), 1});

  const StateDict out = sub_fedavg_aggregate(updates, prev);
  const Tensor& w = *out.find("fc.weight");
  EXPECT_FLOAT_EQ(w[0], 4.0f);    // both keep: (2+6)/2
  EXPECT_FLOAT_EQ(w[1], 4.0f);    // only client 0 keeps: 4/1
  EXPECT_FLOAT_EQ(w[2], 100.0f);  // nobody keeps → previous global
  EXPECT_FLOAT_EQ(w[3], 6.0f);    // both keep: (8+4)/2
}

TEST(SubFedAvgAggregate, StrictIntersectionVariant) {
  const StateDict prev = state_of({100, 100, 100, 100});
  std::vector<ClientUpdate> updates;
  updates.push_back({state_of({2, 4, 0, 8}), mask_of({1, 1, 0, 1}), 1});
  updates.push_back({state_of({6, 0, 0, 4}), mask_of({1, 0, 0, 1}), 1});

  const StateDict out = sub_fedavg_aggregate_strict(updates, prev);
  const Tensor& w = *out.find("fc.weight");
  EXPECT_FLOAT_EQ(w[0], 4.0f);    // unanimous → averaged
  EXPECT_FLOAT_EQ(w[1], 100.0f);  // not unanimous → previous global
  EXPECT_FLOAT_EQ(w[2], 100.0f);
  EXPECT_FLOAT_EQ(w[3], 6.0f);
}

TEST(SubFedAvgAggregate, UncoveredEntriesAverageUniformly) {
  StateDict prev;
  prev.add("fc.bias", Tensor({2}, std::vector<float>{0, 0}));
  std::vector<ClientUpdate> updates;
  ClientUpdate u1, u2;
  u1.state.add("fc.bias", Tensor({2}, std::vector<float>{2, 4}));
  u2.state.add("fc.bias", Tensor({2}, std::vector<float>{6, 0}));
  updates = {u1, u2};

  const StateDict out = sub_fedavg_aggregate(updates, prev);
  EXPECT_FLOAT_EQ((*out.find("fc.bias"))[0], 4.0f);
  EXPECT_FLOAT_EQ((*out.find("fc.bias"))[1], 2.0f);
}

TEST(SubFedAvgAggregate, SingleClientPassesThroughKeptEntries) {
  const StateDict prev = state_of({9, 9});
  std::vector<ClientUpdate> updates;
  updates.push_back({state_of({1, 0}), mask_of({1, 0}), 1});
  const StateDict out = sub_fedavg_aggregate(updates, prev);
  EXPECT_FLOAT_EQ((*out.find("fc.weight"))[0], 1.0f);
  EXPECT_FLOAT_EQ((*out.find("fc.weight"))[1], 9.0f);
}

TEST(SubFedAvgAggregate, FullMasksReduceToPlainMean) {
  const StateDict prev = state_of({0, 0});
  std::vector<ClientUpdate> updates;
  updates.push_back({state_of({1, 3}), mask_of({1, 1}), 7});
  updates.push_back({state_of({3, 5}), mask_of({1, 1}), 99});  // weights ignored
  const StateDict out = sub_fedavg_aggregate(updates, prev);
  EXPECT_FLOAT_EQ((*out.find("fc.weight"))[0], 2.0f);
  EXPECT_FLOAT_EQ((*out.find("fc.weight"))[1], 4.0f);
}

TEST(SubFedAvgAggregate, ValidatesAlignment) {
  const StateDict prev = state_of({0, 0});
  std::vector<ClientUpdate> updates;
  ClientUpdate bad;
  bad.state.add("other.weight", Tensor({1, 2}));
  updates.push_back(bad);
  EXPECT_THROW(sub_fedavg_aggregate(updates, prev), CheckError);
  updates.clear();
  EXPECT_THROW(sub_fedavg_aggregate(updates, prev), CheckError);
}

TEST(FedAvgAggregate, ExampleWeightedMean) {
  std::vector<ClientUpdate> updates;
  updates.push_back({state_of({0, 10}), {}, 1});
  updates.push_back({state_of({4, 0}), {}, 3});
  const StateDict out = fedavg_aggregate(updates);
  EXPECT_FLOAT_EQ((*out.find("fc.weight"))[0], 3.0f);   // (0·1 + 4·3)/4
  EXPECT_FLOAT_EQ((*out.find("fc.weight"))[1], 2.5f);   // (10·1 + 0·3)/4
}

TEST(FedAvgAggregate, EqualWeightsIsPlainMean) {
  std::vector<ClientUpdate> updates;
  updates.push_back({state_of({1, 2}), {}, 5});
  updates.push_back({state_of({3, 6}), {}, 5});
  const StateDict out = fedavg_aggregate(updates);
  EXPECT_FLOAT_EQ((*out.find("fc.weight"))[0], 2.0f);
  EXPECT_FLOAT_EQ((*out.find("fc.weight"))[1], 4.0f);
}

TEST(FedAvgAggregate, FullModelStateRoundTrips) {
  // Aggregating two identical LeNet states returns that state exactly.
  Rng rng(1);
  Model m = ModelSpec::lenet5(10).build_init(rng);
  const StateDict s = m.state();
  std::vector<ClientUpdate> updates;
  updates.push_back({s, {}, 10});
  updates.push_back({s, {}, 20});
  const StateDict out = fedavg_aggregate(updates);
  for (std::size_t e = 0; e < s.size(); ++e) {
    const Tensor& expect = s[e].second;
    const Tensor& got = out[e].second;
    for (std::size_t i = 0; i < expect.numel(); ++i) {
      EXPECT_NEAR(expect[i], got[i], 1e-6f) << s[e].first;
    }
  }
}

TEST(SubFedAvgAggregate, PreservesEntryOrderAndNames) {
  Rng rng(2);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  const StateDict prev = m.state();
  std::vector<ClientUpdate> updates;
  updates.push_back({prev, ModelMask::ones_like(m, MaskScope::kAllPrunable), 1});
  const StateDict out = sub_fedavg_aggregate(updates, prev);
  ASSERT_EQ(out.size(), prev.size());
  for (std::size_t e = 0; e < prev.size(); ++e) {
    EXPECT_EQ(out[e].first, prev[e].first);
    EXPECT_EQ(out[e].second.shape(), prev[e].second.shape());
  }
}

}  // namespace
}  // namespace subfed
