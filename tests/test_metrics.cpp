// FLOP/parameter accounting and summary statistics.
#include <gtest/gtest.h>

#include "metrics/flops.h"
#include "metrics/stats.h"
#include "nn/model_zoo.h"
#include "pruning/unstructured.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

TEST(Flops, DenseLeNetMatchesHandCount) {
  Model m = ModelSpec::lenet5(10).build();
  // conv1: 2·28·28·6·3·25, conv2: 2·10·10·16·6·25.
  const std::size_t expected = 2ull * 28 * 28 * 6 * 3 * 25 + 2ull * 10 * 10 * 16 * 6 * 25;
  EXPECT_EQ(dense_conv_flops(m), expected);
}

TEST(Flops, DenseCnn5MatchesHandCount) {
  Model m = ModelSpec::cnn5(10).build();
  // conv1: 2·24·24·10·1·25, conv2: 2·8·8·20·10·25.
  const std::size_t expected = 2ull * 24 * 24 * 10 * 1 * 25 + 2ull * 8 * 8 * 20 * 10 * 25;
  EXPECT_EQ(dense_conv_flops(m), expected);
}

TEST(Flops, FullMaskEqualsDense) {
  Model m = ModelSpec::lenet5(10).build();
  const ChannelMask mask = ChannelMask::ones_like(m);
  EXPECT_EQ(pruned_conv_flops(m, mask), dense_conv_flops(m));
}

TEST(Flops, HalfChannelsGiveRoughlyQuarterSecondLayer) {
  Model m = ModelSpec::lenet5(10).build();
  ChannelMask mask = ChannelMask::ones_like(m);
  // Prune half of conv1 (3/6) and half of conv2 (8/16).
  for (std::size_t c = 0; c < 3; ++c) mask.block(0)[c] = 0;
  for (std::size_t c = 0; c < 8; ++c) mask.block(1)[c] = 0;

  // conv1: out 3 of 6 → ×0.5; conv2: in 3/6 × out 8/16 → ×0.25.
  const std::size_t conv1 = 2ull * 28 * 28 * 3 * 3 * 25;
  const std::size_t conv2 = 2ull * 10 * 10 * 8 * 3 * 25;
  EXPECT_EQ(pruned_conv_flops(m, mask), conv1 + conv2);

  // The paper's headline: ~50% channels pruned ⇒ >2× conv-FLOP speedup.
  const double speedup = static_cast<double>(dense_conv_flops(m)) /
                         static_cast<double>(pruned_conv_flops(m, mask));
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 5.0);
}

TEST(Params, DenseCountsAndKeptUnderMask) {
  Rng rng(1);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  EXPECT_EQ(dense_parameter_count(m), m.num_parameters());

  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  EXPECT_EQ(kept_parameter_count(m, mask), m.num_parameters());

  mask = derive_magnitude_mask(m, mask, 0.5);
  const std::size_t kept = kept_parameter_count(m, mask);
  // Uncovered params (biases, BN) all kept; covered at 50%.
  const std::size_t covered = mask.covered();
  const std::size_t uncovered = m.num_parameters() - covered;
  EXPECT_NEAR(static_cast<double>(kept),
              static_cast<double>(uncovered) + 0.5 * static_cast<double>(covered),
              4.0);
}

TEST(ReductionReport, CombinesStructuredAndUnstructured) {
  Rng rng(2);
  Model m = ModelSpec::lenet5(10).build_init(rng);
  ChannelMask channels = ChannelMask::ones_like(m);
  for (std::size_t c = 0; c < 3; ++c) channels.block(0)[c] = 0;
  for (std::size_t c = 0; c < 8; ++c) channels.block(1)[c] = 0;
  ModelMask weights = ModelMask::ones_like(m, MaskScope::kFcOnly);
  weights = derive_magnitude_mask(m, weights, 0.7);

  const ReductionReport report = reduction_report(m, &channels, &weights);
  EXPECT_GT(report.flop_reduction, 0.5);
  EXPECT_GT(report.flop_speedup, 2.0);
  // FC is ~95% of LeNet params; 70% of it pruned plus conv channels.
  EXPECT_GT(report.param_reduction, 0.6);
  EXPECT_LT(report.param_reduction, 0.9);
}

TEST(ReductionReport, DenseBaselineIsZero) {
  Rng rng(3);
  Model m = ModelSpec::lenet5(10).build_init(rng);
  const ReductionReport report = reduction_report(m, nullptr, nullptr);
  EXPECT_EQ(report.flop_reduction, 0.0);
  EXPECT_EQ(report.param_reduction, 0.0);
  EXPECT_EQ(report.flop_speedup, 1.0);
}

TEST(Summary, MomentsAndExtremes) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_EQ(s.count, 4u);

  const Summary empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.mean, 0.0);
}

TEST(Series, FirstReaching) {
  Series s;
  s.push(0.1);
  s.push(0.5);
  s.push(0.4);
  s.push(0.9);
  EXPECT_EQ(s.first_reaching(0.45), 1u);
  EXPECT_EQ(s.first_reaching(0.95), 4u);  // never → size()
  EXPECT_EQ(s.back(), 0.9);
  EXPECT_EQ(s.at(2), 0.4);
  EXPECT_THROW(s.at(9), CheckError);
}

}  // namespace
}  // namespace subfed
